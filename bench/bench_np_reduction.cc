// EXP-D (Theorem 4.2): hardness survives in the union-free,
// negation-free fragment because cardinality constraints express
// disjointness. Workload: counting ladders (reductions/counting_ladder.h)
// of growing depth, compatible and pinched. The reasoner must get the
// analytically known answers right while the expansion grows with the
// rung count.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

void RunLadder(benchmark::State& state, bool pinch, bool completion) {
  CountingLadderOptions options;
  options.rungs = static_cast<int>(state.range(0));
  options.pinch = pinch;
  auto ladder = BuildCountingLadder(options).value();
  ReasonerOptions reasoner_options;
  reasoner_options.expansion.union_free_completion = completion;
  bool bottom = false;
  size_t compounds = 0;
  for (auto _ : state) {
    Reasoner reasoner(&ladder.schema, reasoner_options);
    auto answer = reasoner.IsClassSatisfiable(ladder.bottom_class);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      break;
    }
    bottom = answer.value();
    compounds = reasoner.GetExpansion().value()->compound_classes.size();
  }
  if (bottom != ladder.bottom_satisfiable) {
    state.SkipWithError("reasoner disagrees with analytic ground truth");
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
  state.counters["bottom_satisfiable"] = bottom ? 1 : 0;
}

// The raw fragment cost: no Section 4.4 completion — compound classes
// (and LP size) grow exponentially with the rung count.
void BM_CountingLadder_Compatible(benchmark::State& state) {
  RunLadder(state, /*pinch=*/false, /*completion=*/false);
}
BENCHMARK(BM_CountingLadder_Compatible)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_CountingLadder_Pinched(benchmark::State& state) {
  RunLadder(state, /*pinch=*/true, /*completion=*/false);
}
BENCHMARK(BM_CountingLadder_Pinched)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

// The same instances with the Section 4.4 optimal completion: assumed
// disjointness collapses the expansion to polynomial size. (NP-hardness
// of the fragment is about worst cases; the heuristic wins on these.)
void BM_CountingLadder_WithCompletion(benchmark::State& state) {
  RunLadder(state, /*pinch=*/true, /*completion=*/true);
}
BENCHMARK(BM_CountingLadder_WithCompletion)
    ->DenseRange(1, 8, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
