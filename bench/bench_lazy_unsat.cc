// EXP-U driver: lazy UNSAT via infeasibility certificates vs eager
// expansion on dense unsatisfiable schemas.
//
// Workload: the dense-unsat family (GenerateDenseUnsatSchema) — the
// dense-blowup chaff cluster (2^chaff consistent subsets, no Ψ content)
// plus a pairwise-disjoint core chain whose terminal cardinality
// contradiction makes every core class unsatisfiable. The eager path
// must enumerate the chaff before it can say anything; the lazy engine
// probes the exhausted core targets, learns Farkas certificates as
// blocking constraints, and concludes UNSAT from their closure after
// materializing a sliver of the expansion. For each cell the eager
// CheckSchema runs when the cell is within the enumeration cap, and the
// lazy engine runs at 1/2/8 threads; all comparable verdicts must be
// identical classwise.
//
// The largest cell (unsat-22+4) is the headline regime: 2^22 subsets,
// beyond the eager cap — eager cannot answer at all while lazy returns
// a conclusive UNSAT with zero fallbacks (gated in CI).
//
// Usage: bench_lazy_unsat [--threads=N] [--smoke] [--out=FILE]
//   --smoke  tiny workload for CI: two small cells plus the beyond-cap
//            cell (cheap for the lazy engine by construction)
//
// Output: one JSON-lines record per cell in BENCH_lazy_unsat.json,
// gated by the CI bench-smoke job (answers_identical, a conclusive lazy
// UNSAT where eager tripped its cap, lazy_ms <= eager_ms where both
// completed).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_lazy_unsat.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  struct Cell {
    std::string name;
    DenseUnsatParams params;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells.push_back({"unsat-8+3", {8, 3, 2}});
    cells.push_back({"unsat-10+3", {10, 3, 2}});
    // The beyond-cap cell stays in the smoke set: it is the property the
    // CI gate exists for, and the lazy engine makes it cheap.
    cells.push_back({"unsat-22+4", {22, 4, 2}});
  } else {
    cells.push_back({"unsat-10+3", {10, 3, 2}});
    cells.push_back({"unsat-12+4", {12, 4, 2}});
    cells.push_back({"unsat-14+4", {14, 4, 2}});
    cells.push_back({"unsat-16+4", {16, 4, 2}});
    // Past the eager enumeration cap: eager cannot answer at all.
    cells.push_back({"unsat-22+4", {22, 4, 2}});
  }
  const std::vector<int> lazy_threads = {1, 2, 8};

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-U: lazy UNSAT (blocking constraints) vs eager expansion "
              "on dense unsat schemas (threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| schema | eager (ms) | lazy (ms) | speedup | materialized "
              "| total | blocked | closures | fallbacks |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");

  bool all_identical = true;
  bool beyond_cap_concluded = false;
  for (const Cell& cell : cells) {
    Schema schema = GenerateDenseUnsatSchema(cell.params);

    // Eager reference (ungoverned: a cap trip arrives as an error
    // status, which just marks the cell eager-incomplete).
    ReasonerOptions eager_options;
    eager_options.num_threads = num_threads;
    Reasoner eager(&schema, eager_options);
    auto eager_start = std::chrono::steady_clock::now();
    auto eager_report = eager.CheckSchema();
    double eager_ms = MillisSince(eager_start);
    const bool eager_completed = eager_report.ok();
    // Analytic full-expansion size (test-verified exact), reported even
    // where the eager build tripped before counting.
    const uint64_t compounds_total = DenseUnsatCompoundCount(cell.params);

    // Lazy at each thread count; verdicts must agree with each other
    // (and with eager where eager completed).
    double lazy_ms = 0.0;
    uint64_t materialized = 0;
    uint64_t rounds = 0;
    uint64_t blocked = 0;
    uint64_t closures = 0;
    uint64_t fallbacks = 0;
    bool lazy_conclusive = false;
    bool verdict_unsat = false;
    bool identical = true;
    std::vector<bool> first_classwise;
    for (size_t i = 0; i < lazy_threads.size(); ++i) {
      ReasonerOptions lazy_options;
      lazy_options.num_threads = lazy_threads[i];
      lazy_options.lazy_expansion = true;
      Reasoner lazy(&schema, lazy_options);
      auto lazy_start = std::chrono::steady_clock::now();
      auto report = lazy.CheckSchema();
      double ms = MillisSince(lazy_start);
      if (!report.ok()) {
        std::fprintf(stderr, "lazy %s threads=%d: %s\n", cell.name.c_str(),
                     lazy_threads[i], report.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        lazy_ms = ms;  // The reported time is the serial lazy run.
        materialized = report->compounds_materialized;
        rounds = report->refinement_rounds;
        blocked = report->blocking_constraints;
        closures = report->certificate_closures;
        lazy_conclusive = report->lazy;
        verdict_unsat = report->verdict == Verdict::kUnsat;
        first_classwise = report->class_satisfiable;
        if (!report->lazy) ++fallbacks;
        if (eager_completed) {
          identical = identical &&
                      eager_report->verdict == report->verdict &&
                      eager_report->class_satisfiable ==
                          report->class_satisfiable;
        }
      } else {
        identical =
            identical && report->class_satisfiable == first_classwise;
      }
    }
    all_identical = all_identical && identical;
    if (!eager_completed && lazy_conclusive && verdict_unsat &&
        fallbacks == 0) {
      beyond_cap_concluded = true;
    }

    double speedup = (eager_completed && lazy_ms > 0)
                         ? eager_ms / lazy_ms
                         : 0.0;
    std::printf(
        "| %s | %s | %.2f | %s | %llu | %llu | %llu | %llu | %llu |%s\n",
        cell.name.c_str(),
        eager_completed ? std::to_string(eager_ms).c_str() : "n/a (cap)",
        lazy_ms,
        eager_completed ? (std::to_string(speedup) + "x").c_str() : "-",
        static_cast<unsigned long long>(materialized),
        static_cast<unsigned long long>(compounds_total),
        static_cast<unsigned long long>(blocked),
        static_cast<unsigned long long>(closures),
        static_cast<unsigned long long>(fallbacks),
        identical ? "" : "  ANSWERS DIFFER (bug!)");
    std::fflush(stdout);

    bench::JsonRecord record;
    record.Add("bench", "lazy_unsat")
        .Add("schema", cell.name)
        .Add("num_classes", static_cast<int>(schema.num_classes()))
        .Add("threads", num_threads)
        .Add("smoke", smoke)
        .Add("eager_completed", eager_completed)
        .Add("eager_ms", eager_completed ? eager_ms : 0.0)
        .Add("lazy_ms", lazy_ms);
    // No speedup field on beyond-cap cells: "eager could not run" must
    // not aggregate as a zero ratio.
    if (eager_completed) record.Add("speedup", speedup);
    record.Add("answers_identical", identical)
        .Add("lazy_conclusive", lazy_conclusive)
        .Add("verdict_unsat", verdict_unsat)
        .Add("compounds_materialized", materialized)
        .Add("compounds_total", compounds_total)
        .Add("blocking_constraints", blocked)
        .Add("certificate_closures", closures)
        .Add("refinement_rounds", rounds)
        .Add("fallbacks", fallbacks);
    out.Write(record);
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: lazy answers differ from eager\n");
    return 1;
  }
  if (!beyond_cap_concluded) {
    std::fprintf(stderr,
                 "FAIL: no cell where eager tripped its cap but lazy "
                 "concluded UNSAT without fallback\n");
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
