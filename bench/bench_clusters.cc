// EXP-G (Section 4.3): cluster decomposition makes the expansion the
// *union* of per-cluster expansions — total work is linear in the number
// of clusters at fixed cluster size, and (separately) exponential in the
// cluster size at a fixed class count. Both sweeps below should show
// exactly that shape.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

void BM_Clusters_LinearInClusterCount(benchmark::State& state) {
  Rng rng(101);
  ClusteredParams params;
  params.num_clusters = static_cast<int>(state.range(0));
  params.cluster_size = 5;
  Schema schema = GenerateClusteredSchema(&rng, params);
  size_t compounds = 0;
  for (auto _ : state) {
    Reasoner reasoner(&schema);
    auto report = reasoner.CheckSchema();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      break;
    }
    compounds = report->num_compound_classes;
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
  state.counters["classes"] = params.num_clusters * params.cluster_size;
}
BENCHMARK(BM_Clusters_LinearInClusterCount)
    ->DenseRange(2, 16, 2)
    ->Unit(benchmark::kMillisecond);

// Same total class count (24), different granularity: a few big clusters
// are exponentially worse than many small ones.
void BM_Clusters_ExponentialInClusterSize(benchmark::State& state) {
  Rng rng(202);
  const int cluster_size = static_cast<int>(state.range(0));
  ClusteredParams params;
  params.cluster_size = cluster_size;
  params.num_clusters = 24 / cluster_size;
  params.dense = true;
  Schema schema = GenerateClusteredSchema(&rng, params);
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    visited = expansion->subsets_visited;
  }
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Clusters_ExponentialInClusterSize)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
