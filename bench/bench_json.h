#ifndef CAR_BENCH_BENCH_JSON_H_
#define CAR_BENCH_BENCH_JSON_H_

// Minimal JSON-lines emitter shared by the plain-main bench drivers: one
// flat object per record, one record per line, no dependencies. The
// artifact files (BENCH_*.json) are parsed by the CI smoke jobs with a
// stock JSON parser, so the emitter escapes strings properly and never
// emits NaN/Inf (non-finite doubles are written as null).

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

namespace car {
namespace bench {

/// One flat JSON object, built field by field in insertion order.
class JsonRecord {
 public:
  JsonRecord& Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(Escape(key), Escape(value));
    return *this;
  }
  JsonRecord& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonRecord& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonRecord& Add(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonRecord& Add(const std::string& key, int value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonRecord& Add(const std::string& key, double value) {
    if (!std::isfinite(value)) return AddRaw(key, "null");
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return AddRaw(key, buffer);
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i].first;
      out += ":";
      out += fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  JsonRecord& AddRaw(const std::string& key, std::string raw) {
    fields_.emplace_back(Escape(key), std::move(raw));
    return *this;
  }

  static std::string Escape(const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out += buffer;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A JSON-lines output file; every Write appends one record line and
/// flushes (bench drivers are often killed by deadline sweeps — partial
/// artifacts should still parse line by line).
class JsonLinesFile {
 public:
  explicit JsonLinesFile(const std::string& path)
      : file_(std::fopen(path.c_str(), "w")) {}
  ~JsonLinesFile() {
    if (file_ != nullptr) std::fclose(file_);
  }
  JsonLinesFile(const JsonLinesFile&) = delete;
  JsonLinesFile& operator=(const JsonLinesFile&) = delete;

  bool ok() const { return file_ != nullptr; }

  void Write(const JsonRecord& record) {
    if (file_ == nullptr) return;
    std::string line = record.ToString();
    std::fprintf(file_, "%s\n", line.c_str());
    std::fflush(file_);
  }

 private:
  std::FILE* file_;
};

}  // namespace bench
}  // namespace car

#endif  // CAR_BENCH_BENCH_JSON_H_
