// EXP-K (Section 3, improvement over [CL94]): the paper's phase 2 "works
// in worst case deterministic exponential time (compared to the double
// exponential time algorithm suggested in [CL94])". At the level of one
// phase-2 invocation, our support-maximizing fixpoint needs at most
// |compound classes| LP solves, while the naive guess-the-support
// baseline needs 2^|constrained compound classes| of them. Chain schemas
// keep the expansion linear, isolating the phase-2 gap: the baseline's
// curve doubles per added link, the fixpoint's stays polynomial.

#include <benchmark/benchmark.h>

#include "core/car.h"
#include "solver/naive_solve.h"

namespace car {
namespace {

void BM_Phase2_Fixpoint(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();
  size_t lp_solves = 0;
  for (auto _ : state) {
    auto solution = SolvePsi(expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    lp_solves = solution->lp_solves;
  }
  state.counters["lp_solves"] = static_cast<double>(lp_solves);
}
BENCHMARK(BM_Phase2_Fixpoint)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Phase2_NaiveBaseline(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();
  size_t lp_solves = 0;
  for (auto _ : state) {
    auto naive = SolvePsiNaive(expansion);
    if (!naive.ok()) {
      state.SkipWithError(naive.status().ToString().c_str());
      break;
    }
    lp_solves = naive->lp_solves;
  }
  state.counters["lp_solves"] = static_cast<double>(lp_solves);
}
BENCHMARK(BM_Phase2_NaiveBaseline)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
