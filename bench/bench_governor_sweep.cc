// EXP-L driver: unknown-rate vs deadline for the resource governor.
//
// Workload: dense single-cluster schemas of growing cluster size
// (GenerateClusteredSchema, dense = true) — the worst case for compound
// enumeration, with per-schema decision cost spanning ~4 orders of
// magnitude. For each wall-clock deadline the governed CheckSchema is run
// on every schema; the driver reports how many runs degrade to
// Verdict::kUnknown, which limit kind tripped, and the aggregate partial
// work at the trips. This is a plain main (not google-benchmark): each
// cell is one timed governed run, not a steady-state microbenchmark.
//
// Usage: bench_governor_sweep [--threads=N]

#include <chrono>
#include <cstdio>
#include <algorithm>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/rng.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

int Main(int argc, char** argv) {
  int num_threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    }
  }

  // Full (ungoverned) CheckSchema cost grows ~12x per size step on this
  // workload: ~1 ms at size 5 up to ~90 s at size 9 — the deadline range
  // below slices through the middle of that span.
  constexpr int kMinCluster = 5;
  constexpr int kMaxCluster = 9;
  std::vector<Schema> schemas;
  for (int size = kMinCluster; size <= kMaxCluster; ++size) {
    Rng rng(7);
    ClusteredParams params;
    params.num_clusters = 1;
    params.cluster_size = size;
    params.dense = true;
    schemas.push_back(GenerateClusteredSchema(&rng, params));
  }

  const uint64_t kDeadlinesMs[] = {1, 2, 5, 10, 20, 50,
                               100, 200, 500, 1000, 2000, 5000};
  std::printf("EXP-L: unknown-rate vs deadline (dense clusters %d..%d, "
              "threads=%d)\n\n",
              kMinCluster, kMaxCluster, num_threads);
  std::printf("| deadline (ms) | unknown | decided | unknown rate | "
              "trip phases | median compounds at trip |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (uint64_t deadline_ms : kDeadlinesMs) {
    int unknown = 0;
    int sat = 0;
    std::map<std::string, int> trip_phases;
    std::vector<uint64_t> compounds_at_trip;
    for (const Schema& schema : schemas) {
      ExecContext exec;
      exec.SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
      ReasonerOptions options;
      options.num_threads = num_threads;
      options.exec = &exec;
      Reasoner reasoner(&schema, options);
      auto report = reasoner.CheckSchema();
      if (!report.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      if (report->verdict == Verdict::kUnknown) {
        ++unknown;
        ++trip_phases[report->limit.phase];
        compounds_at_trip.push_back(report->progress.compounds_enumerated);
      } else {
        ++sat;
      }
    }
    uint64_t median = 0;
    if (!compounds_at_trip.empty()) {
      std::sort(compounds_at_trip.begin(), compounds_at_trip.end());
      median = compounds_at_trip[compounds_at_trip.size() / 2];
    }
    std::string phases;
    for (const auto& [phase, n] : trip_phases) {
      if (!phases.empty()) phases += ", ";
      phases += phase + ":" + std::to_string(n);
    }
    std::printf("| %4llu | %d | %d | %.0f%% | %s | %llu |\n",
                static_cast<unsigned long long>(deadline_ms), unknown, sat,
                100.0 * unknown / static_cast<double>(schemas.size()),
                phases.empty() ? "-" : phases.c_str(),
                static_cast<unsigned long long>(median));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
