// EXP-N driver: sparse pivot kernel + word-sized exact scalar fast path.
//
// Workload: the Ψ LP phase (SolvePsi) on chain schemas, clustered
// schemas, and truncated prefixes of examples/schemas/dense_blowup.car,
// solved three times per cell — once per tableau kernel:
//
//   dense-rational  dense rows of BigInt-backed Rationals (the
//                   pre-optimization kernel, the baseline),
//   dense-scalar    dense rows of word-sized Scalars (isolates the
//                   scalar-layer win),
//   sparse-scalar   compressed sparse rows of Scalars (production).
//
// All kernels are exact and follow the identical Bland pivot sequence,
// so every cell asserts bit-identical solutions (support, per-class
// verdicts, integer certificate, pivot counts) across kernels AND across
// the sparse kernel at 1/2/8 threads; the run fails if any differ. Times,
// speedup factors, promotion counts and tableau fill land as one
// JSON-lines record per cell in BENCH_pivot_kernel.json.
//
// This is a plain main (not google-benchmark): each cell is a handful of
// end-to-end SolvePsi calls, the quantity of interest being the
// dense-vs-sparse and bigint-vs-scalar wall-time ratios.
//
// Usage: bench_pivot_kernel [--threads=N] [--smoke] [--out=FILE]
//   --threads=N  restrict the sparse-kernel thread sweep to just N
//   --smoke      tiny workload for CI

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_json.h"
#include "expansion/expansion.h"
#include "frontend/parser.h"
#include "solver/solve.h"
#include "workloads/generators.h"

namespace car {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Everything SolvePsi computes that the exactness contract promises is
/// kernel- and thread-independent, pivot trajectory included.
bool SameSolution(const PsiSolution& a, const PsiSolution& b) {
  return a.cc_active == b.cc_active && a.ca_active == b.ca_active &&
         a.cr_active == b.cr_active &&
         a.class_satisfiable == b.class_satisfiable &&
         a.certificate.cc_count == b.certificate.cc_count &&
         a.certificate.ca_count == b.certificate.ca_count &&
         a.certificate.cr_count == b.certificate.cr_count &&
         a.fixpoint_rounds == b.fixpoint_rounds &&
         a.lp_solves == b.lp_solves && a.total_pivots == b.total_pivots;
}

/// Solves with the given kernel/threads `reps` times; returns the last
/// solution and the best wall time (min over reps smooths scheduler
/// noise in the tiny smoke cells).
struct TimedSolve {
  PsiSolution solution;
  double best_ms = 0;
  bool ok = false;
};
TimedSolve RunCell(const Expansion& expansion, SimplexKernel kernel,
                   int threads, int reps) {
  TimedSolve timed;
  for (int rep = 0; rep < reps; ++rep) {
    PsiSolverOptions options;
    options.kernel = kernel;
    options.num_threads = threads;
    auto start = std::chrono::steady_clock::now();
    auto solution = SolvePsi(expansion, options);
    double ms = MillisSince(start);
    if (!solution.ok()) {
      std::fprintf(stderr, "SolvePsi(%s): %s\n",
                   SimplexKernelToString(kernel),
                   solution.status().ToString().c_str());
      return timed;
    }
    if (rep == 0 || ms < timed.best_ms) timed.best_ms = ms;
    timed.solution = std::move(solution.value());
  }
  timed.ok = true;
  return timed;
}

/// The first `num_classes` class blocks of dense_blowup.car: a dense
/// one-cluster schema whose expansion (not its disequation system) is
/// the blowup, clipped to an expandable size. Returns an empty string if
/// the example file is unavailable.
std::string TruncatedDenseBlowup(int num_classes) {
#ifdef CAR_EXAMPLES_DIR
  std::ifstream file(std::string(CAR_EXAMPLES_DIR) + "/dense_blowup.car");
  if (!file) return "";
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::string text = buffer.str();
  size_t position = 0;
  for (int i = 0; i < num_classes; ++i) {
    position = text.find("endclass", position);
    if (position == std::string::npos) return text;
    position += std::strlen("endclass");
  }
  return text.substr(0, position) + "\n";
#else
  (void)num_classes;
  return "";
#endif
}

int Main(int argc, char** argv) {
  int threads_override = 0;
  bool smoke = false;
  std::string out_path = "BENCH_pivot_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_override = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const std::vector<int> thread_sweep =
      threads_override > 0 ? std::vector<int>{threads_override}
                           : std::vector<int>{1, 2, 8};
  const int reps = smoke ? 3 : 2;

  // Chain schemas are the LP-heavy regime (Ψ_S rows grow with the chain
  // while each row touches a constant number of unknowns — high
  // sparsity); clustered schemas add block structure; the dense_blowup
  // prefix is the expansion-heavy extreme whose Ψ system is nearly
  // empty (fill and promotions should both be ~0 there).
  struct Cell {
    std::string name;
    enum { kChain, kClustered, kDenseBlowup } family;
    ChainParams chain;
    ClusteredParams clustered;
    int blowup_classes = 0;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells.push_back({"chain-10x3", Cell::kChain, {10, 3}, {}, 0});
    cells.push_back(
        {"clustered-2x3", Cell::kClustered, {}, {2, 3, 2, false}, 0});
    cells.push_back({"dense-blowup-8", Cell::kDenseBlowup, {}, {}, 8});
  } else {
    cells.push_back({"chain-16x3", Cell::kChain, {16, 3}, {}, 0});
    cells.push_back({"chain-24x3", Cell::kChain, {24, 3}, {}, 0});
    cells.push_back({"chain-32x4", Cell::kChain, {32, 4}, {}, 0});
    cells.push_back(
        {"clustered-4x4", Cell::kClustered, {}, {4, 4, 2, false}, 0});
    cells.push_back(
        {"clustered-6x4", Cell::kClustered, {}, {6, 4, 2, false}, 0});
    cells.push_back({"dense-blowup-12", Cell::kDenseBlowup, {}, {}, 12});
  }

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-N: pivot kernels on the Psi LP phase (%s)\n\n",
              smoke ? "smoke" : "full");
  std::printf("| schema | dense-rational (ms) | dense-scalar (ms) | "
              "sparse-scalar (ms) | total | sparsity | scalar | fill | "
              "promotions |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");

  bool all_identical = true;
  for (const Cell& cell : cells) {
    // The expansion borrows the schema, so the schema must outlive it.
    Schema schema;
    if (cell.family == Cell::kDenseBlowup) {
      std::string text = TruncatedDenseBlowup(cell.blowup_classes);
      if (text.empty()) {
        std::fprintf(stderr, "skipping %s: example file unavailable\n",
                     cell.name.c_str());
        continue;
      }
      auto parsed = ParseSchema(text);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s: %s\n", cell.name.c_str(),
                     parsed.status().ToString().c_str());
        return 1;
      }
      schema = std::move(parsed.value());
    } else if (cell.family == Cell::kChain) {
      schema = GenerateChainSchema(cell.chain);
    } else {
      Rng rng(11);
      schema = GenerateClusteredSchema(&rng, cell.clustered);
    }
    auto built = BuildExpansion(schema);
    if (!built.ok()) {
      std::fprintf(stderr, "%s: %s\n", cell.name.c_str(),
                   built.status().ToString().c_str());
      return 1;
    }
    Expansion expansion = std::move(built.value());

    TimedSolve dense_rational =
        RunCell(expansion, SimplexKernel::kDenseRational, 1, reps);
    TimedSolve dense_scalar =
        RunCell(expansion, SimplexKernel::kDenseScalar, 1, reps);
    if (!dense_rational.ok || !dense_scalar.ok) return 1;

    // The production kernel, swept over thread counts: certificate
    // post-processing parallelizes, the answer must not change. Stats
    // come from the first sweep entry; the reported time is the best
    // across the sweep (the LP itself is sequential either way).
    TimedSolve sparse;
    bool identical =
        SameSolution(dense_rational.solution, dense_scalar.solution);
    for (size_t t = 0; t < thread_sweep.size(); ++t) {
      TimedSolve run = RunCell(expansion, SimplexKernel::kSparseScalar,
                               thread_sweep[t], reps);
      if (!run.ok) return 1;
      identical =
          identical && SameSolution(dense_rational.solution, run.solution);
      if (t == 0) {
        sparse = std::move(run);
      } else {
        sparse.best_ms = std::min(sparse.best_ms, run.best_ms);
      }
    }
    all_identical = all_identical && identical;

    const PsiSolution& stats = sparse.solution;
    double total_speedup =
        sparse.best_ms > 0 ? dense_rational.best_ms / sparse.best_ms : 0.0;
    double sparsity_speedup =
        sparse.best_ms > 0 ? dense_scalar.best_ms / sparse.best_ms : 0.0;
    double scalar_speedup = dense_scalar.best_ms > 0
                                ? dense_rational.best_ms / dense_scalar.best_ms
                                : 0.0;
    double fill = stats.peak_tableau_cells > 0
                      ? static_cast<double>(stats.peak_tableau_nonzeros) /
                            static_cast<double>(stats.peak_tableau_cells)
                      : 0.0;
    std::printf(
        "| %s | %.2f | %.2f | %.2f | %.2fx | %.2fx | %.2fx | %.3f | %llu "
        "|%s\n",
        cell.name.c_str(), dense_rational.best_ms, dense_scalar.best_ms,
        sparse.best_ms, total_speedup, sparsity_speedup, scalar_speedup,
        fill, static_cast<unsigned long long>(stats.scalar_promotions),
        identical ? "" : "  ANSWERS DIFFER (bug!)");
    std::fflush(stdout);

    bench::JsonRecord record;
    record.Add("bench", "pivot_kernel")
        .Add("schema", cell.name)
        .Add("threads_swept", static_cast<int>(thread_sweep.size()))
        .Add("smoke", smoke)
        .Add("dense_rational_ms", dense_rational.best_ms)
        .Add("dense_scalar_ms", dense_scalar.best_ms)
        .Add("sparse_ms", sparse.best_ms)
        .Add("speedup_total", total_speedup)
        .Add("speedup_sparsity", sparsity_speedup)
        .Add("speedup_scalar", scalar_speedup)
        .Add("answers_identical", identical)
        .Add("lp_solves", static_cast<uint64_t>(stats.lp_solves))
        .Add("pivots", static_cast<uint64_t>(stats.total_pivots))
        .Add("lp_variables", static_cast<uint64_t>(stats.largest_lp_variables))
        .Add("lp_constraints",
             static_cast<uint64_t>(stats.largest_lp_constraints))
        .Add("scalar_promotions", stats.scalar_promotions)
        .Add("peak_tableau_nonzeros", stats.peak_tableau_nonzeros)
        .Add("peak_tableau_cells", stats.peak_tableau_cells)
        .Add("fill", fill);
    out.Write(record);
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: kernels returned different solutions\n");
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
