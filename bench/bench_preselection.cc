// EXP-F (Section 4.3, Theorem 4.6): the preselection heuristic —
// disjointness/inclusion tables plus the connectivity graph G_S — beats
// the trivial enumerate-everything method.
//
// Workload: clustered schemas (k clusters of size s). The exhaustive
// baseline visits 2^(k*s) subsets; preselection with clusters visits
// about k * 2^s. The crossover is immediate and widens exponentially.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

Schema Workload(int clusters, int cluster_size) {
  Rng rng(static_cast<uint64_t>(clusters) * 1000 + cluster_size);
  ClusteredParams params;
  params.num_clusters = clusters;
  params.cluster_size = cluster_size;
  return GenerateClusteredSchema(&rng, params);
}

void BM_Preselection_ExhaustiveBaseline(benchmark::State& state) {
  Schema schema = Workload(static_cast<int>(state.range(0)), 4);
  ExpansionOptions options;
  options.strategy = ExpansionStrategy::kExhaustive;
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema, options);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    visited = expansion->subsets_visited;
  }
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Preselection_ExhaustiveBaseline)
    ->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Preselection_TablesNoClusters(benchmark::State& state) {
  Schema schema = Workload(static_cast<int>(state.range(0)), 4);
  ExpansionOptions options;
  options.strategy = ExpansionStrategy::kPruned;
  options.use_clusters = false;
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema, options);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    visited = expansion->subsets_visited;
  }
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Preselection_TablesNoClusters)
    ->DenseRange(1, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Preselection_TablesAndClusters(benchmark::State& state) {
  Schema schema = Workload(static_cast<int>(state.range(0)), 4);
  ExpansionOptions options;
  options.strategy = ExpansionStrategy::kPruned;
  options.use_clusters = true;
  size_t visited = 0;
  size_t compounds = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema, options);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    visited = expansion->subsets_visited;
    compounds = expansion->compound_classes.size();
  }
  state.counters["subsets_visited"] = static_cast<double>(visited);
  state.counters["compound_classes"] = static_cast<double>(compounds);
}
BENCHMARK(BM_Preselection_TablesAndClusters)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMillisecond);

// Building the tables themselves stays cheap (criterion (a) with
// polynomial propagation).
void BM_Preselection_TableConstruction(benchmark::State& state) {
  Schema schema = Workload(static_cast<int>(state.range(0)), 4);
  size_t pairs = 0;
  for (auto _ : state) {
    PairTables tables = BuildPairTables(schema);
    benchmark::DoNotOptimize(tables);
    pairs = tables.num_inclusion_pairs() + tables.num_disjoint_pairs();
  }
  state.counters["table_pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_Preselection_TableConstruction)
    ->DenseRange(1, 5, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
