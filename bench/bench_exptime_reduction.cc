// EXP-C (Theorem 4.1): hardness in the general case. The paper proves
// EXPTIME-hardness by encoding Turing-machine tableaux; the boolean core
// of that encoding — class-formulae as arbitrary CNF — already embeds
// propositional satisfiability, which this benchmark exercises directly:
// random 3-CNF near the phase transition and pigeonhole formulas, encoded
// via reductions/sat_reduction.h. Time grows exponentially with the
// variable count (each variable doubles the candidate compound classes).

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

CnfFormula RandomCnf(Rng* rng, int variables, int clauses) {
  CnfFormula formula;
  formula.num_variables = variables;
  for (int i = 0; i < clauses; ++i) {
    std::vector<std::pair<int, bool>> clause;
    for (int j = 0; j < 3; ++j) {
      clause.emplace_back(rng->NextInt(0, variables - 1),
                          rng->NextChance(1, 2));
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

CnfFormula Pigeonhole(int holes) {
  CnfFormula formula;
  const int pigeons = holes + 1;
  formula.num_variables = pigeons * holes;
  auto variable = [holes](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<std::pair<int, bool>> clause;
    for (int h = 0; h < holes; ++h) clause.emplace_back(variable(p, h), false);
    formula.clauses.push_back(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        formula.clauses.push_back(
            {{variable(p1, h), true}, {variable(p2, h), true}});
      }
    }
  }
  return formula;
}

void BM_SatReduction_Random3Cnf(benchmark::State& state) {
  const int variables = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(variables) * 7919);
  // ~4.2 clauses per variable: near the 3-SAT phase transition.
  CnfFormula formula = RandomCnf(&rng, variables, (variables * 42) / 10);
  auto encoding = EncodeSatAsSchema(formula).value();
  bool satisfiable = false;
  for (auto _ : state) {
    Reasoner reasoner(&encoding.schema);
    auto answer = reasoner.IsClassSatisfiable(encoding.query_class);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      break;
    }
    satisfiable = answer.value();
  }
  state.counters["satisfiable"] = satisfiable ? 1 : 0;
}
BENCHMARK(BM_SatReduction_Random3Cnf)
    ->DenseRange(4, 16, 2)
    ->Unit(benchmark::kMillisecond);

void BM_SatReduction_Pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  auto encoding = EncodeSatAsSchema(Pigeonhole(holes)).value();
  bool satisfiable = true;
  for (auto _ : state) {
    Reasoner reasoner(&encoding.schema);
    satisfiable =
        reasoner.IsClassSatisfiable(encoding.query_class).value();
  }
  // Pigeonhole formulas are all unsatisfiable.
  state.counters["satisfiable"] = satisfiable ? 1 : 0;
}
BENCHMARK(BM_SatReduction_Pigeonhole)
    ->DenseRange(2, 4, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
