// EXP-I (constructive side of Theorem 3.3): from an acceptable integer
// solution of Ψ_S to an explicit verified finite model. Measures
// synthesis cost and reports the universe size the certificate induces
// for chain schemas of growing length and fanout.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

void BM_Synthesis_ChainLength(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  params.fanout = 3;
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();
  auto solution = SolvePsi(expansion).value();
  int universe = 0;
  int64_t scale = 0;
  for (auto _ : state) {
    auto result = SynthesizeModel(expansion, solution);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    universe = result->model.universe_size();
    scale = result->scale;
  }
  state.counters["universe"] = universe;
  state.counters["scale"] = static_cast<double>(scale);
}
BENCHMARK(BM_Synthesis_ChainLength)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// Verification alone (the independent model check that synthesis runs as
// its last step) on the synthesized models.
void BM_Synthesis_VerificationOnly(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();
  auto solution = SolvePsi(expansion).value();
  auto result = SynthesizeModel(expansion, solution).value();
  bool is_model = false;
  for (auto _ : state) {
    is_model = IsModel(schema, result.model);
    benchmark::DoNotOptimize(is_model);
  }
  state.counters["is_model"] = is_model ? 1 : 0;
  state.counters["facts"] = static_cast<double>(result.model.TotalFacts());
}
BENCHMARK(BM_Synthesis_VerificationOnly)
    ->Arg(4)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
