// EXP-S driver: cold rebuild vs snapshot restore of the warm state.
//
// Workload: three generated schema families (chain, clustered,
// hierarchy). For each schema a cold IncrementalSession pays the base
// expansion + Ψ solve and answers a deterministic query batch; the warm
// state is then serialized through the persistent snapshot codec
// (persist/snapshot_format.h) and restored into a brand-new session,
// which answers the identical batch. The restored session must produce
// bit-identical answers with ZERO base builds (base_restores == 1,
// base_builds == 0) — a single differing answer or a sneaky cold
// rebuild fails the run.
//
// The quantities of interest are the cold wall-clock (build + answer
// batch), the restore wall-clock (deserialize + answer the same batch),
// the serialize cost, and the snapshot size. One JSON-lines record per
// schema lands in BENCH_snapshot.json; the CI smoke gate requires
// identical answers and restore <= cold.
//
// Usage: bench_snapshot [--threads=N] [--smoke] [--out=FILE]
//   --smoke  CI workload: smaller schemas, 24-query batches

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "bench_json.h"
#include "reasoner/incremental.h"
#include "reasoner/query_text.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

/// Deterministic pool of textual queries drawn from the schema's own
/// names, mixing every query kind the format supports (same shape as
/// the bench_serve traffic pool).
std::vector<std::string> MakeQueryPool(const Schema& schema, Rng* rng,
                                       int count) {
  std::vector<std::string> pool;
  auto class_name = [&](int) {
    return schema.ClassName(
        static_cast<ClassId>(rng->NextBelow(schema.num_classes())));
  };
  while (static_cast<int>(pool.size()) < count) {
    std::string line;
    switch (rng->NextBelow(schema.num_relations() > 0 ? 6 : 4)) {
      case 0:
        line = StrCat("isa ", class_name(0), " ", class_name(1));
        break;
      case 1:
        line = StrCat("disjoint ", class_name(0), " ", class_name(1));
        break;
      case 2:
      case 3: {
        if (schema.num_attributes() == 0) continue;
        const std::string& attribute = schema.AttributeName(
            static_cast<AttributeId>(rng->NextBelow(schema.num_attributes())));
        std::string term = rng->NextBelow(4) == 0
                               ? StrCat("inv:", attribute)
                               : attribute;
        if (rng->NextBelow(2) == 0) {
          line = StrCat("min-card ", class_name(0), " ", term, " ",
                        1 + rng->NextBelow(3));
        } else {
          uint64_t bound = 1 + rng->NextBelow(3);
          line = StrCat("max-card ", class_name(0), " ", term, " ",
                        rng->NextBelow(4) == 0 ? "inf"
                                               : std::to_string(bound));
        }
        break;
      }
      default: {
        RelationId relation = static_cast<RelationId>(
            rng->NextBelow(schema.num_relations()));
        const RelationDefinition* definition =
            schema.relation_definition(relation);
        const std::string& role = schema.RoleName(
            definition->roles[rng->NextBelow(definition->roles.size())]);
        const char* kind =
            rng->NextBelow(2) == 0 ? "min-part" : "max-part";
        line = StrCat(kind, " ", class_name(0), " ",
                      schema.RelationName(relation), " ", role, " ",
                      1 + rng->NextBelow(2));
        break;
      }
    }
    pool.push_back(std::move(line));
  }
  return pool;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Cell {
  std::string name;
  std::unique_ptr<Schema> schema;
};

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_snapshot.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int pool_size = smoke ? 24 : 64;

  std::vector<Cell> cells;
  {
    Rng rng(23);
    cells.push_back({"chain", std::make_unique<Schema>(
        GenerateChainSchema({smoke ? 6 : 12, 2}))});
    cells.push_back({"clustered", std::make_unique<Schema>(
        GenerateClusteredSchema(&rng, {2, 3, 2, false}))});
    cells.push_back({"hierarchy", std::make_unique<Schema>(
        GenerateHierarchy(&rng, {smoke ? 9 : 15, 1, 3}))});
  }

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-S: cold rebuild vs snapshot restore (threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| schema | queries | cold (ms) | save (ms) | restore (ms) "
              "| speedup | bytes |\n");
  std::printf("|---|---|---|---|---|---|---|\n");

  bool all_ok = true;
  for (Cell& cell : cells) {
    Rng rng(911);
    std::vector<std::string> pool =
        MakeQueryPool(*cell.schema, &rng, pool_size);
    std::vector<ImplicationQuery> queries;
    for (const std::string& line : pool) {
      auto query =
          ParseQueryTokens(*cell.schema, TokenizeQueryLine(line));
      if (!query.ok()) {
        std::fprintf(stderr, "query parse: %s\n",
                     query.status().ToString().c_str());
        return 1;
      }
      queries.push_back(std::move(query.value()));
    }

    ReasonerOptions options;
    options.num_threads = num_threads;

    // Cold: build the base (expansion + Ψ solve) and answer the batch.
    IncrementalSession cold(cell.schema.get(), options);
    auto cold_start = std::chrono::steady_clock::now();
    auto cold_answers = cold.RunImplicationBatch(queries);
    const double cold_ms = MillisSince(cold_start);
    if (!cold_answers.ok()) {
      std::fprintf(stderr, "cold batch: %s\n",
                   cold_answers.status().ToString().c_str());
      return 1;
    }

    // Serialize the warm state through the persistent codec.
    auto save_start = std::chrono::steady_clock::now();
    auto bytes = cold.Serialize();
    const double save_ms = MillisSince(save_start);
    if (!bytes.ok()) {
      std::fprintf(stderr, "serialize: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }

    // Restore: a brand-new session adopts the snapshot and answers the
    // identical batch. The memo carries over, so every query is a memo
    // hit; base_builds must stay zero.
    IncrementalSession restored(cell.schema.get(), options);
    auto restore_start = std::chrono::steady_clock::now();
    Status adopted = restored.Deserialize(bytes.value());
    if (!adopted.ok()) {
      std::fprintf(stderr, "deserialize: %s\n",
                   adopted.ToString().c_str());
      return 1;
    }
    auto restored_answers = restored.RunImplicationBatch(queries);
    const double restore_ms = MillisSince(restore_start);
    if (!restored_answers.ok()) {
      std::fprintf(stderr, "restored batch: %s\n",
                   restored_answers.status().ToString().c_str());
      return 1;
    }

    const IncrementalStats stats = restored.stats();
    const bool answers_identical =
        cold_answers.value() == restored_answers.value();
    const bool no_rebuild =
        stats.base_builds == 0 && stats.base_restores == 1;
    if (!answers_identical) {
      std::fprintf(stderr, "ANSWER MISMATCH on '%s'\n", cell.name.c_str());
    }
    if (!no_rebuild) {
      std::fprintf(stderr,
                   "'%s' restored session rebuilt cold (builds=%llu, "
                   "restores=%llu)\n",
                   cell.name.c_str(),
                   static_cast<unsigned long long>(stats.base_builds),
                   static_cast<unsigned long long>(stats.base_restores));
    }
    all_ok = all_ok && answers_identical && no_rebuild;

    const double speedup = restore_ms > 0 ? cold_ms / restore_ms : 0.0;
    std::printf("| %s | %zu | %.2f | %.2f | %.2f | %.2fx | %zu |\n",
                cell.name.c_str(), queries.size(), cold_ms, save_ms,
                restore_ms, speedup, bytes.value().size());

    bench::JsonRecord record;
    record.Add("bench", "snapshot")
        .Add("schema", cell.name)
        .Add("threads", num_threads)
        .Add("smoke", smoke)
        .Add("queries", static_cast<uint64_t>(queries.size()))
        .Add("cold_ms", cold_ms)
        .Add("save_ms", save_ms)
        .Add("restore_ms", restore_ms)
        .Add("speedup", speedup)
        .Add("snapshot_bytes", static_cast<uint64_t>(bytes.value().size()))
        .Add("answers_identical", answers_identical)
        .Add("base_builds", stats.base_builds)
        .Add("base_restores", stats.base_restores);
    out.Write(record);

    if (restore_ms > cold_ms) {
      std::fprintf(stderr, "FAIL: '%s' restore slower than cold rebuild\n",
                   cell.name.c_str());
      all_ok = false;
    }
  }

  std::printf("\nwrote %s\n", out_path.c_str());
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: restore not equivalent (or slower) — see "
                         "messages above\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
