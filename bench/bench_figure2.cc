// FIG1 / FIG2: end-to-end reasoning on the paper's two example schemas.
// Regenerates the paper's qualitative claims about the running example:
// every class of the enriched schema (Figure 2) is satisfiable, and the
// implication queries of Section 2.1 all come out as discussed there.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/car.h"

namespace car {
namespace {

Schema BuildFigure1() {
  SchemaBuilder builder;
  builder.DeclareClass("String");
  builder.BeginClass("Person")
      .Attribute("name", 0, SchemaBuilder::kUnbounded, {{"String"}})
      .Attribute("date_of_birth", 0, SchemaBuilder::kUnbounded, {{"String"}})
      .EndClass();
  builder.BeginClass("Professor")
      .Isa({{"Person"}})
      .Attribute("teaches", 0, SchemaBuilder::kUnbounded, {{"Course"}})
      .EndClass();
  builder.BeginClass("Student")
      .Isa({{"Person"}})
      .Attribute("student_id", 0, SchemaBuilder::kUnbounded, {{"String"}})
      .EndClass();
  builder.BeginClass("Grad_Student").Isa({{"Student"}}).EndClass();
  builder.BeginClass("Course")
      .Attribute("taught_by", 0, SchemaBuilder::kUnbounded, {{"Professor"}})
      .EndClass();
  builder.BeginClass("Adv_Course").Isa({{"Course"}}).EndClass();
  builder.BeginClass("Enrollment")
      .Attribute("enrolls", 0, SchemaBuilder::kUnbounded, {{"Student"}})
      .Attribute("enrolled_in", 0, SchemaBuilder::kUnbounded, {{"Course"}})
      .EndClass();
  return std::move(builder).Build().value();
}

Schema BuildFigure2() {
  SchemaBuilder builder;
  builder.DeclareClass("String");
  builder.BeginClass("Person")
      .Attribute("name", 1, 1, {{"String"}})
      .Attribute("date_of_birth", 1, 1, {{"String"}})
      .EndClass();
  builder.BeginClass("Professor")
      .Isa({{"Person"}})
      .InverseAttribute("taught_by", 1, 2, {{"Course"}})
      .EndClass();
  builder.BeginClass("Student")
      .Isa({{"Person"}, {"!Professor"}})
      .Attribute("student_id", 1, 1, {{"String"}})
      .Participates("Enrollment", "enrolls", 1, 6)
      .EndClass();
  builder.BeginClass("Grad_Student")
      .Isa({{"Student"}})
      .InverseAttribute("taught_by", 0, 1, {{"Course"}})
      .Participates("Enrollment", "enrolls", 2, 3)
      .EndClass();
  builder.BeginClass("Course")
      .Attribute("taught_by", 1, 1, {{"Professor", "Grad_Student"}})
      .Participates("Enrollment", "enrolled_in", 5, 100)
      .EndClass();
  builder.BeginClass("Adv_Course")
      .Isa({{"Course"}})
      .Attribute("taught_by", 1, 1, {{"Professor"}})
      .Participates("Enrollment", "enrolled_in", 5, 20)
      .EndClass();
  builder.BeginRelation("Enrollment", {"enrolled_in", "enrolls"})
      .Constraint({{"enrolled_in", {{"Course"}}}})
      .Constraint({{"enrolls", {{"Student"}}}})
      .Constraint({{"enrolled_in", {{"!Adv_Course"}}},
                   {"enrolls", {{"Grad_Student"}}}})
      .EndRelation();
  builder.BeginRelation("Exam", {"of", "by", "in"})
      .Constraint({{"of", {{"Student"}}}})
      .Constraint({{"by", {{"Professor"}}}})
      .Constraint({{"in", {{"Course"}}}})
      .EndRelation();
  return std::move(builder).Build().value();
}

void BM_Figure1_Satisfiability(benchmark::State& state) {
  Schema schema = BuildFigure1();
  size_t unsat = 0;
  size_t compounds = 0;
  for (auto _ : state) {
    Reasoner reasoner(&schema);
    auto report = reasoner.CheckSchema();
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    unsat = report->unsatisfiable_classes.size();
    compounds = report->num_compound_classes;
  }
  state.counters["unsatisfiable_classes"] = static_cast<double>(unsat);
  state.counters["compound_classes"] = static_cast<double>(compounds);
}
BENCHMARK(BM_Figure1_Satisfiability)->Unit(benchmark::kMillisecond);

void BM_Figure2_Satisfiability(benchmark::State& state) {
  Schema schema = BuildFigure2();
  size_t unsat = 0;
  size_t compounds = 0;
  for (auto _ : state) {
    Reasoner reasoner(&schema);
    auto report = reasoner.CheckSchema();
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    unsat = report->unsatisfiable_classes.size();
    compounds = report->num_compound_classes;
  }
  state.counters["unsatisfiable_classes"] = static_cast<double>(unsat);
  state.counters["compound_classes"] = static_cast<double>(compounds);
}
BENCHMARK(BM_Figure2_Satisfiability)->Unit(benchmark::kMillisecond);

void BM_Figure2_ImplicationQueries(benchmark::State& state) {
  Schema schema = BuildFigure2();
  ClassId grad = schema.LookupClass("Grad_Student");
  ClassId professor = schema.LookupClass("Professor");
  ClassId person = schema.LookupClass("Person");
  AttributeId taught_by = schema.LookupAttribute("taught_by");
  int implied = 0;
  for (auto _ : state) {
    Reasoner reasoner(&schema);
    implied = 0;
    implied += reasoner.ImpliesIsa(grad, ClassFormula::OfClass(person))
                   .value();
    implied += reasoner.ImpliesDisjoint(grad, professor).value();
    implied += reasoner
                   .ImpliesMaxCardinality(
                       professor, AttributeTerm::Inverse(taught_by), 2)
                   .value();
    implied += reasoner
                   .ImpliesMinParticipation(
                       grad, schema.LookupRelation("Enrollment"),
                       schema.LookupRole("enrolls"), 2)
                   .value();
  }
  // All four entailments of Section 2.1 hold.
  state.counters["implied_of_4"] = implied;
}
BENCHMARK(BM_Figure2_ImplicationQueries)->Unit(benchmark::kMillisecond);

// The batched form of the Section 2.1 queries plus an isa/disjointness
// sweep over all class pairs, parameterized by worker threads. Every
// query is an independent auxiliary-schema check, so the batch
// parallelizes without changing any answer.
void BM_Figure2_ImplicationBatch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Schema schema = BuildFigure2();
  std::vector<ImplicationQuery> queries;
  for (ClassId a = 0; a < schema.num_classes(); ++a) {
    for (ClassId b = 0; b < schema.num_classes(); ++b) {
      if (a == b) continue;
      ImplicationQuery isa;
      isa.kind = ImplicationQuery::Kind::kIsa;
      isa.class_id = a;
      isa.formula = ClassFormula::OfClass(b);
      queries.push_back(std::move(isa));
      if (a < b) {
        ImplicationQuery disjoint;
        disjoint.kind = ImplicationQuery::Kind::kDisjoint;
        disjoint.class_id = a;
        disjoint.other = b;
        queries.push_back(std::move(disjoint));
      }
    }
  }
  size_t implied = 0;
  for (auto _ : state) {
    ReasonerOptions options;
    options.num_threads = threads;
    Reasoner reasoner(&schema, options);
    auto answers = reasoner.RunImplicationBatch(queries);
    if (!answers.ok()) {
      state.SkipWithError(answers.status().ToString().c_str());
      break;
    }
    implied = 0;
    for (bool answer : *answers) implied += answer;
  }
  state.counters["queries"] = static_cast<double>(queries.size());
  state.counters["implied"] = static_cast<double>(implied);
}
BENCHMARK(BM_Figure2_ImplicationBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Figure2_ModelSynthesis(benchmark::State& state) {
  Schema schema = BuildFigure2();
  auto expansion = BuildExpansion(schema).value();
  auto solution = SolvePsi(expansion).value();
  int universe = 0;
  for (auto _ : state) {
    auto model = SynthesizeModel(expansion, solution);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    universe = model->model.universe_size();
  }
  state.counters["universe"] = universe;
}
BENCHMARK(BM_Figure2_ModelSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
