// EXP-R driver: traffic replay against the car_serve serving stack.
//
// Workload: four tenants (chain, clustered and hierarchy schemas, each
// with an A/B mutation variant) driven through a deterministic
// open/query/mutate trace against an in-process serve::Server. Every
// request makes the full wire round trip — encode, decode, dispatch,
// encode, decode — so the measured latency includes the codec. Every
// query batch is cross-checked against a from-scratch offline reasoner
// (incremental machinery disabled) on the same schema variant: a single
// differing or degraded answer fails the run.
//
// The quantities of interest are the request-latency percentiles
// (p50/p95/p99) split by warm vs cold query batches — a cold batch is
// the first one after a tenant was (re)built cold, and pays the base
// expansion + Ψ snapshot; warm batches ride the resident session — plus
// the cache hit rates. One JSON-lines record per scope lands in
// BENCH_serve.json; the CI smoke gate requires identical answers and
// warm p50 <= cold p50.
//
// Usage: bench_serve [--threads=N] [--smoke] [--out=FILE]
//   --smoke  CI workload: 4 tenants, 8 rounds x 8 queries (256 queries)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "base/rng.h"
#include "base/strings.h"
#include "bench_json.h"
#include "frontend/printer.h"
#include "reasoner/query_text.h"
#include "reasoner/reasoner.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workloads/generators.h"

namespace car {
namespace {

/// One mutation variant of a tenant: the generated schema, its canonical
/// text (what the trace ships to the server), a pool of textual queries,
/// and the lazily-filled offline answer key.
struct Variant {
  std::unique_ptr<Schema> schema;
  std::string text;
  std::vector<std::string> query_pool;
  std::map<std::string, bool> offline_answers;
};

struct Tenant {
  std::string name;
  Variant variants[2];
  int active_variant = 0;
  /// The next query batch pays the cold base build.
  bool next_batch_cold = true;
};

/// Deterministic pool of textual queries drawn from the schema's own
/// names, mixing every query kind the format supports.
std::vector<std::string> MakeQueryPool(const Schema& schema, Rng* rng,
                                       int count) {
  std::vector<std::string> pool;
  auto class_name = [&](int) {
    return schema.ClassName(
        static_cast<ClassId>(rng->NextBelow(schema.num_classes())));
  };
  while (static_cast<int>(pool.size()) < count) {
    std::string line;
    switch (rng->NextBelow(schema.num_relations() > 0 ? 6 : 4)) {
      case 0:
        line = StrCat("isa ", class_name(0), " ", class_name(1));
        break;
      case 1:
        line = StrCat("disjoint ", class_name(0), " ", class_name(1));
        break;
      case 2:
      case 3: {
        if (schema.num_attributes() == 0) continue;
        const std::string& attribute = schema.AttributeName(
            static_cast<AttributeId>(rng->NextBelow(schema.num_attributes())));
        std::string term = rng->NextBelow(4) == 0
                               ? StrCat("inv:", attribute)
                               : attribute;
        if (rng->NextBelow(2) == 0) {
          line = StrCat("min-card ", class_name(0), " ", term, " ",
                        1 + rng->NextBelow(3));
        } else {
          uint64_t bound = 1 + rng->NextBelow(3);
          line = StrCat("max-card ", class_name(0), " ", term, " ",
                        rng->NextBelow(4) == 0 ? "inf"
                                               : std::to_string(bound));
        }
        break;
      }
      default: {
        RelationId relation = static_cast<RelationId>(
            rng->NextBelow(schema.num_relations()));
        const RelationDefinition* definition =
            schema.relation_definition(relation);
        const std::string& role = schema.RoleName(
            definition->roles[rng->NextBelow(definition->roles.size())]);
        const char* kind =
            rng->NextBelow(2) == 0 ? "min-part" : "max-part";
        line = StrCat(kind, " ", class_name(0), " ",
                      schema.RelationName(relation), " ", role, " ",
                      1 + rng->NextBelow(2));
        break;
      }
    }
    pool.push_back(std::move(line));
  }
  return pool;
}

Variant MakeVariant(Schema schema, uint64_t pool_seed, int pool_size) {
  Variant variant;
  variant.schema = std::make_unique<Schema>(std::move(schema));
  variant.text = PrintSchema(*variant.schema);
  Rng rng(pool_seed);
  variant.query_pool = MakeQueryPool(*variant.schema, &rng, pool_size);
  return variant;
}

/// Offline ground truth: a from-scratch reasoner (no incremental
/// machinery, no governor) answers each distinct query line once.
Result<bool> OfflineAnswer(Variant* variant, const std::string& line) {
  auto memo = variant->offline_answers.find(line);
  if (memo != variant->offline_answers.end()) return memo->second;
  std::vector<std::string> tokens = TokenizeQueryLine(line);
  CAR_ASSIGN_OR_RETURN(ImplicationQuery query,
                       ParseQueryTokens(*variant->schema, tokens));
  Reasoner scratch(variant->schema.get());
  CAR_ASSIGN_OR_RETURN(bool answer, scratch.RunImplicationQuery(query));
  variant->offline_answers[line] = answer;
  return answer;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p / 100.0 * values.size());
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

/// Ships one request over the full codec path and times the round trip.
/// Any codec asymmetry shows up as a decode failure here.
serve::Response RoundTrip(serve::Server* server,
                          const serve::Request& request,
                          double* latency_ms, bool* wire_ok) {
  auto start = std::chrono::steady_clock::now();
  auto decoded_request =
      serve::DecodeRequest(serve::EncodeRequest(request));
  if (!decoded_request.ok()) {
    *wire_ok = false;
    return serve::ErrorResponse{decoded_request.status().code(),
                                decoded_request.status().message()};
  }
  serve::Response response = server->Handle(decoded_request.value());
  auto decoded_response =
      serve::DecodeResponse(serve::EncodeResponse(response));
  *latency_ms = MillisSince(start);
  if (!decoded_response.ok() || decoded_response.value() != response) {
    *wire_ok = false;
    return response;
  }
  return decoded_response.value();
}

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  const int rounds = smoke ? 8 : 16;
  const int batch_size = smoke ? 8 : 16;
  const int pool_size = smoke ? 24 : 48;

  // Four tenants across three schema families; the B variant of each is
  // a structurally different schema, so a mutation really rebuilds.
  std::vector<Tenant> tenants;
  {
    Rng rng(17);
    Tenant chain;
    chain.name = "t-chain";
    chain.variants[0] = MakeVariant(
        GenerateChainSchema({smoke ? 6 : 12, 2}), 101, pool_size);
    chain.variants[1] = MakeVariant(
        GenerateChainSchema({smoke ? 7 : 14, 3}), 102, pool_size);
    tenants.push_back(std::move(chain));

    Tenant clustered;
    clustered.name = "t-clustered";
    clustered.variants[0] = MakeVariant(
        GenerateClusteredSchema(&rng, {2, 3, 2, false}), 201, pool_size);
    clustered.variants[1] = MakeVariant(
        GenerateClusteredSchema(&rng, {3, 3, 2, false}), 202, pool_size);
    tenants.push_back(std::move(clustered));

    Tenant hierarchy;
    hierarchy.name = "t-hierarchy";
    hierarchy.variants[0] = MakeVariant(
        GenerateHierarchy(&rng, {smoke ? 9 : 15, 1, 3}), 301, pool_size);
    hierarchy.variants[1] = MakeVariant(
        GenerateHierarchy(&rng, {smoke ? 10 : 18, 2, 3}), 302, pool_size);
    tenants.push_back(std::move(hierarchy));

    Tenant chain2;
    chain2.name = "t-chain-wide";
    chain2.variants[0] = MakeVariant(
        GenerateChainSchema({smoke ? 5 : 10, 4}), 401, pool_size);
    chain2.variants[1] = MakeVariant(
        GenerateChainSchema({smoke ? 6 : 11, 4}), 402, pool_size);
    tenants.push_back(std::move(chain2));
  }

  serve::ServerOptions server_options;
  server_options.num_threads = num_threads;
  serve::Server server(server_options);

  std::vector<double> open_ms;
  std::vector<double> query_cold_ms;
  std::vector<double> query_warm_ms;
  uint64_t total_queries = 0;
  uint64_t wrong_answers = 0;
  uint64_t degraded_batches = 0;
  bool wire_ok = true;

  auto open_tenant = [&](Tenant* tenant, int variant,
                         bool expect_warm) -> bool {
    serve::OpenRequest open;
    open.name = tenant->name;
    open.schema_text = tenant->variants[variant].text;
    double latency = 0.0;
    serve::Response response =
        RoundTrip(&server, open, &latency, &wire_ok);
    auto* opened = std::get_if<serve::OpenedResponse>(&response);
    if (opened == nullptr) {
      std::fprintf(stderr, "open '%s' failed\n", tenant->name.c_str());
      return false;
    }
    open_ms.push_back(latency);
    if (opened->warm != expect_warm) {
      std::fprintf(stderr, "open '%s': warm=%d, expected %d\n",
                   tenant->name.c_str(), opened->warm ? 1 : 0,
                   expect_warm ? 1 : 0);
      return false;
    }
    tenant->active_variant = variant;
    if (!opened->warm) tenant->next_batch_cold = true;
    return true;
  };

  for (int round = 0; round < rounds; ++round) {
    for (Tenant& tenant : tenants) {
      // Trace shape per tenant and round: open cold once, re-open warm
      // mid-trace, toggle the variant (a cold mutation) at the half-way
      // and three-quarter marks.
      if (round == 0) {
        if (!open_tenant(&tenant, 0, /*expect_warm=*/false)) return 1;
      } else if (round == rounds / 4) {
        if (!open_tenant(&tenant, tenant.active_variant,
                         /*expect_warm=*/true)) {
          return 1;
        }
      } else if (round == rounds / 2 || round == (3 * rounds) / 4) {
        serve::MutateRequest mutate;
        mutate.name = tenant.name;
        int next = 1 - tenant.active_variant;
        mutate.schema_text = tenant.variants[next].text;
        double latency = 0.0;
        serve::Response response =
            RoundTrip(&server, mutate, &latency, &wire_ok);
        auto* opened = std::get_if<serve::OpenedResponse>(&response);
        if (opened == nullptr || opened->warm) {
          std::fprintf(stderr, "mutate '%s' did not rebuild cold\n",
                       tenant.name.c_str());
          return 1;
        }
        open_ms.push_back(latency);
        tenant.active_variant = next;
        tenant.next_batch_cold = true;
      }

      Variant& variant = tenant.variants[tenant.active_variant];
      serve::QueryRequest query;
      query.name = tenant.name;
      for (int i = 0; i < batch_size; ++i) {
        size_t pick = (static_cast<size_t>(round) * 7 +
                       static_cast<size_t>(i) * 3) %
                      variant.query_pool.size();
        query.queries.push_back(variant.query_pool[pick]);
      }

      double latency = 0.0;
      serve::Response response =
          RoundTrip(&server, query, &latency, &wire_ok);
      auto* answers = std::get_if<serve::AnswersResponse>(&response);
      if (answers == nullptr) {
        std::fprintf(stderr, "query '%s' failed\n", tenant.name.c_str());
        return 1;
      }
      if (answers->degraded) {
        ++degraded_batches;
        continue;
      }
      (tenant.next_batch_cold ? query_cold_ms : query_warm_ms)
          .push_back(latency);
      tenant.next_batch_cold = false;
      total_queries += query.queries.size();

      for (size_t i = 0; i < query.queries.size(); ++i) {
        auto expected = OfflineAnswer(&variant, query.queries[i]);
        if (!expected.ok()) {
          std::fprintf(stderr, "offline: %s\n",
                       expected.status().ToString().c_str());
          return 1;
        }
        if ((answers->answers[i] == 1) != expected.value()) {
          ++wrong_answers;
          std::fprintf(stderr, "ANSWER MISMATCH '%s' query '%s'\n",
                       tenant.name.c_str(), query.queries[i].c_str());
        }
      }
    }
  }

  serve::StatsResponse stats = server.StatsSnapshot();
  const double cold_p50 = Percentile(query_cold_ms, 50);
  const double warm_p50 = Percentile(query_warm_ms, 50);
  const bool answers_identical = wrong_answers == 0 && wire_ok;

  std::printf("EXP-R: car_serve traffic replay (threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| scope | count | p50 (ms) | p95 (ms) | p99 (ms) |\n");
  std::printf("|---|---|---|---|---|\n");
  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }
  struct Scope {
    const char* name;
    const std::vector<double>* values;
  };
  for (const Scope& scope :
       {Scope{"open", &open_ms}, Scope{"query_cold", &query_cold_ms},
        Scope{"query_warm", &query_warm_ms}}) {
    std::printf("| %s | %zu | %.2f | %.2f | %.2f |\n", scope.name,
                scope.values->size(), Percentile(*scope.values, 50),
                Percentile(*scope.values, 95),
                Percentile(*scope.values, 99));
    bench::JsonRecord record;
    record.Add("bench", "serve")
        .Add("scope", scope.name)
        .Add("threads", num_threads)
        .Add("smoke", smoke)
        .Add("count", static_cast<uint64_t>(scope.values->size()))
        .Add("p50_ms", Percentile(*scope.values, 50))
        .Add("p95_ms", Percentile(*scope.values, 95))
        .Add("p99_ms", Percentile(*scope.values, 99));
    out.Write(record);
  }

  const double hit_rate =
      stats.lookup_hits + stats.lookup_misses > 0
          ? static_cast<double>(stats.lookup_hits) /
                static_cast<double>(stats.lookup_hits +
                                    stats.lookup_misses)
          : 0.0;
  bench::JsonRecord summary;
  summary.Add("bench", "serve")
      .Add("scope", "summary")
      .Add("threads", num_threads)
      .Add("smoke", smoke)
      .Add("tenants", static_cast<uint64_t>(tenants.size()))
      .Add("queries", total_queries)
      .Add("answers_identical", answers_identical)
      .Add("degraded_batches", degraded_batches)
      .Add("warm_p50_ms", warm_p50)
      .Add("cold_p50_ms", cold_p50)
      .Add("warm_vs_cold", cold_p50 > 0 ? warm_p50 / cold_p50 : 0.0)
      .Add("opens", stats.opens)
      .Add("warm_opens", stats.warm_opens)
      .Add("replacements", stats.replacements)
      .Add("evictions", stats.evictions)
      .Add("lookup_hit_rate", hit_rate)
      .Add("sessions", stats.sessions)
      .Add("resident_bytes", stats.resident_bytes);
  out.Write(summary);

  std::printf("\n%llu queries over %zu tenants; warm p50 %.2f ms vs cold "
              "p50 %.2f ms; lookup hit rate %.2f; %llu wrong answer(s)\n",
              static_cast<unsigned long long>(total_queries),
              tenants.size(), warm_p50, cold_p50, hit_rate,
              static_cast<unsigned long long>(wrong_answers));
  std::printf("wrote %s\n", out_path.c_str());

  if (!answers_identical) {
    std::fprintf(stderr, "FAIL: served answers differ from offline (or "
                         "wire round trip broke)\n");
    return 1;
  }
  if (degraded_batches != 0) {
    std::fprintf(stderr, "FAIL: unexpected degraded batches\n");
    return 1;
  }
  if (!query_warm_ms.empty() && !query_cold_ms.empty() &&
      warm_p50 > cold_p50) {
    std::fprintf(stderr, "FAIL: warm p50 above cold p50\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
