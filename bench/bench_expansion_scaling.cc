// EXP-B (Theorem 4.4 / Section 4.2): the general case is exponential —
// the number of compound classes, and hence the whole decision procedure,
// grows exponentially with the number of classes when nothing (clusters,
// disjointness) tames the enumeration.
//
// Workload: random general schemas with negation and union, one shared
// attribute range keeping all classes in one cluster. The reported
// compound-class counts should roughly double per added class, and time
// should follow.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

Schema DenseSchema(int num_classes, uint64_t seed) {
  Rng rng(seed);
  GeneralSchemaParams params;
  params.num_classes = num_classes;
  params.num_attributes = 2;
  params.isa_percent = 40;      // Light constraints: most subsets survive.
  params.negation_percent = 20;
  params.union_percent = 50;
  params.attribute_percent = 40;
  params.num_relations = 0;
  return RandomGeneralSchema(&rng, params);
}

void BM_Expansion_GeneralExhaustive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Schema schema = DenseSchema(n, /*seed=*/n);
  ExpansionOptions options;
  options.strategy = ExpansionStrategy::kExhaustive;
  size_t compounds = 0;
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema, options);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    compounds = expansion->compound_classes.size();
    visited = expansion->subsets_visited;
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Expansion_GeneralExhaustive)
    ->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

// EXP-B parallel: the same exhaustive enumeration sharded over worker
// threads. Args are {num_classes, num_threads}; the compound-class count
// (and every other output) is bit-identical across the thread column, so
// the only thing that should move is wall-clock time.
void BM_Expansion_ParallelScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Schema schema = DenseSchema(n, /*seed=*/n);
  ExpansionOptions options;
  options.strategy = ExpansionStrategy::kExhaustive;
  options.num_threads = threads;
  size_t compounds = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema, options);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    compounds = expansion->compound_classes.size();
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_Expansion_ParallelScaling)
    ->ArgsProduct({{10, 12, 14}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// End-to-end (expansion + disequations) on the same family, smaller range
// — the LP over exponentially many unknowns dominates quickly.
void BM_EndToEnd_General(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Schema schema = DenseSchema(n, /*seed=*/n);
  size_t compounds = 0;
  for (auto _ : state) {
    Reasoner reasoner(&schema);
    auto report = reasoner.CheckSchema();
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      break;
    }
    compounds = report->num_compound_classes;
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
}
BENCHMARK(BM_EndToEnd_General)
    ->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
