// Ablation (Section 1 / DESIGN.md EXP-J): finite-model reasoning (the
// paper's contribution) vs. unrestricted type elimination (the
// KR-community semantics the paper contrasts with). Measures both the
// cost gap — counting is more expensive than elimination — and the
// *answer* gap: the fraction of random schemas where a class is
// satisfiable only over infinite universes, i.e. where a DL-style
// reasoner would accept a schema no database can ever populate.

#include <benchmark/benchmark.h>

#include "core/car.h"
#include "reasoner/unrestricted.h"

namespace car {
namespace {

/// A family of "almost-tree" schemas: level k objects need children at
/// level k+1, and the last level folds back with an in-degree cap, which
/// makes finite models impossible while unrestricted ones exist.
Schema FiniteEffectChain(int length) {
  // Every level doubles: L_k objects have exactly 2 c_k-children, each
  // child has at most one parent, and the last level folds back into L0
  // under the same in-degree cap. Finite universes force all levels
  // empty (|L0| >= 2^(length+1) |L0|); an infinite forest satisfies
  // everything.
  SchemaBuilder builder;
  for (int k = 0; k < length; ++k) {
    builder.BeginClass(StrCat("L", k))
        .Attribute(StrCat("c", k), 2, 2, {{StrCat("L", k + 1)}})
        .EndClass();
  }
  builder.BeginClass(StrCat("L", length))
      .Attribute("back", 2, 2, {{"L0"}})
      .EndClass();
  auto schema = std::move(builder).Build();
  CAR_CHECK(schema.ok()) << schema.status();
  Schema result = std::move(schema).value();
  for (int k = 1; k <= length; ++k) {
    AttributeSpec cap;
    cap.term = AttributeTerm::Inverse(
        result.LookupAttribute(StrCat("c", k - 1)));
    cap.cardinality = Cardinality(0, 1);
    cap.range = ClassFormula::OfClass(result.LookupClass(
        StrCat("L", k - 1)));
    result.mutable_class_definition(result.LookupClass(StrCat("L", k)))
        ->attributes.push_back(std::move(cap));
  }
  AttributeSpec back_cap;
  back_cap.term = AttributeTerm::Inverse(result.LookupAttribute("back"));
  back_cap.cardinality = Cardinality(0, 1);
  back_cap.range =
      ClassFormula::OfClass(result.LookupClass(StrCat("L", length)));
  result.mutable_class_definition(result.LookupClass("L0"))
      ->attributes.push_back(std::move(back_cap));
  CAR_CHECK(result.Validate().ok());
  return result;
}

void BM_Ablation_FiniteReasoner(benchmark::State& state) {
  Schema schema = FiniteEffectChain(static_cast<int>(state.range(0)));
  auto expansion = BuildExpansion(schema).value();
  bool l0_satisfiable = true;
  for (auto _ : state) {
    auto solution = SolvePsi(expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    l0_satisfiable =
        solution->IsClassSatisfiable(schema.LookupClass("L0"));
  }
  // Finite-model reasoning must reject the fold-back family.
  state.counters["L0_satisfiable"] = l0_satisfiable ? 1 : 0;
}
BENCHMARK(BM_Ablation_FiniteReasoner)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_UnrestrictedReasoner(benchmark::State& state) {
  Schema schema = FiniteEffectChain(static_cast<int>(state.range(0)));
  auto expansion = BuildExpansion(schema).value();
  bool l0_satisfiable = false;
  for (auto _ : state) {
    auto result = CheckUnrestrictedSatisfiability(expansion);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    l0_satisfiable = result->IsClassSatisfiable(schema.LookupClass("L0"));
  }
  // Unrestricted reasoning accepts it (an infinite forest model exists):
  // the answer gap this ablation is about.
  state.counters["L0_satisfiable"] = l0_satisfiable ? 1 : 0;
}
BENCHMARK(BM_Ablation_UnrestrictedReasoner)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMillisecond);

// Answer-gap census on random schemas: how often does finiteness change
// some class's satisfiability?
void BM_Ablation_DisagreementCensus(benchmark::State& state) {
  const int num_schemas = static_cast<int>(state.range(0));
  int schemas_with_effects = 0;
  int classes_affected = 0;
  int classes_total = 0;
  for (auto _ : state) {
    Rng rng(4242);
    schemas_with_effects = 0;
    classes_affected = 0;
    classes_total = 0;
    for (int i = 0; i < num_schemas; ++i) {
      GeneralSchemaParams params;
      params.num_classes = 5;
      params.num_attributes = 2;
      params.max_cardinality = 3;
      Schema schema = RandomGeneralSchema(&rng, params);
      auto expansion = BuildExpansion(schema).value();
      auto finite = SolvePsi(expansion).value();
      auto unrestricted =
          CheckUnrestrictedSatisfiability(expansion).value();
      bool any = false;
      for (ClassId c = 0; c < schema.num_classes(); ++c) {
        ++classes_total;
        if (finite.IsClassSatisfiable(c) !=
            unrestricted.IsClassSatisfiable(c)) {
          ++classes_affected;
          any = true;
        }
      }
      if (any) ++schemas_with_effects;
    }
  }
  state.counters["schemas_with_finite_effects"] = schemas_with_effects;
  state.counters["classes_affected"] = classes_affected;
  state.counters["classes_total"] = classes_total;
}
BENCHMARK(BM_Ablation_DisagreementCensus)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
