// EXP-H (Section 4.4): generalization hierarchies are the polynomial
// special case — each cluster's compound classes are the root-to-node
// paths, so their number equals the number of classes, and the whole
// method runs in polynomial time.
//
// Sweeps the hierarchy size; the reported compound-class count must stay
// equal to classes + 1 (the empty compound), and time must grow
// polynomially (compare against bench_expansion_scaling's exponential
// curve at the same class counts).

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

void BM_Hierarchy_EndToEnd(benchmark::State& state) {
  Rng rng(7);
  HierarchyParams params;
  params.num_classes = static_cast<int>(state.range(0));
  params.num_trees = 2;
  params.max_children = 3;
  Schema schema = GenerateHierarchy(&rng, params);
  size_t compounds = 0;
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    auto solution = SolvePsi(*expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    compounds = expansion->compound_classes.size();
    visited = expansion->subsets_visited;
  }
  // Section 4.4: one compound class per class (root-to-node paths), plus
  // the empty compound.
  if (compounds != static_cast<size_t>(params.num_classes) + 1) {
    state.SkipWithError("hierarchy expansion is not classes + 1");
  }
  state.counters["compound_classes"] = static_cast<double>(compounds);
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Hierarchy_EndToEnd)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Deep single-path hierarchies (worst depth) stay polynomial too.
void BM_Hierarchy_DeepChain(benchmark::State& state) {
  Rng rng(11);
  HierarchyParams params;
  params.num_classes = static_cast<int>(state.range(0));
  params.num_trees = 1;
  params.max_children = 1;
  Schema schema = GenerateHierarchy(&rng, params);
  size_t visited = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    visited = expansion->subsets_visited;
  }
  state.counters["subsets_visited"] = static_cast<double>(visited);
}
BENCHMARK(BM_Hierarchy_DeepChain)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
