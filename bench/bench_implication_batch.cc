// EXP-I driver: incremental vs from-scratch implication batches.
//
// Workload: clustered schemas (GenerateClusteredSchema) probed with a
// deterministic mix of isa / disjointness / cardinality / participation
// implication queries. For each (schema, batch size) cell the same batch
// is answered twice — by the from-scratch engine (one full expansion +
// Ψ solve per query) and by the incremental session (one base solve,
// then per-probe expansion deltas, warm-started LP re-solves, and the
// canonical-form memo) — and the answers are required to be identical.
// Wall-clock times, speedups and the session statistics land as one
// JSON-lines record per cell in BENCH_implication_batch.json.
//
// This is a plain main (not google-benchmark): each cell is one timed
// batch, the quantity of interest being the end-to-end ratio, not a
// steady-state microbenchmark.
//
// Usage: bench_implication_batch [--threads=N] [--smoke] [--out=FILE]
//   --smoke  tiny workload for CI: one small schema, batch of 8

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_json.h"
#include "reasoner/incremental.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

/// A deterministic batch of `count` distinct implication queries mixing
/// every query kind, drawn from the schema's classes/attributes/
/// relations.
std::vector<ImplicationQuery> MakeBatch(const Schema& schema, Rng* rng,
                                        int count) {
  std::vector<ImplicationQuery> queries;
  std::set<std::string> seen;
  int attempts = 0;
  while (static_cast<int>(queries.size()) < count &&
         attempts < count * 64) {
    ++attempts;
    ImplicationQuery query;
    switch (rng->NextBelow(schema.num_relations() > 0 ? 6 : 4)) {
      case 0:
        query.kind = ImplicationQuery::Kind::kIsa;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.formula = ClassFormula::OfClass(static_cast<ClassId>(
            rng->NextBelow(schema.num_classes())));
        break;
      case 1:
        query.kind = ImplicationQuery::Kind::kDisjoint;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.other = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        break;
      case 2:
      case 3: {
        if (schema.num_attributes() == 0) continue;
        bool min = rng->NextBelow(2) == 0;
        query.kind = min ? ImplicationQuery::Kind::kMinCardinality
                         : ImplicationQuery::Kind::kMaxCardinality;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        AttributeId attribute = static_cast<AttributeId>(
            rng->NextBelow(schema.num_attributes()));
        query.term = rng->NextBelow(4) == 0
                         ? AttributeTerm::Inverse(attribute)
                         : AttributeTerm::Direct(attribute);
        query.bound = 1 + rng->NextBelow(3);
        break;
      }
      default: {
        RelationId relation = static_cast<RelationId>(
            rng->NextBelow(schema.num_relations()));
        const RelationDefinition* definition =
            schema.relation_definition(relation);
        query.kind = rng->NextBelow(2) == 0
                         ? ImplicationQuery::Kind::kMinParticipation
                         : ImplicationQuery::Kind::kMaxParticipation;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.relation = relation;
        query.role = definition->roles[rng->NextBelow(
            definition->roles.size())];
        query.bound = 1 + rng->NextBelow(3);
        break;
      }
    }
    // Distinct queries only: the tentpole claim is about deltas and warm
    // starts, not about the memo absorbing duplicates.
    std::string key = IncrementalSession::CanonicalQueryKey(query);
    if (seen.insert(std::move(key)).second) {
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_implication_batch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  // Two schema families. Chain schemas (GenerateChainSchema) are the
  // demonstration regime of the incremental engine: the base disequation
  // system is deep (many pivots from scratch) while each probe's delta is
  // small, so warm starts pay off by an order of magnitude. Clustered
  // schemas have much larger per-probe deltas (the query class joins many
  // compounds), the adversarial end where the delta assembly itself,
  // not pivoting, bounds the gain.
  struct Cell {
    std::string name;
    bool chain = false;
    ChainParams chain_params;
    ClusteredParams clustered_params;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells.push_back({"chain-6x2", true, {6, 2}, {}});
    cells.push_back({"clustered-2x3", false, {}, {2, 3, 2, false}});
  } else {
    cells.push_back({"chain-12x3", true, {12, 3}, {}});
    cells.push_back({"chain-16x3", true, {16, 3}, {}});
    cells.push_back({"chain-20x4", true, {20, 4}, {}});
    cells.push_back({"clustered-4x4", false, {}, {4, 4, 2, false}});
    cells.push_back({"clustered-6x4", false, {}, {6, 4, 2, false}});
    cells.push_back({"clustered-3x5", false, {}, {3, 5, 2, false}});
  }
  std::vector<int> batch_sizes =
      smoke ? std::vector<int>{8} : std::vector<int>{4, 16, 64};

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-I: incremental vs from-scratch implication batches "
              "(threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| schema | batch | from-scratch (ms) | incremental (ms) | "
              "speedup | warm starts | fallbacks |\n");
  std::printf("|---|---|---|---|---|---|---|\n");

  bool all_identical = true;
  for (const Cell& cell : cells) {
    Rng schema_rng(11);
    Schema schema = cell.chain
                        ? GenerateChainSchema(cell.chain_params)
                        : GenerateClusteredSchema(&schema_rng,
                                                  cell.clustered_params);
    for (int batch_size : batch_sizes) {
      Rng query_rng(1000 + batch_size);
      std::vector<ImplicationQuery> queries =
          MakeBatch(schema, &query_rng, batch_size);

      ReasonerOptions scratch_options;
      scratch_options.num_threads = num_threads;
      Reasoner scratch(&schema, scratch_options);
      auto scratch_start = std::chrono::steady_clock::now();
      auto scratch_answers = scratch.RunImplicationBatch(queries);
      double scratch_ms = MillisSince(scratch_start);
      if (!scratch_answers.ok()) {
        std::fprintf(stderr, "from-scratch: %s\n",
                     scratch_answers.status().ToString().c_str());
        return 1;
      }

      IncrementalSession session(&schema, scratch_options);
      auto incremental_start = std::chrono::steady_clock::now();
      auto incremental_answers = session.RunImplicationBatch(queries);
      double incremental_ms = MillisSince(incremental_start);
      if (!incremental_answers.ok()) {
        std::fprintf(stderr, "incremental: %s\n",
                     incremental_answers.status().ToString().c_str());
        return 1;
      }
      bool identical =
          scratch_answers.value() == incremental_answers.value();
      all_identical = all_identical && identical;

      IncrementalStats stats = session.stats();
      double speedup =
          incremental_ms > 0 ? scratch_ms / incremental_ms : 0.0;
      std::printf("| %s | %zu | %.1f | %.1f | %.2fx | %llu | %llu |%s\n",
                  cell.name.c_str(), queries.size(), scratch_ms,
                  incremental_ms, speedup,
                  static_cast<unsigned long long>(stats.warm_starts),
                  static_cast<unsigned long long>(stats.fallbacks),
                  identical ? "" : "  ANSWERS DIFFER (bug!)");
      std::fflush(stdout);

      bench::JsonRecord record;
      record.Add("bench", "implication_batch")
          .Add("schema", cell.name)
          .Add("num_classes", static_cast<int>(schema.num_classes()))
          .Add("batch", static_cast<int>(queries.size()))
          .Add("threads", num_threads)
          .Add("smoke", smoke)
          .Add("from_scratch_ms", scratch_ms)
          .Add("incremental_ms", incremental_ms)
          .Add("speedup", speedup)
          .Add("answers_identical", identical)
          .Add("probes", stats.probes)
          .Add("warm_starts", stats.warm_starts)
          .Add("fallbacks", stats.fallbacks)
          .Add("memo_hits", stats.memo_hits)
          .Add("memo_misses", stats.memo_misses)
          .Add("clusters_reused", stats.clusters_reused)
          .Add("clusters_reenumerated", stats.clusters_reenumerated);
      out.Write(record);
    }
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: incremental answers differ from from-scratch\n");
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
