// EXP-A (Theorem 4.3 / 3.3): phase (2) — building and solving the system
// of linear disequations — is polynomial in the size of the system.
//
// Workload: chain schemas (workloads/generators.h) whose expansion stays
// linear in the chain length while Ψ_S grows linearly in variables and
// constraints; the reported time should grow polynomially (roughly cubic
// in the chain length for the dense exact simplex), not exponentially:
// doubling the size must multiply time by a constant factor, not square
// it.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

void BM_LpPhase_ChainLength(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  params.fanout = 3;
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();

  size_t lp_vars = 0;
  size_t lp_constraints = 0;
  size_t pivots = 0;
  for (auto _ : state) {
    auto solution = SolvePsi(expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    lp_vars = solution->largest_lp_variables;
    lp_constraints = solution->largest_lp_constraints;
    pivots = solution->total_pivots;
  }
  state.counters["lp_variables"] = static_cast<double>(lp_vars);
  state.counters["lp_constraints"] = static_cast<double>(lp_constraints);
  state.counters["pivots"] = static_cast<double>(pivots);
}
BENCHMARK(BM_LpPhase_ChainLength)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// The same sweep measuring only the construction of Ψ_S (immediate, as
// Section 4.2 notes: "the construction of the system of disequations from
// the expansion is immediate").
void BM_LpPhase_BuildPsiOnly(benchmark::State& state) {
  ChainParams params;
  params.length = static_cast<int>(state.range(0));
  Schema schema = GenerateChainSchema(params);
  auto expansion = BuildExpansion(schema).value();
  size_t disequations = 0;
  for (auto _ : state) {
    PsiSystem psi = BuildFullPsiSystem(expansion);
    benchmark::DoNotOptimize(psi);
    disequations = psi.num_disequations;
  }
  state.counters["disequations"] = static_cast<double>(disequations);
}
BENCHMARK(BM_LpPhase_BuildPsiOnly)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
