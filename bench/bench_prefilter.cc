// EXP-Q driver: the static-analysis prefilter tiers of the incremental
// implication engine.
//
// Workload: chain, clustered and hierarchy schemas probed with a
// deterministic mix of implication queries. Each cell answers the same
// batch three ways — from-scratch Reasoner (the oracle), an untiered
// IncrementalSession (prefilter off), and a tiered one (prefilter on) —
// and requires all three answer vectors to be identical. The JSON record
// carries the wall-clock of the two sessions and the per-tier
// short-circuit fractions (closure hits, cluster-local solves, memo hits
// and full probes over the batch), which is what the CI smoke gate
// checks: answers_identical, and tiered latency no worse than untiered.
//
// Usage: bench_prefilter [--threads=N] [--smoke] [--out=FILE]
//   --smoke  reduced workload for CI: two cells, one batch size

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "base/rng.h"
#include "bench_json.h"
#include "reasoner/incremental.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

/// A deterministic batch of `count` distinct implication queries mixing
/// every query kind (the bench_implication_batch generator).
std::vector<ImplicationQuery> MakeBatch(const Schema& schema, Rng* rng,
                                        int count) {
  std::vector<ImplicationQuery> queries;
  std::set<std::string> seen;
  int attempts = 0;
  while (static_cast<int>(queries.size()) < count &&
         attempts < count * 64) {
    ++attempts;
    ImplicationQuery query;
    switch (rng->NextBelow(schema.num_relations() > 0 ? 6 : 4)) {
      case 0:
        query.kind = ImplicationQuery::Kind::kIsa;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.formula = ClassFormula::OfClass(static_cast<ClassId>(
            rng->NextBelow(schema.num_classes())));
        break;
      case 1:
        query.kind = ImplicationQuery::Kind::kDisjoint;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.other = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        break;
      case 2:
      case 3: {
        if (schema.num_attributes() == 0) continue;
        bool min = rng->NextBelow(2) == 0;
        query.kind = min ? ImplicationQuery::Kind::kMinCardinality
                         : ImplicationQuery::Kind::kMaxCardinality;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        AttributeId attribute = static_cast<AttributeId>(
            rng->NextBelow(schema.num_attributes()));
        query.term = rng->NextBelow(4) == 0
                         ? AttributeTerm::Inverse(attribute)
                         : AttributeTerm::Direct(attribute);
        query.bound = 1 + rng->NextBelow(3);
        break;
      }
      default: {
        RelationId relation = static_cast<RelationId>(
            rng->NextBelow(schema.num_relations()));
        const RelationDefinition* definition =
            schema.relation_definition(relation);
        query.kind = rng->NextBelow(2) == 0
                         ? ImplicationQuery::Kind::kMinParticipation
                         : ImplicationQuery::Kind::kMaxParticipation;
        query.class_id = static_cast<ClassId>(
            rng->NextBelow(schema.num_classes()));
        query.relation = relation;
        query.role = definition->roles[rng->NextBelow(
            definition->roles.size())];
        query.bound = 1 + rng->NextBelow(3);
        break;
      }
    }
    std::string key = IncrementalSession::CanonicalQueryKey(query);
    if (seen.insert(std::move(key)).second) {
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_prefilter.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  // Hierarchies are the prefilter's demonstration regime: the isa trees
  // give the closure tables many certifiable inclusion/disjointness
  // facts, so tier-0 answers a large slice of the batch without any LP.
  // Clustered schemas are the tier-2 regime — a probe's dependency
  // closure is one cluster, a fraction of the schema — and chains keep
  // the engine honest on workloads where the tiers rarely engage.
  struct Cell {
    std::string name;
    enum { kChain, kClustered, kHierarchy } family;
    ChainParams chain_params;
    ClusteredParams clustered_params;
    HierarchyParams hierarchy_params;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells.push_back({"hierarchy-16", Cell::kHierarchy, {}, {}, {16, 2}});
    cells.push_back({"clustered-8x4", Cell::kClustered, {}, {8, 4, 2,
                                                             false}, {}});
  } else {
    cells.push_back({"hierarchy-16", Cell::kHierarchy, {}, {}, {16, 2}});
    cells.push_back({"hierarchy-24", Cell::kHierarchy, {}, {}, {24, 3}});
    cells.push_back({"clustered-6x3", Cell::kClustered, {}, {6, 3, 2,
                                                             false}, {}});
    cells.push_back({"clustered-8x4", Cell::kClustered, {}, {8, 4, 2,
                                                             false}, {}});
    cells.push_back({"chain-12x3", Cell::kChain, {12, 3}, {}, {}});
  }
  std::vector<int> batch_sizes =
      smoke ? std::vector<int>{32} : std::vector<int>{16, 64};

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-Q: prefilter tiers, tiered vs untiered incremental "
              "sessions (threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| schema | batch | untiered (ms) | tiered (ms) | speedup | "
              "closure | cluster-local | probes |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");

  bool all_identical = true;
  bool all_no_slower = true;
  for (const Cell& cell : cells) {
    Rng schema_rng(11);
    Schema schema;
    switch (cell.family) {
      case Cell::kChain:
        schema = GenerateChainSchema(cell.chain_params);
        break;
      case Cell::kClustered:
        schema = GenerateClusteredSchema(&schema_rng,
                                         cell.clustered_params);
        break;
      case Cell::kHierarchy:
        schema = GenerateHierarchy(&schema_rng, cell.hierarchy_params);
        break;
    }
    for (int batch_size : batch_sizes) {
      Rng query_rng(1000 + batch_size);
      std::vector<ImplicationQuery> queries =
          MakeBatch(schema, &query_rng, batch_size);

      ReasonerOptions oracle_options;
      oracle_options.num_threads = num_threads;
      Reasoner oracle(&schema, oracle_options);
      auto oracle_answers = oracle.RunImplicationBatch(queries);
      if (!oracle_answers.ok()) {
        std::fprintf(stderr, "oracle: %s\n",
                     oracle_answers.status().ToString().c_str());
        return 1;
      }

      ReasonerOptions untiered_options = oracle_options;
      untiered_options.prefilter = false;
      IncrementalSession untiered(&schema, untiered_options);
      auto untiered_start = std::chrono::steady_clock::now();
      auto untiered_answers = untiered.RunImplicationBatch(queries);
      double untiered_ms = MillisSince(untiered_start);
      if (!untiered_answers.ok()) {
        std::fprintf(stderr, "untiered: %s\n",
                     untiered_answers.status().ToString().c_str());
        return 1;
      }

      ReasonerOptions tiered_options = oracle_options;
      tiered_options.prefilter = true;
      IncrementalSession tiered(&schema, tiered_options);
      auto tiered_start = std::chrono::steady_clock::now();
      auto tiered_answers = tiered.RunImplicationBatch(queries);
      double tiered_ms = MillisSince(tiered_start);
      if (!tiered_answers.ok()) {
        std::fprintf(stderr, "tiered: %s\n",
                     tiered_answers.status().ToString().c_str());
        return 1;
      }

      bool identical = oracle_answers.value() == untiered_answers.value() &&
                       oracle_answers.value() == tiered_answers.value();
      all_identical = all_identical && identical;
      all_no_slower = all_no_slower && tiered_ms <= untiered_ms;

      IncrementalStats stats = tiered.stats();
      double batch = static_cast<double>(queries.size());
      double closure_fraction = stats.closure_hits / batch;
      double cluster_fraction = stats.cluster_local / batch;
      double probe_fraction = stats.probes / batch;
      double speedup = tiered_ms > 0 ? untiered_ms / tiered_ms : 0.0;
      std::printf(
          "| %s | %zu | %.1f | %.1f | %.2fx | %.0f%% | %.0f%% | %.0f%% "
          "|%s\n",
          cell.name.c_str(), queries.size(), untiered_ms, tiered_ms,
          speedup, 100 * closure_fraction, 100 * cluster_fraction,
          100 * probe_fraction, identical ? "" : "  ANSWERS DIFFER (bug!)");
      std::fflush(stdout);

      bench::JsonRecord record;
      record.Add("bench", "prefilter")
          .Add("schema", cell.name)
          .Add("num_classes", static_cast<int>(schema.num_classes()))
          .Add("batch", static_cast<int>(queries.size()))
          .Add("threads", num_threads)
          .Add("smoke", smoke)
          .Add("untiered_ms", untiered_ms)
          .Add("tiered_ms", tiered_ms)
          .Add("speedup", speedup)
          .Add("closure_hits", stats.closure_hits)
          .Add("cluster_local", stats.cluster_local)
          .Add("memo_hits", stats.memo_hits)
          .Add("probes", stats.probes)
          .Add("closure_fraction", closure_fraction)
          .Add("cluster_local_fraction", cluster_fraction)
          .Add("probe_fraction", probe_fraction)
          .Add("answers_identical", identical);
      out.Write(record);
    }
  }

  std::printf("\nanswers identical across all cells: %s\n",
              all_identical ? "yes" : "NO (bug!)");
  std::printf("tiered no slower than untiered in every cell: %s\n",
              all_no_slower ? "yes" : "no");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
