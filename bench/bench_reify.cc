// EXP-E (Theorem 4.5): reifying n-ary relations into binary ones is
// linear-time and avoids the arity-exponential growth of compound
// relations.
//
// Workload: one K-ary relation whose every role ranges over a 2-class
// tower (so each role position admits 2 compound classes, and the direct
// expansion materializes up to 2^K compound relations), with one class
// participating. Sweep K, comparing the direct pipeline against
// reify-then-reason. Expected shape: direct grows exponentially in K;
// reified stays linear; the transformation itself is negligible.

#include <benchmark/benchmark.h>

#include "core/car.h"

namespace car {
namespace {

Schema KAryWorkload(int arity) {
  SchemaBuilder builder;
  std::vector<std::string> roles;
  for (int k = 0; k < arity; ++k) {
    std::string base = StrCat("D", k);
    // A 2-class tower per role: Dk and its subclass Dk_sub both realize
    // the role formula, doubling the compound classes at that position.
    builder.BeginClass(StrCat(base, "_sub")).Isa({{base}}).EndClass();
    roles.push_back(StrCat("u", k));
  }
  builder.BeginClass("P")
      .Isa({{"D0"}})
      .Participates("R", "u0", 1, 2)
      .EndClass();
  builder.BeginRelation("R", roles);
  for (int k = 0; k < arity; ++k) {
    builder.Constraint({{StrCat("u", k), {{StrCat("D", k)}}}});
  }
  builder.EndRelation();
  return std::move(builder).Build().value();
}

void BM_Reify_DirectExpansion(benchmark::State& state) {
  Schema schema = KAryWorkload(static_cast<int>(state.range(0)));
  size_t compound_relations = 0;
  for (auto _ : state) {
    auto expansion = BuildExpansion(schema);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    auto solution = SolvePsi(*expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    compound_relations = expansion->compound_relations.size();
  }
  state.counters["compound_relations"] =
      static_cast<double>(compound_relations);
}
BENCHMARK(BM_Reify_DirectExpansion)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_Reify_TransformedExpansion(benchmark::State& state) {
  Schema schema = KAryWorkload(static_cast<int>(state.range(0)));
  size_t compound_relations = 0;
  for (auto _ : state) {
    auto reified = ReifyNonBinaryRelations(schema);
    if (!reified.ok()) {
      state.SkipWithError(reified.status().ToString().c_str());
      break;
    }
    auto expansion = BuildExpansion(reified->schema);
    if (!expansion.ok()) {
      state.SkipWithError(expansion.status().ToString().c_str());
      break;
    }
    auto solution = SolvePsi(*expansion);
    if (!solution.ok()) {
      state.SkipWithError(solution.status().ToString().c_str());
      break;
    }
    compound_relations = expansion->compound_relations.size();
  }
  state.counters["compound_relations"] =
      static_cast<double>(compound_relations);
}
BENCHMARK(BM_Reify_TransformedExpansion)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMillisecond);

// The transformation alone: linear in the schema (Theorem 4.5's "can be
// transformed in linear time").
void BM_Reify_TransformOnly(benchmark::State& state) {
  Schema schema = KAryWorkload(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto reified = ReifyNonBinaryRelations(schema);
    if (!reified.ok()) {
      state.SkipWithError(reified.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(reified);
  }
}
BENCHMARK(BM_Reify_TransformOnly)
    ->DenseRange(2, 7, 1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace car

BENCHMARK_MAIN();
