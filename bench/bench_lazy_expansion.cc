// EXP-T driver: lazy (counterexample-guided) vs eager expansion on
// dense schemas.
//
// Workload: the dense-blowup family (GenerateDenseBlowupSchema) — one
// chaff cluster whose 2^chaff subsets are all consistent, plus a small
// attribute-bearing core so the verdict needs real Ψ content. For each
// cell the full CheckSchema verdict is computed eagerly (when the cell
// is within the eager enumeration cap) and lazily at 1/2/8 threads; all
// comparable verdicts are required to be identical, classwise. The lazy
// run must conclude from a strict subset of the compound classes; the
// interesting ratio is wall-clock end-to-end, so this is a plain main
// (not google-benchmark) like the other differential drivers.
//
// The largest cell (chaff=22) is the dense_blowup.car regime: 2^22
// subsets, beyond the eager cap — eager cannot answer at all and the
// cell records the lazy verdict alone (eager_completed=false).
//
// Usage: bench_lazy_expansion [--threads=N] [--smoke] [--out=FILE]
//   --smoke  tiny workload for CI: two small cells
//
// Output: one JSON-lines record per cell in BENCH_lazy_expansion.json,
// gated by the CI bench-smoke job (answers_identical, lazy <= eager on
// the dense cells, fallbacks reported).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "reasoner/reasoner.h"
#include "workloads/generators.h"

namespace car {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  int num_threads = 1;
  bool smoke = false;
  std::string out_path = "BENCH_lazy_expansion.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  struct Cell {
    std::string name;
    DenseBlowupParams params;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells.push_back({"dense-8+3", {8, 3, 2}});
    cells.push_back({"dense-10+3", {10, 3, 2}});
  } else {
    cells.push_back({"dense-10+3", {10, 3, 2}});
    cells.push_back({"dense-12+4", {12, 4, 2}});
    cells.push_back({"dense-14+4", {14, 4, 2}});
    cells.push_back({"dense-16+4", {16, 4, 2}});
    // The dense_blowup.car regime: past the eager enumeration cap.
    cells.push_back({"dense-22+4", {22, 4, 2}});
  }
  const std::vector<int> lazy_threads = {1, 2, 8};

  bench::JsonLinesFile out(out_path);
  if (!out.ok()) {
    std::fprintf(stderr, "cannot open '%s'\n", out_path.c_str());
    return 1;
  }

  std::printf("EXP-T: lazy (CEGAR) vs eager expansion on dense schemas "
              "(threads=%d%s)\n\n",
              num_threads, smoke ? ", smoke" : "");
  std::printf("| schema | eager (ms) | lazy (ms) | speedup | materialized "
              "| total | rounds | fallbacks |\n");
  std::printf("|---|---|---|---|---|---|---|---|\n");

  bool all_identical = true;
  for (const Cell& cell : cells) {
    Schema schema = GenerateDenseBlowupSchema(cell.params);

    // Eager reference (ungoverned: a cap trip arrives as an error
    // status, which just marks the cell eager-incomplete).
    ReasonerOptions eager_options;
    eager_options.num_threads = num_threads;
    Reasoner eager(&schema, eager_options);
    auto eager_start = std::chrono::steady_clock::now();
    auto eager_report = eager.CheckSchema();
    double eager_ms = MillisSince(eager_start);
    const bool eager_completed = eager_report.ok();
    uint64_t compounds_total =
        eager_completed ? eager_report->num_compound_classes : 0;

    // Lazy at each thread count; verdicts must agree with each other
    // (and with eager where eager completed).
    double lazy_ms = 0.0;
    uint64_t materialized = 0;
    uint64_t rounds = 0;
    uint64_t fallbacks = 0;
    bool identical = true;
    std::vector<bool> first_classwise;
    for (size_t i = 0; i < lazy_threads.size(); ++i) {
      ReasonerOptions lazy_options;
      lazy_options.num_threads = lazy_threads[i];
      lazy_options.lazy_expansion = true;
      Reasoner lazy(&schema, lazy_options);
      auto lazy_start = std::chrono::steady_clock::now();
      auto report = lazy.CheckSchema();
      double ms = MillisSince(lazy_start);
      if (!report.ok()) {
        std::fprintf(stderr, "lazy %s threads=%d: %s\n", cell.name.c_str(),
                     lazy_threads[i], report.status().ToString().c_str());
        return 1;
      }
      if (i == 0) {
        lazy_ms = ms;  // The reported time is the serial lazy run.
        materialized = report->compounds_materialized;
        rounds = report->refinement_rounds;
        first_classwise = report->class_satisfiable;
        if (!report->lazy) ++fallbacks;
        if (eager_completed) {
          identical = identical &&
                      eager_report->verdict == report->verdict &&
                      eager_report->class_satisfiable ==
                          report->class_satisfiable;
        }
      } else {
        identical =
            identical && report->class_satisfiable == first_classwise;
      }
    }
    all_identical = all_identical && identical;

    double speedup = (eager_completed && lazy_ms > 0)
                         ? eager_ms / lazy_ms
                         : 0.0;
    std::printf("| %s | %s | %.2f | %s | %llu | %llu | %llu | %llu |%s\n",
                cell.name.c_str(),
                eager_completed ? std::to_string(eager_ms).c_str()
                                : "n/a (cap)",
                lazy_ms,
                eager_completed ? (std::to_string(speedup) + "x").c_str()
                                : "-",
                static_cast<unsigned long long>(materialized),
                static_cast<unsigned long long>(compounds_total),
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(fallbacks),
                identical ? "" : "  ANSWERS DIFFER (bug!)");
    std::fflush(stdout);

    bench::JsonRecord record;
    record.Add("bench", "lazy_expansion")
        .Add("schema", cell.name)
        .Add("num_classes", static_cast<int>(schema.num_classes()))
        .Add("threads", num_threads)
        .Add("smoke", smoke)
        .Add("eager_completed", eager_completed)
        .Add("eager_ms", eager_completed ? eager_ms : 0.0)
        .Add("lazy_ms", lazy_ms)
        .Add("speedup", speedup)
        .Add("answers_identical", identical)
        .Add("compounds_materialized", materialized)
        .Add("compounds_total", compounds_total)
        .Add("refinement_rounds", rounds)
        .Add("fallbacks", fallbacks);
    out.Write(record);
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: lazy answers differ from eager\n");
    return 1;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Main(argc, argv); }
