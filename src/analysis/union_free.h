#ifndef CAR_ANALYSIS_UNION_FREE_H_
#define CAR_ANALYSIS_UNION_FREE_H_

#include "analysis/pair_tables.h"
#include "model/schema.h"

namespace car {

/// The "optimal strategy" for union-free schemas (Section 4.4): complete
/// the disjointness table so that the number of disjointness assumptions
/// is maximized without influencing class satisfiability.
///
/// In a union-free schema, an object's memberships are forced only
/// through (a) upward isa closure of single positive literals and
/// (b) conjunctive range/role formulae (each a set of positive literals
/// whose up-closures the filler must inhabit together). Therefore two
/// classes may be *required* to share an instance only if they appear
/// together in one of the following "required co-membership" cliques:
///
///   * Up(D) for some class D — the up-closure {D} ∪ transitive positive
///     isa parents (every D-object inhabits all of Up(D));
///   * the union of Up(E) over positive literals E of one attribute-range
///     formula with minimum >= 1 (the mandatory filler inhabits all);
///   * for each relation role: Up(C) of every class participating with
///     minimum >= 1 at that role, together with the up-closures of the
///     positive literals of that role's single-literal clauses (the
///     component object inhabits all of them at once).
///
/// Every pair NOT covered by some clique is marked disjoint in `tables`.
/// For a generalization hierarchy this yields exactly the sibling- and
/// cross-group disjointness the paper assumes, and the expansion's
/// compound classes become the root-to-node paths (classes + 1 compounds
/// including the empty one).
///
/// Only call on union-free schemas (checked; returns without changes
/// otherwise). Mixed negation is fine — explicit disjointness in `tables`
/// is kept and only ever grows.
void CompleteDisjointnessUnionFree(const Schema& schema, PairTables* tables);

}  // namespace car

#endif  // CAR_ANALYSIS_UNION_FREE_H_
