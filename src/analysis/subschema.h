#ifndef CAR_ANALYSIS_SUBSCHEMA_H_
#define CAR_ANALYSIS_SUBSCHEMA_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "model/schema.h"

namespace car {

struct SubSchemaRequest {
  /// BFS roots of the dependency closure.
  std::vector<ClassId> seed_classes;
  /// Relations forced into the sub-schema (their role-clause classes
  /// seed the closure too).
  std::vector<RelationId> seed_relations;
  /// Give up (return nullopt) when the closure grows past this many
  /// classes; 0 = unlimited. The giving-up is what makes the projection
  /// a *prefilter*: callers fall back to full-schema reasoning.
  size_t max_classes = 0;
};

/// A dependency-closed projection of a schema.
struct SubSchema {
  Schema schema;
  /// Original ids of the kept classes, ascending.
  std::vector<ClassId> kept_classes;
  /// Original ids of the kept relations, ascending.
  std::vector<RelationId> kept_relations;
  /// Original class id -> projected class id (kInvalidId when dropped).
  std::vector<ClassId> class_map;
  /// Original relation id -> projected relation id.
  std::vector<RelationId> relation_map;
};

/// Closes the seeds under the dependency adjacency and projects the
/// schema onto the closure.
///
/// `depends_on` is SchemaAnalysis::depends_on for a prefix of the
/// classes (typically the base schema); for class ids past its end —
/// the auxiliary query class of an implication probe — the adjacency is
/// derived from the definition on the fly, so one precomputed base
/// analysis serves every probe.
///
/// Soundness (DESIGN.md §5f): the closure contains every class whose
/// interpretation any kept constraint can mention, so a model of the
/// sub-schema extends to the full schema by interpreting every dropped
/// class, attribute link and relation as empty (all dropped constraints
/// are per-instance and hold vacuously), and a model of the full schema
/// restricts to one of the sub-schema (its constraints are a subset).
/// Hence a kept class is satisfiable in the sub-schema iff it is in the
/// full schema — finitely and unrestrictedly alike, since both
/// directions preserve universe finiteness.
///
/// Precondition: schema.Validate() succeeded. The projection of a valid
/// schema is valid by construction.
std::optional<SubSchema> BuildSubSchema(
    const Schema& schema,
    const std::vector<std::vector<ClassId>>& depends_on,
    const SubSchemaRequest& request);

}  // namespace car

#endif  // CAR_ANALYSIS_SUBSCHEMA_H_
