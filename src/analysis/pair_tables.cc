#include "analysis/pair_tables.h"

#include "base/check.h"

namespace car {

void PairTables::EnsureSize() {
  if (static_cast<int>(disjoint_.size()) < num_classes_) {
    disjoint_.resize(num_classes_);
    superclasses_.resize(num_classes_);
  }
}

void PairTables::MarkDisjoint(ClassId a, ClassId b) {
  CAR_CHECK_GE(a, 0);
  CAR_CHECK_LT(a, num_classes_);
  CAR_CHECK_GE(b, 0);
  CAR_CHECK_LT(b, num_classes_);
  EnsureSize();
  if (disjoint_[a].insert(b).second) ++num_disjoint_pairs_;
  disjoint_[b].insert(a);
}

void PairTables::MarkIncluded(ClassId subclass, ClassId superclass) {
  CAR_CHECK_GE(subclass, 0);
  CAR_CHECK_LT(subclass, num_classes_);
  CAR_CHECK_GE(superclass, 0);
  CAR_CHECK_LT(superclass, num_classes_);
  if (subclass == superclass) return;  // Reflexive inclusions are trivial.
  EnsureSize();
  if (superclasses_[subclass].insert(superclass).second) {
    ++num_inclusion_pairs_;
  }
}

bool PairTables::AreDisjoint(ClassId a, ClassId b) const {
  if (disjoint_.empty()) return false;
  return disjoint_[a].count(b) > 0;
}

bool PairTables::IsIncluded(ClassId subclass, ClassId superclass) const {
  if (superclasses_.empty()) return false;
  return superclasses_[subclass].count(superclass) > 0;
}

const std::set<ClassId>& PairTables::SuperclassesOf(ClassId subclass) const {
  static const std::set<ClassId>* empty = new std::set<ClassId>();
  if (superclasses_.empty()) return *empty;
  CAR_CHECK_GE(subclass, 0);
  CAR_CHECK_LT(subclass, num_classes_);
  return superclasses_[subclass];
}

const std::set<ClassId>& PairTables::DisjointFrom(ClassId class_id) const {
  static const std::set<ClassId>* empty = new std::set<ClassId>();
  if (disjoint_.empty()) return *empty;
  CAR_CHECK_GE(class_id, 0);
  CAR_CHECK_LT(class_id, num_classes_);
  return disjoint_[class_id];
}

PairTables BuildPairTables(const Schema& schema,
                           const PairTableOptions& options) {
  PairTables tables(schema.num_classes());

  // Explicit entries from single-literal isa clauses.
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassDefinition& definition = schema.class_definition(c);
    for (const ClassClause& clause : definition.isa.clauses()) {
      if (clause.literals().size() != 1) continue;
      const ClassLiteral& literal = clause.literals()[0];
      if (literal.negated) {
        if (literal.class_id == c) {
          // C isa ¬C: C is empty in every model; record C disjoint from
          // itself so enumeration drops every compound class containing C.
          tables.MarkDisjoint(c, c);
        } else {
          tables.MarkDisjoint(c, literal.class_id);
        }
      } else if (literal.class_id != c) {
        tables.MarkIncluded(c, literal.class_id);
      }
    }
  }

  if (!options.propagate) return tables;

  // Sound propagation to a fixpoint. The rules only ever add entries, and
  // the number of pairs is bounded by num_classes^2, so this terminates.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ClassId c = 0; c < schema.num_classes(); ++c) {
      // Snapshot: the loops below mutate the tables.
      std::vector<ClassId> supers(tables.SuperclassesOf(c).begin(),
                                  tables.SuperclassesOf(c).end());
      for (ClassId super : supers) {
        // Transitivity of inclusion.
        for (ClassId grand : tables.SuperclassesOf(super)) {
          if (grand != c && !tables.IsIncluded(c, grand)) {
            tables.MarkIncluded(c, grand);
            changed = true;
          }
        }
        // Disjointness inherited through inclusion.
        for (ClassId enemy : tables.DisjointFrom(super)) {
          if (!tables.AreDisjoint(c, enemy)) {
            tables.MarkDisjoint(c, enemy);
            changed = true;
          }
        }
      }
    }
  }
  return tables;
}

}  // namespace car
