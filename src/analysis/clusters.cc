#include "analysis/clusters.h"

#include <algorithm>
#include <numeric>

#include "base/strings.h"

namespace car {

namespace {

/// Union-find over class ids.
class DisjointSets {
 public:
  explicit DisjointSets(int size) : parent_(size) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

void CollectPositive(const ClassFormula& formula,
                     std::vector<ClassId>* out) {
  for (const ClassClause& clause : formula.clauses()) {
    for (const ClassLiteral& literal : clause.literals()) {
      if (!literal.negated) out->push_back(literal.class_id);
    }
  }
}

}  // namespace

size_t ClusterPartition::LargestClusterSize() const {
  size_t largest = 0;
  for (const auto& cluster : clusters) {
    largest = std::max(largest, cluster.size());
  }
  return largest;
}

std::string ClusterPartition::Summary(const Schema& schema) const {
  (void)schema;
  return StrCat(num_clusters(), " clusters, largest of size ",
                LargestClusterSize());
}

ClusterPartition ComputeClusters(const Schema& schema,
                                 const PairTables& tables) {
  const int n = schema.num_classes();
  // Collect candidate arcs, then drop those between known-disjoint pairs
  // (step 3 of the paper's G_S construction).
  std::vector<std::pair<ClassId, ClassId>> arcs;
  auto add_clique = [&arcs](const std::vector<ClassId>& members) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (members[i] != members[j]) {
          arcs.emplace_back(members[i], members[j]);
        }
      }
    }
  };

  // Per-attribute source/target cliques are accumulated here.
  std::vector<std::vector<ClassId>> attr_source(schema.num_attributes());
  std::vector<std::vector<ClassId>> attr_target(schema.num_attributes());
  // Per (relation, role index) cliques.
  std::vector<std::vector<std::vector<ClassId>>> role_clique(
      schema.num_relations());
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    if (definition != nullptr) {
      role_clique[r].resize(definition->roles.size());
    }
  }

  for (ClassId c = 0; c < n; ++c) {
    const ClassDefinition& definition = schema.class_definition(c);

    // Condition 1: positive classes in the isa formula connect to C.
    std::vector<ClassId> isa_positive;
    CollectPositive(definition.isa, &isa_positive);
    for (ClassId d : isa_positive) {
      if (d != c) arcs.emplace_back(c, d);
    }

    for (const AttributeSpec& spec : definition.attributes) {
      std::vector<ClassId> range_positive;
      CollectPositive(spec.range, &range_positive);
      if (!spec.term.inverse) {
        // Direct A-spec: C is a source-side class; its range classes are
        // target-side.
        attr_source[spec.term.attribute].push_back(c);
        for (ClassId d : range_positive) {
          attr_target[spec.term.attribute].push_back(d);
        }
      } else {
        // (inv A)-spec: C is a target-side class; its range classes are
        // source-side.
        attr_target[spec.term.attribute].push_back(c);
        for (ClassId d : range_positive) {
          attr_source[spec.term.attribute].push_back(d);
        }
      }
    }

    // Condition 4 (participation with a positive minimum): instances of C
    // are forced to occur as R[U]-components, so C joins the clique of
    // that role.
    for (const ParticipationSpec& spec : definition.participations) {
      if (spec.cardinality.min() == 0) continue;
      const RelationDefinition* relation =
          schema.relation_definition(spec.relation);
      if (relation == nullptr) continue;
      int index = relation->RoleIndex(spec.role);
      if (index >= 0) role_clique[spec.relation][index].push_back(c);
    }
  }

  // Condition 3 proper: positive classes of formulas associated with the
  // same role of the same relation.
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    if (definition == nullptr) continue;
    for (const RoleClause& clause : definition->constraints) {
      for (const RoleLiteral& literal : clause.literals) {
        int index = definition->RoleIndex(literal.role);
        if (index < 0) continue;
        CollectPositive(literal.formula, &role_clique[r][index]);
      }
    }
  }

  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    add_clique(attr_source[a]);
    add_clique(attr_target[a]);
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    for (const auto& clique : role_clique[r]) add_clique(clique);
  }

  DisjointSets sets(n);
  for (const auto& [a, b] : arcs) {
    if (!tables.AreDisjoint(a, b)) sets.Union(a, b);
  }

  ClusterPartition partition;
  partition.cluster_of.assign(n, -1);
  std::vector<int> root_to_cluster(n, -1);
  for (ClassId c = 0; c < n; ++c) {
    int root = sets.Find(c);
    if (root_to_cluster[root] < 0) {
      root_to_cluster[root] = partition.num_clusters();
      partition.clusters.emplace_back();
    }
    partition.cluster_of[c] = root_to_cluster[root];
    partition.clusters[root_to_cluster[root]].push_back(c);
  }
  return partition;
}

ClusterPartition SingleCluster(const Schema& schema) {
  ClusterPartition partition;
  const int n = schema.num_classes();
  partition.cluster_of.assign(n, 0);
  partition.clusters.emplace_back();
  for (ClassId c = 0; c < n; ++c) partition.clusters[0].push_back(c);
  if (n == 0) partition.clusters.clear();
  return partition;
}

}  // namespace car
