#include "analysis/union_free.h"

#include <map>
#include <set>
#include <vector>

namespace car {

namespace {

/// A context is a set of classes some single object may be forced to
/// inhabit together. Contexts are: one per class (its canonical witness),
/// one per attribute side (merged mandatory fillers), one per relation
/// role (merged mandatory co-components).
struct Contexts {
  std::vector<std::set<ClassId>> witness;            // Per class.
  std::vector<std::set<ClassId>> attribute_targets;  // Per attribute.
  std::vector<std::set<ClassId>> attribute_sources;  // Per attribute.
  std::map<std::pair<RelationId, int>, std::set<ClassId>> role_components;

  /// Which contexts triggered each filler context (feedback receivers).
  /// Keyed like the filler contexts; values are pointers into the other
  /// context sets.
  std::map<std::pair<AttributeId, bool>, std::set<std::set<ClassId>*>>
      filler_triggers;  // bool = inverse side.
};

/// Single positive literals of a union-free formula.
std::vector<ClassId> Positives(const ClassFormula& formula) {
  std::vector<ClassId> out;
  for (const ClassClause& clause : formula.clauses()) {
    if (clause.literals().size() != 1) continue;
    const ClassLiteral& literal = clause.literals()[0];
    if (!literal.negated) out.push_back(literal.class_id);
  }
  return out;
}

bool InsertAll(const std::vector<ClassId>& classes,
               std::set<ClassId>* target) {
  bool changed = false;
  for (ClassId c : classes) changed |= target->insert(c).second;
  return changed;
}

}  // namespace

void CompleteDisjointnessUnionFree(const Schema& schema,
                                   PairTables* tables) {
  if (!schema.IsUnionFree()) return;
  const int n = schema.num_classes();
  if (n == 0) return;

  Contexts contexts;
  contexts.witness.resize(n);
  contexts.attribute_targets.resize(schema.num_attributes());
  contexts.attribute_sources.resize(schema.num_attributes());
  for (ClassId c = 0; c < n; ++c) contexts.witness[c].insert(c);

  // Collect every context into one list for uniform rule application.
  auto all_contexts = [&contexts]() {
    std::vector<std::set<ClassId>*> all;
    for (auto& context : contexts.witness) all.push_back(&context);
    for (auto& context : contexts.attribute_targets) all.push_back(&context);
    for (auto& context : contexts.attribute_sources) all.push_back(&context);
    for (auto& [key, context] : contexts.role_components) {
      (void)key;
      all.push_back(&context);
    }
    return all;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::set<ClassId>* context : all_contexts()) {
      // Snapshot: rules below mutate the context.
      std::vector<ClassId> members(context->begin(), context->end());

      // Which attribute terms have a mandatory filler in this context?
      // (some member demands min >= 1 for the term).
      std::set<std::pair<AttributeId, bool>> mandatory;
      for (ClassId member : members) {
        for (const AttributeSpec& spec :
             schema.class_definition(member).attributes) {
          if (spec.cardinality.min() >= 1) {
            mandatory.emplace(spec.term.attribute, spec.term.inverse);
          }
        }
      }

      for (ClassId member : members) {
        const ClassDefinition& definition = schema.class_definition(member);
        // Rule 1: isa up-closure.
        changed |= InsertAll(Positives(definition.isa), context);

        // Rule 2: mandatory attribute fillers. The filler must realize
        // the ranges of *every* same-term spec owned anywhere in the
        // context (including min-0 ones — they type all links), so all
        // of them feed the filler context once the term is mandatory.
        for (const AttributeSpec& spec : definition.attributes) {
          if (mandatory.count({spec.term.attribute, spec.term.inverse}) ==
              0) {
            continue;
          }
          std::set<ClassId>* filler =
              spec.term.inverse
                  ? &contexts.attribute_sources[spec.term.attribute]
                  : &contexts.attribute_targets[spec.term.attribute];
          changed |= InsertAll(Positives(spec.range), filler);
          changed |= contexts
                         .filler_triggers[{spec.term.attribute,
                                           spec.term.inverse}]
                         .insert(context)
                         .second;
        }

        // Rule 3: mandatory relation participation.
        for (const ParticipationSpec& spec : definition.participations) {
          if (spec.cardinality.min() == 0) continue;
          const RelationDefinition* relation =
              schema.relation_definition(spec.relation);
          if (relation == nullptr) continue;
          int own_index = relation->RoleIndex(spec.role);
          for (const RoleClause& clause : relation->constraints) {
            if (clause.literals.size() != 1) continue;
            const RoleLiteral& literal = clause.literals[0];
            int index = relation->RoleIndex(literal.role);
            if (index == own_index) {
              // The witness itself is the component at this role.
              changed |= InsertAll(Positives(literal.formula), context);
            } else {
              changed |= InsertAll(
                  Positives(literal.formula),
                  &contexts.role_components[{spec.relation, index}]);
            }
          }
        }
      }
    }

    // Rule 4 (feedback): classes in a filler context carry opposite-side
    // specs of the same attribute that constrain the *triggering* witness.
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      for (bool inverse_side : {false, true}) {
        const std::set<ClassId>& filler =
            inverse_side ? contexts.attribute_sources[a]
                         : contexts.attribute_targets[a];
        auto trigger_it = contexts.filler_triggers.find({a, inverse_side});
        if (trigger_it == contexts.filler_triggers.end()) continue;
        for (ClassId member : filler) {
          for (const AttributeSpec& spec :
               schema.class_definition(member).attributes) {
            if (spec.term.attribute != a) continue;
            // A filler on the target side owns (inv A) specs constraining
            // the source (the triggering witness), and vice versa.
            if (spec.term.inverse == inverse_side) continue;
            for (std::set<ClassId>* receiver : trigger_it->second) {
              changed |= InsertAll(Positives(spec.range), receiver);
            }
          }
        }
      }
    }
  }

  // Every pair not co-resident in any context may be assumed disjoint.
  std::vector<std::vector<bool>> required(n, std::vector<bool>(n, false));
  for (std::set<ClassId>* context : all_contexts()) {
    for (ClassId a : *context) {
      for (ClassId b : *context) {
        required[a][b] = true;
      }
    }
  }
  for (ClassId a = 0; a < n; ++a) {
    for (ClassId b = a + 1; b < n; ++b) {
      if (!required[a][b] && !tables->AreDisjoint(a, b)) {
        tables->MarkDisjoint(a, b);
      }
    }
  }
}

}  // namespace car
