#include "analysis/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "base/strings.h"

namespace car {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
/// Diagnostics carry schema symbol names and fixed rule text, so this
/// stays self-contained instead of depending on the bench emitter.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* DiagnosticSeverityToString(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kNote:
      return "note";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kError:
      return "error";
  }
  return "?";
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(
      diagnostics->begin(), diagnostics->end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        // Unknown spans (line 0) sort last: give them an infinite line.
        int a_line = a.span.known() ? a.span.line : INT32_MAX;
        int b_line = b.span.known() ? b.span.line : INT32_MAX;
        return std::make_tuple(a_line, a.span.column,
                               -static_cast<int>(a.severity), a.rule,
                               a.symbol, a.message) <
               std::make_tuple(b_line, b.span.column,
                               -static_cast<int>(b.severity), b.rule,
                               b.symbol, b.message);
      });
}

std::string RenderDiagnosticText(const Diagnostic& diagnostic,
                                 std::string_view file) {
  std::string position(file);
  if (diagnostic.span.known()) {
    position = StrCat(position, ":", diagnostic.span.line, ":",
                      diagnostic.span.column);
  }
  return StrCat(position, ": ",
                DiagnosticSeverityToString(diagnostic.severity), ": [",
                diagnostic.rule, "] ", diagnostic.message);
}

std::string RenderDiagnosticJson(const Diagnostic& diagnostic,
                                 std::string_view file) {
  return StrCat(
      "{\"file\":\"", JsonEscape(file), "\",\"line\":", diagnostic.span.line,
      ",\"column\":", diagnostic.span.column,
      ",\"length\":", diagnostic.span.length, ",\"severity\":\"",
      DiagnosticSeverityToString(diagnostic.severity), "\",\"rule\":\"",
      JsonEscape(diagnostic.rule), "\",\"symbol\":\"",
      JsonEscape(diagnostic.symbol), "\",\"message\":\"",
      JsonEscape(diagnostic.message), "\"}");
}

DiagnosticCounts CountDiagnostics(
    const std::vector<Diagnostic>& diagnostics) {
  DiagnosticCounts counts;
  for (const Diagnostic& diagnostic : diagnostics) {
    switch (diagnostic.severity) {
      case DiagnosticSeverity::kNote:
        ++counts.notes;
        break;
      case DiagnosticSeverity::kWarning:
        ++counts.warnings;
        break;
      case DiagnosticSeverity::kError:
        ++counts.errors;
        break;
    }
  }
  return counts;
}

}  // namespace car
