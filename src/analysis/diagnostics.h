#ifndef CAR_ANALYSIS_DIAGNOSTICS_H_
#define CAR_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "model/definitions.h"

namespace car {

/// Severity ladder of static-analysis findings. Errors are findings with
/// a semantic guarantee (the declaration makes some class provably
/// empty); warnings flag almost-certainly-unintended but satisfiable
/// constructs; notes are redundancies and style findings.
enum class DiagnosticSeverity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

/// "note" / "warning" / "error".
const char* DiagnosticSeverityToString(DiagnosticSeverity severity);

/// One static-analysis finding: a stable rule id, the symbol it is
/// about, source provenance (when the schema came from a parsed `.car`
/// text) and a one-line explanation.
struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  /// Stable kebab-case rule id ("isa-cycle", "cardinality-contradiction",
  /// ...). The catalog is documented in README.md.
  std::string rule;
  /// Name of the class or relation the finding anchors to.
  std::string symbol;
  /// Source span of the offending declaration; unknown() for schemas
  /// built programmatically.
  SourceSpan span;
  std::string message;
};

/// Deterministic total order: by source position (unknown spans last),
/// then decreasing severity, rule id, symbol and message.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

/// "file:line:col: error: [rule-id] message"; the position prefix
/// degrades to just "file:" when the span is unknown.
std::string RenderDiagnosticText(const Diagnostic& diagnostic,
                                 std::string_view file);

/// One JSON object {"file":..,"line":..,"column":..,"length":..,
/// "severity":..,"rule":..,"symbol":..,"message":..}. Line/column/length
/// are 0 when the span is unknown.
std::string RenderDiagnosticJson(const Diagnostic& diagnostic,
                                 std::string_view file);

struct DiagnosticCounts {
  size_t notes = 0;
  size_t warnings = 0;
  size_t errors = 0;
};

DiagnosticCounts CountDiagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace car

#endif  // CAR_ANALYSIS_DIAGNOSTICS_H_
