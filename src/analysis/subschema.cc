#include "analysis/subschema.h"

#include <algorithm>
#include <set>
#include <utility>

#include "base/check.h"

namespace car {

namespace {

void AddMentioned(const ClassFormula& formula, std::vector<ClassId>* out) {
  for (ClassId mentioned : formula.MentionedClasses()) {
    out->push_back(mentioned);
  }
}

/// Dependency adjacency of one class, derived from its definition: the
/// on-the-fly twin of SchemaAnalysis::depends_on for classes past the
/// precomputed prefix (the probe's auxiliary class).
std::vector<ClassId> DirectDependencies(const Schema& schema, ClassId c) {
  std::vector<ClassId> deps;
  const ClassDefinition& definition = schema.class_definition(c);
  AddMentioned(definition.isa, &deps);
  for (const AttributeSpec& spec : definition.attributes) {
    AddMentioned(spec.range, &deps);
  }
  for (const ParticipationSpec& spec : definition.participations) {
    const RelationDefinition* relation =
        schema.relation_definition(spec.relation);
    if (relation == nullptr) continue;
    for (const RoleClause& clause : relation->constraints) {
      for (const RoleLiteral& literal : clause.literals) {
        AddMentioned(literal.formula, &deps);
      }
    }
  }
  return deps;
}

}  // namespace

std::optional<SubSchema> BuildSubSchema(
    const Schema& schema,
    const std::vector<std::vector<ClassId>>& depends_on,
    const SubSchemaRequest& request) {
  const int num_classes = schema.num_classes();
  std::vector<char> in_closure(num_classes, 0);
  std::vector<ClassId> stack;
  size_t closure_size = 0;
  auto visit = [&](ClassId c) -> bool {
    CAR_CHECK_GE(c, 0);
    CAR_CHECK_LT(c, num_classes);
    if (in_closure[c]) return true;
    in_closure[c] = 1;
    ++closure_size;
    if (request.max_classes != 0 && closure_size > request.max_classes) {
      return false;
    }
    stack.push_back(c);
    return true;
  };

  for (ClassId seed : request.seed_classes) {
    if (!visit(seed)) return std::nullopt;
  }
  for (RelationId seed : request.seed_relations) {
    const RelationDefinition* relation = schema.relation_definition(seed);
    if (relation == nullptr) continue;
    for (const RoleClause& clause : relation->constraints) {
      for (const RoleLiteral& literal : clause.literals) {
        for (ClassId mentioned : literal.formula.MentionedClasses()) {
          if (!visit(mentioned)) return std::nullopt;
        }
      }
    }
  }
  while (!stack.empty()) {
    ClassId c = stack.back();
    stack.pop_back();
    if (c < static_cast<ClassId>(depends_on.size())) {
      for (ClassId dep : depends_on[c]) {
        if (!visit(dep)) return std::nullopt;
      }
    } else {
      for (ClassId dep : DirectDependencies(schema, c)) {
        if (!visit(dep)) return std::nullopt;
      }
    }
  }

  SubSchema result;
  result.class_map.assign(num_classes, kInvalidId);
  result.relation_map.assign(schema.num_relations(), kInvalidId);
  for (ClassId c = 0; c < num_classes; ++c) {
    if (in_closure[c]) result.kept_classes.push_back(c);
  }

  // Relations of the sub-schema: the seeds plus everything a kept class
  // participates in (their role-clause classes are all in the closure).
  std::set<RelationId> kept_relations(request.seed_relations.begin(),
                                      request.seed_relations.end());
  for (ClassId c : result.kept_classes) {
    for (const ParticipationSpec& spec :
         schema.class_definition(c).participations) {
      kept_relations.insert(spec.relation);
    }
  }
  result.kept_relations.assign(kept_relations.begin(), kept_relations.end());

  for (ClassId c : result.kept_classes) {
    result.class_map[c] = result.schema.InternClass(schema.ClassName(c));
  }
  for (RelationId r : result.kept_relations) {
    result.relation_map[r] =
        result.schema.InternRelation(schema.RelationName(r));
  }

  auto remap_formula = [&](const ClassFormula& formula) {
    ClassFormula remapped;
    for (const ClassClause& clause : formula.clauses()) {
      ClassClause remapped_clause;
      for (const ClassLiteral& literal : clause.literals()) {
        ClassId mapped = result.class_map[literal.class_id];
        CAR_CHECK_NE(mapped, kInvalidId);
        remapped_clause.AddLiteral(literal.negated
                                       ? ClassLiteral::Negative(mapped)
                                       : ClassLiteral::Positive(mapped));
      }
      remapped.AddClause(std::move(remapped_clause));
    }
    return remapped;
  };

  for (RelationId r : result.kept_relations) {
    const RelationDefinition* source = schema.relation_definition(r);
    CAR_CHECK(source != nullptr);
    RelationDefinition projected;
    projected.relation_id = result.relation_map[r];
    projected.span = source->span;
    for (RoleId role : source->roles) {
      projected.roles.push_back(
          result.schema.InternRole(schema.RoleName(role)));
    }
    for (const RoleClause& clause : source->constraints) {
      RoleClause remapped_clause;
      for (const RoleLiteral& literal : clause.literals) {
        RoleLiteral remapped_literal;
        remapped_literal.role =
            result.schema.InternRole(schema.RoleName(literal.role));
        remapped_literal.formula = remap_formula(literal.formula);
        remapped_clause.literals.push_back(std::move(remapped_literal));
      }
      projected.constraints.push_back(std::move(remapped_clause));
    }
    CAR_CHECK(
        result.schema.SetRelationDefinition(std::move(projected)).ok());
  }

  for (ClassId c : result.kept_classes) {
    const ClassDefinition& source = schema.class_definition(c);
    ClassDefinition* projected =
        result.schema.mutable_class_definition(result.class_map[c]);
    projected->span = source.span;
    projected->isa_span = source.isa_span;
    projected->isa = remap_formula(source.isa);
    for (const AttributeSpec& spec : source.attributes) {
      AttributeSpec remapped = spec;
      AttributeId attribute = result.schema.InternAttribute(
          schema.AttributeName(spec.term.attribute));
      remapped.term = spec.term.inverse ? AttributeTerm::Inverse(attribute)
                                        : AttributeTerm::Direct(attribute);
      remapped.range = remap_formula(spec.range);
      projected->attributes.push_back(std::move(remapped));
    }
    for (const ParticipationSpec& spec : source.participations) {
      ParticipationSpec remapped = spec;
      remapped.relation = result.relation_map[spec.relation];
      CAR_CHECK_NE(remapped.relation, kInvalidId);
      remapped.role = result.schema.InternRole(schema.RoleName(spec.role));
      projected->participations.push_back(remapped);
    }
  }

  return result;
}

}  // namespace car
