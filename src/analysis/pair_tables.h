#ifndef CAR_ANALYSIS_PAIR_TABLES_H_
#define CAR_ANALYSIS_PAIR_TABLES_H_

#include <cstddef>
#include <set>
#include <utility>
#include <vector>

#include "model/schema.h"

namespace car {

/// The two preselection data structures of Section 4.3: a disjointness
/// table (pairs of classes with no common instance in any model) and an
/// inclusion table (pairs where the first class is included in the second
/// in every model).
///
/// Entries are *sound* consequences of the schema (criterion (a) of the
/// paper). The tables are deliberately incomplete — computing all such
/// pairs is NP-complete for unrestricted isa formulae — and are used to
/// prune the enumeration of compound classes; the per-leaf consistency
/// check remains the source of truth.
class PairTables {
 public:
  explicit PairTables(int num_classes) : num_classes_(num_classes) {}

  void MarkDisjoint(ClassId a, ClassId b);
  void MarkIncluded(ClassId subclass, ClassId superclass);

  bool AreDisjoint(ClassId a, ClassId b) const;
  bool IsIncluded(ClassId subclass, ClassId superclass) const;

  /// All superclasses recorded for `subclass` (not reflexive).
  const std::set<ClassId>& SuperclassesOf(ClassId subclass) const;
  /// All classes recorded disjoint from `class_id`.
  const std::set<ClassId>& DisjointFrom(ClassId class_id) const;

  size_t num_disjoint_pairs() const { return num_disjoint_pairs_; }
  size_t num_inclusion_pairs() const { return num_inclusion_pairs_; }
  int num_classes() const { return num_classes_; }

 private:
  void EnsureSize();

  int num_classes_;
  size_t num_disjoint_pairs_ = 0;
  size_t num_inclusion_pairs_ = 0;
  std::vector<std::set<ClassId>> disjoint_;    // Symmetric adjacency.
  std::vector<std::set<ClassId>> superclasses_;  // subclass -> supers.
};

struct PairTableOptions {
  /// Apply the sound propagation rules (inclusion transitivity;
  /// disjointness inherited through inclusion) to a fixpoint. This is the
  /// "more sophisticated method" of criterion (a); it stays polynomial.
  bool propagate = true;
};

/// Criterion (a): fills the tables from the isa parts of class
/// definitions. A clause consisting of the single literal C2 in the isa
/// of C1 yields inclusion C1 ⊆ C2; a single-literal clause ¬C2 yields
/// disjointness {C1, C2}. With propagation enabled, the tables are closed
/// under:
///   C1 ⊆ C2, C2 ⊆ C3            =>  C1 ⊆ C3
///   C1 ⊆ C2, disjoint(C2, C3)   =>  disjoint(C1, C3)
PairTables BuildPairTables(const Schema& schema,
                           const PairTableOptions& options = {});

}  // namespace car

#endif  // CAR_ANALYSIS_PAIR_TABLES_H_
