#ifndef CAR_ANALYSIS_CLUSTERS_H_
#define CAR_ANALYSIS_CLUSTERS_H_

#include <string>
#include <vector>

#include "analysis/pair_tables.h"
#include "model/schema.h"

namespace car {

/// A partition of the classes of a schema into clusters such that classes
/// in different clusters may be assumed pairwise disjoint without
/// affecting class satisfiability (Theorem 4.6 and the cluster discussion
/// of Section 4.3).
struct ClusterPartition {
  /// cluster_of[class_id] is the cluster index of the class.
  std::vector<int> cluster_of;
  /// clusters[k] lists the classes of cluster k, in increasing id order.
  std::vector<std::vector<ClassId>> clusters;

  int num_clusters() const { return static_cast<int>(clusters.size()); }
  size_t LargestClusterSize() const;
  std::string Summary(const Schema& schema) const;
};

/// Builds the undirected graph G_S of Section 4.3 and returns its
/// connected components as clusters.
///
/// Arcs connect classes whose *co-membership in one object may be required
/// by some model*. We implement a sound superset of the paper's three arc
/// conditions (the paper's sketch omits some participation- and
/// cross-definition-induced requirements; see DESIGN.md):
///
///  1. isa:  C2 appears positively in the isa formula of C1.
///  2. per attribute A, the "target side" classes form a clique:
///     classes appearing positively in the range of any direct A-spec,
///     together with classes owning an (inv A)-spec.
///  3. per attribute A, the "source side" classes form a clique:
///     classes owning a direct A-spec, together with classes appearing
///     positively in the range of any (inv A)-spec.
///  4. per relation role R[U], a clique over: classes appearing positively
///     in a formula associated with U in any role-clause of R, together
///     with classes having a participation R[U] : (x, y) with x >= 1.
///
/// Arcs between pairs recorded as disjoint in `tables` are removed
/// (criterion (a) dominates). Classes in different connected components
/// are then treated as disjoint by the expansion.
ClusterPartition ComputeClusters(const Schema& schema,
                                 const PairTables& tables);

/// The trivial partition: every class in one single cluster (used by the
/// exhaustive strategy and as a baseline in benchmarks).
ClusterPartition SingleCluster(const Schema& schema);

}  // namespace car

#endif  // CAR_ANALYSIS_CLUSTERS_H_
