#include "analysis/analyzer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "base/strings.h"
#include "model/cardinality.h"

namespace car {

namespace {

/// Anchor for findings about a class's isa part: the isa declaration
/// when the parser recorded one, else the class-name token.
SourceSpan IsaAnchor(const ClassDefinition& definition) {
  return definition.isa_span.known() ? definition.isa_span
                                     : definition.span;
}

std::string TermName(const Schema& schema, const AttributeTerm& term) {
  return term.inverse
             ? StrCat("(inv ", schema.AttributeName(term.attribute), ")")
             : schema.AttributeName(term.attribute);
}

std::string BoundText(const Cardinality& bound) {
  // Renders possibly-empty intervals, which Cardinality::ToString (built
  // for validated intervals) also handles.
  return bound.ToString();
}

/// True when `formula` is provably unsatisfiable for every object: some
/// clause consists solely of positive literals naming statically-empty
/// classes. Negative literals block the certificate — an object outside
/// D satisfies ¬D unless D covers the whole domain, which no sound
/// static rule can establish.
bool FormulaEmptyForAll(const ClassFormula& formula,
                        const std::vector<char>& class_unsat) {
  for (const ClassClause& clause : formula.clauses()) {
    if (clause.literals().empty()) continue;  // Rejected by Validate.
    bool all_dead = true;
    for (const ClassLiteral& literal : clause.literals()) {
      if (literal.negated || !class_unsat[literal.class_id]) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) return true;
  }
  return false;
}

/// The classes whose specs constrain every instance of `class_id`: the
/// class itself plus its propagated superclasses, in deterministic
/// (self-first, then ascending) order.
std::vector<ClassId> SelfAndSupers(const PairTables& tables,
                                   ClassId class_id) {
  std::vector<ClassId> result;
  result.push_back(class_id);
  for (ClassId super : tables.SuperclassesOf(class_id)) {
    if (super != class_id) result.push_back(super);
  }
  return result;
}

Diagnostic MakeDiagnostic(DiagnosticSeverity severity, std::string rule,
                          std::string symbol, SourceSpan span,
                          std::string message) {
  Diagnostic diagnostic;
  diagnostic.severity = severity;
  diagnostic.rule = std::move(rule);
  diagnostic.symbol = std::move(symbol);
  diagnostic.span = span;
  diagnostic.message = std::move(message);
  return diagnostic;
}

/// One round of the emptiness rules for class `c`; returns the first
/// cause (in fixed rule order) that certifies the class empty, or
/// nullopt. The rules are sound for finite and unrestricted models
/// alike; see the contract in analyzer.h.
std::optional<Diagnostic> FindEmptinessCause(const Schema& schema,
                                             const SchemaAnalysis& analysis,
                                             ClassId c) {
  const ClassDefinition& definition = schema.class_definition(c);
  const std::string& name = schema.ClassName(c);
  const PairTables& tables = analysis.tables;

  // Rule 1: self-disjointness. The propagated tables reduce both the
  // direct `C isa !C` form and every inherited-disjointness
  // contradiction (C ⊆ A, C ⊆ B, disjoint(A, B)) to disjoint(C, C).
  if (tables.AreDisjoint(c, c)) {
    return MakeDiagnostic(
        DiagnosticSeverity::kError, "disjoint-contradiction", name,
        IsaAnchor(definition),
        StrCat("class '", name,
               "' is disjoint from itself (isa/disjointness propagation); "
               "it can have no instances"));
  }

  // Rule 2: inclusion in a statically-empty class.
  for (ClassId super : tables.SuperclassesOf(c)) {
    if (analysis.class_unsat[super]) {
      return MakeDiagnostic(
          DiagnosticSeverity::kError, "inherited-unsatisfiable", name,
          IsaAnchor(definition),
          StrCat("every instance of '", name,
                 "' would be an instance of the unsatisfiable class '",
                 schema.ClassName(super), "'"));
    }
  }

  // Rule 3: an isa clause no instance of C can satisfy. A positive
  // literal D is falsified when C and D are provably disjoint or D is
  // empty; a negative literal !D when every C-instance is provably in D.
  for (const ClassClause& clause : definition.isa.clauses()) {
    if (clause.literals().empty()) continue;
    bool all_falsified = true;
    for (const ClassLiteral& literal : clause.literals()) {
      bool falsified;
      if (literal.negated) {
        falsified = literal.class_id == c ||
                    tables.IsIncluded(c, literal.class_id);
      } else {
        falsified = analysis.class_unsat[literal.class_id] ||
                    (literal.class_id != c &&
                     tables.AreDisjoint(c, literal.class_id));
      }
      if (!falsified) {
        all_falsified = false;
        break;
      }
    }
    if (all_falsified) {
      return MakeDiagnostic(
          DiagnosticSeverity::kError, "falsified-isa", name,
          IsaAnchor(definition),
          StrCat("an isa clause of class '", name,
                 "' is falsified for every possible instance"));
    }
  }

  // Rules 4-7 combine the specs every C-instance inherits (its own and
  // its propagated superclasses').
  std::map<AttributeTerm, Cardinality> attribute_bounds;
  std::map<std::pair<RelationId, RoleId>, Cardinality> participation_bounds;
  std::map<AttributeTerm, SourceSpan> local_attribute_spans;
  std::map<std::pair<RelationId, RoleId>, SourceSpan>
      local_participation_spans;
  for (ClassId owner : SelfAndSupers(tables, c)) {
    const ClassDefinition& owner_definition = schema.class_definition(owner);
    for (const AttributeSpec& spec : owner_definition.attributes) {
      auto [it, inserted] =
          attribute_bounds.emplace(spec.term, spec.cardinality);
      if (!inserted) {
        it->second =
            Cardinality::IntersectUnchecked(it->second, spec.cardinality);
      }
      if (owner == c) local_attribute_spans.emplace(spec.term, spec.span);

      // Rule 6: a required link into a provably empty range.
      if (spec.cardinality.min() >= 1 &&
          FormulaEmptyForAll(spec.range, analysis.class_unsat)) {
        return MakeDiagnostic(
            DiagnosticSeverity::kError, "dead-range", name,
            owner == c ? spec.span : definition.span,
            StrCat("every instance of class '", name, "' needs at least ",
                   spec.cardinality.min(), " ",
                   TermName(schema, spec.term),
                   "-successor(s), but the declared range is provably "
                   "empty"));
      }
    }
    for (const ParticipationSpec& spec : owner_definition.participations) {
      std::pair<RelationId, RoleId> key(spec.relation, spec.role);
      auto [it, inserted] =
          participation_bounds.emplace(key, spec.cardinality);
      if (!inserted) {
        it->second =
            Cardinality::IntersectUnchecked(it->second, spec.cardinality);
      }
      if (owner == c) local_participation_spans.emplace(key, spec.span);

      // Rule 7: a required participation in a provably empty relation.
      if (spec.cardinality.min() >= 1 &&
          analysis.relation_dead[spec.relation]) {
        return MakeDiagnostic(
            DiagnosticSeverity::kError, "dead-participation", name,
            owner == c ? spec.span : definition.span,
            StrCat("every instance of class '", name,
                   "' must participate in relation '",
                   schema.RelationName(spec.relation), "' as ",
                   schema.RoleName(spec.role), " (min ",
                   spec.cardinality.min(),
                   "), but that relation can contain no tuples"));
      }
    }
  }

  // Rule 4: empty inherited attribute-cardinality interval (the classic
  // min > max through ISA, including inverse attribute terms).
  for (const auto& [term, bound] : attribute_bounds) {
    if (!bound.IsEmpty()) continue;
    auto local = local_attribute_spans.find(term);
    return MakeDiagnostic(
        DiagnosticSeverity::kError, "cardinality-contradiction", name,
        local != local_attribute_spans.end() ? local->second
                                             : definition.span,
        StrCat("class '", name, "' inherits contradictory cardinalities "
               "for attribute ", TermName(schema, term),
               ": the combined interval ", BoundText(bound),
               " has min above max"));
  }

  // Rule 5: empty inherited participation interval.
  for (const auto& [key, bound] : participation_bounds) {
    if (!bound.IsEmpty()) continue;
    auto local = local_participation_spans.find(key);
    return MakeDiagnostic(
        DiagnosticSeverity::kError, "cardinality-contradiction", name,
        local != local_participation_spans.end() ? local->second
                                                 : definition.span,
        StrCat("class '", name, "' inherits contradictory participation "
               "cardinalities for ", schema.RelationName(key.first), "[",
               schema.RoleName(key.second), "]: the combined interval ",
               BoundText(bound), " has min above max"));
  }

  return std::nullopt;
}

/// Monotone fixpoint of the emptiness rules over classes and relations.
/// The flag sets are confluent (each rule is monotone in the flags), and
/// the fixed iteration order makes the recorded causes deterministic.
void ComputeEmptiness(const Schema& schema, bool lint,
                      SchemaAnalysis* analysis) {
  analysis->class_unsat.assign(schema.num_classes(), 0);
  analysis->relation_dead.assign(schema.num_relations(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (RelationId r = 0; r < schema.num_relations(); ++r) {
      if (analysis->relation_dead[r]) continue;
      const RelationDefinition* definition = schema.relation_definition(r);
      if (definition == nullptr) continue;
      for (const RoleClause& clause : definition->constraints) {
        if (clause.literals.empty()) continue;
        bool dead = true;
        for (const RoleLiteral& literal : clause.literals) {
          if (!FormulaEmptyForAll(literal.formula, analysis->class_unsat)) {
            dead = false;
            break;
          }
        }
        if (dead) {
          analysis->relation_dead[r] = 1;
          changed = true;
          if (lint) {
            analysis->diagnostics.push_back(MakeDiagnostic(
                DiagnosticSeverity::kWarning, "dead-relation",
                schema.RelationName(r), definition->span,
                StrCat("relation '", schema.RelationName(r),
                       "' can contain no tuples: a role clause admits no "
                       "tuple (every formula in it is provably empty)")));
          }
          break;
        }
      }
    }
    for (ClassId c = 0; c < schema.num_classes(); ++c) {
      if (analysis->class_unsat[c]) continue;
      std::optional<Diagnostic> cause =
          FindEmptinessCause(schema, *analysis, c);
      if (cause.has_value()) {
        analysis->class_unsat[c] = 1;
        changed = true;
        if (lint) analysis->diagnostics.push_back(std::move(*cause));
      }
    }
  }
}

std::vector<std::vector<ClassId>> BuildDependsOn(const Schema& schema) {
  std::vector<std::vector<ClassId>> result(schema.num_classes());
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassDefinition& definition = schema.class_definition(c);
    std::set<ClassId> deps;
    auto add_formula = [&deps](const ClassFormula& formula) {
      for (ClassId mentioned : formula.MentionedClasses()) {
        deps.insert(mentioned);
      }
    };
    add_formula(definition.isa);
    for (const AttributeSpec& spec : definition.attributes) {
      add_formula(spec.range);
    }
    for (const ParticipationSpec& spec : definition.participations) {
      const RelationDefinition* relation =
          schema.relation_definition(spec.relation);
      if (relation == nullptr) continue;
      for (const RoleClause& clause : relation->constraints) {
        for (const RoleLiteral& literal : clause.literals) {
          add_formula(literal.formula);
        }
      }
    }
    deps.erase(c);
    result[c].assign(deps.begin(), deps.end());
  }
  return result;
}

/// isa-cycle: groups of mutually-included classes. Mutual inclusion in
/// the propagated tables arises exactly from cycles of single-literal
/// positive isa clauses, so this is the SCC check on the inclusion edges
/// without a second graph traversal.
void LintIsaCycles(const Schema& schema, SchemaAnalysis* analysis) {
  std::vector<char> grouped(schema.num_classes(), 0);
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (grouped[c]) continue;
    std::vector<ClassId> group(1, c);
    for (ClassId super : analysis->tables.SuperclassesOf(c)) {
      if (super != c && analysis->tables.IsIncluded(super, c)) {
        group.push_back(super);
      }
    }
    if (group.size() < 2) continue;
    std::sort(group.begin(), group.end());
    std::string members;
    for (ClassId member : group) {
      grouped[member] = 1;
      if (!members.empty()) members += ", ";
      members += StrCat("'", schema.ClassName(member), "'");
    }
    analysis->diagnostics.push_back(MakeDiagnostic(
        DiagnosticSeverity::kWarning, "isa-cycle", schema.ClassName(c),
        IsaAnchor(schema.class_definition(c)),
        StrCat("classes ", members,
               " form an isa cycle: mutual inclusion forces identical "
               "extensions in every model")));
  }
}

/// redundant-isa: a direct isa edge C ⊆ D already implied by the other
/// direct edges (including the trivial self-edge).
void LintRedundantIsa(const Schema& schema, SchemaAnalysis* analysis) {
  struct Edge {
    int clause_index;
    ClassId target;
  };
  std::vector<std::vector<Edge>> edges(schema.num_classes());
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassFormula& isa = schema.class_definition(c).isa;
    for (size_t k = 0; k < isa.clauses().size(); ++k) {
      const ClassClause& clause = isa.clauses()[k];
      if (clause.literals().size() != 1 || clause.literals()[0].negated) {
        continue;
      }
      edges[c].push_back(
          {static_cast<int>(k), clause.literals()[0].class_id});
    }
  }
  std::vector<char> visited(schema.num_classes(), 0);
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassDefinition& definition = schema.class_definition(c);
    for (const Edge& edge : edges[c]) {
      if (edge.target == c) {
        analysis->diagnostics.push_back(MakeDiagnostic(
            DiagnosticSeverity::kNote, "redundant-isa", schema.ClassName(c),
            IsaAnchor(definition),
            StrCat("class '", schema.ClassName(c),
                   "' declares isa itself (trivially redundant)")));
        continue;
      }
      // Reachability of the edge's target without using this edge.
      std::fill(visited.begin(), visited.end(), 0);
      std::vector<ClassId> stack(1, c);
      visited[c] = 1;
      while (!stack.empty()) {
        ClassId u = stack.back();
        stack.pop_back();
        for (const Edge& next : edges[u]) {
          if (u == c && next.clause_index == edge.clause_index) continue;
          if (next.target == u) continue;
          if (!visited[next.target]) {
            visited[next.target] = 1;
            stack.push_back(next.target);
          }
        }
      }
      if (visited[edge.target]) {
        analysis->diagnostics.push_back(MakeDiagnostic(
            DiagnosticSeverity::kNote, "redundant-isa", schema.ClassName(c),
            IsaAnchor(definition),
            StrCat("isa '", schema.ClassName(edge.target), "' of class '",
                   schema.ClassName(c),
                   "' is already implied by the remaining isa "
                   "declarations")));
      }
    }
  }
}

/// duplicate-literal / tautological-clause over every formula position.
void LintClauseHygiene(const Schema& schema, SchemaAnalysis* analysis) {
  auto scan = [analysis](const ClassFormula& formula, const SourceSpan& span,
                         const std::string& symbol,
                         const std::string& where) {
    for (const ClassClause& clause : formula.clauses()) {
      std::set<std::pair<ClassId, bool>> seen;
      bool duplicated = false;
      bool tautological = false;
      for (const ClassLiteral& literal : clause.literals()) {
        if (!seen.emplace(literal.class_id, literal.negated).second) {
          duplicated = true;
        }
        if (seen.count({literal.class_id, !literal.negated}) != 0) {
          tautological = true;
        }
      }
      if (tautological) {
        analysis->diagnostics.push_back(MakeDiagnostic(
            DiagnosticSeverity::kNote, "tautological-clause", symbol, span,
            StrCat("a clause in ", where,
                   " contains a literal and its negation and is always "
                   "true")));
      } else if (duplicated) {
        analysis->diagnostics.push_back(MakeDiagnostic(
            DiagnosticSeverity::kNote, "duplicate-literal", symbol, span,
            StrCat("a clause in ", where, " repeats a literal")));
      }
    }
  };
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassDefinition& definition = schema.class_definition(c);
    const std::string& name = schema.ClassName(c);
    scan(definition.isa, IsaAnchor(definition), name,
         StrCat("the isa of class '", name, "'"));
    for (const AttributeSpec& spec : definition.attributes) {
      scan(spec.range,
           spec.span.known() ? spec.span : definition.span, name,
           StrCat("the range of attribute ", TermName(schema, spec.term),
                  " in class '", name, "'"));
    }
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    if (definition == nullptr) continue;
    const std::string& name = schema.RelationName(r);
    for (const RoleClause& clause : definition->constraints) {
      for (const RoleLiteral& literal : clause.literals) {
        scan(literal.formula, definition->span, name,
             StrCat("a role clause of relation '", name, "'"));
      }
    }
  }
}

}  // namespace

size_t SchemaAnalysis::num_unsat_classes() const {
  size_t count = 0;
  for (char flag : class_unsat) {
    if (flag != 0) ++count;
  }
  return count;
}

SchemaAnalysis AnalyzeSchema(const Schema& schema,
                             const AnalyzerOptions& options) {
  SchemaAnalysis analysis(schema.num_classes());
  analysis.tables = BuildPairTables(schema, options.tables);
  analysis.clusters = ComputeClusters(schema, analysis.tables);
  analysis.depends_on = BuildDependsOn(schema);
  ComputeEmptiness(schema, options.lint, &analysis);
  if (options.lint) {
    LintIsaCycles(schema, &analysis);
    LintRedundantIsa(schema, &analysis);
    LintClauseHygiene(schema, &analysis);
    SortDiagnostics(&analysis.diagnostics);
  }
  return analysis;
}

}  // namespace car
