#ifndef CAR_ANALYSIS_ANALYZER_H_
#define CAR_ANALYSIS_ANALYZER_H_

#include <vector>

#include "analysis/clusters.h"
#include "analysis/diagnostics.h"
#include "analysis/pair_tables.h"
#include "model/schema.h"

namespace car {

struct AnalyzerOptions {
  PairTableOptions tables;
  /// Emit lint diagnostics (cycles, redundancies, contradictions with
  /// messages). The structural artifacts — tables, clusters, unsat
  /// flags, dependency adjacency — are always computed; turning lint
  /// off skips only the message construction and the per-edge
  /// redundancy scan, for the always-on prefilter use.
  bool lint = true;
};

/// The result of the linear-time static pass over a (validated) schema:
/// the paper's preselection structures promoted to a reusable artifact,
/// plus sound satisfiability verdicts and lint findings.
///
/// Soundness contract relied on by the prefilter tiers and enforced by
/// the differential tests:
///  - class_unsat[c] == true implies the reasoner (finite and
///    unrestricted alike) reports class c unsatisfiable. The rules only
///    certify emptiness that holds in *every* model: self-disjointness
///    from the propagated pair tables, inclusion in an unsat class,
///    an isa clause every literal of which is falsified, an empty
///    inherited cardinality interval, and required links into provably
///    empty ranges/relations. The converse is NOT true: a false flag
///    means "not statically certified", never "satisfiable".
///  - relation_dead[r] == true implies relation r is empty in every
///    model (some role clause admits no tuple).
struct SchemaAnalysis {
  explicit SchemaAnalysis(int num_classes) : tables(num_classes) {}

  PairTables tables;
  ClusterPartition clusters;
  /// Statically certified empty classes (see soundness contract).
  std::vector<char> class_unsat;
  /// Statically certified empty relations.
  std::vector<char> relation_dead;
  /// Dependency adjacency for cluster-local reasoning: depends_on[c]
  /// lists every class whose interpretation the constraints on c's
  /// instances can mention — classes in c's isa formula, classes in the
  /// ranges of c's attribute specs, and classes in the role clauses of
  /// every relation c participates in. A sub-schema closed under this
  /// adjacency decides satisfiability of its classes exactly as the
  /// full schema does (see DESIGN.md §5f): a model of the sub-schema
  /// extends to the full schema by interpreting everything dropped as
  /// the empty set, and a full model restricts to the sub-schema.
  std::vector<std::vector<ClassId>> depends_on;
  /// Lint findings, deterministically sorted (SortDiagnostics order).
  /// Empty when AnalyzerOptions::lint is off.
  std::vector<Diagnostic> diagnostics;

  size_t num_unsat_classes() const;
};

/// Runs the static pass. Precondition: schema.Validate() succeeded (the
/// parser guarantees this for parsed schemas); ids out of range are
/// undefined behavior here, exactly as in the expansion.
SchemaAnalysis AnalyzeSchema(const Schema& schema,
                             const AnalyzerOptions& options = {});

}  // namespace car

#endif  // CAR_ANALYSIS_ANALYZER_H_
