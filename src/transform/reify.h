#ifndef CAR_TRANSFORM_REIFY_H_
#define CAR_TRANSFORM_REIFY_H_

#include <map>
#include <string>

#include "base/result.h"
#include "model/schema.h"

namespace car {

struct ReifyOptions {
  /// Add explicit isa disjointness (¬C clauses) between each fresh tuple
  /// class and every other class, as the paper's Theorem 4.5 construction
  /// prescribes ("the newly introduced classes are pairwise disjoint and
  /// disjoint from the other classes"). When false, the same effect is
  /// obtained implicitly by the cluster decomposition, but only under the
  /// pruned expansion strategy.
  bool add_explicit_disjointness = true;
  /// Relations with arity above this bound are reified (the theorem
  /// targets nonbinary relations; 2 is the paper's setting).
  int max_kept_arity = 2;
};

/// The result of reifying a schema.
struct ReifiedSchema {
  Schema schema;
  /// Name of the fresh tuple class per reified relation (by original
  /// relation name).
  std::map<std::string, std::string> tuple_class_of;
  /// Name of the fresh binary relation per (original relation, role).
  std::map<std::pair<std::string, std::string>, std::string> binary_of;
  int num_reified = 0;
};

/// Implements Theorem 4.5: every relation R of arity K above the kept
/// bound — provided all its role-clauses consist of a single role-literal
/// — is replaced by a fresh class C_R and K binary relations R_k, one per
/// role U_k, with roles (__tuple, U_k):
///
///   * C_R participates in every R_k[__tuple] with cardinality (1, 1), so
///     each C_R object stands for one tuple with exactly one link per
///     role;
///   * every R_k carries the role clauses (__tuple : C_R) and, when R had
///     the constraint (U_k : F), also (U_k : F);
///   * every participation R[U_k] : (x, y) in a class definition becomes
///     R_k[U_k] : (x, y).
///
/// Class ids are preserved (fresh classes are appended), so formulae need
/// no rewriting; the transformation is linear in the size of the schema
/// (plus the optional explicit-disjointness clauses) and preserves class
/// satisfiability for all original classes.
///
/// Returns kUnsupported if some to-be-reified relation has a disjunctive
/// role-clause (outside the theorem's hypothesis).
Result<ReifiedSchema> ReifyNonBinaryRelations(const Schema& schema,
                                              const ReifyOptions& options = {});

}  // namespace car

#endif  // CAR_TRANSFORM_REIFY_H_
