#include "transform/reify.h"

#include <set>
#include <utility>

#include "base/strings.h"

namespace car {

namespace {

std::string FreshClassName(const Schema& schema, const std::string& base) {
  std::string name = base;
  int suffix = 0;
  while (schema.LookupClass(name) != kInvalidId) {
    name = StrCat(base, "_", ++suffix);
  }
  return name;
}

std::string FreshRelationName(const Schema& schema, const std::string& base) {
  std::string name = base;
  int suffix = 0;
  while (schema.LookupRelation(name) != kInvalidId) {
    name = StrCat(base, "_", ++suffix);
  }
  return name;
}

}  // namespace

Result<ReifiedSchema> ReifyNonBinaryRelations(const Schema& schema,
                                              const ReifyOptions& options) {
  CAR_RETURN_IF_ERROR(schema.Validate());

  ReifiedSchema result;
  Schema& out = result.schema;

  // Preserve class ids so formulae can be copied verbatim.
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    out.InternClass(schema.ClassName(c));
  }
  const int num_original_classes = schema.num_classes();

  // Decide per relation and build relation-level artifacts.
  struct Plan {
    bool reify = false;
    ClassId tuple_class = kInvalidId;
    // Per original role index: the fresh binary relation id in `out` and
    // the role id of the original role inside it.
    std::vector<RelationId> binary;
    std::vector<RoleId> role_in_binary;
    RoleId tuple_role = kInvalidId;
  };
  std::vector<Plan> plans(schema.num_relations());

  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    Plan& plan = plans[r];
    if (definition->arity() <= options.max_kept_arity) {
      // Kept as-is: intern and copy, remapping role ids by name.
      RelationDefinition copy;
      copy.relation_id = out.InternRelation(schema.RelationName(r));
      for (RoleId role : definition->roles) {
        copy.roles.push_back(out.InternRole(schema.RoleName(role)));
      }
      for (const RoleClause& clause : definition->constraints) {
        RoleClause out_clause;
        for (const RoleLiteral& literal : clause.literals) {
          RoleLiteral out_literal;
          out_literal.role = out.InternRole(schema.RoleName(literal.role));
          out_literal.formula = literal.formula;
          out_clause.literals.push_back(std::move(out_literal));
        }
        copy.constraints.push_back(std::move(out_clause));
      }
      CAR_RETURN_IF_ERROR(out.SetRelationDefinition(std::move(copy)));
      continue;
    }

    // Reify. The theorem requires single-literal role-clauses.
    for (const RoleClause& clause : definition->constraints) {
      if (clause.literals.size() != 1) {
        return Unsupported(StrCat(
            "relation '", schema.RelationName(r), "' has arity ",
            definition->arity(),
            " and a disjunctive role-clause; Theorem 4.5 does not apply"));
      }
    }
    plan.reify = true;
    ++result.num_reified;

    std::string class_name = FreshClassName(
        out, StrCat("__reify_", schema.RelationName(r)));
    plan.tuple_class = out.InternClass(class_name);
    result.tuple_class_of[schema.RelationName(r)] = class_name;
    plan.tuple_role = out.InternRole("__tuple");

    // One binary relation per role, each constrained to link the tuple
    // class to whatever the original role-clauses demanded of that role.
    for (int k = 0; k < definition->arity(); ++k) {
      RoleId original_role = definition->roles[k];
      std::string binary_name = FreshRelationName(
          out, StrCat(schema.RelationName(r), "__",
                      schema.RoleName(original_role)));
      RelationDefinition binary;
      binary.relation_id = out.InternRelation(binary_name);
      RoleId out_role = out.InternRole(schema.RoleName(original_role));
      binary.roles = {plan.tuple_role, out_role};
      result.binary_of[{schema.RelationName(r),
                        schema.RoleName(original_role)}] = binary_name;

      RoleClause tuple_clause;
      RoleLiteral tuple_literal;
      tuple_literal.role = plan.tuple_role;
      tuple_literal.formula = ClassFormula::OfClass(plan.tuple_class);
      tuple_clause.literals.push_back(std::move(tuple_literal));
      binary.constraints.push_back(std::move(tuple_clause));

      for (const RoleClause& clause : definition->constraints) {
        const RoleLiteral& literal = clause.literals[0];
        if (literal.role != original_role) continue;
        RoleClause out_clause;
        RoleLiteral out_literal;
        out_literal.role = out_role;
        out_literal.formula = literal.formula;
        out_clause.literals.push_back(std::move(out_literal));
        binary.constraints.push_back(std::move(out_clause));
      }
      plan.binary.push_back(binary.relation_id);
      plan.role_in_binary.push_back(out_role);
      CAR_RETURN_IF_ERROR(out.SetRelationDefinition(std::move(binary)));
    }

    // The tuple class: exactly one link per role.
    ClassDefinition* tuple_definition =
        out.mutable_class_definition(plan.tuple_class);
    for (int k = 0; k < definition->arity(); ++k) {
      ParticipationSpec spec;
      spec.relation = plan.binary[k];
      spec.role = plan.tuple_role;
      spec.cardinality = Cardinality::Exactly(1);
      tuple_definition->participations.push_back(spec);
    }
  }

  // Explicit pairwise disjointness of tuple classes from everything else.
  if (options.add_explicit_disjointness) {
    for (const Plan& plan : plans) {
      if (!plan.reify) continue;
      ClassDefinition* definition =
          out.mutable_class_definition(plan.tuple_class);
      for (ClassId other = 0; other < out.num_classes(); ++other) {
        if (other == plan.tuple_class) continue;
        if (other >= num_original_classes) {
          // Another tuple class: only add the clause in one direction to
          // avoid duplicating the constraint.
          if (other > plan.tuple_class) continue;
        }
        definition->isa.AddClause(
            ClassClause::Of(ClassLiteral::Negative(other)));
      }
    }
  }

  // Copy class definitions, rewriting participations of reified relations.
  for (ClassId c = 0; c < num_original_classes; ++c) {
    const ClassDefinition& original = schema.class_definition(c);
    ClassDefinition* definition = out.mutable_class_definition(c);
    definition->isa = original.isa;
    definition->attributes = original.attributes;
    for (const ParticipationSpec& spec : original.participations) {
      const Plan& plan = plans[spec.relation];
      ParticipationSpec out_spec;
      out_spec.cardinality = spec.cardinality;
      if (!plan.reify) {
        out_spec.relation =
            out.LookupRelation(schema.RelationName(spec.relation));
        out_spec.role = out.InternRole(schema.RoleName(spec.role));
      } else {
        const RelationDefinition* original_definition =
            schema.relation_definition(spec.relation);
        int index = original_definition->RoleIndex(spec.role);
        CAR_CHECK_GE(index, 0);
        out_spec.relation = plan.binary[index];
        out_spec.role = plan.role_in_binary[index];
      }
      definition->participations.push_back(out_spec);
    }
  }

  // Attribute symbols: re-intern all names so ids stay aligned with the
  // original schema (attribute specs were copied verbatim above).
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    out.InternAttribute(schema.AttributeName(a));
  }

  CAR_RETURN_IF_ERROR(out.Validate());
  return result;
}

}  // namespace car
