#ifndef CAR_MODEL_CARDINALITY_H_
#define CAR_MODEL_CARDINALITY_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "base/check.h"
#include "base/strings.h"

namespace car {

/// A cardinality constraint interval (u, v): at least u and at most v
/// links of a given type per instance (paper, Section 2.2). u is a
/// nonnegative integer; v is a nonnegative integer or infinity.
class Cardinality {
 public:
  /// Sentinel for the paper's special value "infinity".
  static constexpr uint64_t kInfinity = ~0ull;

  /// Constructs the unconstrained interval (0, infinity).
  Cardinality() : min_(0), max_(kInfinity) {}

  Cardinality(uint64_t min, uint64_t max) : min_(min), max_(max) {
    CAR_CHECK_LE(min, max);
  }

  static Cardinality AtLeast(uint64_t min) {
    return Cardinality(min, kInfinity);
  }
  static Cardinality AtMost(uint64_t max) { return Cardinality(0, max); }
  static Cardinality Exactly(uint64_t count) {
    return Cardinality(count, count);
  }
  static Cardinality Unbounded() { return Cardinality(); }

  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  bool has_finite_max() const { return max_ != kInfinity; }

  /// Returns true if the interval admits no count at all (never happens
  /// for a single Cardinality, but intersections can be empty).
  bool IsEmpty() const { return min_ > max_; }

  /// Intersects two intervals: the combined constraint (umax, vmin) used
  /// when several definitions constrain the same links (Definition 3.1,
  /// the Natt / Nrel construction). The result may be empty.
  static Cardinality IntersectUnchecked(const Cardinality& a,
                                        const Cardinality& b);

  bool Contains(uint64_t count) const {
    return count >= min_ && count <= max_;
  }

  /// Renders "(u, v)" with "*" for infinity.
  std::string ToString() const {
    return StrCat("(", min_, ", ",
                  has_finite_max() ? StrCat(max_) : std::string("*"), ")");
  }

  bool operator==(const Cardinality& other) const {
    return min_ == other.min_ && max_ == other.max_;
  }
  bool operator!=(const Cardinality& other) const {
    return !(*this == other);
  }

 private:
  // Private so IsEmpty() intervals can only arise via IntersectUnchecked.
  struct UncheckedTag {};
  Cardinality(uint64_t min, uint64_t max, UncheckedTag)
      : min_(min), max_(max) {}

  uint64_t min_;
  uint64_t max_;
};

inline Cardinality Cardinality::IntersectUnchecked(const Cardinality& a,
                                                   const Cardinality& b) {
  uint64_t min = a.min_ > b.min_ ? a.min_ : b.min_;
  uint64_t max = a.max_ < b.max_ ? a.max_ : b.max_;
  return Cardinality(min, max, UncheckedTag());
}

inline std::ostream& operator<<(std::ostream& os, const Cardinality& c) {
  return os << c.ToString();
}

}  // namespace car

#endif  // CAR_MODEL_CARDINALITY_H_
