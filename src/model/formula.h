#ifndef CAR_MODEL_FORMULA_H_
#define CAR_MODEL_FORMULA_H_

#include <string>
#include <vector>

#include "model/symbols.h"

namespace car {

/// A class-literal: a class symbol C or its complement ¬C (paper, §2.2).
struct ClassLiteral {
  ClassId class_id = kInvalidId;
  bool negated = false;

  static ClassLiteral Positive(ClassId id) { return {id, false}; }
  static ClassLiteral Negative(ClassId id) { return {id, true}; }

  ClassLiteral Complement() const { return {class_id, !negated}; }

  bool operator==(const ClassLiteral& other) const {
    return class_id == other.class_id && negated == other.negated;
  }
};

/// A class-clause: a disjunction L1 ∨ ... ∨ Lm of class-literals.
class ClassClause {
 public:
  ClassClause() = default;
  explicit ClassClause(std::vector<ClassLiteral> literals)
      : literals_(std::move(literals)) {}

  static ClassClause Of(ClassLiteral literal) {
    return ClassClause({literal});
  }

  const std::vector<ClassLiteral>& literals() const { return literals_; }
  bool empty() const { return literals_.empty(); }

  void AddLiteral(ClassLiteral literal) { literals_.push_back(literal); }

  bool operator==(const ClassClause& other) const {
    return literals_ == other.literals_;
  }

 private:
  std::vector<ClassLiteral> literals_;
};

/// A class-formula: a conjunction γ1 ∧ ... ∧ γn of class-clauses (CNF).
/// The empty formula is the trivially true formula (no constraints).
class ClassFormula {
 public:
  ClassFormula() = default;
  explicit ClassFormula(std::vector<ClassClause> clauses)
      : clauses_(std::move(clauses)) {}

  /// A formula that every object satisfies.
  static ClassFormula True() { return ClassFormula(); }

  /// The formula consisting of the single positive literal C.
  static ClassFormula OfClass(ClassId id) {
    return ClassFormula({ClassClause::Of(ClassLiteral::Positive(id))});
  }

  /// The formula consisting of the single negative literal ¬C.
  static ClassFormula OfNegatedClass(ClassId id) {
    return ClassFormula({ClassClause::Of(ClassLiteral::Negative(id))});
  }

  const std::vector<ClassClause>& clauses() const { return clauses_; }
  bool IsTriviallyTrue() const { return clauses_.empty(); }

  void AddClause(ClassClause clause) { clauses_.push_back(std::move(clause)); }

  /// Conjoins another formula onto this one.
  void AndWith(const ClassFormula& other) {
    for (const ClassClause& clause : other.clauses()) {
      clauses_.push_back(clause);
    }
  }

  /// Returns true if `negation_free`: no literal is negated.
  bool IsNegationFree() const;
  /// Returns true if `union_free`: every clause has exactly one literal.
  bool IsUnionFree() const;

  /// Collects all class ids mentioned (with duplicates removed).
  std::vector<ClassId> MentionedClasses() const;

  bool operator==(const ClassFormula& other) const {
    return clauses_ == other.clauses_;
  }

 private:
  std::vector<ClassClause> clauses_;
};

}  // namespace car

#endif  // CAR_MODEL_FORMULA_H_
