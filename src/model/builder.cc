#include "model/builder.h"

#include "base/strings.h"

namespace car {

SchemaBuilder& SchemaBuilder::DeclareClass(std::string_view name) {
  if (failed()) return *this;
  if (name.empty()) {
    Fail(InvalidArgument("class name must be nonempty"));
    return *this;
  }
  schema_.InternClass(name);
  return *this;
}

SchemaBuilder& SchemaBuilder::BeginClass(std::string_view name) {
  if (failed()) return *this;
  if (open_class_ != kInvalidId || relation_open_) {
    Fail(FailedPrecondition(
        StrCat("BeginClass('", name, "') inside an open definition")));
    return *this;
  }
  if (name.empty()) {
    Fail(InvalidArgument("class name must be nonempty"));
    return *this;
  }
  open_class_ = schema_.InternClass(name);
  return *this;
}

bool SchemaBuilder::ParseFormula(const FormulaSpec& spec, ClassFormula* out) {
  for (const ClauseSpec& clause_spec : spec) {
    if (clause_spec.empty()) {
      Fail(InvalidArgument("empty clause in formula specification"));
      return false;
    }
    ClassClause clause;
    for (const std::string& literal_text : clause_spec) {
      std::string_view text = literal_text;
      bool negated = false;
      if (!text.empty() && text[0] == '!') {
        negated = true;
        text.remove_prefix(1);
      }
      if (text.empty()) {
        Fail(InvalidArgument(
            StrCat("malformed literal '", literal_text, "'")));
        return false;
      }
      ClassId id = schema_.InternClass(text);
      clause.AddLiteral(negated ? ClassLiteral::Negative(id)
                                : ClassLiteral::Positive(id));
    }
    out->AddClause(std::move(clause));
  }
  return true;
}

SchemaBuilder& SchemaBuilder::Isa(const FormulaSpec& formula) {
  if (failed()) return *this;
  if (open_class_ == kInvalidId) {
    Fail(FailedPrecondition("Isa() outside a class definition"));
    return *this;
  }
  ClassFormula parsed;
  if (!ParseFormula(formula, &parsed)) return *this;
  schema_.mutable_class_definition(open_class_)->isa.AndWith(parsed);
  return *this;
}

SchemaBuilder& SchemaBuilder::Attribute(std::string_view name, uint64_t min,
                                        uint64_t max,
                                        const FormulaSpec& range) {
  if (failed()) return *this;
  if (open_class_ == kInvalidId) {
    Fail(FailedPrecondition("Attribute() outside a class definition"));
    return *this;
  }
  if (min > max) {
    Fail(InvalidArgument(StrCat("attribute '", name, "' has min ", min,
                                " > max ", max)));
    return *this;
  }
  AttributeSpec spec;
  spec.term = AttributeTerm::Direct(schema_.InternAttribute(name));
  spec.cardinality = Cardinality(min, max);
  if (!ParseFormula(range, &spec.range)) return *this;
  schema_.mutable_class_definition(open_class_)
      ->attributes.push_back(std::move(spec));
  return *this;
}

SchemaBuilder& SchemaBuilder::InverseAttribute(std::string_view name,
                                               uint64_t min, uint64_t max,
                                               const FormulaSpec& range) {
  if (failed()) return *this;
  if (open_class_ == kInvalidId) {
    Fail(FailedPrecondition(
        "InverseAttribute() outside a class definition"));
    return *this;
  }
  if (min > max) {
    Fail(InvalidArgument(StrCat("inverse attribute '", name, "' has min ",
                                min, " > max ", max)));
    return *this;
  }
  AttributeSpec spec;
  spec.term = AttributeTerm::Inverse(schema_.InternAttribute(name));
  spec.cardinality = Cardinality(min, max);
  if (!ParseFormula(range, &spec.range)) return *this;
  schema_.mutable_class_definition(open_class_)
      ->attributes.push_back(std::move(spec));
  return *this;
}

SchemaBuilder& SchemaBuilder::Participates(std::string_view relation,
                                           std::string_view role,
                                           uint64_t min, uint64_t max) {
  if (failed()) return *this;
  if (open_class_ == kInvalidId) {
    Fail(FailedPrecondition("Participates() outside a class definition"));
    return *this;
  }
  if (min > max) {
    Fail(InvalidArgument(StrCat("participation in ", relation, "[", role,
                                "] has min ", min, " > max ", max)));
    return *this;
  }
  ParticipationSpec spec;
  spec.relation = schema_.InternRelation(relation);
  spec.role = schema_.InternRole(role);
  spec.cardinality = Cardinality(min, max);
  schema_.mutable_class_definition(open_class_)
      ->participations.push_back(spec);
  return *this;
}

SchemaBuilder& SchemaBuilder::EndClass() {
  if (failed()) return *this;
  if (open_class_ == kInvalidId) {
    Fail(FailedPrecondition("EndClass() without BeginClass()"));
    return *this;
  }
  open_class_ = kInvalidId;
  return *this;
}

SchemaBuilder& SchemaBuilder::BeginRelation(
    std::string_view name, const std::vector<std::string>& roles) {
  if (failed()) return *this;
  if (open_class_ != kInvalidId || relation_open_) {
    Fail(FailedPrecondition(
        StrCat("BeginRelation('", name, "') inside an open definition")));
    return *this;
  }
  if (name.empty()) {
    Fail(InvalidArgument("relation name must be nonempty"));
    return *this;
  }
  open_relation_ = RelationDefinition();
  open_relation_.relation_id = schema_.InternRelation(name);
  for (const std::string& role : roles) {
    open_relation_.roles.push_back(schema_.InternRole(role));
  }
  relation_open_ = true;
  return *this;
}

SchemaBuilder& SchemaBuilder::Constraint(
    const std::vector<std::pair<std::string, FormulaSpec>>& literals) {
  if (failed()) return *this;
  if (!relation_open_) {
    Fail(FailedPrecondition("Constraint() outside a relation definition"));
    return *this;
  }
  RoleClause clause;
  for (const auto& [role_name, formula_spec] : literals) {
    RoleLiteral literal;
    literal.role = schema_.InternRole(role_name);
    if (!ParseFormula(formula_spec, &literal.formula)) return *this;
    clause.literals.push_back(std::move(literal));
  }
  open_relation_.constraints.push_back(std::move(clause));
  return *this;
}

SchemaBuilder& SchemaBuilder::EndRelation() {
  if (failed()) return *this;
  if (!relation_open_) {
    Fail(FailedPrecondition("EndRelation() without BeginRelation()"));
    return *this;
  }
  relation_open_ = false;
  Fail(schema_.SetRelationDefinition(std::move(open_relation_)));
  open_relation_ = RelationDefinition();
  return *this;
}

Result<Schema> SchemaBuilder::Build() && {
  if (failed()) return status_;
  if (open_class_ != kInvalidId) {
    return FailedPrecondition("Build() with an open class definition");
  }
  if (relation_open_) {
    return FailedPrecondition("Build() with an open relation definition");
  }
  CAR_RETURN_IF_ERROR(schema_.Validate());
  return std::move(schema_);
}

}  // namespace car
