#ifndef CAR_MODEL_SCHEMA_H_
#define CAR_MODEL_SCHEMA_H_

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "model/definitions.h"
#include "model/symbols.h"

namespace car {

/// A CAR schema: a collection of class and relation definitions over an
/// alphabet of class, attribute, relation and role symbols (paper,
/// Section 2.2).
///
/// Symbols are interned into dense ids. Every interned class has a
/// definition (a fresh class starts with the empty definition — no isa
/// constraint, no attributes, no participations — which is how classes
/// like `String` that are only mentioned appear). Relations must be given
/// an explicit definition before the schema validates.
class Schema {
 public:
  Schema() = default;

  // --- Symbol interning -------------------------------------------------

  ClassId InternClass(std::string_view name);
  AttributeId InternAttribute(std::string_view name);
  RelationId InternRelation(std::string_view name);
  RoleId InternRole(std::string_view name);

  ClassId LookupClass(std::string_view name) const {
    return classes_.Lookup(name);
  }
  AttributeId LookupAttribute(std::string_view name) const {
    return attributes_.Lookup(name);
  }
  RelationId LookupRelation(std::string_view name) const {
    return relations_.Lookup(name);
  }
  RoleId LookupRole(std::string_view name) const {
    return roles_.Lookup(name);
  }

  const std::string& ClassName(ClassId id) const {
    return classes_.NameOf(id);
  }
  const std::string& AttributeName(AttributeId id) const {
    return attributes_.NameOf(id);
  }
  const std::string& RelationName(RelationId id) const {
    return relations_.NameOf(id);
  }
  const std::string& RoleName(RoleId id) const { return roles_.NameOf(id); }

  int num_classes() const { return classes_.size(); }
  int num_attributes() const { return attributes_.size(); }
  int num_relations() const { return relations_.size(); }
  int num_roles() const { return roles_.size(); }

  // --- Definitions ------------------------------------------------------

  const ClassDefinition& class_definition(ClassId id) const;
  ClassDefinition* mutable_class_definition(ClassId id);

  /// Installs the definition of a relation; fails if already defined or if
  /// the id is unknown.
  Status SetRelationDefinition(RelationDefinition definition);

  /// Returns the relation's definition, or nullptr if not yet defined.
  const RelationDefinition* relation_definition(RelationId id) const;

  // --- Schema-level queries ----------------------------------------------

  /// Union-free (paper, §4.1): all class-clauses and role-clauses in every
  /// definition have exactly one literal.
  bool IsUnionFree() const;
  /// Negation-free (paper, §4.1): "¬" appears in no class-formula.
  bool IsNegationFree() const;
  /// Largest relation arity (0 if no relations).
  int MaxArity() const;

  /// Checks structural well-formedness: unique attribute terms and
  /// participation targets per class definition, declared roles, distinct
  /// roles per relation and per role-clause, every relation defined, every
  /// referenced symbol in range.
  Status Validate() const;

  /// Renders a human-oriented summary (counts per category).
  std::string Summary() const;

 private:
  SymbolTable classes_;
  SymbolTable attributes_;
  SymbolTable relations_;
  SymbolTable roles_;

  // Deques, not vectors: pointers returned by mutable_class_definition()
  // must survive interning of further symbols (the parser and builders
  // intern classes while a definition is being filled in).
  std::deque<ClassDefinition> class_definitions_;  // By ClassId.
  std::deque<std::optional<RelationDefinition>> relation_definitions_;

  Status ValidateFormula(const ClassFormula& formula,
                         std::string_view context) const;
};

}  // namespace car

#endif  // CAR_MODEL_SCHEMA_H_
