#include "model/formula.h"

#include <algorithm>

namespace car {

bool ClassFormula::IsNegationFree() const {
  for (const ClassClause& clause : clauses_) {
    for (const ClassLiteral& literal : clause.literals()) {
      if (literal.negated) return false;
    }
  }
  return true;
}

bool ClassFormula::IsUnionFree() const {
  for (const ClassClause& clause : clauses_) {
    if (clause.literals().size() != 1) return false;
  }
  return true;
}

std::vector<ClassId> ClassFormula::MentionedClasses() const {
  std::vector<ClassId> ids;
  for (const ClassClause& clause : clauses_) {
    for (const ClassLiteral& literal : clause.literals()) {
      ids.push_back(literal.class_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace car
