#ifndef CAR_MODEL_BUILDER_H_
#define CAR_MODEL_BUILDER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "model/schema.h"

namespace car {

/// Textual clause specification: each entry is a class name, optionally
/// prefixed with '!' for complement. {"Professor", "Grad_Student"} is the
/// clause Professor ∨ Grad_Student; {"!Person"} is ¬Person.
using ClauseSpec = std::vector<std::string>;

/// Textual formula specification: a conjunction of clauses (CNF).
using FormulaSpec = std::vector<ClauseSpec>;

/// A fluent, no-exceptions builder for CAR schemas.
///
/// Usage mirrors the paper's concrete syntax (Figure 2):
///
///   SchemaBuilder builder;
///   builder.BeginClass("Student")
///       .Isa({{"Person"}, {"!Professor"}})
///       .Attribute("student_id", 1, 1, {{"String"}})
///       .Participates("Enrollment", "enrolls", 1, 6)
///       .EndClass();
///   builder.BeginRelation("Enrollment", {"enrolled_in", "enrolls"})
///       .Constraint({{"enrolled_in", {{"Course"}}}})
///       .Constraint({{"enrolls", {{"Student"}}}})
///       .EndRelation();
///   Result<Schema> schema = std::move(builder).Build();
///
/// The first error sticks: later calls become no-ops and Build() reports
/// it. Build() also runs Schema::Validate().
class SchemaBuilder {
 public:
  static constexpr uint64_t kUnbounded = Cardinality::kInfinity;

  SchemaBuilder() = default;

  /// Interns a class with no constraints (useful for value domains such as
  /// String that are only mentioned).
  SchemaBuilder& DeclareClass(std::string_view name);

  SchemaBuilder& BeginClass(std::string_view name);
  /// Appends the given CNF clauses to the isa part of the open class.
  SchemaBuilder& Isa(const FormulaSpec& formula);
  SchemaBuilder& Attribute(std::string_view name, uint64_t min, uint64_t max,
                           const FormulaSpec& range);
  SchemaBuilder& InverseAttribute(std::string_view name, uint64_t min,
                                  uint64_t max, const FormulaSpec& range);
  SchemaBuilder& Participates(std::string_view relation,
                              std::string_view role, uint64_t min,
                              uint64_t max);
  SchemaBuilder& EndClass();

  SchemaBuilder& BeginRelation(std::string_view name,
                               const std::vector<std::string>& roles);
  /// Adds one role-clause; each entry is (role name, formula).
  SchemaBuilder& Constraint(
      const std::vector<std::pair<std::string, FormulaSpec>>& literals);
  SchemaBuilder& EndRelation();

  /// Finalizes and validates the schema.
  Result<Schema> Build() &&;

 private:
  /// Parses a ClauseSpec/FormulaSpec against the schema's symbol table,
  /// interning class names. Records an error on malformed input.
  bool ParseFormula(const FormulaSpec& spec, ClassFormula* out);

  void Fail(Status status) {
    if (status_.ok()) status_ = std::move(status);
  }
  bool failed() const { return !status_.ok(); }

  Schema schema_;
  Status status_;
  ClassId open_class_ = kInvalidId;
  RelationDefinition open_relation_;
  bool relation_open_ = false;
};

}  // namespace car

#endif  // CAR_MODEL_BUILDER_H_
