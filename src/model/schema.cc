#include "model/schema.h"

#include <set>
#include <utility>

#include "base/strings.h"

namespace car {

ClassId Schema::InternClass(std::string_view name) {
  ClassId id = classes_.Intern(name);
  if (id >= static_cast<int>(class_definitions_.size())) {
    ClassDefinition definition;
    definition.class_id = id;
    class_definitions_.push_back(std::move(definition));
  }
  return id;
}

AttributeId Schema::InternAttribute(std::string_view name) {
  return attributes_.Intern(name);
}

RelationId Schema::InternRelation(std::string_view name) {
  RelationId id = relations_.Intern(name);
  if (id >= static_cast<int>(relation_definitions_.size())) {
    relation_definitions_.emplace_back();
  }
  return id;
}

RoleId Schema::InternRole(std::string_view name) {
  return roles_.Intern(name);
}

const ClassDefinition& Schema::class_definition(ClassId id) const {
  CAR_CHECK_GE(id, 0);
  CAR_CHECK_LT(id, num_classes());
  return class_definitions_[id];
}

ClassDefinition* Schema::mutable_class_definition(ClassId id) {
  CAR_CHECK_GE(id, 0);
  CAR_CHECK_LT(id, num_classes());
  return &class_definitions_[id];
}

Status Schema::SetRelationDefinition(RelationDefinition definition) {
  RelationId id = definition.relation_id;
  if (id < 0 || id >= num_relations()) {
    return NotFound(StrCat("relation id ", id, " is not interned"));
  }
  if (relation_definitions_[id].has_value()) {
    return AlreadyExists(
        StrCat("relation '", RelationName(id), "' is defined twice"));
  }
  relation_definitions_[id] = std::move(definition);
  return Status::Ok();
}

const RelationDefinition* Schema::relation_definition(RelationId id) const {
  CAR_CHECK_GE(id, 0);
  CAR_CHECK_LT(id, num_relations());
  const auto& definition = relation_definitions_[id];
  return definition.has_value() ? &*definition : nullptr;
}

bool Schema::IsUnionFree() const {
  for (const ClassDefinition& definition : class_definitions_) {
    if (!definition.isa.IsUnionFree()) return false;
    for (const AttributeSpec& spec : definition.attributes) {
      if (!spec.range.IsUnionFree()) return false;
    }
  }
  for (const auto& definition : relation_definitions_) {
    if (!definition.has_value()) continue;
    for (const RoleClause& clause : definition->constraints) {
      if (clause.literals.size() != 1) return false;
      for (const RoleLiteral& literal : clause.literals) {
        if (!literal.formula.IsUnionFree()) return false;
      }
    }
  }
  return true;
}

bool Schema::IsNegationFree() const {
  for (const ClassDefinition& definition : class_definitions_) {
    if (!definition.isa.IsNegationFree()) return false;
    for (const AttributeSpec& spec : definition.attributes) {
      if (!spec.range.IsNegationFree()) return false;
    }
  }
  for (const auto& definition : relation_definitions_) {
    if (!definition.has_value()) continue;
    for (const RoleClause& clause : definition->constraints) {
      for (const RoleLiteral& literal : clause.literals) {
        if (!literal.formula.IsNegationFree()) return false;
      }
    }
  }
  return true;
}

int Schema::MaxArity() const {
  int max_arity = 0;
  for (const auto& definition : relation_definitions_) {
    if (definition.has_value() && definition->arity() > max_arity) {
      max_arity = definition->arity();
    }
  }
  return max_arity;
}

Status Schema::ValidateFormula(const ClassFormula& formula,
                               std::string_view context) const {
  for (const ClassClause& clause : formula.clauses()) {
    if (clause.empty()) {
      return InvalidArgument(
          StrCat("empty class-clause in ", context,
                 " (an empty disjunction is unsatisfiable by fiat; "
                 "write an explicit contradiction instead)"));
    }
    for (const ClassLiteral& literal : clause.literals()) {
      if (literal.class_id < 0 || literal.class_id >= num_classes()) {
        return NotFound(StrCat("class id ", literal.class_id,
                               " out of range in ", context));
      }
    }
  }
  return Status::Ok();
}

Status Schema::Validate() const {
  for (const ClassDefinition& definition : class_definitions_) {
    const std::string& name = ClassName(definition.class_id);
    CAR_RETURN_IF_ERROR(
        ValidateFormula(definition.isa, StrCat("isa of class ", name)));

    std::set<std::pair<AttributeId, bool>> seen_terms;
    for (const AttributeSpec& spec : definition.attributes) {
      if (spec.term.attribute < 0 || spec.term.attribute >= num_attributes()) {
        return NotFound(StrCat("attribute id ", spec.term.attribute,
                               " out of range in class ", name));
      }
      if (!seen_terms.emplace(spec.term.attribute, spec.term.inverse)
               .second) {
        return InvalidArgument(
            StrCat("attribute term '", spec.term.inverse ? "inv " : "",
                   AttributeName(spec.term.attribute),
                   "' appears twice in class ", name));
      }
      CAR_RETURN_IF_ERROR(ValidateFormula(
          spec.range, StrCat("range of attribute ",
                             AttributeName(spec.term.attribute), " in class ",
                             name)));
    }

    std::set<std::pair<RelationId, RoleId>> seen_participations;
    for (const ParticipationSpec& spec : definition.participations) {
      if (spec.relation < 0 || spec.relation >= num_relations()) {
        return NotFound(StrCat("relation id ", spec.relation,
                               " out of range in class ", name));
      }
      const RelationDefinition* relation =
          relation_definition(spec.relation);
      if (relation == nullptr) {
        return FailedPrecondition(
            StrCat("class ", name, " participates in undefined relation '",
                   RelationName(spec.relation), "'"));
      }
      if (relation->RoleIndex(spec.role) < 0) {
        return NotFound(StrCat("role '", RoleName(spec.role),
                               "' is not a role of relation '",
                               RelationName(spec.relation),
                               "' (participation in class ", name, ")"));
      }
      if (!seen_participations.emplace(spec.relation, spec.role).second) {
        return InvalidArgument(StrCat(
            "participation ", RelationName(spec.relation), "[",
            RoleName(spec.role), "] appears twice in class ", name));
      }
    }
  }

  for (RelationId id = 0; id < num_relations(); ++id) {
    const RelationDefinition* definition = relation_definition(id);
    if (definition == nullptr) {
      return FailedPrecondition(
          StrCat("relation '", RelationName(id), "' is never defined"));
    }
    if (definition->roles.empty()) {
      return InvalidArgument(
          StrCat("relation '", RelationName(id), "' has no roles"));
    }
    std::set<RoleId> seen_roles;
    for (RoleId role : definition->roles) {
      if (role < 0 || role >= num_roles()) {
        return NotFound(StrCat("role id ", role, " out of range in relation ",
                               RelationName(id)));
      }
      if (!seen_roles.insert(role).second) {
        return InvalidArgument(StrCat("role '", RoleName(role),
                                      "' appears twice in relation ",
                                      RelationName(id)));
      }
    }
    for (const RoleClause& clause : definition->constraints) {
      if (clause.literals.empty()) {
        return InvalidArgument(StrCat("empty role-clause in relation ",
                                      RelationName(id)));
      }
      std::set<RoleId> clause_roles;
      for (const RoleLiteral& literal : clause.literals) {
        if (definition->RoleIndex(literal.role) < 0) {
          return NotFound(StrCat("role-clause of relation ", RelationName(id),
                                 " mentions role '",
                                 RoleName(literal.role),
                                 "' which is not a role of the relation"));
        }
        if (!clause_roles.insert(literal.role).second) {
          return InvalidArgument(
              StrCat("role '", RoleName(literal.role),
                     "' appears twice in one role-clause of relation ",
                     RelationName(id)));
        }
        CAR_RETURN_IF_ERROR(ValidateFormula(
            literal.formula, StrCat("role-clause of relation ",
                                    RelationName(id))));
      }
    }
  }
  return Status::Ok();
}

std::string Schema::Summary() const {
  return StrCat("schema: ", num_classes(), " classes, ", num_attributes(),
                " attributes, ", num_relations(), " relations, ", num_roles(),
                " roles");
}

}  // namespace car
