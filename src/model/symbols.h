#ifndef CAR_MODEL_SYMBOLS_H_
#define CAR_MODEL_SYMBOLS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/check.h"

namespace car {

/// Typed symbol identifiers. A CAR schema is defined over an alphabet B
/// partitioned into class symbols C, attribute symbols A, relation symbols
/// R and role symbols U (paper, Section 2.2); we give each category its own
/// id space.
using ClassId = int;
using AttributeId = int;
using RelationId = int;
using RoleId = int;

constexpr int kInvalidId = -1;

/// An interning table mapping symbol names to dense integer ids.
class SymbolTable {
 public:
  /// Returns the id of `name`, interning it if new.
  int Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of `name`, or kInvalidId if unknown.
  int Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kInvalidId : it->second;
  }

  const std::string& NameOf(int id) const {
    CAR_CHECK_GE(id, 0);
    CAR_CHECK_LT(id, static_cast<int>(names_.size()));
    return names_[id];
  }

  int size() const { return static_cast<int>(names_.size()); }

  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace car

#endif  // CAR_MODEL_SYMBOLS_H_
