#ifndef CAR_MODEL_DEFINITIONS_H_
#define CAR_MODEL_DEFINITIONS_H_

#include <vector>

#include "model/cardinality.h"
#include "model/formula.h"
#include "model/symbols.h"

namespace car {

/// Provenance of a declaration in the `.car` source text: the 1-based
/// line/column of its first token and that token's length. Schemas built
/// programmatically (SchemaBuilder, generators) leave spans unknown —
/// line 0 — and diagnostics fall back to naming the symbol only. Spans
/// are carried alongside definitions and never participate in schema
/// equality, printing or fingerprints.
struct SourceSpan {
  int line = 0;
  int column = 0;
  int length = 0;

  bool known() const { return line > 0; }
};

/// An attribute term `att`: either an attribute symbol A or its inverse
/// (inv A). Used both in class definitions and as the key of the Natt
/// cardinality-constraint set of the expansion.
struct AttributeTerm {
  AttributeId attribute = kInvalidId;
  bool inverse = false;

  static AttributeTerm Direct(AttributeId id) { return {id, false}; }
  static AttributeTerm Inverse(AttributeId id) { return {id, true}; }

  bool operator==(const AttributeTerm& other) const {
    return attribute == other.attribute && inverse == other.inverse;
  }
  bool operator<(const AttributeTerm& other) const {
    if (attribute != other.attribute) return attribute < other.attribute;
    return inverse < other.inverse;
  }
};

/// One line of the attributes part of a class definition:
///   att : (u, v) F
/// Every instance of the class is related by `att` to between u and v
/// objects, all of which are instances of the class-formula `range`.
struct AttributeSpec {
  AttributeTerm term;
  Cardinality cardinality;
  ClassFormula range;
  /// Where the spec line starts in the source text (unknown if built
  /// programmatically).
  SourceSpan span;
};

/// One line of the participates-in part of a class definition:
///   R[U] : (x, y)
/// Every instance of the class appears as the U-component of between x and
/// y tuples of relation R.
struct ParticipationSpec {
  RelationId relation = kInvalidId;
  RoleId role = kInvalidId;
  Cardinality cardinality;
  /// Where the spec line starts in the source text.
  SourceSpan span;
};

/// A class definition (paper, Section 2.2): isa class-formula, attribute
/// specifications, and relation-participation specifications.
struct ClassDefinition {
  ClassId class_id = kInvalidId;
  ClassFormula isa;
  std::vector<AttributeSpec> attributes;
  std::vector<ParticipationSpec> participations;
  /// Span of the class name token in the `class NAME ... endclass`
  /// declaration that defined this class.
  SourceSpan span;
  /// Span of the first token of the isa formula (if any).
  SourceSpan isa_span;
};

/// A role-literal (U : F): the U-component of a tuple is an instance of F.
struct RoleLiteral {
  RoleId role = kInvalidId;
  ClassFormula formula;
};

/// A role-clause (U1 : F1) ∨ ... ∨ (Us : Fs): every tuple satisfies at
/// least one of the role-literals. Role symbols within a clause are
/// pairwise distinct (paper's w.l.o.g. assumption, enforced at
/// validation).
struct RoleClause {
  std::vector<RoleLiteral> literals;
};

/// A relation definition: the ordered set of roles and the role-clause
/// constraints that every tuple must satisfy.
struct RelationDefinition {
  RelationId relation_id = kInvalidId;
  std::vector<RoleId> roles;
  std::vector<RoleClause> constraints;
  /// Span of the relation name token in its declaration.
  SourceSpan span;

  int arity() const { return static_cast<int>(roles.size()); }

  /// Returns the position of `role` in `roles`, or -1 if absent.
  int RoleIndex(RoleId role) const {
    for (size_t i = 0; i < roles.size(); ++i) {
      if (roles[i] == role) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace car

#endif  // CAR_MODEL_DEFINITIONS_H_
