#include "enumerate/bounded_search.h"

#include <vector>

#include "base/strings.h"
#include "expansion/compound.h"
#include "semantics/model_check.h"

namespace car {

namespace {

/// Enumerates all consistent compound classes of a (small) schema
/// exhaustively; the membership pattern of any model object is one of
/// these, so assigning objects to compound classes loses no models.
Result<std::vector<CompoundClass>> AllConsistentCompounds(
    const Schema& schema, ExecContext* exec) {
  const int n = schema.num_classes();
  if (n > 16) {
    return GovRecordTrip(exec, LimitKind::kMaxCandidates, "bounded-search",
                         16, static_cast<uint64_t>(n));
  }
  std::vector<CompoundClass> compounds;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<ClassId> members;
    for (int c = 0; c < n; ++c) {
      if (mask & (1ull << c)) members.push_back(c);
    }
    CompoundClass compound(std::move(members));
    if (compound.IsConsistent(schema)) compounds.push_back(compound);
  }
  return compounds;
}

/// A search context for one universe size.
class Searcher {
 public:
  Searcher(const Schema& schema, ClassId target,
           const std::vector<CompoundClass>& compounds, int universe,
           uint64_t max_configurations, ExecContext* exec,
           uint64_t* configurations)
      : schema_(schema),
        target_(target),
        compounds_(compounds),
        universe_(universe),
        max_configurations_(max_configurations),
        exec_(exec),
        configurations_(configurations) {}

  /// Returns a model if found; monitors the configuration budget.
  Result<std::optional<Interpretation>> Run() {
    std::vector<int> membership(universe_, 0);
    return EnumerateMemberships(0, &membership);
  }

 private:
  Result<std::optional<Interpretation>> EnumerateMemberships(
      int object, std::vector<int>* membership) {
    if (object == universe_) {
      // The target class must be nonempty.
      bool target_present = false;
      for (int choice : *membership) {
        if (compounds_[choice].Contains(target_)) {
          target_present = true;
          break;
        }
      }
      if (!target_present) return std::optional<Interpretation>();
      return EnumerateFacts(*membership);
    }
    // Symmetry breaking: objects are interchangeable, so membership
    // choices can be taken in nondecreasing order.
    int start = object == 0 ? 0 : (*membership)[object - 1];
    for (int choice = start; choice < static_cast<int>(compounds_.size());
         ++choice) {
      (*membership)[object] = choice;
      CAR_ASSIGN_OR_RETURN(std::optional<Interpretation> model,
                           EnumerateMemberships(object + 1, membership));
      if (model.has_value()) return model;
    }
    return std::optional<Interpretation>();
  }

  /// With memberships fixed, enumerates attribute-pair subsets and
  /// relation-tuple subsets as one mixed-radix odometer.
  Result<std::optional<Interpretation>> EnumerateFacts(
      const std::vector<int>& membership) {
    // Allowed attribute pairs: endpoints must form a consistent compound
    // attribute, otherwise the range conditions are violated outright.
    std::vector<std::vector<std::pair<ObjectId, ObjectId>>> pairs(
        schema_.num_attributes());
    for (AttributeId a = 0; a < schema_.num_attributes(); ++a) {
      for (ObjectId from = 0; from < universe_; ++from) {
        for (ObjectId to = 0; to < universe_; ++to) {
          if (IsConsistentCompoundAttribute(schema_, a,
                                            compounds_[membership[from]],
                                            compounds_[membership[to]])) {
            pairs[a].emplace_back(from, to);
          }
        }
      }
      if (pairs[a].size() > 20) {
        return GovRecordTrip(exec_, LimitKind::kMaxCandidates,
                             "bounded-search", 20, pairs[a].size());
      }
    }
    // Candidate relation tuples: all component vectors.
    std::vector<std::vector<LabeledTuple>> tuples(schema_.num_relations());
    for (RelationId r = 0; r < schema_.num_relations(); ++r) {
      const RelationDefinition* definition = schema_.relation_definition(r);
      if (definition == nullptr) continue;
      uint64_t count = 1;
      for (int k = 0; k < definition->arity(); ++k) {
        count *= static_cast<uint64_t>(universe_);
      }
      if (count > 20) {
        return GovRecordTrip(exec_, LimitKind::kMaxCandidates,
                             "bounded-search", 20, count);
      }
      for (uint64_t code = 0; code < count; ++code) {
        LabeledTuple tuple(definition->arity());
        uint64_t rest = code;
        for (int k = 0; k < definition->arity(); ++k) {
          tuple[k] = static_cast<ObjectId>(rest % universe_);
          rest /= universe_;
        }
        tuples[r].push_back(std::move(tuple));
      }
    }

    // Odometer over subset masks.
    std::vector<uint64_t> masks(pairs.size() + tuples.size(), 0);
    while (true) {
      CAR_RETURN_IF_ERROR(GovChargeWork(exec_, 1, "bounded-search"));
      if (exec_ != nullptr) exec_->CountConfigurations(1);
      if (++*configurations_ > max_configurations_) {
        return GovRecordTrip(exec_, LimitKind::kMaxConfigurations,
                             "bounded-search", max_configurations_,
                             max_configurations_);
      }
      Interpretation candidate(&schema_, universe_);
      for (ObjectId object = 0; object < universe_; ++object) {
        for (ClassId member : compounds_[membership[object]].members()) {
          candidate.AddToClass(member, object);
        }
      }
      for (AttributeId a = 0; a < schema_.num_attributes(); ++a) {
        for (size_t bit = 0; bit < pairs[a].size(); ++bit) {
          if (masks[a] & (1ull << bit)) {
            candidate.AddAttributePair(a, pairs[a][bit].first,
                                       pairs[a][bit].second);
          }
        }
      }
      for (RelationId r = 0; r < schema_.num_relations(); ++r) {
        size_t slot = pairs.size() + static_cast<size_t>(r);
        for (size_t bit = 0; bit < tuples[r].size(); ++bit) {
          if (masks[slot] & (1ull << bit)) {
            CAR_RETURN_IF_ERROR(candidate.AddTuple(r, tuples[r][bit]));
          }
        }
      }
      if (IsModel(schema_, candidate)) {
        return std::optional<Interpretation>(std::move(candidate));
      }

      // Advance the odometer.
      size_t slot = 0;
      while (slot < masks.size()) {
        uint64_t limit =
            slot < pairs.size()
                ? (1ull << pairs[slot].size())
                : (1ull << tuples[slot - pairs.size()].size());
        if (++masks[slot] < limit) break;
        masks[slot] = 0;
        ++slot;
      }
      if (slot == masks.size()) return std::optional<Interpretation>();
    }
  }

  const Schema& schema_;
  ClassId target_;
  const std::vector<CompoundClass>& compounds_;
  int universe_;
  uint64_t max_configurations_;
  ExecContext* exec_;
  uint64_t* configurations_;
};

}  // namespace

Result<BoundedSearchOutcome> FindModelWithNonemptyClass(
    const Schema& schema, ClassId class_id,
    const BoundedSearchOptions& options) {
  if (class_id < 0 || class_id >= schema.num_classes()) {
    return NotFound(StrCat("class id ", class_id, " out of range"));
  }
  CAR_RETURN_IF_ERROR(schema.Validate());
  CAR_RETURN_IF_ERROR(GovCheck(options.exec, "bounded-search"));
  CAR_ASSIGN_OR_RETURN(std::vector<CompoundClass> compounds,
                       AllConsistentCompounds(schema, options.exec));

  BoundedSearchOutcome outcome;
  for (int universe = 1; universe <= options.max_universe; ++universe) {
    Searcher searcher(schema, class_id, compounds, universe,
                      options.max_configurations, options.exec,
                      &outcome.configurations);
    CAR_ASSIGN_OR_RETURN(std::optional<Interpretation> model,
                         searcher.Run());
    if (model.has_value()) {
      outcome.model = std::move(model);
      return outcome;
    }
  }
  return outcome;
}

}  // namespace car
