#ifndef CAR_ENUMERATE_BOUNDED_SEARCH_H_
#define CAR_ENUMERATE_BOUNDED_SEARCH_H_

#include <optional>

#include "base/exec_context.h"
#include "base/result.h"
#include "semantics/interpretation.h"

namespace car {

struct BoundedSearchOptions {
  /// Universe sizes 1..max_universe are tried in increasing order.
  int max_universe = 3;
  /// Abort (kResourceExhausted) after this many candidate interpretations.
  uint64_t max_configurations = 20'000'000;
  /// Optional resource governor (borrowed; may be null = ungoverned).
  /// Each candidate interpretation charges one work unit; cancellation
  /// and deadlines are observed between candidates.
  ExecContext* exec = nullptr;
};

/// Outcome of a bounded model search.
struct BoundedSearchOutcome {
  /// A model of the schema in which the queried class is nonempty, if one
  /// was found within the universe bound.
  std::optional<Interpretation> model;
  /// Candidate interpretations examined.
  uint64_t configurations = 0;

  bool found() const { return model.has_value(); }
};

/// Exhaustively searches for a finite model of `schema` (with universe
/// size up to `options.max_universe`) in which `class_id` has a nonempty
/// extension.
///
/// This is the testing oracle for the reasoner: it enumerates object
/// memberships (one consistent compound class per object), attribute-pair
/// subsets and relation-tuple subsets, validating each candidate with the
/// definitional semantics checker (semantics/model_check.h). A negative
/// answer only means "no model within the bound" — but for the reasoner's
/// *positive* answers on small schemas the search must succeed whenever
/// the certificate's total population fits the bound, and for reasoner
/// *negative* answers it must never find a model; property tests exploit
/// both directions.
///
/// Complexity is brutally exponential; callers must keep schemas tiny
/// (a few classes, at most a couple of attributes/relations) and the
/// universe bound small.
Result<BoundedSearchOutcome> FindModelWithNonemptyClass(
    const Schema& schema, ClassId class_id,
    const BoundedSearchOptions& options = {});

}  // namespace car

#endif  // CAR_ENUMERATE_BOUNDED_SEARCH_H_
