#ifndef CAR_SEMANTICS_DUMP_H_
#define CAR_SEMANTICS_DUMP_H_

#include <string>

#include "semantics/interpretation.h"

namespace car {

struct DumpOptions {
  /// Cap on facts listed per extension (0 = unlimited).
  size_t max_facts_per_extension = 0;
  /// Include empty extensions.
  bool include_empty = false;
};

/// Renders a database state as text:
///
///   universe 7
///   class Person = {0, 1, 2}
///   attribute name = {(0, 5), (1, 6)}
///   relation Enrollment = {<3, 0>, <3, 1>}
///
/// Tuples follow the role order of the relation's definition. Intended
/// for logs, goldens and the command-line tool; not a round-trip format.
std::string DumpInterpretation(const Interpretation& interpretation,
                               const DumpOptions& options = {});

}  // namespace car

#endif  // CAR_SEMANTICS_DUMP_H_
