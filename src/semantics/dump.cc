#include "semantics/dump.h"

#include <sstream>

#include "base/strings.h"

namespace car {

namespace {

template <typename Container, typename Formatter>
void DumpExtension(std::ostringstream* os, const std::string& header,
                   const Container& extension, const DumpOptions& options,
                   Formatter format) {
  if (extension.empty() && !options.include_empty) return;
  *os << header << " = {";
  size_t shown = 0;
  for (const auto& fact : extension) {
    if (options.max_facts_per_extension != 0 &&
        shown >= options.max_facts_per_extension) {
      *os << ", ... (" << extension.size() - shown << " more)";
      break;
    }
    if (shown != 0) *os << ", ";
    *os << format(fact);
    ++shown;
  }
  *os << "}\n";
}

}  // namespace

std::string DumpInterpretation(const Interpretation& interpretation,
                               const DumpOptions& options) {
  const Schema& schema = interpretation.schema();
  std::ostringstream os;
  os << "universe " << interpretation.universe_size() << "\n";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    DumpExtension(&os, StrCat("class ", schema.ClassName(c)),
                  interpretation.ClassExtension(c), options,
                  [](ObjectId object) { return StrCat(object); });
  }
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    DumpExtension(&os, StrCat("attribute ", schema.AttributeName(a)),
                  interpretation.AttributeExtension(a), options,
                  [](const std::pair<ObjectId, ObjectId>& pair) {
                    return StrCat("(", pair.first, ", ", pair.second, ")");
                  });
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    DumpExtension(&os, StrCat("relation ", schema.RelationName(r)),
                  interpretation.RelationExtension(r), options,
                  [](const LabeledTuple& tuple) {
                    return StrCat("<", StrJoin(tuple, ", "), ">");
                  });
  }
  return os.str();
}

}  // namespace car
