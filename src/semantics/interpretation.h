#ifndef CAR_SEMANTICS_INTERPRETATION_H_
#define CAR_SEMANTICS_INTERPRETATION_H_

#include <set>
#include <utility>
#include <vector>

#include "base/status.h"
#include "model/schema.h"

namespace car {

/// Objects of a database state are dense integer ids 0..universe_size-1.
using ObjectId = int;

/// A labeled tuple, stored as one object per role in the role order of the
/// owning relation's definition (the paper's ⟨U1: c1, ..., UK: cK⟩).
using LabeledTuple = std::vector<ObjectId>;

/// A finite interpretation I = (Δ^I, ·^I) of a CAR schema: a database
/// state (paper, Section 2.3). The universe is {0, ..., universe_size-1}
/// and must be nonempty for the interpretation to be a model of anything.
///
/// The interpretation is bound to a schema at construction; insertions
/// validate ids and tuple arities against it. Extensions have set
/// semantics: inserting a pair or tuple twice is a no-op.
class Interpretation {
 public:
  Interpretation(const Schema* schema, int universe_size);

  const Schema& schema() const { return *schema_; }
  int universe_size() const { return universe_size_; }

  // --- Population --------------------------------------------------------

  void AddToClass(ClassId class_id, ObjectId object);
  /// Adds the pair (from, to) to the attribute's extension.
  void AddAttributePair(AttributeId attribute, ObjectId from, ObjectId to);
  /// Adds a labeled tuple; `tuple` must match the relation's arity and its
  /// components follow the role order of the relation definition.
  Status AddTuple(RelationId relation, LabeledTuple tuple);

  // --- Extensions ---------------------------------------------------------

  bool InClass(ClassId class_id, ObjectId object) const;
  const std::set<ObjectId>& ClassExtension(ClassId class_id) const;
  const std::set<std::pair<ObjectId, ObjectId>>& AttributeExtension(
      AttributeId attribute) const;
  const std::set<LabeledTuple>& RelationExtension(RelationId relation) const;

  /// Number of attribute pairs with the given first component.
  size_t AttributeOutDegree(AttributeId attribute, ObjectId object) const;
  /// Number of attribute pairs with the given second component.
  size_t AttributeInDegree(AttributeId attribute, ObjectId object) const;
  /// Number of tuples of `relation` whose component at `role_index` is
  /// `object`.
  size_t ParticipationCount(RelationId relation, int role_index,
                            ObjectId object) const;

  /// Total number of class memberships, attribute pairs and tuples; a
  /// rough size measure used in reports.
  size_t TotalFacts() const;

 private:
  const Schema* schema_;
  int universe_size_;
  std::vector<std::set<ObjectId>> class_extensions_;
  std::vector<std::set<std::pair<ObjectId, ObjectId>>> attribute_extensions_;
  std::vector<std::set<LabeledTuple>> relation_extensions_;
};

}  // namespace car

#endif  // CAR_SEMANTICS_INTERPRETATION_H_
