#include "semantics/compound_extensions.h"

#include <optional>

#include "base/strings.h"

namespace car {

CompoundClass CompoundClassOfObject(const Interpretation& interpretation,
                                    ObjectId object) {
  std::vector<ClassId> members;
  const Schema& schema = interpretation.schema();
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (interpretation.InClass(c, object)) members.push_back(c);
  }
  return CompoundClass(std::move(members));
}

std::map<std::vector<ClassId>, std::vector<ObjectId>> CompoundExtensions(
    const Interpretation& interpretation) {
  std::map<std::vector<ClassId>, std::vector<ObjectId>> extensions;
  for (ObjectId object = 0; object < interpretation.universe_size();
       ++object) {
    extensions[CompoundClassOfObject(interpretation, object).members()]
        .push_back(object);
  }
  return extensions;
}

namespace {

/// Merged cardinality (umax, vmin) for one attribute term over a compound
/// class, per Definition 3.1; nullopt when no member constrains the term.
std::optional<Cardinality> MergedAttributeCardinality(
    const Schema& schema, const CompoundClass& compound,
    const AttributeTerm& term) {
  std::optional<Cardinality> merged;
  for (ClassId member : compound.members()) {
    for (const AttributeSpec& spec :
         schema.class_definition(member).attributes) {
      if (!(spec.term == term)) continue;
      merged = merged.has_value()
                   ? Cardinality::IntersectUnchecked(*merged,
                                                     spec.cardinality)
                   : spec.cardinality;
    }
  }
  return merged;
}

std::optional<Cardinality> MergedParticipationCardinality(
    const Schema& schema, const CompoundClass& compound, RelationId relation,
    RoleId role) {
  std::optional<Cardinality> merged;
  for (ClassId member : compound.members()) {
    for (const ParticipationSpec& spec :
         schema.class_definition(member).participations) {
      if (spec.relation != relation || spec.role != role) continue;
      merged = merged.has_value()
                   ? Cardinality::IntersectUnchecked(*merged,
                                                     spec.cardinality)
                   : spec.cardinality;
    }
  }
  return merged;
}

}  // namespace

Lemma32Result CheckLemma32(const Expansion& expansion,
                           const Interpretation& interpretation) {
  const Schema& schema = *expansion.schema;
  Lemma32Result result;

  // Per-object compound classes, and condition (A) for objects.
  std::vector<CompoundClass> compound_of;
  compound_of.reserve(interpretation.universe_size());
  for (ObjectId object = 0; object < interpretation.universe_size();
       ++object) {
    compound_of.push_back(CompoundClassOfObject(interpretation, object));
    if (!compound_of.back().IsConsistent(schema)) {
      result.violated_condition = 'A';
      result.detail = StrCat("object ", object,
                             " realizes the inconsistent compound class ",
                             compound_of.back().ToString(schema));
      return result;
    }
  }

  // Condition (A) for attribute pairs and tuples.
  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (const auto& [from, to] : interpretation.AttributeExtension(a)) {
      if (!IsConsistentCompoundAttribute(schema, a, compound_of[from],
                                         compound_of[to])) {
        result.violated_condition = 'A';
        result.detail =
            StrCat("pair (", from, ", ", to, ") of attribute ",
                   schema.AttributeName(a),
                   " falls in an inconsistent compound attribute");
        return result;
      }
    }
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    if (definition == nullptr) continue;
    for (const LabeledTuple& tuple : interpretation.RelationExtension(r)) {
      std::vector<const CompoundClass*> views;
      for (ObjectId component : tuple) {
        views.push_back(&compound_of[component]);
      }
      if (!IsConsistentCompoundRelation(schema, *definition, views)) {
        result.violated_condition = 'A';
        result.detail = StrCat("a tuple of ", schema.RelationName(r),
                               " falls in an inconsistent compound relation");
        return result;
      }
    }
  }

  // Conditions (B) and (C): merged cardinalities per object.
  for (ObjectId object = 0; object < interpretation.universe_size();
       ++object) {
    const CompoundClass& compound = compound_of[object];
    for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
      for (bool inverse : {false, true}) {
        AttributeTerm term = inverse ? AttributeTerm::Inverse(a)
                                     : AttributeTerm::Direct(a);
        std::optional<Cardinality> merged =
            MergedAttributeCardinality(schema, compound, term);
        if (!merged.has_value()) continue;
        size_t degree = inverse
                            ? interpretation.AttributeInDegree(a, object)
                            : interpretation.AttributeOutDegree(a, object);
        if (!merged->Contains(degree)) {
          result.violated_condition = 'B';
          result.detail =
              StrCat("object ", object, " has ", degree, " links for ",
                     inverse ? "inv " : "", schema.AttributeName(a),
                     ", outside ", merged->ToString());
          return result;
        }
      }
    }
    for (RelationId r = 0; r < schema.num_relations(); ++r) {
      const RelationDefinition* definition = schema.relation_definition(r);
      if (definition == nullptr) continue;
      for (size_t k = 0; k < definition->roles.size(); ++k) {
        std::optional<Cardinality> merged = MergedParticipationCardinality(
            schema, compound, r, definition->roles[k]);
        if (!merged.has_value()) continue;
        size_t count = interpretation.ParticipationCount(
            r, static_cast<int>(k), object);
        if (!merged->Contains(count)) {
          result.violated_condition = 'C';
          result.detail = StrCat(
              "object ", object, " participates ", count, " times in ",
              schema.RelationName(r), "[",
              schema.RoleName(definition->roles[k]), "], outside ",
              merged->ToString());
          return result;
        }
      }
    }
  }

  result.holds = true;
  return result;
}

}  // namespace car
