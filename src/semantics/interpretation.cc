#include "semantics/interpretation.h"

#include "base/check.h"
#include "base/strings.h"

namespace car {

Interpretation::Interpretation(const Schema* schema, int universe_size)
    : schema_(schema), universe_size_(universe_size) {
  CAR_CHECK(schema != nullptr);
  CAR_CHECK_GE(universe_size, 0);
  class_extensions_.resize(schema->num_classes());
  attribute_extensions_.resize(schema->num_attributes());
  relation_extensions_.resize(schema->num_relations());
}

void Interpretation::AddToClass(ClassId class_id, ObjectId object) {
  CAR_CHECK_GE(class_id, 0);
  CAR_CHECK_LT(class_id, static_cast<int>(class_extensions_.size()));
  CAR_CHECK_GE(object, 0);
  CAR_CHECK_LT(object, universe_size_);
  class_extensions_[class_id].insert(object);
}

void Interpretation::AddAttributePair(AttributeId attribute, ObjectId from,
                                      ObjectId to) {
  CAR_CHECK_GE(attribute, 0);
  CAR_CHECK_LT(attribute, static_cast<int>(attribute_extensions_.size()));
  CAR_CHECK_GE(from, 0);
  CAR_CHECK_LT(from, universe_size_);
  CAR_CHECK_GE(to, 0);
  CAR_CHECK_LT(to, universe_size_);
  attribute_extensions_[attribute].emplace(from, to);
}

Status Interpretation::AddTuple(RelationId relation, LabeledTuple tuple) {
  if (relation < 0 ||
      relation >= static_cast<int>(relation_extensions_.size())) {
    return NotFound(StrCat("relation id ", relation, " out of range"));
  }
  const RelationDefinition* definition =
      schema_->relation_definition(relation);
  if (definition == nullptr) {
    return FailedPrecondition(StrCat("relation '",
                                     schema_->RelationName(relation),
                                     "' has no definition"));
  }
  if (static_cast<int>(tuple.size()) != definition->arity()) {
    return InvalidArgument(StrCat(
        "tuple arity ", tuple.size(), " does not match relation '",
        schema_->RelationName(relation), "' arity ", definition->arity()));
  }
  for (ObjectId object : tuple) {
    if (object < 0 || object >= universe_size_) {
      return InvalidArgument(
          StrCat("tuple component ", object, " outside universe of size ",
                 universe_size_));
    }
  }
  relation_extensions_[relation].insert(std::move(tuple));
  return Status::Ok();
}

bool Interpretation::InClass(ClassId class_id, ObjectId object) const {
  CAR_CHECK_GE(class_id, 0);
  CAR_CHECK_LT(class_id, static_cast<int>(class_extensions_.size()));
  return class_extensions_[class_id].count(object) > 0;
}

const std::set<ObjectId>& Interpretation::ClassExtension(
    ClassId class_id) const {
  CAR_CHECK_GE(class_id, 0);
  CAR_CHECK_LT(class_id, static_cast<int>(class_extensions_.size()));
  return class_extensions_[class_id];
}

const std::set<std::pair<ObjectId, ObjectId>>&
Interpretation::AttributeExtension(AttributeId attribute) const {
  CAR_CHECK_GE(attribute, 0);
  CAR_CHECK_LT(attribute, static_cast<int>(attribute_extensions_.size()));
  return attribute_extensions_[attribute];
}

const std::set<LabeledTuple>& Interpretation::RelationExtension(
    RelationId relation) const {
  CAR_CHECK_GE(relation, 0);
  CAR_CHECK_LT(relation, static_cast<int>(relation_extensions_.size()));
  return relation_extensions_[relation];
}

size_t Interpretation::AttributeOutDegree(AttributeId attribute,
                                          ObjectId object) const {
  size_t count = 0;
  for (const auto& [from, to] : AttributeExtension(attribute)) {
    (void)to;
    if (from == object) ++count;
  }
  return count;
}

size_t Interpretation::AttributeInDegree(AttributeId attribute,
                                         ObjectId object) const {
  size_t count = 0;
  for (const auto& [from, to] : AttributeExtension(attribute)) {
    (void)from;
    if (to == object) ++count;
  }
  return count;
}

size_t Interpretation::ParticipationCount(RelationId relation, int role_index,
                                          ObjectId object) const {
  size_t count = 0;
  for (const LabeledTuple& tuple : RelationExtension(relation)) {
    CAR_CHECK_LT(static_cast<size_t>(role_index), tuple.size());
    if (tuple[role_index] == object) ++count;
  }
  return count;
}

size_t Interpretation::TotalFacts() const {
  size_t total = 0;
  for (const auto& extension : class_extensions_) total += extension.size();
  for (const auto& extension : attribute_extensions_) {
    total += extension.size();
  }
  for (const auto& extension : relation_extensions_) {
    total += extension.size();
  }
  return total;
}

}  // namespace car
