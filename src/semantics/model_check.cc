#include "semantics/model_check.h"

#include "base/strings.h"
#include "semantics/evaluator.h"

namespace car {

namespace {

/// Accumulates violations up to the configured cap.
class ViolationSink {
 public:
  explicit ViolationSink(const ModelCheckOptions& options)
      : options_(options) {}

  void Add(std::string description) {
    ++count_;
    if (options_.max_violations == 0 ||
        violations_.size() < options_.max_violations) {
      violations_.push_back(std::move(description));
    }
  }

  bool any() const { return count_ > 0; }
  std::vector<std::string> Take() { return std::move(violations_); }

 private:
  const ModelCheckOptions& options_;
  size_t count_ = 0;
  std::vector<std::string> violations_;
};

/// The objects an attribute term relates `object` to: A-successors for a
/// direct term, A-predecessors for (inv A).
std::vector<ObjectId> TermSuccessors(const Interpretation& interpretation,
                                     const AttributeTerm& term,
                                     ObjectId object) {
  std::vector<ObjectId> successors;
  for (const auto& [from, to] :
       interpretation.AttributeExtension(term.attribute)) {
    if (!term.inverse && from == object) successors.push_back(to);
    if (term.inverse && to == object) successors.push_back(from);
  }
  return successors;
}

std::string TermName(const Schema& schema, const AttributeTerm& term) {
  return term.inverse
             ? StrCat("(inv ", schema.AttributeName(term.attribute), ")")
             : schema.AttributeName(term.attribute);
}

}  // namespace

ModelCheckResult CheckModel(const Schema& schema,
                            const Interpretation& interpretation,
                            const ModelCheckOptions& options) {
  ViolationSink sink(options);
  Evaluator evaluator(&interpretation);

  if (options.require_nonempty_universe &&
      interpretation.universe_size() == 0) {
    sink.Add("universe is empty (interpretations have nonempty universes)");
  }

  for (ClassId class_id = 0; class_id < schema.num_classes(); ++class_id) {
    const ClassDefinition& definition = schema.class_definition(class_id);
    const std::string& class_name = schema.ClassName(class_id);

    for (ObjectId object : interpretation.ClassExtension(class_id)) {
      // isa: C^I ⊆ F^I.
      if (!evaluator.Satisfies(object, definition.isa)) {
        sink.Add(StrCat("object ", object, " is in ", class_name,
                        " but violates its isa formula"));
      }

      // Attribute typing and cardinality.
      for (const AttributeSpec& spec : definition.attributes) {
        std::vector<ObjectId> successors =
            TermSuccessors(interpretation, spec.term, object);
        for (ObjectId successor : successors) {
          if (!evaluator.Satisfies(successor, spec.range)) {
            sink.Add(StrCat("object ", object, " in ", class_name, " has ",
                            TermName(schema, spec.term), "-successor ",
                            successor, " outside the declared range"));
          }
        }
        if (!spec.cardinality.Contains(successors.size())) {
          sink.Add(StrCat("object ", object, " in ", class_name, " has ",
                          successors.size(), " ",
                          TermName(schema, spec.term),
                          "-successors, outside ",
                          spec.cardinality.ToString()));
        }
      }

      // Participation cardinality.
      for (const ParticipationSpec& spec : definition.participations) {
        const RelationDefinition* relation =
            schema.relation_definition(spec.relation);
        if (relation == nullptr) continue;  // Caught by Schema::Validate().
        int role_index = relation->RoleIndex(spec.role);
        if (role_index < 0) continue;
        size_t count = interpretation.ParticipationCount(spec.relation,
                                                         role_index, object);
        if (!spec.cardinality.Contains(count)) {
          sink.Add(StrCat("object ", object, " in ", class_name,
                          " participates in ",
                          schema.RelationName(spec.relation), "[",
                          schema.RoleName(spec.role), "] ", count,
                          " times, outside ", spec.cardinality.ToString()));
        }
      }
    }
  }

  // Role-clause constraints: every tuple satisfies every role-clause.
  for (RelationId relation_id = 0; relation_id < schema.num_relations();
       ++relation_id) {
    const RelationDefinition* definition =
        schema.relation_definition(relation_id);
    if (definition == nullptr) continue;
    for (const LabeledTuple& tuple :
         interpretation.RelationExtension(relation_id)) {
      for (const RoleClause& clause : definition->constraints) {
        bool satisfied = false;
        for (const RoleLiteral& literal : clause.literals) {
          int role_index = definition->RoleIndex(literal.role);
          if (role_index < 0) continue;
          if (evaluator.Satisfies(tuple[role_index], literal.formula)) {
            satisfied = true;
            break;
          }
        }
        if (!satisfied) {
          sink.Add(StrCat("a tuple of relation ",
                          schema.RelationName(relation_id),
                          " violates a role-clause"));
        }
      }
    }
  }

  ModelCheckResult result;
  result.is_model = !sink.any();
  result.violations = sink.Take();
  return result;
}

bool IsModel(const Schema& schema, const Interpretation& interpretation) {
  ModelCheckOptions options;
  options.max_violations = 1;
  return CheckModel(schema, interpretation, options).is_model;
}

}  // namespace car
