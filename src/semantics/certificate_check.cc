#include "semantics/certificate_check.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// Appends every positively mentioned class of `formula` to `hints`.
void AddPositiveLiterals(const ClassFormula& formula,
                         std::vector<ClassId>* hints) {
  for (const ClassClause& clause : formula.clauses()) {
    for (const ClassLiteral& literal : clause.literals()) {
      if (!literal.negated) hints->push_back(literal.class_id);
    }
  }
}

/// A violated Natt key (positive combined multiplier d on `term` @
/// `compound`) is rescued when an absent counterpart compound provably
/// cannot exist: some member of `compound` carries a `term` spec whose
/// range formula has a single-positive-literal clause {T} — every
/// consistent counterpart must then contain T (IsConsistentCompound-
/// Attribute forces the counterpart to realize that clause) — and every
/// compound containing T is already materialized. Collects the candidate
/// forcing classes and the other positive range literals as refinement
/// hints for the not-rescued case.
bool NattKeyRescued(const Schema& schema, const CompoundClass& compound,
                    const AttributeTerm& term,
                    const std::function<bool(ClassId)>& all_materialized,
                    std::vector<ClassId>* hints) {
  for (ClassId member : compound.members()) {
    const ClassDefinition& definition = schema.class_definition(member);
    for (const AttributeSpec& spec : definition.attributes) {
      if (!(spec.term == term)) continue;
      for (const ClassClause& clause : spec.range.clauses()) {
        const std::vector<ClassLiteral>& literals = clause.literals();
        if (literals.size() == 1 && !literals[0].negated &&
            all_materialized(literals[0].class_id)) {
          return true;
        }
      }
      AddPositiveLiterals(spec.range, hints);
    }
  }
  return false;
}

}  // namespace

bool PsiRowKey::operator<(const PsiRowKey& other) const {
  if (is_nrel != other.is_nrel) return !is_nrel;
  if (upper != other.upper) return !upper;
  if (is_nrel) {
    if (relation != other.relation) return relation < other.relation;
    if (role != other.role) return role < other.role;
  } else {
    if (!(term == other.term)) return term < other.term;
  }
  return members < other.members;
}

std::vector<PsiRowKey> PsiRowKeys(const Expansion& partial) {
  std::vector<PsiRowKey> keys;
  for (const auto& [key, cardinality] : partial.natt) {
    const auto& [term, compound_index] = key;
    const std::vector<ClassId>& members =
        partial.compound_classes[compound_index].members();
    if (cardinality.min() > 0) {
      PsiRowKey row;
      row.term = term;
      row.members = members;
      keys.push_back(std::move(row));
    }
    if (cardinality.has_finite_max()) {
      PsiRowKey row;
      row.upper = true;
      row.term = term;
      row.members = members;
      keys.push_back(std::move(row));
    }
  }
  for (const auto& [key, cardinality] : partial.nrel) {
    const auto& [relation, role_index, compound_index] = key;
    const std::vector<ClassId>& members =
        partial.compound_classes[compound_index].members();
    if (cardinality.min() > 0) {
      PsiRowKey row;
      row.is_nrel = true;
      row.relation = relation;
      row.role = role_index;
      row.members = members;
      keys.push_back(std::move(row));
    }
    if (cardinality.has_finite_max()) {
      PsiRowKey row;
      row.is_nrel = true;
      row.upper = true;
      row.relation = relation;
      row.role = role_index;
      row.members = members;
      keys.push_back(std::move(row));
    }
  }
  return keys;
}

CertificateClosureResult CheckCertificateClosure(
    const Schema& schema, const Expansion& partial, ClassId target,
    const InfeasibilityCertificate& certificate,
    const std::function<bool(ClassId)>& all_compounds_materialized) {
  CertificateClosureResult out;
  const std::vector<Rational>& nu = certificate.row_multipliers;

  // The certificate must cover exactly the replayed disequation rows
  // plus the probe row; anything else means the caller validated it
  // against a different system.
  size_t num_rows = 0;
  for (const auto& [key, cardinality] : partial.natt) {
    static_cast<void>(key);
    if (cardinality.min() > 0) ++num_rows;
    if (cardinality.has_finite_max()) ++num_rows;
  }
  for (const auto& [key, cardinality] : partial.nrel) {
    static_cast<void>(key);
    if (cardinality.min() > 0) ++num_rows;
    if (cardinality.has_finite_max()) ++num_rows;
  }
  if (nu.size() != num_rows + 1) {
    out.failure = StrCat("certificate covers ", nu.size(),
                         " rows, probe system has ", num_rows + 1);
    return out;
  }

  bool closed = true;
  std::vector<ClassId> hints;
  std::string failure;
  auto violate = [&](std::string why) {
    closed = false;
    if (failure.empty()) failure = std::move(why);
  };

  // (a) Absent compound classes: an absent C̄ touches only its own
  // (absent) rows plus the probe row when target ∈ C̄, and the probe
  // multiplier carries the certificate's whole positive gap — so every
  // compound containing the target must already be materialized.
  if (!all_compounds_materialized(target)) {
    hints.push_back(target);
    violate(StrCat("stream of target ", schema.ClassName(target),
                   " not exhausted"));
  }

  // (b) + (c): walk the rows in emission order, folding each key's
  // min/max multipliers into the combined coefficient d an absent
  // column feeding that key would receive.
  size_t cursor = 0;
  for (const auto& [key, cardinality] : partial.natt) {
    const auto& [term, compound_index] = key;
    Rational d;
    if (cardinality.min() > 0) d += nu[cursor++];
    if (cardinality.has_finite_max()) d += nu[cursor++];
    if (!d.is_positive()) continue;
    const CompoundClass& compound = partial.compound_classes[compound_index];
    std::vector<ClassId> key_hints;
    if (NattKeyRescued(schema, compound, term, all_compounds_materialized,
                       &key_hints)) {
      continue;
    }
    hints.insert(hints.end(), key_hints.begin(), key_hints.end());
    violate(StrCat("positive dual on ", term.inverse ? "inv " : "",
                   schema.AttributeName(term.attribute), " @ ",
                   compound.ToString(schema),
                   " with possibly-absent counterparts"));
  }
  for (const auto& [key, cardinality] : partial.nrel) {
    const auto& [relation, role_index, compound_index] = key;
    Rational d;
    if (cardinality.min() > 0) d += nu[cursor++];
    if (cardinality.has_finite_max()) d += nu[cursor++];
    if (!d.is_positive()) continue;
    // Conservative: a compound relation's absent counterparts span every
    // other position, so a positive dual is never rescued. Hint the
    // positively mentioned classes of the relation's role clauses.
    const RelationDefinition* definition =
        schema.relation_definition(relation);
    if (definition != nullptr) {
      for (const RoleClause& clause : definition->constraints) {
        for (const RoleLiteral& literal : clause.literals) {
          AddPositiveLiterals(literal.formula, &hints);
        }
      }
    }
    violate(StrCat("positive dual on ", schema.RelationName(relation), "[",
                   role_index, "] @ ",
                   partial.compound_classes[compound_index].ToString(schema)));
  }
  CAR_CHECK_EQ(cursor, num_rows);

  std::sort(hints.begin(), hints.end());
  hints.erase(std::unique(hints.begin(), hints.end()), hints.end());
  out.closed = closed;
  out.refinement_hints = std::move(hints);
  out.failure = std::move(failure);
  return out;
}

}  // namespace car
