#ifndef CAR_SEMANTICS_EVALUATOR_H_
#define CAR_SEMANTICS_EVALUATOR_H_

#include <vector>

#include "semantics/interpretation.h"

namespace car {

/// Evaluates class-literals, class-clauses and class-formulae over an
/// interpretation (the inductive extension rules of Section 2.3:
/// (¬C)^I = Δ^I \ C^I, clause = union, formula = intersection).
class Evaluator {
 public:
  explicit Evaluator(const Interpretation* interpretation)
      : interpretation_(interpretation) {}

  bool Satisfies(ObjectId object, const ClassLiteral& literal) const {
    bool member = interpretation_->InClass(literal.class_id, object);
    return literal.negated ? !member : member;
  }

  bool Satisfies(ObjectId object, const ClassClause& clause) const {
    for (const ClassLiteral& literal : clause.literals()) {
      if (Satisfies(object, literal)) return true;
    }
    return false;
  }

  bool Satisfies(ObjectId object, const ClassFormula& formula) const {
    for (const ClassClause& clause : formula.clauses()) {
      if (!Satisfies(object, clause)) return false;
    }
    return true;
  }

  /// The extension F^I of a class-formula.
  std::vector<ObjectId> Extension(const ClassFormula& formula) const {
    std::vector<ObjectId> members;
    for (ObjectId object = 0; object < interpretation_->universe_size();
         ++object) {
      if (Satisfies(object, formula)) members.push_back(object);
    }
    return members;
  }

 private:
  const Interpretation* interpretation_;
};

}  // namespace car

#endif  // CAR_SEMANTICS_EVALUATOR_H_
