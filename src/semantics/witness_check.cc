#include "semantics/witness_check.h"

#include <cstdint>
#include <map>
#include <tuple>
#include <utility>

#include "base/strings.h"
#include "expansion/compound.h"

namespace car {

namespace {

WitnessCheckResult Invalid(std::string failure) {
  WitnessCheckResult result;
  result.valid = false;
  result.failure = std::move(failure);
  return result;
}

}  // namespace

WitnessCheckResult ValidatePsiWitness(const Schema& schema,
                                      const Expansion& expansion,
                                      const PsiWitness& witness) {
  const size_t num_cc = expansion.compound_classes.size();
  const size_t num_ca = expansion.compound_attributes.size();
  const size_t num_cr = expansion.compound_relations.size();

  // --- Structure.
  if (witness.cc_active.size() != num_cc ||
      witness.cc_value.size() != num_cc ||
      witness.ca_active.size() != num_ca ||
      witness.ca_value.size() != num_ca ||
      witness.cr_active.size() != num_cr ||
      witness.cr_value.size() != num_cr) {
    return Invalid("witness not sized to the expansion");
  }
  if (num_cc == 0 || !expansion.compound_classes[0].empty()) {
    return Invalid("compound index 0 is not the empty compound");
  }
  for (size_t i = 1; i < num_cc; ++i) {
    const CompoundClass& compound = expansion.compound_classes[i];
    if (!(expansion.compound_classes[i - 1] < compound)) {
      return Invalid(StrCat("compound classes not in canonical order at #",
                            i));
    }
    for (ClassId member : compound.members()) {
      if (member < 0 || member >= schema.num_classes()) {
        return Invalid(StrCat("compound #", i, " names an unknown class"));
      }
    }
    if (!compound.IsConsistent(schema)) {
      return Invalid(StrCat("compound #", i,
                            " does not realize its members' isa formulae"));
    }
  }
  for (size_t i = 0; i < num_cc; ++i) {
    if (witness.cc_value[i].is_negative()) {
      return Invalid(StrCat("compound #", i, " has a negative value"));
    }
  }

  // --- Re-derive Natt/Nrel from the member classes' specs (the
  // Definition 3.1 construction), bypassing the expansion's cached maps.
  std::map<std::pair<AttributeTerm, int>, Cardinality> natt;
  std::map<std::tuple<RelationId, int, int>, Cardinality> nrel;
  std::vector<bool> constrained(num_cc, false);
  for (size_t i = 0; i < num_cc; ++i) {
    for (ClassId member : expansion.compound_classes[i].members()) {
      const ClassDefinition& definition = schema.class_definition(member);
      for (const AttributeSpec& spec : definition.attributes) {
        auto key = std::make_pair(spec.term, static_cast<int>(i));
        auto [it, inserted] = natt.emplace(key, spec.cardinality);
        if (!inserted) {
          it->second =
              Cardinality::IntersectUnchecked(it->second, spec.cardinality);
        }
        constrained[i] = true;
      }
      for (const ParticipationSpec& spec : definition.participations) {
        const RelationDefinition* relation =
            schema.relation_definition(spec.relation);
        if (relation == nullptr) {
          return Invalid(StrCat("compound #", i,
                                " participates in an unknown relation"));
        }
        int role_index = relation->RoleIndex(spec.role);
        if (role_index < 0) {
          return Invalid(StrCat("compound #", i,
                                " participates under an unknown role"));
        }
        auto key = std::make_tuple(spec.relation, role_index,
                                   static_cast<int>(i));
        auto [it, inserted] = nrel.emplace(key, spec.cardinality);
        if (!inserted) {
          it->second =
              Cardinality::IntersectUnchecked(it->second, spec.cardinality);
        }
        constrained[i] = true;
      }
    }
  }

  // --- Activity coherence of the compound classes.
  for (size_t i = 0; i < num_cc; ++i) {
    if (!witness.cc_active[i]) {
      if (!constrained[i]) {
        return Invalid(StrCat("unconstrained compound #", i,
                              " marked inactive"));
      }
      if (!witness.cc_value[i].is_zero()) {
        return Invalid(StrCat("inactive compound #", i,
                              " has a nonzero value"));
      }
    } else if (constrained[i] && !witness.cc_value[i].is_positive()) {
      // The maximal-support fixpoint only terminates once every active
      // constrained unknown is supported (strictly positive).
      return Invalid(StrCat("active constrained compound #", i,
                            " is unsupported (value not positive)"));
    }
  }

  // --- Compound attributes: endpoints, consistency, activity, sign.
  for (size_t j = 0; j < num_ca; ++j) {
    const CompoundAttribute& ca = expansion.compound_attributes[j];
    if (ca.attribute < 0 || ca.attribute >= schema.num_attributes() ||
        ca.from < 0 || static_cast<size_t>(ca.from) >= num_cc ||
        ca.to < 0 || static_cast<size_t>(ca.to) >= num_cc) {
      return Invalid(StrCat("compound attribute #", j, " out of range"));
    }
    if (!IsConsistentCompoundAttribute(
            schema, ca.attribute, expansion.compound_classes[ca.from],
            expansion.compound_classes[ca.to])) {
      return Invalid(StrCat("compound attribute #", j, " inconsistent"));
    }
    if (witness.ca_value[j].is_negative()) {
      return Invalid(StrCat("compound attribute #", j,
                            " has a negative value"));
    }
    if (witness.ca_active[j]) {
      if (!witness.cc_active[ca.from] || !witness.cc_active[ca.to]) {
        return Invalid(StrCat("compound attribute #", j,
                              " active with an inactive endpoint"));
      }
    } else if (!witness.ca_value[j].is_zero()) {
      return Invalid(StrCat("inactive compound attribute #", j,
                            " has a nonzero value"));
    }
  }

  // --- Compound relations: components, consistency, activity, sign.
  for (size_t j = 0; j < num_cr; ++j) {
    const CompoundRelation& cr = expansion.compound_relations[j];
    const RelationDefinition* definition =
        schema.relation_definition(cr.relation);
    if (definition == nullptr ||
        cr.components.size() != static_cast<size_t>(definition->arity())) {
      return Invalid(StrCat("compound relation #", j, " malformed"));
    }
    std::vector<const CompoundClass*> views;
    views.reserve(cr.components.size());
    for (int component : cr.components) {
      if (component < 0 || static_cast<size_t>(component) >= num_cc) {
        return Invalid(StrCat("compound relation #", j, " out of range"));
      }
      views.push_back(&expansion.compound_classes[component]);
    }
    if (!IsConsistentCompoundRelation(schema, *definition, views)) {
      return Invalid(StrCat("compound relation #", j, " inconsistent"));
    }
    if (witness.cr_value[j].is_negative()) {
      return Invalid(StrCat("compound relation #", j,
                            " has a negative value"));
    }
    if (witness.cr_active[j]) {
      for (int component : cr.components) {
        if (!witness.cc_active[component]) {
          return Invalid(StrCat("compound relation #", j,
                                " active with an inactive component"));
        }
      }
    } else if (!witness.cr_value[j].is_zero()) {
      return Invalid(StrCat("inactive compound relation #", j,
                            " has a nonzero value"));
    }
  }

  // --- Bound arithmetic: u·Var(C̄) ≤ Σ S(att, C̄) ≤ v·Var(C̄), with the
  // summation sets recovered by direct endpoint scan (not the cached
  // lookup indexes).
  for (const auto& [key, cardinality] : natt) {
    const auto& [term, compound_index] = key;
    Rational sum;
    for (size_t j = 0; j < num_ca; ++j) {
      const CompoundAttribute& ca = expansion.compound_attributes[j];
      if (ca.attribute != term.attribute) continue;
      if ((term.inverse ? ca.to : ca.from) != compound_index) continue;
      sum += witness.ca_value[j];
    }
    const Rational var = witness.cc_value[compound_index];
    if (Rational(static_cast<int64_t>(cardinality.min())) * var > sum) {
      return Invalid(StrCat("Natt min violated at compound #",
                            compound_index));
    }
    if (cardinality.has_finite_max() &&
        sum > Rational(static_cast<int64_t>(cardinality.max())) * var) {
      return Invalid(StrCat("Natt max violated at compound #",
                            compound_index));
    }
  }
  for (const auto& [key, cardinality] : nrel) {
    const auto& [relation, role_index, compound_index] = key;
    Rational sum;
    for (size_t j = 0; j < num_cr; ++j) {
      const CompoundRelation& cr = expansion.compound_relations[j];
      if (cr.relation != relation) continue;
      if (cr.components[role_index] != compound_index) continue;
      sum += witness.cr_value[j];
    }
    const Rational var = witness.cc_value[compound_index];
    if (Rational(static_cast<int64_t>(cardinality.min())) * var > sum) {
      return Invalid(StrCat("Nrel min violated at compound #",
                            compound_index));
    }
    if (cardinality.has_finite_max() &&
        sum > Rational(static_cast<int64_t>(cardinality.max())) * var) {
      return Invalid(StrCat("Nrel max violated at compound #",
                            compound_index));
    }
  }

  return WitnessCheckResult{};
}

}  // namespace car
