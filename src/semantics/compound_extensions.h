#ifndef CAR_SEMANTICS_COMPOUND_EXTENSIONS_H_
#define CAR_SEMANTICS_COMPOUND_EXTENSIONS_H_

#include <map>
#include <string>
#include <vector>

#include "expansion/expansion.h"
#include "semantics/interpretation.h"

namespace car {

/// The compound class of an object in an interpretation: the set of
/// classes it belongs to (Section 3.1 — every object realizes exactly one
/// compound class, which is why compound extensions partition the
/// universe).
CompoundClass CompoundClassOfObject(const Interpretation& interpretation,
                                    ObjectId object);

/// Extensions of all compound classes occurring in the interpretation:
/// maps each occurring member set to its objects. Compound classes with
/// empty extension do not appear.
std::map<std::vector<ClassId>, std::vector<ObjectId>> CompoundExtensions(
    const Interpretation& interpretation);

/// Lemma 3.2 verdict for an interpretation against an expansion.
struct Lemma32Result {
  bool holds = false;
  /// First violated condition ('A', 'B' or 'C'), '-' if none.
  char violated_condition = '-';
  std::string detail;
};

/// Checks the three conditions of Lemma 3.2 directly:
///  (A) inconsistent compound classes (and compound attributes/relations)
///      have empty extensions — equivalently, every object's compound
///      class is consistent, every attribute pair's endpoint compounds
///      form a consistent compound attribute, and every tuple a
///      consistent compound relation;
///  (B) for every Natt entry C̄ ⇒ att : (u, v) and every object of C̄,
///      its att-degree lies in [u, v];
///  (C) for every Nrel entry C̄ ⇒ R[U_k] : (x, y) and every object of C̄,
///      its participation count at U_k lies in [x, y].
/// By the lemma these conditions hold exactly for the models of the
/// schema, which the tests cross-check against the independent
/// model checker.
Lemma32Result CheckLemma32(const Expansion& expansion,
                           const Interpretation& interpretation);

}  // namespace car

#endif  // CAR_SEMANTICS_COMPOUND_EXTENSIONS_H_
