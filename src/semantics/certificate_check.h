#ifndef CAR_SEMANTICS_CERTIFICATE_CHECK_H_
#define CAR_SEMANTICS_CERTIFICATE_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "expansion/expansion.h"
#include "math/simplex.h"
#include "model/schema.h"

namespace car {

/// Stable identity of one Ψ disequation row of a partial expansion:
/// the Natt/Nrel key with the constrained compound class spelled by its
/// members instead of an expansion index. Row indices shift as the lazy
/// engine materializes more compounds; these keys do not, which is what
/// lets a learned infeasibility certificate be re-seated onto the next
/// round's probe system (reuse as a blocking constraint) and lets the
/// closure checker reason about rows semantically.
struct PsiRowKey {
  bool is_nrel = false;
  /// Lower (min) bound row when false, upper (max) bound row when true.
  bool upper = false;
  AttributeTerm term;                // Natt rows only.
  RelationId relation = kInvalidId;  // Nrel rows only.
  int role = 0;                      // Nrel rows only.
  /// Members of the constrained compound class.
  std::vector<ClassId> members;

  bool operator<(const PsiRowKey& other) const;
};

/// Replays BuildFullPsiSystem's emission order over `partial` (Natt map
/// order then Nrel map order; per key the min row iff min > 0, then the
/// max row iff the max is finite) and returns the stable key of every
/// disequation row, aligned with the probe system's constraint list. The
/// probe row, appended after these, has no key.
std::vector<PsiRowKey> PsiRowKeys(const Expansion& partial);

struct CertificateClosureResult {
  bool closed = false;
  /// When not closed: classes whose streams the next materialization
  /// round should grow — the positive range/role-formula literals of the
  /// violated rows, plus the target itself when its own stream is the
  /// obstruction. Sorted, deduplicated.
  std::vector<ClassId> refinement_hints;
  /// The first violation, human-readable; empty when closed.
  std::string failure;
};

/// The dual zero-extension check (DESIGN.md §5j), the UNSAT-side mirror
/// of the witness checker's zero-extension lemma: decides whether an
/// infeasibility certificate of the PARTIAL probe system — the raw Ψ
/// rows of `partial` plus the probe row Σ_{materialized C̄ ∋ target}
/// Var(C̄) >= 1, with `certificate` already validated exactly against
/// that system — remains valid for the FULL probe system when extended
/// by zero on every absent row. That holds iff every absent column has a
/// nonpositive combined coefficient under ν:
///
///   * an absent compound class C̄ touches only its own (absent) rows
///     plus the probe row when target ∈ C̄, where ν_probe > 0 — so
///     closure requires every compound containing the target to be
///     materialized (`all_compounds_materialized(target)`);
///   * an absent compound attribute with one materialized endpoint feeds
///     that endpoint's Natt rows for the attribute term: its combined
///     coefficient is d = ν_min + ν_max of those rows. d <= 0 closes the
///     key outright; otherwise the key is still closed when such an
///     absent counterpart provably cannot exist — some member of the
///     endpoint carries a spec on the term whose range formula has a
///     single-positive-literal clause {T} and every compound containing
///     T is materialized (consistency forces counterparts to contain T);
///   * an absent compound relation with a materialized component at
///     position k feeds that component's Nrel row pair: conservative,
///     d <= 0 only (a violated relation key is never rescued).
///
/// A closed certificate is a sound lazy UNSAT verdict for the target:
/// the zero-extended ν refutes the full probe system, and a satisfiable
/// target would make the full probe system feasible (the solved full
/// expansion's witness zero-extends to it). Nothing is trusted from the
/// solver: the caller validates ν exactly first, and this check reads
/// only the schema, the partial expansion and the materialization
/// predicate.
CertificateClosureResult CheckCertificateClosure(
    const Schema& schema, const Expansion& partial, ClassId target,
    const InfeasibilityCertificate& certificate,
    const std::function<bool(ClassId)>& all_compounds_materialized);

}  // namespace car

#endif  // CAR_SEMANTICS_CERTIFICATE_CHECK_H_
