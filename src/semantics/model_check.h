#ifndef CAR_SEMANTICS_MODEL_CHECK_H_
#define CAR_SEMANTICS_MODEL_CHECK_H_

#include <string>
#include <vector>

#include "semantics/interpretation.h"

namespace car {

/// Result of checking whether an interpretation is a model of a schema.
struct ModelCheckResult {
  bool is_model = false;
  /// Human-readable descriptions of the violated conditions (up to the
  /// configured cap); empty iff is_model.
  std::vector<std::string> violations;
};

struct ModelCheckOptions {
  /// Stop collecting after this many violations (checking continues to the
  /// first violation regardless; 0 means collect all).
  size_t max_violations = 16;
  /// The paper requires a nonempty universe for an interpretation; when
  /// checking intermediate artifacts it can be useful to allow emptiness.
  bool require_nonempty_universe = true;
};

/// Checks every satisfaction condition of Section 2.3: isa inclusion,
/// attribute typing and cardinalities (direct and inverse), participation
/// cardinalities, and role-clause constraints on relation tuples.
ModelCheckResult CheckModel(const Schema& schema,
                            const Interpretation& interpretation,
                            const ModelCheckOptions& options = {});

/// Convenience: true iff `interpretation` is a model of `schema`.
bool IsModel(const Schema& schema, const Interpretation& interpretation);

}  // namespace car

#endif  // CAR_SEMANTICS_MODEL_CHECK_H_
