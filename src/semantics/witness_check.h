#ifndef CAR_SEMANTICS_WITNESS_CHECK_H_
#define CAR_SEMANTICS_WITNESS_CHECK_H_

#include <string>
#include <vector>

#include "expansion/expansion.h"
#include "math/rational.h"
#include "model/schema.h"

namespace car {

/// A candidate model witness of a (possibly partial) expansion: the
/// activity masks and unknown values of an acceptability-fixpoint
/// optimum, indexed by the expansion's compound lists. This is what the
/// lazy (counterexample-guided) engine extracts from a partial-Ψ solve
/// before it is allowed to conclude satisfiability.
struct PsiWitness {
  std::vector<bool> cc_active;
  std::vector<bool> ca_active;
  std::vector<bool> cr_active;
  std::vector<Rational> cc_value;
  std::vector<Rational> ca_value;
  std::vector<Rational> cr_value;
};

struct WitnessCheckResult {
  bool valid = true;
  /// The first violated property, human-readable; empty when valid.
  std::string failure;
};

/// Validates a witness against the schema's semantics by independent
/// re-derivation — nothing is trusted from the expansion's cached
/// Natt/Nrel maps or lookup indexes, and nothing from the solver:
///
///  * structure: masks/values sized to the expansion; index 0 is the
///    empty compound; compounds canonically sorted, unique, and
///    schema-consistent; compound attribute/relation endpoints in range
///    and consistent per the Section 3.1 predicates;
///  * activity coherence: inactive unknowns are valued zero; a compound
///    attribute/relation is active only if all its endpoints are; an
///    unconstrained compound class (no re-derived Natt/Nrel entry) is
///    active; an active constrained one has a strictly positive value
///    (the maximal-support fixpoint invariant);
///  * bound arithmetic: every Natt/Nrel interval re-derived from the
///    member classes' attribute/participation specs (intersected per
///    compound) is satisfied by the witness values:
///    u·Var(C̄) ≤ Σ S(att, C̄) ≤ v·Var(C̄), summing over the expansion's
///    compound attributes/relations by direct endpoint scan.
///
/// A failure means the solution is spurious — the lazy engine must not
/// conclude from it and falls back to the eager path, so a checker
/// refutation can cost time but never an answer.
WitnessCheckResult ValidatePsiWitness(const Schema& schema,
                                      const Expansion& expansion,
                                      const PsiWitness& witness);

}  // namespace car

#endif  // CAR_SEMANTICS_WITNESS_CHECK_H_
