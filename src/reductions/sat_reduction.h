#ifndef CAR_REDUCTIONS_SAT_REDUCTION_H_
#define CAR_REDUCTIONS_SAT_REDUCTION_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "model/schema.h"

namespace car {

/// A propositional CNF formula: variables are 0-based; a literal is
/// (variable, negated); a clause is a disjunction of literals.
struct CnfFormula {
  int num_variables = 0;
  std::vector<std::vector<std::pair<int, bool>>> clauses;

  /// Evaluates under `assignment` (one bool per variable).
  bool IsSatisfiedBy(const std::vector<bool>& assignment) const;
  /// Exhaustive satisfiability test (testing oracle; num_variables <= 24).
  Result<bool> BruteForceSatisfiable() const;
};

/// The result of encoding a CNF formula as a CAR schema.
struct SatEncoding {
  Schema schema;
  /// The class that is satisfiable iff the formula is.
  std::string query_class;
};

/// Encodes CNF satisfiability as CAR class satisfiability: one class X_i
/// per variable and a query class whose isa part is the formula itself
/// (clauses become class-clauses, literals become class-literals). A
/// compound class containing the query class is exactly a satisfying
/// truth assignment, so the query class is satisfiable iff the formula
/// is.
///
/// This witnesses the boolean-reasoning hardness inside CAR's phase (1)
/// (the paper's Theorem 4.1 builds on the same expressive power; its
/// Theorem 4.2 shows hardness survives even *without* union and negation
/// via cardinality interactions — see counting_ladder.h for that
/// fragment's workload).
Result<SatEncoding> EncodeSatAsSchema(const CnfFormula& formula);

}  // namespace car

#endif  // CAR_REDUCTIONS_SAT_REDUCTION_H_
