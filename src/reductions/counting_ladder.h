#ifndef CAR_REDUCTIONS_COUNTING_LADDER_H_
#define CAR_REDUCTIONS_COUNTING_LADDER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "model/schema.h"

namespace car {

/// A workload in the union-free, negation-free fragment of Theorem 4.2:
/// the hardness of that fragment comes from the ability of cardinality
/// constraints to express disjointness and to interact along isa chains.
///
/// The ladder has classes L_0 ⊇ L_1 ⊇ ... ⊇ L_n (L_k isa L_{k-1}), where
/// each rung refines the cardinality interval of a shared attribute
/// `f : (lo_k, hi_k) T`. The bottom class L_n is satisfiable iff the
/// intersection of all intervals is nonempty — the generator computes
/// that ground truth analytically. A second family of "probe" classes
/// P_k isa L_k ∧ M_k additionally intersects each rung with a class M_k
/// whose own interval may or may not conflict, expressing disjointness
/// purely through counting (no ¬, no ∨ anywhere).
struct CountingLadder {
  Schema schema;
  /// Name of the bottom ladder class (L_n).
  std::string bottom_class;
  /// Names of the probe classes P_1..P_n.
  std::vector<std::string> probe_classes;
  /// Ground truth computed from the interval arithmetic.
  bool bottom_satisfiable = false;
  std::vector<bool> probe_satisfiable;
};

struct CountingLadderOptions {
  /// Number of rungs (n >= 1).
  int rungs = 4;
  /// Interval half-width per rung; the generator narrows intervals as it
  /// descends, optionally to emptiness.
  uint64_t base_count = 8;
  /// If true, the rung intervals are chosen to pinch to emptiness at the
  /// bottom (bottom_satisfiable = false); otherwise they stay compatible.
  bool pinch = false;
};

/// Builds the ladder; the result's ground-truth flags are exact, so the
/// reasoner's answers can be checked against them (and benchmarks can
/// sweep `rungs`).
Result<CountingLadder> BuildCountingLadder(
    const CountingLadderOptions& options = {});

}  // namespace car

#endif  // CAR_REDUCTIONS_COUNTING_LADDER_H_
