#include "reductions/sat_reduction.h"

#include "base/strings.h"

namespace car {

bool CnfFormula::IsSatisfiedBy(const std::vector<bool>& assignment) const {
  for (const auto& clause : clauses) {
    bool satisfied = false;
    for (const auto& [variable, negated] : clause) {
      if (assignment[variable] != negated) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

Result<bool> CnfFormula::BruteForceSatisfiable() const {
  if (num_variables > 24) {
    return ResourceExhausted(
        StrCat("brute force over ", num_variables, " variables"));
  }
  std::vector<bool> assignment(num_variables);
  for (uint64_t mask = 0; mask < (1ull << num_variables); ++mask) {
    for (int v = 0; v < num_variables; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

Result<SatEncoding> EncodeSatAsSchema(const CnfFormula& formula) {
  for (const auto& clause : formula.clauses) {
    if (clause.empty()) {
      return InvalidArgument(
          "empty CNF clause (trivially unsatisfiable input)");
    }
    for (const auto& [variable, negated] : clause) {
      (void)negated;
      if (variable < 0 || variable >= formula.num_variables) {
        return InvalidArgument(StrCat("literal variable ", variable,
                                      " out of range"));
      }
    }
  }

  SatEncoding encoding;
  Schema& schema = encoding.schema;
  std::vector<ClassId> variable_class(formula.num_variables);
  for (int v = 0; v < formula.num_variables; ++v) {
    variable_class[v] = schema.InternClass(StrCat("X", v));
  }
  encoding.query_class = "Query";
  ClassId query = schema.InternClass(encoding.query_class);
  ClassDefinition* definition = schema.mutable_class_definition(query);
  for (const auto& clause : formula.clauses) {
    ClassClause class_clause;
    for (const auto& [variable, negated] : clause) {
      ClassId id = variable_class[variable];
      class_clause.AddLiteral(negated ? ClassLiteral::Negative(id)
                                      : ClassLiteral::Positive(id));
    }
    definition->isa.AddClause(std::move(class_clause));
  }
  CAR_RETURN_IF_ERROR(schema.Validate());
  return encoding;
}

}  // namespace car
