#include "reductions/counting_ladder.h"

#include <algorithm>

#include "base/strings.h"

namespace car {

Result<CountingLadder> BuildCountingLadder(
    const CountingLadderOptions& options) {
  if (options.rungs < 1) {
    return InvalidArgument("a counting ladder needs at least one rung");
  }
  if (options.base_count < 2) {
    return InvalidArgument("base_count must be at least 2");
  }

  CountingLadder ladder;
  Schema& schema = ladder.schema;
  ClassId target = schema.InternClass("T");
  (void)target;
  AttributeId f = schema.InternAttribute("f");

  // Rung intervals: L_k carries f : (lo_k, hi_k) T. Descending, the lower
  // bounds rise by one and the upper bounds fall by one; with `pinch`
  // they cross at the bottom.
  const uint64_t width = options.pinch
                             ? static_cast<uint64_t>(options.rungs) / 2 + 1
                             : static_cast<uint64_t>(options.rungs) + 1;
  uint64_t running_lo = 0;
  uint64_t running_hi = Cardinality::kInfinity;

  ClassId previous = kInvalidId;
  for (int k = 0; k <= options.rungs; ++k) {
    ClassId rung = schema.InternClass(StrCat("L", k));
    ClassDefinition* definition = schema.mutable_class_definition(rung);
    if (previous != kInvalidId) {
      definition->isa = ClassFormula::OfClass(previous);
    }
    uint64_t lo = options.base_count + static_cast<uint64_t>(k);
    uint64_t hi = options.base_count + width +
                  (options.pinch ? 0u : static_cast<uint64_t>(k));
    AttributeSpec spec;
    spec.term = AttributeTerm::Direct(f);
    spec.cardinality = Cardinality(lo, std::max(lo, hi));
    spec.range = ClassFormula::OfClass(schema.InternClass("T"));
    definition->attributes.push_back(std::move(spec));
    running_lo = std::max(running_lo, lo);
    running_hi = std::min(running_hi, std::max(lo, hi));
    previous = rung;

    if (k == options.rungs) {
      ladder.bottom_class = StrCat("L", k);
      ladder.bottom_satisfiable = running_lo <= running_hi;
    }
  }

  // Probe classes: P_k isa L_k ∧ M_k, where M_k pins f to exactly
  // base_count - 1 links — always below every rung's lower bound, so
  // every probe is unsatisfiable although the schema is negation- and
  // union-free: the disjointness of M_k and L_k is expressed purely by
  // counting.
  for (int k = 1; k <= options.rungs; ++k) {
    ClassId m = schema.InternClass(StrCat("M", k));
    ClassDefinition* m_definition = schema.mutable_class_definition(m);
    AttributeSpec m_spec;
    m_spec.term = AttributeTerm::Direct(f);
    m_spec.cardinality = Cardinality::Exactly(options.base_count - 1);
    m_spec.range = ClassFormula::OfClass(schema.InternClass("T"));
    m_definition->attributes.push_back(std::move(m_spec));

    ClassId probe = schema.InternClass(StrCat("P", k));
    ClassDefinition* p_definition = schema.mutable_class_definition(probe);
    p_definition->isa = ClassFormula::OfClass(schema.LookupClass(
        StrCat("L", k)));
    p_definition->isa.AndWith(ClassFormula::OfClass(m));
    ladder.probe_classes.push_back(StrCat("P", k));
    ladder.probe_satisfiable.push_back(false);
  }

  CAR_RETURN_IF_ERROR(schema.Validate());

  // Sanity: the generated schema really is in Theorem 4.2's fragment.
  CAR_CHECK(schema.IsUnionFree());
  CAR_CHECK(schema.IsNegationFree());
  return ladder;
}

}  // namespace car
