#ifndef CAR_SOLVER_PSI_H_
#define CAR_SOLVER_PSI_H_

#include <vector>

#include "expansion/expansion.h"
#include "math/linear.h"

namespace car {

/// The system Ψ_S of linear disequations derived from the expansion of a
/// CAR schema (Section 3.2), restricted to an "active" subset of the
/// unknowns (used by the acceptability fixpoint of the solver; pass
/// all-true masks for the full system).
///
/// Unknowns: one per active compound class, compound attribute and
/// compound relation. Constraints (nonnegativity is implicit in the
/// simplex solver):
///
///   for C̄ ⇒ att : (u, v) in Natt:
///       u * Var(C̄) <= S(att, C̄) <= v * Var(C̄)
///   for C̄ ⇒ R[U_k] : (x, y) in Nrel:
///       x * Var(C̄) <= sum of Var(R̄) with R̄[U_k] = C̄ <= y * Var(C̄)
///
/// where S(A, C̄) sums Var(⟨C̄, C̄2⟩_A) and S((inv A), C̄) sums
/// Var(⟨C̄1, C̄⟩_A). Constraints whose compound class is inactive are
/// dropped (their attribute/relation unknowns are inactive too, by the
/// caller's deactivation rule). Infinite upper bounds yield no <=
/// constraint; zero lower bounds yield no >= constraint.
struct PsiSystem {
  LinearSystem system;
  /// Variable index per compound class / attribute / relation, or -1 when
  /// inactive (not part of the system).
  std::vector<int> cc_var;
  std::vector<int> ca_var;
  std::vector<int> cr_var;
  /// Total number of disequations emitted (both directions counted).
  size_t num_disequations = 0;
};

PsiSystem BuildPsiSystem(const Expansion& expansion,
                         const std::vector<bool>& cc_active,
                         const std::vector<bool>& ca_active,
                         const std::vector<bool>& cr_active);

/// Convenience: the full system with every unknown active.
PsiSystem BuildFullPsiSystem(const Expansion& expansion);

}  // namespace car

#endif  // CAR_SOLVER_PSI_H_
