#include "solver/solve.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "base/strings.h"
#include "base/thread_pool.h"
#include "solver/psi.h"

namespace car {

namespace {

/// Deactivates compound attributes and relations with any inactive
/// compound-class endpoint (the acceptability propagation). Returns true
/// if anything changed.
bool PropagateDeactivation(const Expansion& expansion,
                           const std::vector<bool>& cc_active,
                           std::vector<bool>* ca_active,
                           std::vector<bool>* cr_active) {
  bool changed = false;
  for (size_t i = 0; i < expansion.compound_attributes.size(); ++i) {
    if (!(*ca_active)[i]) continue;
    const CompoundAttribute& ca = expansion.compound_attributes[i];
    if (!cc_active[ca.from] || !cc_active[ca.to]) {
      (*ca_active)[i] = false;
      changed = true;
    }
  }
  for (size_t i = 0; i < expansion.compound_relations.size(); ++i) {
    if (!(*cr_active)[i]) continue;
    const CompoundRelation& cr = expansion.compound_relations[i];
    for (int component : cr.components) {
      if (!cc_active[component]) {
        (*cr_active)[i] = false;
        changed = true;
        break;
      }
    }
  }
  return changed;
}

}  // namespace

Result<PsiSolution> SolvePsi(const Expansion& expansion,
                             const PsiSolverOptions& options) {
  PsiSolution solution;
  solution.cc_active.assign(expansion.compound_classes.size(), true);
  // Compound classes that appear in no Natt/Nrel entry have unconstrained
  // unknowns: they are always supportable and need no t-gadget (their
  // certificate count is fixed to 1 below). This keeps the support LP at
  // the size of the *constrained* part of the system.
  std::vector<bool> cc_constrained(expansion.compound_classes.size(), false);
  for (const auto& [key, cardinality] : expansion.natt) {
    (void)cardinality;
    cc_constrained[key.second] = true;
  }
  for (const auto& [key, cardinality] : expansion.nrel) {
    (void)cardinality;
    cc_constrained[std::get<2>(key)] = true;
  }
  solution.ca_active.assign(expansion.compound_attributes.size(), true);
  solution.cr_active.assign(expansion.compound_relations.size(), true);

  ExecContext* exec = options.exec;
  SimplexSolver::Options simplex_options;
  simplex_options.max_pivots = options.max_pivots;
  simplex_options.exec = exec;
  simplex_options.kernel = options.kernel;
  SimplexSolver simplex(simplex_options);

  std::vector<Rational> final_values;
  PsiSystem final_psi;

  while (true) {
    CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));
    ++solution.fixpoint_rounds;
    PropagateDeactivation(expansion, solution.cc_active, &solution.ca_active,
                          &solution.cr_active);

    PsiSystem psi = BuildPsiSystem(expansion, solution.cc_active,
                                   solution.ca_active, solution.cr_active);

    // Support-maximization variables: t_C̄ <= Var(C̄), t_C̄ <= 1, maximize
    // the sum of all t. At the optimum, t_C̄ = 1 exactly on the maximal
    // support and Var(C̄) >= 1 there.
    LinearExpr objective;
    std::vector<std::pair<size_t, int>> t_vars;  // (cc index, t variable).
    for (size_t i = 0; i < solution.cc_active.size(); ++i) {
      if (!solution.cc_active[i] || !cc_constrained[i]) continue;
      int t = psi.system.AddVariable(StrCat("t#", i));
      t_vars.emplace_back(i, t);
      LinearConstraint below_var;
      below_var.expr.Add(t, Rational(1));
      below_var.expr.Add(psi.cc_var[i], Rational(-1));
      below_var.relation = Relation::kLessEqual;
      below_var.rhs = Rational(0);
      psi.system.AddConstraint(std::move(below_var));
      LinearConstraint below_one;
      below_one.expr.Add(t, Rational(1));
      below_one.relation = Relation::kLessEqual;
      below_one.rhs = Rational(1);
      psi.system.AddConstraint(std::move(below_one));
      objective.Add(t, Rational(1));
    }

    solution.largest_lp_variables =
        std::max(solution.largest_lp_variables,
                 static_cast<size_t>(psi.system.num_variables()));
    solution.largest_lp_constraints =
        std::max(solution.largest_lp_constraints,
                 psi.system.constraints().size());

    CAR_ASSIGN_OR_RETURN(LpResult lp, simplex.Maximize(psi.system, objective));
    ++solution.lp_solves;
    if (exec != nullptr) exec->CountLpSolves(1);
    solution.total_pivots += lp.pivots;
    solution.scalar_promotions += lp.scalar_promotions;
    solution.peak_tableau_nonzeros =
        std::max(solution.peak_tableau_nonzeros, lp.tableau_nonzeros);
    solution.peak_tableau_cells =
        std::max(solution.peak_tableau_cells, lp.tableau_cells);
    CAR_CHECK(lp.outcome == LpOutcome::kOptimal)
        << "support LP must have an optimum (outcome: "
        << LpOutcomeToString(lp.outcome) << ")";

    // New support: compound classes whose unknown is strictly positive.
    bool shrank = false;
    for (const auto& [cc_index, t_var] : t_vars) {
      (void)t_var;
      const Rational& value = lp.values[psi.cc_var[cc_index]];
      if (!value.is_positive()) {
        solution.cc_active[cc_index] = false;
        shrank = true;
      }
    }
    if (!shrank) {
      final_values = std::move(lp.values);
      final_psi = std::move(psi);
      break;
    }
  }

  // Derive per-class satisfiability from the surviving compound classes.
  const Schema& schema = *expansion.schema;
  solution.class_satisfiable.assign(schema.num_classes(), false);
  for (size_t i = 0; i < expansion.compound_classes.size(); ++i) {
    if (!solution.cc_active[i]) continue;
    for (ClassId member : expansion.compound_classes[i].members()) {
      solution.class_satisfiable[member] = true;
    }
  }

  // Integer certificate: scale the final rational solution by the least
  // common multiple of all denominators. Ψ_S is homogeneous, so the scaled
  // vector is still a solution, and every active Var(C̄) >= 1 stays >= 1.
  //
  // LCM is associative and commutative, so the chunked parallel reduction
  // yields the same value as the serial sweep regardless of merge order.
  std::vector<int> all_variables;
  all_variables.reserve(final_psi.cc_var.size() + final_psi.ca_var.size() +
                        final_psi.cr_var.size());
  all_variables.insert(all_variables.end(), final_psi.cc_var.begin(),
                       final_psi.cc_var.end());
  all_variables.insert(all_variables.end(), final_psi.ca_var.begin(),
                       final_psi.ca_var.end());
  all_variables.insert(all_variables.end(), final_psi.cr_var.begin(),
                       final_psi.cr_var.end());
  ParallelForOptions parallel;
  parallel.num_threads = options.num_threads;
  parallel.min_chunk = 64;
  parallel.cancel = exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));
  BigInt lcm(1);
  std::mutex lcm_mutex;
  ParallelFor(all_variables.size(), parallel,
              [&](size_t begin, size_t end) {
                BigInt local(1);
                for (size_t i = begin; i < end; ++i) {
                  int variable = all_variables[i];
                  if (variable < 0) continue;
                  local = BigInt::Lcm(local,
                                      final_values[variable].denominator());
                }
                std::lock_guard<std::mutex> lock(lcm_mutex);
                lcm = BigInt::Lcm(lcm, local);
              });
  // A trip during the LCM reduction means skipped chunks and a short
  // LCM; bail out before the is_integer() check below could fire on it.
  CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));

  auto scaled = [&lcm, &final_values](int variable) {
    if (variable < 0) return BigInt(0);
    Rational value = final_values[variable] * Rational(lcm);
    CAR_CHECK(value.is_integer());
    return value.numerator();
  };
  // Scaling is an independent exact multiplication per unknown; each
  // parallel iteration writes its own preallocated slot.
  solution.certificate.cc_count.assign(final_psi.cc_var.size(), BigInt(0));
  solution.certificate.ca_count.assign(final_psi.ca_var.size(), BigInt(0));
  solution.certificate.cr_count.assign(final_psi.cr_var.size(), BigInt(0));
  ParallelFor(final_psi.cc_var.size(), parallel,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  BigInt count = scaled(final_psi.cc_var[i]);
                  // Unconstrained active compound classes carry no
                  // t-gadget; give them the population 1 they are
                  // entitled to (their unknown occurs in no disequation).
                  if (solution.cc_active[i] && !cc_constrained[i] &&
                      count.is_zero()) {
                    count = BigInt(1);
                  }
                  solution.certificate.cc_count[i] = std::move(count);
                }
              });
  ParallelFor(final_psi.ca_var.size(), parallel,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  solution.certificate.ca_count[i] =
                      scaled(final_psi.ca_var[i]);
                }
              });
  ParallelFor(final_psi.cr_var.size(), parallel,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  solution.certificate.cr_count[i] =
                      scaled(final_psi.cr_var[i]);
                }
              });
  // A trip during certificate post-processing leaves partially scaled
  // counts behind; fail the solve rather than return them.
  CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));
  return solution;
}

}  // namespace car
