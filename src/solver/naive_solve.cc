#include "solver/naive_solve.h"

#include "base/strings.h"
#include "math/simplex.h"
#include "solver/psi.h"

namespace car {

Result<NaivePsiResult> SolvePsiNaive(const Expansion& expansion,
                                     const NaiveSolverOptions& options) {
  const Schema& schema = *expansion.schema;
  NaivePsiResult result;
  result.class_satisfiable.assign(schema.num_classes(), false);

  // Constrained compound classes (the ones whose support must be
  // guessed); unconstrained ones are unconditionally populable and make
  // their member classes satisfiable outright.
  std::vector<bool> constrained(expansion.compound_classes.size(), false);
  for (const auto& [key, cardinality] : expansion.natt) {
    (void)cardinality;
    constrained[key.second] = true;
  }
  for (const auto& [key, cardinality] : expansion.nrel) {
    (void)cardinality;
    constrained[std::get<2>(key)] = true;
  }
  std::vector<int> guessable;
  for (size_t i = 0; i < constrained.size(); ++i) {
    if (constrained[i]) {
      guessable.push_back(static_cast<int>(i));
    } else {
      for (ClassId member : expansion.compound_classes[i].members()) {
        result.class_satisfiable[member] = true;
      }
    }
  }
  if (static_cast<int>(guessable.size()) >
      options.max_constrained_compound_classes) {
    return ResourceExhausted(
        StrCat("naive support enumeration over ", guessable.size(),
               " constrained compound classes (2^n LP solves)"));
  }

  SimplexSolver simplex;
  const uint64_t num_subsets = 1ull << guessable.size();
  for (uint64_t mask = 1; mask < num_subsets; ++mask) {
    ++result.supports_tried;
    std::vector<bool> cc_active(expansion.compound_classes.size(), false);
    for (size_t i = 0; i < constrained.size(); ++i) {
      if (!constrained[i]) cc_active[i] = true;
    }
    for (size_t bit = 0; bit < guessable.size(); ++bit) {
      if (mask & (1ull << bit)) cc_active[guessable[bit]] = true;
    }

    // Acceptability by construction: drop counted pairs/tuples with any
    // endpoint outside the guessed support.
    std::vector<bool> ca_active(expansion.compound_attributes.size(), true);
    for (size_t i = 0; i < ca_active.size(); ++i) {
      const CompoundAttribute& ca = expansion.compound_attributes[i];
      ca_active[i] = cc_active[ca.from] && cc_active[ca.to];
    }
    std::vector<bool> cr_active(expansion.compound_relations.size(), true);
    for (size_t i = 0; i < cr_active.size(); ++i) {
      for (int component : expansion.compound_relations[i].components) {
        if (!cc_active[component]) {
          cr_active[i] = false;
          break;
        }
      }
    }

    PsiSystem psi =
        BuildPsiSystem(expansion, cc_active, ca_active, cr_active);
    for (size_t bit = 0; bit < guessable.size(); ++bit) {
      if (!(mask & (1ull << bit))) continue;
      LinearConstraint populated;
      populated.expr.Add(psi.cc_var[guessable[bit]], Rational(1));
      populated.relation = Relation::kGreaterEqual;
      populated.rhs = Rational(1);
      psi.system.AddConstraint(std::move(populated));
    }
    CAR_ASSIGN_OR_RETURN(LpResult lp, simplex.CheckFeasible(psi.system));
    ++result.lp_solves;
    if (lp.outcome != LpOutcome::kOptimal) continue;
    for (size_t bit = 0; bit < guessable.size(); ++bit) {
      if (!(mask & (1ull << bit))) continue;
      for (ClassId member :
           expansion.compound_classes[guessable[bit]].members()) {
        result.class_satisfiable[member] = true;
      }
    }
  }
  return result;
}

}  // namespace car
