#ifndef CAR_SOLVER_NAIVE_SOLVE_H_
#define CAR_SOLVER_NAIVE_SOLVE_H_

#include <vector>

#include "base/result.h"
#include "expansion/expansion.h"

namespace car {

/// Result of the naive (baseline) acceptability procedure.
struct NaivePsiResult {
  std::vector<bool> class_satisfiable;
  /// Supports tried and LPs solved (the exponential cost driver).
  size_t supports_tried = 0;
  size_t lp_solves = 0;
};

struct NaiveSolverOptions {
  /// The subset enumeration is 2^(#constrained compound classes); refuse
  /// beyond this many constrained compound classes.
  int max_constrained_compound_classes = 20;
};

/// The baseline the paper improves on: [CL94]'s treatment of
/// acceptability guesses the support explicitly. For every subset Z of
/// the constrained compound classes, build Ψ_S restricted to Z (compound
/// attributes/relations with endpoints outside Z removed — acceptability
/// by construction), require Var(C̄) >= 1 for C̄ ∈ Z, and test plain LP
/// feasibility; a class is satisfiable iff some feasible support contains
/// a compound class containing it.
///
/// This is sound and complete but takes exponentially many LP solves in
/// the number of constrained compound classes, whereas SolvePsi
/// (solve.h) needs at most that many LP solves *in total* — the
/// improvement over [CL94] claimed in Section 3 (single- vs
/// double-exponential end to end). The equivalence of the two procedures
/// is asserted by tests; the cost gap is measured by
/// bench/bench_phase2_baseline.cc.
Result<NaivePsiResult> SolvePsiNaive(const Expansion& expansion,
                                     const NaiveSolverOptions& options = {});

}  // namespace car

#endif  // CAR_SOLVER_NAIVE_SOLVE_H_
