#include "solver/psi.h"

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// Emits u * Var(C̄) <= sum <= v * Var(C̄) as up to two constraints.
void EmitBoundPair(int cc_variable, const LinearExpr& sum,
                   const Cardinality& cardinality, const std::string& label,
                   PsiSystem* psi) {
  if (cardinality.min() > 0) {
    LinearConstraint lower;
    lower.expr = sum;
    lower.expr.Add(cc_variable,
                   Rational(-static_cast<int64_t>(cardinality.min())));
    lower.relation = Relation::kGreaterEqual;
    lower.rhs = Rational(0);
    lower.label = StrCat(label, " min ", cardinality.min());
    psi->system.AddConstraint(std::move(lower));
    ++psi->num_disequations;
  }
  if (cardinality.has_finite_max()) {
    LinearConstraint upper;
    upper.expr = sum;
    upper.expr.Add(cc_variable,
                   Rational(-static_cast<int64_t>(cardinality.max())));
    upper.relation = Relation::kLessEqual;
    upper.rhs = Rational(0);
    upper.label = StrCat(label, " max ", cardinality.max());
    psi->system.AddConstraint(std::move(upper));
    ++psi->num_disequations;
  }
}

}  // namespace

PsiSystem BuildPsiSystem(const Expansion& expansion,
                         const std::vector<bool>& cc_active,
                         const std::vector<bool>& ca_active,
                         const std::vector<bool>& cr_active) {
  const Schema& schema = *expansion.schema;
  CAR_CHECK_EQ(cc_active.size(), expansion.compound_classes.size());
  CAR_CHECK_EQ(ca_active.size(), expansion.compound_attributes.size());
  CAR_CHECK_EQ(cr_active.size(), expansion.compound_relations.size());

  PsiSystem psi;
  psi.cc_var.assign(cc_active.size(), -1);
  psi.ca_var.assign(ca_active.size(), -1);
  psi.cr_var.assign(cr_active.size(), -1);

  for (size_t i = 0; i < cc_active.size(); ++i) {
    if (!cc_active[i]) continue;
    psi.cc_var[i] = psi.system.AddVariable(
        StrCat("cc:", expansion.compound_classes[i].ToString(schema)));
  }
  for (size_t i = 0; i < ca_active.size(); ++i) {
    if (!ca_active[i]) continue;
    const CompoundAttribute& ca = expansion.compound_attributes[i];
    psi.ca_var[i] = psi.system.AddVariable(
        StrCat("ca:", schema.AttributeName(ca.attribute), "<",
               expansion.compound_classes[ca.from].ToString(schema), ",",
               expansion.compound_classes[ca.to].ToString(schema), ">"));
  }
  for (size_t i = 0; i < cr_active.size(); ++i) {
    if (!cr_active[i]) continue;
    const CompoundRelation& cr = expansion.compound_relations[i];
    std::vector<std::string> parts;
    for (int component : cr.components) {
      parts.push_back(
          expansion.compound_classes[component].ToString(schema));
    }
    psi.cr_var[i] = psi.system.AddVariable(
        StrCat("cr:", schema.RelationName(cr.relation), "<",
               StrJoin(parts, ","), ">"));
  }

  // Natt constraints.
  for (const auto& [key, cardinality] : expansion.natt) {
    const auto& [term, compound_index] = key;
    if (!cc_active[compound_index]) continue;
    LinearExpr sum;
    const auto& index_map =
        term.inverse ? expansion.ca_by_to : expansion.ca_by_from;
    auto it = index_map.find({term.attribute, compound_index});
    if (it != index_map.end()) {
      for (int ca_index : it->second) {
        if (ca_active[ca_index]) {
          sum.Add(psi.ca_var[ca_index], Rational(1));
        }
      }
    }
    std::string label =
        StrCat(term.inverse ? "inv " : "", schema.AttributeName(term.attribute),
               " @ ", expansion.compound_classes[compound_index]
                          .ToString(schema));
    EmitBoundPair(psi.cc_var[compound_index], sum, cardinality, label, &psi);
  }

  // Nrel constraints.
  for (const auto& [key, cardinality] : expansion.nrel) {
    const auto& [relation, role_index, compound_index] = key;
    if (!cc_active[compound_index]) continue;
    LinearExpr sum;
    auto it = expansion.cr_by_role.find({relation, role_index,
                                         compound_index});
    if (it != expansion.cr_by_role.end()) {
      for (int cr_index : it->second) {
        if (cr_active[cr_index]) {
          sum.Add(psi.cr_var[cr_index], Rational(1));
        }
      }
    }
    std::string label =
        StrCat(schema.RelationName(relation), "[", role_index, "] @ ",
               expansion.compound_classes[compound_index].ToString(schema));
    EmitBoundPair(psi.cc_var[compound_index], sum, cardinality, label, &psi);
  }

  return psi;
}

PsiSystem BuildFullPsiSystem(const Expansion& expansion) {
  return BuildPsiSystem(
      expansion,
      std::vector<bool>(expansion.compound_classes.size(), true),
      std::vector<bool>(expansion.compound_attributes.size(), true),
      std::vector<bool>(expansion.compound_relations.size(), true));
}

}  // namespace car
