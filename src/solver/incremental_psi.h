#ifndef CAR_SOLVER_INCREMENTAL_PSI_H_
#define CAR_SOLVER_INCREMENTAL_PSI_H_

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "expansion/expansion_delta.h"
#include "math/simplex.h"
#include "solver/psi.h"
#include "solver/solve.h"

namespace car {

/// The frozen per-session state of the incremental Ψ solver: the FULL base
/// system (every unknown active, support t-gadgets appended) solved once
/// for a warm-start snapshot, plus the row bookkeeping needed to extend
/// base constraints with delta terms. Built once per base expansion;
/// read-only afterwards (probe threads copy the snapshot, never mutate
/// the shared state).
struct IncrementalPsiBase {
  /// Full system over the base expansion: variable maps cc_var/ca_var/
  /// cr_var are all >= 0 (nothing inactive).
  PsiSystem psi;
  /// Per base compound class: does it carry a Natt/Nrel entry (and hence
  /// a t-gadget)? Intrinsic to the compound's members, so extending the
  /// schema with an auxiliary class never changes it.
  std::vector<bool> cc_constrained;
  /// Per base compound class: its support variable t, or -1 when
  /// unconstrained (no gadget).
  std::vector<int> t_var;
  /// Constraint-list indices of the lower/upper row emitted for each
  /// Natt/Nrel entry (-1 when that direction was not emitted: zero min /
  /// infinite max). Delta compound attributes/relations with a BASE
  /// endpoint extend exactly these rows.
  std::map<std::pair<AttributeTerm, int>, std::pair<int, int>> natt_rows;
  std::map<std::tuple<RelationId, int, int>, std::pair<int, int>> nrel_rows;
  /// Sum of the base t variables (the support-maximization objective of
  /// the base system).
  LinearExpr objective;
  /// Feasible optimal basis of the base system; probes copy it and resume
  /// with their delta rows instead of solving from scratch.
  SimplexSnapshot snapshot;

  // Statistics of the base solve.
  size_t base_pivots = 0;
  uint64_t base_scalar_promotions = 0;
  uint64_t base_tableau_nonzeros = 0;
  uint64_t base_tableau_cells = 0;
};

/// What a probe solve reports: whether the auxiliary class survives the
/// acceptability fixpoint, plus solve statistics.
struct IncrementalProbeResult {
  bool aux_satisfiable = false;
  size_t fixpoint_rounds = 0;
  size_t lp_solves = 0;
  size_t total_pivots = 0;
  /// Scalar fast-path promotions summed over the probe's LP solves, and
  /// the largest (nonzeros / dense extent) tableau among them. All three
  /// are deterministic per probe: each solve runs on one thread and the
  /// pivot sequence is fixed by Bland's rule.
  uint64_t scalar_promotions = 0;
  uint64_t peak_tableau_nonzeros = 0;
  uint64_t peak_tableau_cells = 0;
};

/// The outcome of one warm-started partial-Ψ solve over base + delta:
/// the acceptability-fixpoint activity masks and the final LP values of
/// every unknown, all indexed GLOBALLY (base count + position within the
/// delta). This is the general core the auxiliary-class probe wraps —
/// and the per-round engine of the lazy (counterexample-guided)
/// expansion, whose refinement rounds solve a growing partial expansion
/// and validate these values as a model witness. The delta may be empty
/// (the lazy seed round: solve the base alone).
struct PartialPsiResult {
  /// Activity after the fixpoint. Unconstrained compound classes are
  /// always active (their unknowns occur in no disequation).
  std::vector<bool> cc_active;
  std::vector<bool> ca_active;
  std::vector<bool> cr_active;
  /// The optimum's unknown values (dead unknowns are pinned to zero).
  std::vector<Rational> cc_value;
  std::vector<Rational> ca_value;
  std::vector<Rational> cr_value;
  size_t fixpoint_rounds = 0;
  size_t lp_solves = 0;
  size_t total_pivots = 0;
  uint64_t scalar_promotions = 0;
  uint64_t peak_tableau_nonzeros = 0;
  uint64_t peak_tableau_cells = 0;
};

/// The UNSAT-side probe of the lazy engine: the raw full-active Ψ system
/// of a PARTIAL expansion, plus one probe row appended last,
///   Σ_{materialized C̄ ∋ target} Var(C̄) >= 1.
/// No t-gadgets and no fixpoint — a plain feasibility question. If the
/// probe is infeasible AND its Farkas certificate is closed under the
/// not-yet-materialized columns (CheckCertificateClosure), the target is
/// unsatisfiable: the zero-extended certificate refutes the full probe
/// system, which a satisfiable target's full-expansion witness would
/// satisfy (zero-extension, scaled to meet the probe row). A feasible
/// probe concludes nothing — the engine keeps refining.
struct UnsatProbe {
  /// Variable maps over the partial expansion; the probe row is the last
  /// constraint of psi.system.
  PsiSystem psi;
  /// Index of the probe row in psi.system.constraints().
  size_t probe_row = 0;
  ClassId target = kInvalidId;
};

/// Builds the probe for `target` over `partial` (deterministic, no LP).
UnsatProbe BuildUnsatProbe(const Expansion& partial, ClassId target);

/// Solves the probe cold on the production sparse kernel with Farkas
/// extraction enabled (extraction is only defined for cold tableaus, so
/// the kernel choice in `options` is not honored here; outcomes are
/// bit-identical regardless). kInfeasible results carry
/// LpResult::infeasibility_certificate, which the caller must re-validate
/// with ValidateInfeasibilityCertificate before trusting.
Result<LpResult> SolveUnsatProbe(const UnsatProbe& probe,
                                 const PsiSolverOptions& options);

/// Runs the warm-started pinned acceptability fixpoint over base + delta
/// (the machinery documented on SolvePsiIncremental below, minus the
/// auxiliary-class shortcuts) and reports the resulting activity masks
/// and unknown values. Every compound class the delta adds must carry
/// global indices consistent with `base`; `delta` may be empty. The
/// masks/values are bit-identical to what SolvePsi computes on the
/// assembled base+delta expansion, by the pinning and vertex-independence
/// arguments below.
Result<PartialPsiResult> SolvePsiOverDelta(const Expansion& base,
                                           const IncrementalPsiBase& psi_base,
                                           const ExpansionDelta& delta,
                                           const PsiSolverOptions& options);

/// Builds everything in IncrementalPsiBase EXCEPT the solved snapshot:
/// the full base Ψ system, the cc_constrained/t_var masks, the
/// Natt/Nrel row bookkeeping (replaying the builder's emission order)
/// and the support objective. Purely deterministic in the expansion —
/// no LP runs — which is what lets a persisted SimplexSnapshot
/// (src/persist) be re-attached to a freshly rebuilt structure on warm
/// restart instead of re-paying the base solve.
Result<IncrementalPsiBase> BuildIncrementalPsiBaseStructure(
    const Expansion& expansion, const PsiSolverOptions& options);

/// Builds the incremental base state: the structure above with the full
/// system solved via SolveForSnapshot (mirroring SolvePsi round 1
/// exactly). One LP solve, charged to the governor like any other.
Result<IncrementalPsiBase> PrepareIncrementalPsi(
    const Expansion& expansion, const PsiSolverOptions& options);

/// Decides satisfiability of the auxiliary class of `delta` against
/// base + delta, warm-starting every fixpoint round from the base
/// snapshot instead of rebuilding:
///
///   round 1: append the delta unknowns (new compound classes /
///     attributes / relations and their t-gadgets), extend the base
///     Natt/Nrel rows whose sums gain new members, append the delta's
///     own bound rows, and ResumeMaximize;
///   round k+1: pin the unknowns deactivated in round k to zero with
///     appended Var <= 0 rows and ResumeMaximize again.
///
/// Pinning is equivalent to the from-scratch masked rebuild (solutions
/// correspond by zero-extension on the dead unknowns), and the
/// deactivation decision at an optimum is independent of which optimal
/// vertex the solver lands on (the unsupportable set is value-zero at
/// EVERY optimum), so the verdict is bit-identical to running SolvePsi on
/// the extended expansion. Governor observation matches the from-scratch
/// path: "solver" checks per round, "simplex" charges per pivot, errors
/// abort the probe.
Result<IncrementalProbeResult> SolvePsiIncremental(
    const Expansion& base, const IncrementalPsiBase& psi_base,
    const ExpansionDelta& delta, ClassId aux,
    const PsiSolverOptions& options);

}  // namespace car

#endif  // CAR_SOLVER_INCREMENTAL_PSI_H_
