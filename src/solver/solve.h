#ifndef CAR_SOLVER_SOLVE_H_
#define CAR_SOLVER_SOLVE_H_

#include <vector>

#include "base/result.h"
#include "expansion/expansion.h"
#include "math/bigint.h"
#include "math/simplex.h"

namespace car {

/// An acceptable nonnegative *integer* solution of Ψ_S (Theorem 3.3):
/// instance counts for each compound class, pair counts for each compound
/// attribute, tuple counts for each compound relation. Every compound
/// class in the final support has count >= 1, and counts are 0 exactly
/// outside the support, which makes the solution acceptable by
/// construction.
struct PsiCertificate {
  std::vector<BigInt> cc_count;
  std::vector<BigInt> ca_count;
  std::vector<BigInt> cr_count;
};

/// Result of deciding Ψ_S over an expansion. The computation is
/// query-independent: it determines at once, for every class of the
/// schema, whether it is satisfiable.
struct PsiSolution {
  /// Per compound class: is it in the final (maximal acceptable) support?
  std::vector<bool> cc_active;
  std::vector<bool> ca_active;
  std::vector<bool> cr_active;
  /// class_satisfiable[C] iff some active compound class contains C.
  std::vector<bool> class_satisfiable;
  /// Integer certificate, positive exactly on the active compound
  /// classes. All-zero when no compound class survives.
  PsiCertificate certificate;

  // Statistics.
  size_t fixpoint_rounds = 0;
  size_t lp_solves = 0;
  size_t total_pivots = 0;
  size_t largest_lp_variables = 0;
  size_t largest_lp_constraints = 0;
  /// Scalar fast-path overflows promoted to BigInt form, summed over all
  /// LP solves (0 for the dense-rational kernel).
  uint64_t scalar_promotions = 0;
  /// Largest final tableau across the LP solves, as nonzero cells and as
  /// dense extent (rows * columns); nonzeros/cells is the peak fill.
  uint64_t peak_tableau_nonzeros = 0;
  uint64_t peak_tableau_cells = 0;

  bool IsClassSatisfiable(ClassId class_id) const {
    return class_id >= 0 &&
           class_id < static_cast<int>(class_satisfiable.size()) &&
           class_satisfiable[class_id];
  }
};

struct PsiSolverOptions {
  /// Passed through to the simplex solver; 0 = unlimited.
  size_t max_pivots = 0;
  /// Optional resource governor (borrowed; may be null = ungoverned),
  /// forwarded to the simplex solver and checked between fixpoint
  /// rounds.
  ExecContext* exec = nullptr;
  /// Worker threads for the parallelizable parts of the solve (the
  /// certificate scaling and the LCM reduction over the final rational
  /// solution). The support LP itself is a single sequential simplex per
  /// fixpoint round. 1 = serial reference path; 0 = hardware concurrency.
  /// Results are identical for every value (LCM is associative and
  /// commutative; scaled counts are written to per-index slots).
  int num_threads = 1;
  /// Tableau representation for the support LPs (see SimplexKernel).
  /// Every kernel returns bit-identical results; the non-default kernels
  /// exist for differential tests and benchmarks.
  SimplexKernel kernel = SimplexKernel::kSparseScalar;
};

/// Decides satisfiability of every class of the expanded schema.
///
/// Method (the polynomial-in-|Ψ_S| procedure behind Theorem 4.3): because
/// Ψ_S is homogeneous, its solution set is closed under addition and
/// positive scaling, so there is a unique maximal support realizable by a
/// single solution. The solver computes it by maximizing Σ t_C̄ subject to
/// Ψ_S, t_C̄ <= Var(C̄), t_C̄ <= 1 (one LP per round), then deactivates
/// compound attributes/relations with a deactivated endpoint (the
/// acceptability condition) and repeats until the support stabilizes.
/// A class is satisfiable iff a surviving compound class contains it; the
/// optimal solution, scaled by the least common multiple of its
/// denominators, is the acceptable integer certificate.
Result<PsiSolution> SolvePsi(const Expansion& expansion,
                             const PsiSolverOptions& options = {});

}  // namespace car

#endif  // CAR_SOLVER_SOLVE_H_
