#include "solver/incremental_psi.h"

#include <algorithm>
#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// Mirrors EmitBoundPair of the Ψ builder: emits up to two constraints
/// u * Var(C̄) <= sum <= v * Var(C̄) into `out`.
void AppendBoundPair(int cc_variable, const LinearExpr& sum,
                     const Cardinality& cardinality, const std::string& label,
                     std::vector<LinearConstraint>* out) {
  if (cardinality.min() > 0) {
    LinearConstraint lower;
    lower.expr = sum;
    lower.expr.Add(cc_variable,
                   Rational(-static_cast<int64_t>(cardinality.min())));
    lower.relation = Relation::kGreaterEqual;
    lower.rhs = Rational(0);
    lower.label = StrCat(label, " min ", cardinality.min());
    out->push_back(std::move(lower));
  }
  if (cardinality.has_finite_max()) {
    LinearConstraint upper;
    upper.expr = sum;
    upper.expr.Add(cc_variable,
                   Rational(-static_cast<int64_t>(cardinality.max())));
    upper.relation = Relation::kLessEqual;
    upper.rhs = Rational(0);
    upper.label = StrCat(label, " max ", cardinality.max());
    out->push_back(std::move(upper));
  }
}

}  // namespace

UnsatProbe BuildUnsatProbe(const Expansion& partial, ClassId target) {
  UnsatProbe probe;
  probe.target = target;
  probe.psi = BuildFullPsiSystem(partial);
  LinearConstraint row;
  for (size_t i = 0; i < partial.compound_classes.size(); ++i) {
    if (!partial.compound_classes[i].Contains(target)) continue;
    row.expr.Add(probe.psi.cc_var[i], Rational(1));
  }
  row.relation = Relation::kGreaterEqual;
  row.rhs = Rational(1);
  row.label = StrCat("unsat-probe @ ", partial.schema->ClassName(target));
  probe.probe_row = probe.psi.system.constraints().size();
  probe.psi.system.AddConstraint(std::move(row));
  return probe;
}

Result<LpResult> SolveUnsatProbe(const UnsatProbe& probe,
                                 const PsiSolverOptions& options) {
  SimplexSolver::Options solver_options;
  solver_options.max_pivots = options.max_pivots;
  solver_options.exec = options.exec;
  solver_options.kernel = SimplexKernel::kSparseScalar;
  solver_options.extract_certificate = true;
  return SimplexSolver(solver_options).CheckFeasible(probe.psi.system);
}

Result<IncrementalPsiBase> BuildIncrementalPsiBaseStructure(
    const Expansion& expansion, const PsiSolverOptions& options) {
  ExecContext* exec = options.exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));

  IncrementalPsiBase base;
  base.psi = BuildFullPsiSystem(expansion);

  base.cc_constrained.assign(expansion.compound_classes.size(), false);
  for (const auto& [key, cardinality] : expansion.natt) {
    (void)cardinality;
    base.cc_constrained[key.second] = true;
  }
  for (const auto& [key, cardinality] : expansion.nrel) {
    (void)cardinality;
    base.cc_constrained[std::get<2>(key)] = true;
  }

  // Recover the constraint-list position of every Natt/Nrel bound row by
  // replaying the builder's emission order: Natt entries in map order,
  // then Nrel entries in map order, each contributing its lower row (iff
  // min > 0) then its upper row (iff the max is finite).
  int row = 0;
  for (const auto& [key, cardinality] : expansion.natt) {
    std::pair<int, int> rows(-1, -1);
    if (cardinality.min() > 0) rows.first = row++;
    if (cardinality.has_finite_max()) rows.second = row++;
    base.natt_rows.emplace(key, rows);
  }
  for (const auto& [key, cardinality] : expansion.nrel) {
    std::pair<int, int> rows(-1, -1);
    if (cardinality.min() > 0) rows.first = row++;
    if (cardinality.has_finite_max()) rows.second = row++;
    base.nrel_rows.emplace(key, rows);
  }
  CAR_CHECK_EQ(static_cast<size_t>(row),
               base.psi.system.constraints().size());

  // Support t-gadgets, exactly as SolvePsi emits them for the all-active
  // round: t <= Var(C̄), t <= 1, objective Σ t.
  base.t_var.assign(expansion.compound_classes.size(), -1);
  for (size_t i = 0; i < expansion.compound_classes.size(); ++i) {
    if (!base.cc_constrained[i]) continue;
    int t = base.psi.system.AddVariable(StrCat("t#", i));
    base.t_var[i] = t;
    LinearConstraint below_var;
    below_var.expr.Add(t, Rational(1));
    below_var.expr.Add(base.psi.cc_var[i], Rational(-1));
    below_var.relation = Relation::kLessEqual;
    below_var.rhs = Rational(0);
    base.psi.system.AddConstraint(std::move(below_var));
    LinearConstraint below_one;
    below_one.expr.Add(t, Rational(1));
    below_one.relation = Relation::kLessEqual;
    below_one.rhs = Rational(1);
    base.psi.system.AddConstraint(std::move(below_one));
    base.objective.Add(t, Rational(1));
  }
  return base;
}

Result<IncrementalPsiBase> PrepareIncrementalPsi(
    const Expansion& expansion, const PsiSolverOptions& options) {
  ExecContext* exec = options.exec;
  CAR_ASSIGN_OR_RETURN(IncrementalPsiBase base,
                       BuildIncrementalPsiBaseStructure(expansion, options));

  SimplexSolver::Options simplex_options;
  simplex_options.max_pivots = options.max_pivots;
  simplex_options.exec = exec;
  CAR_ASSIGN_OR_RETURN(LpResult lp,
                       SimplexSolver(simplex_options)
                           .SolveForSnapshot(base.psi.system, base.objective,
                                             &base.snapshot));
  if (exec != nullptr) exec->CountLpSolves(1);
  CAR_CHECK(lp.outcome == LpOutcome::kOptimal)
      << "support LP must have an optimum (outcome: "
      << LpOutcomeToString(lp.outcome) << ")";
  base.base_pivots = lp.pivots;
  base.base_scalar_promotions = lp.scalar_promotions;
  base.base_tableau_nonzeros = lp.tableau_nonzeros;
  base.base_tableau_cells = lp.tableau_cells;
  return base;
}

Result<PartialPsiResult> SolvePsiOverDelta(const Expansion& base,
                                           const IncrementalPsiBase& psi_base,
                                           const ExpansionDelta& delta,
                                           const PsiSolverOptions& options) {
  ExecContext* exec = options.exec;

  PartialPsiResult result;
  const int num_base_cc = static_cast<int>(base.compound_classes.size());
  const int num_base_ca = static_cast<int>(base.compound_attributes.size());
  const int num_base_cr = static_cast<int>(base.compound_relations.size());
  const int num_new_cc = static_cast<int>(delta.new_compound_classes.size());
  const int num_new_ca =
      static_cast<int>(delta.new_compound_attributes.size());
  const int num_new_cr =
      static_cast<int>(delta.new_compound_relations.size());

  std::vector<bool> new_constrained(num_new_cc, false);
  for (const auto& [key, cardinality] : delta.new_natt) {
    (void)cardinality;
    new_constrained[key.second - num_base_cc] = true;
  }
  for (const auto& [key, cardinality] : delta.new_nrel) {
    (void)cardinality;
    new_constrained[std::get<2>(key) - num_base_cc] = true;
  }

  // --- Assemble the round-1 delta: new unknowns, extensions of base
  // rows whose sums gain new members, and the delta's own bound rows.
  // (The working snapshot itself is copied after the delta is assembled,
  // so the copy can reserve headroom for the delta's columns and rows.)
  const int base_vars = psi_base.snapshot.num_variables();
  int next_var = base_vars;
  std::vector<int> new_cc_var(num_new_cc);
  std::vector<int> new_ca_var(num_new_ca);
  std::vector<int> new_cr_var(num_new_cr);
  std::vector<int> new_t_var(num_new_cc, -1);
  for (int j = 0; j < num_new_cc; ++j) new_cc_var[j] = next_var++;
  for (int j = 0; j < num_new_ca; ++j) new_ca_var[j] = next_var++;
  for (int j = 0; j < num_new_cr; ++j) new_cr_var[j] = next_var++;
  for (int j = 0; j < num_new_cc; ++j) {
    if (new_constrained[j]) new_t_var[j] = next_var++;
  }
  auto var_of_cc = [&](int global) {
    return global < num_base_cc ? psi_base.psi.cc_var[global]
                                : new_cc_var[global - num_base_cc];
  };
  auto var_of_ca = [&](int global) {
    return global < num_base_ca ? psi_base.psi.ca_var[global]
                                : new_ca_var[global - num_base_ca];
  };
  auto var_of_cr = [&](int global) {
    return global < num_base_cr ? psi_base.psi.cr_var[global]
                                : new_cr_var[global - num_base_cr];
  };

  SimplexDelta round_delta;
  round_delta.num_new_variables = next_var - base_vars;

  // Base Natt/Nrel rows whose sums S(att, C̄) gain new compound
  // attributes/relations (the keys of the delta's lookup maps that name
  // base compound indices).
  auto extend_rows = [&round_delta](const std::pair<int, int>& rows,
                                    int variable) {
    if (rows.first >= 0) {
      round_delta.row_extensions.push_back(
          {static_cast<size_t>(rows.first), variable, Rational(1)});
    }
    if (rows.second >= 0) {
      round_delta.row_extensions.push_back(
          {static_cast<size_t>(rows.second), variable, Rational(1)});
    }
  };
  for (const auto& [key, indices] : delta.new_ca_by_from) {
    if (key.second >= num_base_cc) continue;
    auto it = psi_base.natt_rows.find(
        {AttributeTerm::Direct(key.first), key.second});
    if (it == psi_base.natt_rows.end()) continue;
    for (int ca_index : indices) extend_rows(it->second, var_of_ca(ca_index));
  }
  for (const auto& [key, indices] : delta.new_ca_by_to) {
    if (key.second >= num_base_cc) continue;
    auto it = psi_base.natt_rows.find(
        {AttributeTerm::Inverse(key.first), key.second});
    if (it == psi_base.natt_rows.end()) continue;
    for (int ca_index : indices) extend_rows(it->second, var_of_ca(ca_index));
  }
  for (const auto& [key, indices] : delta.new_cr_by_role) {
    if (std::get<2>(key) >= num_base_cc) continue;
    auto it = psi_base.nrel_rows.find(key);
    if (it == psi_base.nrel_rows.end()) continue;
    for (int cr_index : indices) extend_rows(it->second, var_of_cr(cr_index));
  }

  // Bound rows of the new compounds' own Natt/Nrel entries. Their sums
  // consist of new unknowns only (a compound attribute/relation touching
  // a new compound is itself new).
  for (const auto& [key, cardinality] : delta.new_natt) {
    const auto& [term, compound_index] = key;
    LinearExpr sum;
    const auto& index_map =
        term.inverse ? delta.new_ca_by_to : delta.new_ca_by_from;
    auto it = index_map.find({term.attribute, compound_index});
    if (it != index_map.end()) {
      for (int ca_index : it->second) {
        sum.Add(var_of_ca(ca_index), Rational(1));
      }
    }
    AppendBoundPair(var_of_cc(compound_index), sum, cardinality,
                    StrCat("delta natt #", compound_index),
                    &round_delta.new_constraints);
  }
  for (const auto& [key, cardinality] : delta.new_nrel) {
    LinearExpr sum;
    auto it = delta.new_cr_by_role.find(key);
    if (it != delta.new_cr_by_role.end()) {
      for (int cr_index : it->second) {
        sum.Add(var_of_cr(cr_index), Rational(1));
      }
    }
    AppendBoundPair(var_of_cc(std::get<2>(key)), sum, cardinality,
                    StrCat("delta nrel #", std::get<2>(key)),
                    &round_delta.new_constraints);
  }

  // t-gadgets of the new constrained compounds, and the extended
  // objective Σ t over base and new support variables alike.
  LinearExpr objective = psi_base.objective;
  for (int j = 0; j < num_new_cc; ++j) {
    if (new_t_var[j] < 0) continue;
    LinearConstraint below_var;
    below_var.expr.Add(new_t_var[j], Rational(1));
    below_var.expr.Add(new_cc_var[j], Rational(-1));
    below_var.relation = Relation::kLessEqual;
    below_var.rhs = Rational(0);
    round_delta.new_constraints.push_back(std::move(below_var));
    LinearConstraint below_one;
    below_one.expr.Add(new_t_var[j], Rational(1));
    below_one.relation = Relation::kLessEqual;
    below_one.rhs = Rational(1);
    round_delta.new_constraints.push_back(std::move(below_one));
    objective.Add(new_t_var[j], Rational(1));
  }

  // Copy the base snapshot. The rows are compressed sparse, so this
  // clones nonzeros, not columns, and a column append inside
  // ResumeMaximize touches no row storage at all — the growth-headroom
  // reservation the dense tableau needed here is gone with it.
  SimplexSnapshot snapshot = psi_base.snapshot;

  // --- The acceptability fixpoint over the pinned full system. Instead
  // of rebuilding a masked system per round (the from-scratch loop),
  // deactivated unknowns are pinned to zero with appended Var <= 0 rows;
  // the two formulations have corresponding feasible sets (dead unknowns
  // are zero either way), so each round's optimum — and the vertex-
  // independent deactivation decision it induces — coincides.
  const int total_cc = num_base_cc + num_new_cc;
  const int total_ca = num_base_ca + num_new_ca;
  const int total_cr = num_base_cr + num_new_cr;
  std::vector<bool> cc_active(total_cc, true);
  std::vector<bool> ca_active(total_ca, true);
  std::vector<bool> cr_active(total_cr, true);
  auto constrained = [&](int global) {
    return global < num_base_cc ? psi_base.cc_constrained[global]
                                : new_constrained[global - num_base_cc];
  };
  auto ca_at = [&](int global) -> const CompoundAttribute& {
    return global < num_base_ca
               ? base.compound_attributes[global]
               : delta.new_compound_attributes[global - num_base_ca];
  };
  auto cr_at = [&](int global) -> const CompoundRelation& {
    return global < num_base_cr
               ? base.compound_relations[global]
               : delta.new_compound_relations[global - num_base_cr];
  };

  SimplexSolver::Options simplex_options;
  simplex_options.max_pivots = options.max_pivots;
  simplex_options.exec = exec;
  SimplexSolver solver(simplex_options);

  std::vector<Rational> values;  // the fixpoint optimum's unknown values
  while (true) {
    CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));
    ++result.fixpoint_rounds;
    CAR_ASSIGN_OR_RETURN(LpResult lp,
                         solver.ResumeMaximize(&snapshot, round_delta,
                                               objective));
    ++result.lp_solves;
    if (exec != nullptr) exec->CountLpSolves(1);
    result.total_pivots += lp.pivots;
    result.scalar_promotions += lp.scalar_promotions;
    result.peak_tableau_nonzeros =
        std::max(result.peak_tableau_nonzeros, lp.tableau_nonzeros);
    result.peak_tableau_cells =
        std::max(result.peak_tableau_cells, lp.tableau_cells);
    CAR_CHECK(lp.outcome == LpOutcome::kOptimal)
        << "support LP must have an optimum (outcome: "
        << LpOutcomeToString(lp.outcome) << ")";

    std::vector<int> newly_dead;
    for (int i = 0; i < total_cc; ++i) {
      if (!cc_active[i] || !constrained(i)) continue;
      if (!lp.values[var_of_cc(i)].is_positive()) {
        cc_active[i] = false;
        newly_dead.push_back(var_of_cc(i));
      }
    }
    if (newly_dead.empty()) {
      values = std::move(lp.values);
      break;
    }
    // Acceptability propagation over base and delta unknowns alike
    // (endpoints of delta compound attributes/relations are global
    // indices, so one unified sweep covers both).
    for (int i = 0; i < total_ca; ++i) {
      if (!ca_active[i]) continue;
      const CompoundAttribute& ca = ca_at(i);
      if (!cc_active[ca.from] || !cc_active[ca.to]) {
        ca_active[i] = false;
        newly_dead.push_back(var_of_ca(i));
      }
    }
    for (int i = 0; i < total_cr; ++i) {
      if (!cr_active[i]) continue;
      const CompoundRelation& cr = cr_at(i);
      for (int component : cr.components) {
        if (!cc_active[component]) {
          cr_active[i] = false;
          newly_dead.push_back(var_of_cr(i));
          break;
        }
      }
    }
    round_delta = SimplexDelta();
    for (int variable : newly_dead) {
      LinearConstraint pin;
      pin.expr.Add(variable, Rational(1));
      pin.relation = Relation::kLessEqual;
      pin.rhs = Rational(0);
      pin.label = "pin";
      round_delta.new_constraints.push_back(std::move(pin));
    }
  }

  result.cc_value.reserve(total_cc);
  for (int i = 0; i < total_cc; ++i) {
    result.cc_value.push_back(values[var_of_cc(i)]);
  }
  result.ca_value.reserve(total_ca);
  for (int i = 0; i < total_ca; ++i) {
    result.ca_value.push_back(values[var_of_ca(i)]);
  }
  result.cr_value.reserve(total_cr);
  for (int i = 0; i < total_cr; ++i) {
    result.cr_value.push_back(values[var_of_cr(i)]);
  }
  result.cc_active = std::move(cc_active);
  result.ca_active = std::move(ca_active);
  result.cr_active = std::move(cr_active);
  return result;
}

Result<IncrementalProbeResult> SolvePsiIncremental(
    const Expansion& base, const IncrementalPsiBase& psi_base,
    const ExpansionDelta& delta, ClassId aux,
    const PsiSolverOptions& options) {
  ExecContext* exec = options.exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "solver"));

  IncrementalProbeResult result;
  const int num_base_cc = static_cast<int>(base.compound_classes.size());
  const int num_new_cc = static_cast<int>(delta.new_compound_classes.size());

  // Only new compounds can contain the auxiliary class.
  std::vector<bool> new_constrained(num_new_cc, false);
  for (const auto& [key, cardinality] : delta.new_natt) {
    (void)cardinality;
    new_constrained[key.second - num_base_cc] = true;
  }
  for (const auto& [key, cardinality] : delta.new_nrel) {
    (void)cardinality;
    new_constrained[std::get<2>(key) - num_base_cc] = true;
  }
  bool any_constrained_aux = false;
  for (int j = 0; j < num_new_cc; ++j) {
    if (!delta.new_compound_classes[j].Contains(aux)) continue;
    if (!new_constrained[j]) {
      // An unconstrained compound class never deactivates (its unknown
      // occurs in no disequation), so the auxiliary class is satisfiable
      // without solving anything — exactly the from-scratch verdict.
      result.aux_satisfiable = true;
      return result;
    }
    any_constrained_aux = true;
  }
  if (!any_constrained_aux) {
    // No compound class contains the auxiliary class at all (every
    // containing candidate was pruned as inconsistent): unsatisfiable.
    result.aux_satisfiable = false;
    return result;
  }

  CAR_ASSIGN_OR_RETURN(PartialPsiResult partial,
                       SolvePsiOverDelta(base, psi_base, delta, options));
  result.fixpoint_rounds = partial.fixpoint_rounds;
  result.lp_solves = partial.lp_solves;
  result.total_pivots = partial.total_pivots;
  result.scalar_promotions = partial.scalar_promotions;
  result.peak_tableau_nonzeros = partial.peak_tableau_nonzeros;
  result.peak_tableau_cells = partial.peak_tableau_cells;
  for (int j = 0; j < num_new_cc; ++j) {
    if (partial.cc_active[num_base_cc + j] &&
        delta.new_compound_classes[j].Contains(aux)) {
      result.aux_satisfiable = true;
      break;
    }
  }
  return result;
}

}  // namespace car
