#include "frontend/printer.h"

#include <sstream>

#include "base/strings.h"

namespace car {

namespace {

std::string PrintLiteral(const Schema& schema, const ClassLiteral& literal) {
  return StrCat(literal.negated ? "!" : "",
                schema.ClassName(literal.class_id));
}

std::string PrintClause(const Schema& schema, const ClassClause& clause) {
  std::vector<std::string> parts;
  parts.reserve(clause.literals().size());
  for (const ClassLiteral& literal : clause.literals()) {
    parts.push_back(PrintLiteral(schema, literal));
  }
  return StrJoin(parts, " | ");
}

std::string PrintCardinality(const Cardinality& cardinality) {
  return StrCat("(", cardinality.min(), ", ",
                cardinality.has_finite_max() ? StrCat(cardinality.max())
                                             : std::string("*"),
                ")");
}

}  // namespace

std::string PrintFormula(const Schema& schema, const ClassFormula& formula) {
  std::vector<std::string> parts;
  parts.reserve(formula.clauses().size());
  for (const ClassClause& clause : formula.clauses()) {
    // Parenthesize multi-literal clauses so "&" and "|" re-parse the same.
    if (clause.literals().size() > 1 && formula.clauses().size() > 1) {
      parts.push_back(StrCat("(", PrintClause(schema, clause), ")"));
    } else {
      parts.push_back(PrintClause(schema, clause));
    }
  }
  return StrJoin(parts, " & ");
}

std::string PrintSchema(const Schema& schema) {
  std::ostringstream os;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    const ClassDefinition& definition = schema.class_definition(c);
    os << "class " << schema.ClassName(c) << "\n";
    if (!definition.isa.IsTriviallyTrue()) {
      os << "  isa " << PrintFormula(schema, definition.isa) << "\n";
    }
    if (!definition.attributes.empty()) {
      os << "  attributes\n";
      for (size_t i = 0; i < definition.attributes.size(); ++i) {
        const AttributeSpec& spec = definition.attributes[i];
        os << "    ";
        if (spec.term.inverse) {
          os << "(inv " << schema.AttributeName(spec.term.attribute) << ")";
        } else {
          os << schema.AttributeName(spec.term.attribute);
        }
        os << " : " << PrintCardinality(spec.cardinality) << " "
           << PrintFormula(schema, spec.range);
        os << (i + 1 < definition.attributes.size() ? ";" : "") << "\n";
      }
    }
    if (!definition.participations.empty()) {
      os << "  participates_in\n";
      for (size_t i = 0; i < definition.participations.size(); ++i) {
        const ParticipationSpec& spec = definition.participations[i];
        os << "    " << schema.RelationName(spec.relation) << "["
           << schema.RoleName(spec.role)
           << "] : " << PrintCardinality(spec.cardinality);
        os << (i + 1 < definition.participations.size() ? ";" : "") << "\n";
      }
    }
    os << "endclass\n\n";
  }

  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    const RelationDefinition* definition = schema.relation_definition(r);
    if (definition == nullptr) continue;
    std::vector<std::string> roles;
    for (RoleId role : definition->roles) {
      roles.push_back(schema.RoleName(role));
    }
    os << "relation " << schema.RelationName(r) << "(" << StrJoin(roles, ", ")
       << ")\n";
    if (!definition->constraints.empty()) {
      os << "  constraints\n";
      for (size_t i = 0; i < definition->constraints.size(); ++i) {
        const RoleClause& clause = definition->constraints[i];
        std::vector<std::string> literals;
        for (const RoleLiteral& literal : clause.literals) {
          literals.push_back(StrCat("(", schema.RoleName(literal.role), " : ",
                                    PrintFormula(schema, literal.formula),
                                    ")"));
        }
        os << "    " << StrJoin(literals, " | ")
           << (i + 1 < definition->constraints.size() ? ";" : "") << "\n";
      }
    }
    os << "endrelation\n\n";
  }
  return os.str();
}

}  // namespace car
