#ifndef CAR_FRONTEND_PARSER_H_
#define CAR_FRONTEND_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "model/schema.h"

namespace car {

/// Parses CAR schema text into a validated Schema.
///
/// Grammar (ASCII rendition of the paper's Section 2.2 syntax):
///
///   schema       := (class_def | relation_def)*
///   class_def    := "class" IDENT
///                   ["isa" formula]
///                   ["attributes" attr_spec (";" attr_spec)*]
///                   ["participates_in" part_spec (";" part_spec)*]
///                   "endclass"
///   attr_spec    := attr_term ":" card formula
///   attr_term    := IDENT | "(" "inv" IDENT ")"
///   part_spec    := IDENT "[" IDENT "]" ":" card
///   card         := "(" NUMBER "," (NUMBER | "*") ")"
///   formula      := clause ("&" clause)*          -- conjunction (∧)
///   clause       := literal ("|" literal)*        -- disjunction (∨)
///                 | "(" clause ")"
///   literal      := ["!"] IDENT                   -- "!" is complement (¬)
///   relation_def := "relation" IDENT "(" IDENT ("," IDENT)* ")"
///                   ["constraints" role_clause (";" role_clause)*]
///                   "endrelation"
///   role_clause  := role_literal ("|" role_literal)*
///   role_literal := "(" IDENT ":" formula ")"
///
/// "|" binds tighter than "&" (a formula is a conjunction of disjunctive
/// clauses, matching the paper's CNF class-formulae). "*" denotes the
/// paper's ∞ cardinality. "//" comments run to end of line. Classes may
/// be mentioned before (or without) being defined; relations must be
/// defined. The resulting schema is validated before being returned.
Result<Schema> ParseSchema(std::string_view text);

}  // namespace car

#endif  // CAR_FRONTEND_PARSER_H_
