#include "frontend/parser.h"

#include <cstdint>
#include <set>

#include "base/strings.h"
#include "frontend/lexer.h"

namespace car {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Schema> Parse() {
    RegisterDeclarations();
    while (!At(TokenKind::kEnd)) {
      if (At(TokenKind::kClass)) {
        CAR_RETURN_IF_ERROR(ParseClass());
      } else if (At(TokenKind::kRelation)) {
        CAR_RETURN_IF_ERROR(ParseRelation());
      } else {
        return Error("expected 'class' or 'relation'");
      }
    }
    CAR_RETURN_IF_ERROR(schema_.Validate());
    return std::move(schema_);
  }

 private:
  /// Interns the names of `class` and `relation` headers in textual
  /// order before any body is parsed, so symbol ids follow declaration
  /// order regardless of forward references inside bodies. This makes
  /// the canonical printed form a parse/print fixed point: printing
  /// emits definitions in id order, and reparsing that text reproduces
  /// the same id assignment.
  void RegisterDeclarations() {
    for (size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i + 1].kind != TokenKind::kIdentifier) continue;
      if (tokens_[i].kind == TokenKind::kClass) {
        schema_.InternClass(tokens_[i + 1].text);
      } else if (tokens_[i].kind == TokenKind::kRelation) {
        schema_.InternRelation(tokens_[i + 1].text);
      }
    }
  }

  const Token& Peek() const { return tokens_[position_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }

  Token Advance() { return tokens_[position_++]; }

  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    ++position_;
    return true;
  }

  Status Expect(TokenKind kind) {
    if (Accept(kind)) return Status::Ok();
    return Error(StrCat("expected ", TokenKindToString(kind), ", found ",
                        TokenKindToString(Peek().kind)));
  }

  Status Error(std::string message) const {
    return ParseError(StrCat("line ", Peek().line, ": ", message));
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (!At(TokenKind::kIdentifier)) {
      return Error(StrCat("expected ", what, ", found ",
                          TokenKindToString(Peek().kind)));
    }
    return Advance().text;
  }

  Result<uint64_t> ExpectNumber() {
    if (!At(TokenKind::kNumber)) {
      return Error(StrCat("expected a number, found ",
                          TokenKindToString(Peek().kind)));
    }
    Token token = Advance();
    uint64_t value = 0;
    for (char c : token.text) {
      if (value > (UINT64_MAX - 9) / 10) {
        return Error(StrCat("number '", token.text, "' is too large"));
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    return value;
  }

  // card := "(" NUMBER "," (NUMBER | "*") ")"
  Result<Cardinality> ParseCardinality() {
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen));
    CAR_ASSIGN_OR_RETURN(uint64_t min, ExpectNumber());
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kComma));
    uint64_t max = Cardinality::kInfinity;
    if (!Accept(TokenKind::kStar)) {
      CAR_ASSIGN_OR_RETURN(max, ExpectNumber());
    }
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
    if (min > max) {
      return Error(StrCat("cardinality (", min, ", ", max,
                          ") has min above max"));
    }
    return Cardinality(min, max);
  }

  // literal := ["!"] IDENT
  Result<ClassLiteral> ParseLiteral() {
    bool negated = Accept(TokenKind::kBang);
    CAR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("a class name"));
    ClassId id = schema_.InternClass(name);
    return negated ? ClassLiteral::Negative(id) : ClassLiteral::Positive(id);
  }

  // clause := literal ("|" literal)* | "(" clause ")"
  Result<ClassClause> ParseClause() {
    if (Accept(TokenKind::kLeftParen)) {
      CAR_ASSIGN_OR_RETURN(ClassClause inner, ParseClause());
      CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
      return inner;
    }
    ClassClause clause;
    CAR_ASSIGN_OR_RETURN(ClassLiteral first, ParseLiteral());
    clause.AddLiteral(first);
    while (Accept(TokenKind::kPipe)) {
      CAR_ASSIGN_OR_RETURN(ClassLiteral next, ParseLiteral());
      clause.AddLiteral(next);
    }
    return clause;
  }

  // formula := clause ("&" clause)*
  Result<ClassFormula> ParseFormula() {
    ClassFormula formula;
    CAR_ASSIGN_OR_RETURN(ClassClause first, ParseClause());
    formula.AddClause(std::move(first));
    while (Accept(TokenKind::kAmpersand)) {
      CAR_ASSIGN_OR_RETURN(ClassClause next, ParseClause());
      formula.AddClause(std::move(next));
    }
    return formula;
  }

  // attr_spec := attr_term ":" card formula
  Status ParseAttributeSpec(ClassDefinition* definition) {
    AttributeSpec spec;
    spec.span = Peek().span();
    if (Accept(TokenKind::kLeftParen)) {
      CAR_RETURN_IF_ERROR(Expect(TokenKind::kInv));
      CAR_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("an attribute name"));
      CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
      spec.term = AttributeTerm::Inverse(schema_.InternAttribute(name));
    } else {
      CAR_ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("an attribute name"));
      spec.term = AttributeTerm::Direct(schema_.InternAttribute(name));
    }
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    CAR_ASSIGN_OR_RETURN(spec.cardinality, ParseCardinality());
    CAR_ASSIGN_OR_RETURN(spec.range, ParseFormula());
    definition->attributes.push_back(std::move(spec));
    return Status::Ok();
  }

  // part_spec := IDENT "[" IDENT "]" ":" card
  Status ParseParticipationSpec(ClassDefinition* definition) {
    ParticipationSpec spec;
    spec.span = Peek().span();
    CAR_ASSIGN_OR_RETURN(std::string relation,
                         ExpectIdentifier("a relation name"));
    spec.relation = schema_.InternRelation(relation);
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kLeftBracket));
    CAR_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("a role name"));
    spec.role = schema_.InternRole(role);
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightBracket));
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    CAR_ASSIGN_OR_RETURN(spec.cardinality, ParseCardinality());
    definition->participations.push_back(spec);
    return Status::Ok();
  }

  Status ParseClass() {
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kClass));
    SourceSpan name_span = Peek().span();
    CAR_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("a class name"));
    ClassId id = schema_.InternClass(name);
    if (!defined_classes_.insert(id).second) {
      return Error(StrCat("class '", name, "' is defined twice"));
    }
    ClassDefinition* definition = schema_.mutable_class_definition(id);
    definition->span = name_span;
    if (Accept(TokenKind::kIsa)) {
      definition->isa_span = Peek().span();
      CAR_ASSIGN_OR_RETURN(ClassFormula isa, ParseFormula());
      definition->isa = std::move(isa);
    }
    if (Accept(TokenKind::kAttributes)) {
      CAR_RETURN_IF_ERROR(ParseAttributeSpec(definition));
      while (Accept(TokenKind::kSemicolon)) {
        CAR_RETURN_IF_ERROR(ParseAttributeSpec(definition));
      }
    }
    if (Accept(TokenKind::kParticipatesIn)) {
      CAR_RETURN_IF_ERROR(ParseParticipationSpec(definition));
      while (Accept(TokenKind::kSemicolon)) {
        CAR_RETURN_IF_ERROR(ParseParticipationSpec(definition));
      }
    }
    return Expect(TokenKind::kEndClass);
  }

  // role_literal := "(" IDENT ":" formula ")"
  Result<RoleLiteral> ParseRoleLiteral() {
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen));
    RoleLiteral literal;
    CAR_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("a role name"));
    literal.role = schema_.InternRole(role);
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kColon));
    CAR_ASSIGN_OR_RETURN(literal.formula, ParseFormula());
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
    return literal;
  }

  Status ParseRelation() {
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kRelation));
    SourceSpan name_span = Peek().span();
    CAR_ASSIGN_OR_RETURN(std::string name,
                         ExpectIdentifier("a relation name"));
    RelationDefinition definition;
    definition.relation_id = schema_.InternRelation(name);
    definition.span = name_span;
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kLeftParen));
    CAR_ASSIGN_OR_RETURN(std::string role, ExpectIdentifier("a role name"));
    definition.roles.push_back(schema_.InternRole(role));
    while (Accept(TokenKind::kComma)) {
      CAR_ASSIGN_OR_RETURN(std::string next, ExpectIdentifier("a role name"));
      definition.roles.push_back(schema_.InternRole(next));
    }
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kRightParen));
    if (Accept(TokenKind::kConstraints)) {
      CAR_RETURN_IF_ERROR(ParseRoleClause(&definition));
      while (Accept(TokenKind::kSemicolon)) {
        CAR_RETURN_IF_ERROR(ParseRoleClause(&definition));
      }
    }
    CAR_RETURN_IF_ERROR(Expect(TokenKind::kEndRelation));
    return schema_.SetRelationDefinition(std::move(definition));
  }

  Status ParseRoleClause(RelationDefinition* definition) {
    RoleClause clause;
    CAR_ASSIGN_OR_RETURN(RoleLiteral first, ParseRoleLiteral());
    clause.literals.push_back(std::move(first));
    while (Accept(TokenKind::kPipe)) {
      CAR_ASSIGN_OR_RETURN(RoleLiteral next, ParseRoleLiteral());
      clause.literals.push_back(std::move(next));
    }
    definition->constraints.push_back(std::move(clause));
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
  Schema schema_;
  std::set<ClassId> defined_classes_;
};

}  // namespace

Result<Schema> ParseSchema(std::string_view text) {
  CAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace car
