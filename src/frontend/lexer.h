#ifndef CAR_FRONTEND_LEXER_H_
#define CAR_FRONTEND_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "model/definitions.h"

namespace car {

/// Token kinds of the CAR schema text syntax (an ASCII rendition of the
/// paper's notation: `&` for ∧, `|` for ∨, `!` for ¬, `*` for ∞).
enum class TokenKind {
  kIdentifier,
  kNumber,
  // Keywords.
  kClass,
  kIsa,
  kAttributes,
  kParticipatesIn,
  kEndClass,
  kRelation,
  kConstraints,
  kEndRelation,
  kInv,
  // Punctuation.
  kLeftParen,
  kRightParen,
  kLeftBracket,
  kRightBracket,
  kComma,
  kColon,
  kSemicolon,
  kAmpersand,
  kPipe,
  kBang,
  kStar,
  kEnd,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // Identifier spelling or number digits.
  int line = 0;      // 1-based line of the first character.
  int column = 0;    // 1-based column of the first character.

  /// The token's extent in the source text, for diagnostics.
  SourceSpan span() const {
    return {line, column, static_cast<int>(text.size())};
  }
};

/// Tokenizes CAR schema text. `//` starts a comment running to the end of
/// the line. Identifiers are [A-Za-z_][A-Za-z0-9_]*; keywords are
/// case-sensitive.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace car

#endif  // CAR_FRONTEND_LEXER_H_
