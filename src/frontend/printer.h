#ifndef CAR_FRONTEND_PRINTER_H_
#define CAR_FRONTEND_PRINTER_H_

#include <string>

#include "model/schema.h"

namespace car {

/// Renders a schema in the concrete syntax accepted by ParseSchema().
/// Every class is emitted (classes with empty definitions appear as bare
/// `class X endclass` blocks so the symbol set round-trips), classes in
/// id order followed by relations in id order. PrintSchema followed by
/// ParseSchema is the identity on schemas up to this canonical ordering;
/// PrintSchema(ParseSchema(PrintSchema(s))) == PrintSchema(s).
std::string PrintSchema(const Schema& schema);

/// Renders a single class-formula ("A | !B & C").
std::string PrintFormula(const Schema& schema, const ClassFormula& formula);

}  // namespace car

#endif  // CAR_FRONTEND_PRINTER_H_
