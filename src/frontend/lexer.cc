#include "frontend/lexer.h"

#include <cctype>
#include <map>

#include "base/strings.h"

namespace car {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kClass:
      return "'class'";
    case TokenKind::kIsa:
      return "'isa'";
    case TokenKind::kAttributes:
      return "'attributes'";
    case TokenKind::kParticipatesIn:
      return "'participates_in'";
    case TokenKind::kEndClass:
      return "'endclass'";
    case TokenKind::kRelation:
      return "'relation'";
    case TokenKind::kConstraints:
      return "'constraints'";
    case TokenKind::kEndRelation:
      return "'endrelation'";
    case TokenKind::kInv:
      return "'inv'";
    case TokenKind::kLeftParen:
      return "'('";
    case TokenKind::kRightParen:
      return "')'";
    case TokenKind::kLeftBracket:
      return "'['";
    case TokenKind::kRightBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kAmpersand:
      return "'&'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  static const std::map<std::string, TokenKind>* keywords =
      new std::map<std::string, TokenKind>{
          {"class", TokenKind::kClass},
          {"isa", TokenKind::kIsa},
          {"attributes", TokenKind::kAttributes},
          {"participates_in", TokenKind::kParticipatesIn},
          {"endclass", TokenKind::kEndClass},
          {"relation", TokenKind::kRelation},
          {"constraints", TokenKind::kConstraints},
          {"endrelation", TokenKind::kEndRelation},
          {"inv", TokenKind::kInv},
      };

  std::vector<Token> tokens;
  int line = 1;
  size_t line_start = 0;  // Offset of the first character of `line`.
  size_t i = 0;
  auto column_of = [&line_start](size_t offset) {
    return static_cast<int>(offset - line_start) + 1;
  };
  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      std::string word(text.substr(start, i - start));
      auto keyword = keywords->find(word);
      Token token;
      token.kind = keyword == keywords->end() ? TokenKind::kIdentifier
                                              : keyword->second;
      token.text = std::move(word);
      token.line = line;
      token.column = column_of(start);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      tokens.push_back(
          {TokenKind::kNumber, std::string(text.substr(start, i - start)),
           line, column_of(start)});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLeftParen;
        break;
      case ')':
        kind = TokenKind::kRightParen;
        break;
      case '[':
        kind = TokenKind::kLeftBracket;
        break;
      case ']':
        kind = TokenKind::kRightBracket;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '&':
        kind = TokenKind::kAmpersand;
        break;
      case '|':
        kind = TokenKind::kPipe;
        break;
      case '!':
        kind = TokenKind::kBang;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      default:
        return ParseError(
            StrCat("line ", line, ": unexpected character '", c, "'"));
    }
    tokens.push_back({kind, std::string(1, c), line, column_of(i)});
    ++i;
  }
  tokens.push_back({TokenKind::kEnd, "", line,
                    column_of(text.size())});
  return tokens;
}

}  // namespace car
