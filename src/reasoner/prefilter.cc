#include "reasoner/prefilter.h"

#include "model/cardinality.h"

namespace car {

namespace {

bool ClassInRange(const Schema& schema, ClassId id) {
  return id >= 0 && id < schema.num_classes();
}

bool FormulaIdsInRange(const Schema& schema, const ClassFormula& formula) {
  for (const ClassClause& clause : formula.clauses()) {
    for (const ClassLiteral& literal : clause.literals()) {
      if (!ClassInRange(schema, literal.class_id)) return false;
    }
  }
  return true;
}

bool StaticallyEmpty(const SchemaAnalysis& analysis, ClassId id) {
  return analysis.class_unsat[id] != 0;
}

/// Certificate that every instance of `c` satisfies `clause`: a
/// positive literal D with C ⊆* D (or D = C), or a negative literal ¬D
/// with C and D provably disjoint. An empty clause has no certificate
/// (it is satisfiable only vacuously, which the caller handles through
/// the statically-empty check).
bool ClauseCertified(const SchemaAnalysis& analysis, ClassId c,
                     const ClassClause& clause) {
  for (const ClassLiteral& literal : clause.literals()) {
    if (literal.negated) {
      if (analysis.tables.AreDisjoint(c, literal.class_id)) return true;
    } else {
      if (literal.class_id == c ||
          analysis.tables.IsIncluded(c, literal.class_id)) {
        return true;
      }
    }
  }
  return false;
}

/// The interval every instance of `c` must satisfy for `term`,
/// intersected over the specs of c and its propagated superclasses.
/// (0, infinity) when nothing constrains the term; possibly empty —
/// which is itself a sound emptiness certificate for c.
Cardinality InheritedAttributeBound(const Schema& schema,
                                    const PairTables& tables, ClassId c,
                                    const AttributeTerm& term) {
  Cardinality bound;
  auto fold = [&schema, &bound, &term](ClassId owner) {
    for (const AttributeSpec& spec :
         schema.class_definition(owner).attributes) {
      if (spec.term == term) {
        bound = Cardinality::IntersectUnchecked(bound, spec.cardinality);
      }
    }
  };
  fold(c);
  for (ClassId super : tables.SuperclassesOf(c)) fold(super);
  return bound;
}

Cardinality InheritedParticipationBound(const Schema& schema,
                                        const PairTables& tables, ClassId c,
                                        RelationId relation, RoleId role) {
  Cardinality bound;
  auto fold = [&schema, &bound, relation, role](ClassId owner) {
    for (const ParticipationSpec& spec :
         schema.class_definition(owner).participations) {
      if (spec.relation == relation && spec.role == role) {
        bound = Cardinality::IntersectUnchecked(bound, spec.cardinality);
      }
    }
  };
  fold(c);
  for (ClassId super : tables.SuperclassesOf(c)) fold(super);
  return bound;
}

/// Gate for the participation kinds, mirroring Schema::Validate on the
/// probe's auxiliary spec: relation id in range, relation defined, role
/// among its roles. Any failure means the full path errors — decline.
bool ParticipationGate(const Schema& schema, const ImplicationQuery& query) {
  if (!ClassInRange(schema, query.class_id)) return false;
  if (query.relation < 0 || query.relation >= schema.num_relations()) {
    return false;
  }
  const RelationDefinition* relation =
      schema.relation_definition(query.relation);
  return relation != nullptr && relation->RoleIndex(query.role) >= 0;
}

}  // namespace

std::optional<bool> ClosurePrefilterAnswer(const Schema& schema,
                                           const SchemaAnalysis& analysis,
                                           const ImplicationQuery& query) {
  switch (query.kind) {
    case ImplicationQuery::Kind::kIsa: {
      if (!ClassInRange(schema, query.class_id)) return std::nullopt;
      if (!FormulaIdsInRange(schema, query.formula)) return std::nullopt;
      if (StaticallyEmpty(analysis, query.class_id)) return true;
      for (const ClassClause& clause : query.formula.clauses()) {
        if (!ClauseCertified(analysis, query.class_id, clause)) {
          return std::nullopt;
        }
      }
      return true;
    }
    case ImplicationQuery::Kind::kDisjoint: {
      if (!ClassInRange(schema, query.class_id) ||
          !ClassInRange(schema, query.other)) {
        return std::nullopt;
      }
      if (analysis.tables.AreDisjoint(query.class_id, query.other) ||
          StaticallyEmpty(analysis, query.class_id) ||
          StaticallyEmpty(analysis, query.other)) {
        return true;
      }
      return std::nullopt;
    }
    case ImplicationQuery::Kind::kMinCardinality: {
      // bound == 0 is the TrivialAnswer shortcut; leave it to that tier
      // so the decision structure (and its validation-skipping shape)
      // stays in one place.
      if (query.bound == 0) return std::nullopt;
      if (query.term.attribute < 0 ||
          query.term.attribute >= schema.num_attributes() ||
          !ClassInRange(schema, query.class_id)) {
        return std::nullopt;
      }
      if (StaticallyEmpty(analysis, query.class_id)) return true;
      Cardinality inherited = InheritedAttributeBound(
          schema, analysis.tables, query.class_id, query.term);
      if (inherited.min() >= query.bound) return true;
      return std::nullopt;
    }
    case ImplicationQuery::Kind::kMaxCardinality: {
      if (query.term.attribute < 0 ||
          query.term.attribute >= schema.num_attributes() ||
          !ClassInRange(schema, query.class_id)) {
        return std::nullopt;
      }
      if (query.bound == Cardinality::kInfinity) return true;
      if (StaticallyEmpty(analysis, query.class_id)) return true;
      Cardinality inherited = InheritedAttributeBound(
          schema, analysis.tables, query.class_id, query.term);
      if (inherited.max() <= query.bound) return true;
      return std::nullopt;
    }
    case ImplicationQuery::Kind::kMinParticipation: {
      if (query.bound == 0) return std::nullopt;
      if (!ParticipationGate(schema, query)) return std::nullopt;
      if (StaticallyEmpty(analysis, query.class_id)) return true;
      Cardinality inherited =
          InheritedParticipationBound(schema, analysis.tables,
                                      query.class_id, query.relation,
                                      query.role);
      if (inherited.min() >= query.bound) return true;
      return std::nullopt;
    }
    case ImplicationQuery::Kind::kMaxParticipation: {
      if (!ParticipationGate(schema, query)) return std::nullopt;
      if (query.bound == Cardinality::kInfinity) return true;
      if (StaticallyEmpty(analysis, query.class_id)) return true;
      Cardinality inherited =
          InheritedParticipationBound(schema, analysis.tables,
                                      query.class_id, query.relation,
                                      query.role);
      if (inherited.max() <= query.bound) return true;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace car
