#ifndef CAR_REASONER_INCREMENTAL_H_
#define CAR_REASONER_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "expansion/expansion_delta.h"
#include "reasoner/reasoner.h"
#include "solver/incremental_psi.h"

namespace car {

/// Cumulative statistics of an IncrementalSession: how the queries were
/// answered and how much of the incremental machinery engaged.
struct IncrementalStats {
  /// Queries answered (memoized, trivial, and probed alike).
  uint64_t queries = 0;
  /// Answered by a bound-shape shortcut (min 0 / max infinity) without
  /// touching the memo or the solver.
  uint64_t trivial = 0;
  /// Answered by the tier-0 static-closure prefilter (sound certificate
  /// lookup on the propagated inclusion/disjointness tables, inherited
  /// cardinality intervals and statically-empty classes) on first
  /// encounter; the answer is memoized, so repeats count as memo_hits.
  uint64_t closure_hits = 0;
  /// Probes solved exactly on a dependency-closed sub-schema (tier-2)
  /// instead of the full delta path.
  uint64_t cluster_local = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  /// Auxiliary-class satisfiability probes actually solved.
  uint64_t probes = 0;
  /// Warm-started LP solves across all incremental probes (one per
  /// fixpoint round of each probe).
  uint64_t warm_starts = 0;
  /// Probes that fell back to a from-scratch expansion + solve (delta
  /// extension declined with kFailedPrecondition, or the base analysis
  /// was unavailable for this expansion strategy).
  uint64_t fallbacks = 0;
  /// Cluster reuse across all delta extensions.
  uint64_t clusters_reused = 0;
  uint64_t clusters_reenumerated = 0;
  /// Base expansions + snapshot solves performed: 1, plus one per
  /// observed schema-fingerprint change.
  uint64_t base_builds = 0;
  /// Base states restored from a persisted snapshot (Deserialize)
  /// instead of solved. Disjoint from base_builds: a restored base pays
  /// no LP solve.
  uint64_t base_restores = 0;
  /// Probes answered conclusively by the lazy expansion engine
  /// (options.lazy_expansion) before touching — or even building — the
  /// full base expansion.
  uint64_t lazy_hits = 0;
  /// Refinement rounds and compound classes materialized across all lazy
  /// probes (conclusive or not). Deterministic: the lazy engine is
  /// serial per probe and the sums are commutative.
  uint64_t lazy_refinement_rounds = 0;
  uint64_t lazy_compounds_materialized = 0;
  /// UNSAT-side refinement across all lazy probes: Farkas certificates
  /// learned as blocking constraints, and certificates whose dual
  /// zero-extension closed into a lazy UNSAT verdict. Deterministic for
  /// the same reason as the other lazy sums.
  uint64_t lazy_blocking_constraints = 0;
  uint64_t lazy_certificate_closures = 0;
  /// Lazy candidate solutions rejected by the full-semantics witness
  /// checker (each one forced that probe down the eager path).
  uint64_t spurious_witnesses = 0;
  /// Scalar fast-path overflows promoted to BigInt form, summed over the
  /// base solve and every probe LP. Deterministic across thread counts:
  /// each solve is single-threaded and the sum is commutative.
  uint64_t scalar_promotions = 0;
  /// Largest simplex tableau of the session, as nonzero cells and as
  /// dense extent (rows * columns); nonzeros/cells is the peak fill the
  /// sparse kernel exploited. Maxima, so schedule-independent too.
  uint64_t peak_tableau_nonzeros = 0;
  uint64_t peak_tableau_cells = 0;
};

/// An incremental implication-query session over one (mutable) schema.
///
/// The from-scratch batch API re-expands and re-solves the whole schema
/// once per query. This session instead pays one base solve — expansion,
/// cluster analysis, and a warm-startable simplex snapshot of the full
/// Ψ system — and answers each probe with (a) an expansion *delta*
/// restricted to compounds that mention the probe's auxiliary class and
/// (b) warm-started LP re-solves resumed from the base snapshot. A memo
/// keyed by a canonical form of the query makes repeats O(1).
///
/// Contract: answers (including error statuses for malformed queries)
/// are bit-identical to Reasoner::RunImplicationBatch on the same
/// schema, for every thread count, governed or not. Only the cost —
/// governor work/byte charges, LP pivot counts — differs. Governed
/// sessions observe the ExecContext cooperatively in every new code
/// path and abort with the same first-trip LimitReport discipline as
/// the from-scratch engine.
///
/// The schema is borrowed and may be mutated between calls: every batch
/// starts by fingerprinting the schema (FNV-1a of its canonical printed
/// form) and rebuilds the base state + clears the memo when the
/// fingerprint changed.
///
/// Thread-safety: one session per thread of control. A single call may
/// use many worker threads internally (options.num_threads), but
/// concurrent calls into the same session are not supported.
class IncrementalSession {
 public:
  explicit IncrementalSession(const Schema* schema,
                              ReasonerOptions options = {});

  const Schema& schema() const { return *schema_; }

  /// Answers the batch; positionally aligned with `queries` and
  /// bit-identical to the from-scratch batch API. Duplicate queries
  /// (after canonicalization) are solved once.
  Result<std::vector<bool>> RunImplicationBatch(
      const std::vector<ImplicationQuery>& queries);

  /// The batch of one (still memoized across calls).
  Result<bool> RunImplicationQuery(const ImplicationQuery& query);

  /// Snapshot of the session statistics.
  IncrementalStats stats() const;

  // --- Serving lifecycle hooks -------------------------------------------
  // A long-lived server multiplexes many requests over one warm session;
  // these hooks let it swap the per-request governor in and out and cost
  // the warm state for cache eviction (src/serve/session_cache.h).

  /// Re-points the session's governor for subsequent calls (propagated
  /// into the expansion and solver stages; null = ungoverned). The warm
  /// base state and the memo survive — only the admission limits of the
  /// next request change. Not thread-safe against a concurrent call into
  /// the same session (the session's usual single-caller contract).
  void set_exec(ExecContext* exec);

  /// Deterministic order-of-magnitude estimate of the resident bytes of
  /// the warm state (base expansion, Ψ snapshot, memo, analysis). Used to
  /// rank sessions for memory-budget eviction, where only the relative
  /// costs matter; identical for every thread count (all inputs are
  /// schedule-independent counts and maxima).
  uint64_t EstimatedMemoryBytes() const;

  // --- Persistence (src/persist) -----------------------------------------

  /// Serializes the warm state — base expansion, solved Ψ snapshot with
  /// its base-solve statistics, and the memo — into the canonical
  /// snapshot byte format (persist/snapshot_format.h). Builds the base
  /// first if needed, so the result always reflects the current schema.
  /// Byte-identical for every thread count: the warm state itself is
  /// schedule-independent and the encoding is canonical.
  Result<std::string> Serialize();

  /// Restores the warm state from Serialize() output. The snapshot's
  /// schema fingerprint and extents must match the LIVE schema
  /// (kFailedPrecondition otherwise — the caller falls back to a cold
  /// build), the Ψ snapshot must pass ValidateSnapshotShape against the
  /// freshly rebuilt base system, and the snapshot's Ψ presence must
  /// agree with what the live base analysis would decide. On ANY
  /// failure the session is left cold (not corrupted): the next query
  /// simply rebuilds from scratch. On success, subsequent answers are
  /// bit-identical to a never-persisted session's.
  Status Deserialize(std::string_view bytes);

  /// True when Serialize() can produce a faithful full-warm-state
  /// snapshot right now. Always true for eager sessions (Serialize
  /// builds the base on demand); false for a lazy session whose heavy
  /// base build is still deferred — its warm state is a partial
  /// materialization that must not be spilled as if it were the full
  /// base. Serving caches gate their spill on this.
  bool SnapshotEligible() const;

  /// Canonical memo key of a query: literal/clause order and
  /// duplication inside an ISA formula and the argument order of a
  /// disjointness query do not affect the answer, so they do not affect
  /// the key. Exposed for tests.
  static std::string CanonicalQueryKey(const ImplicationQuery& query);

 private:
  /// Fingerprints the schema; (re)builds base expansion, cluster
  /// analysis and Ψ snapshot and clears the memo when it changed. Under
  /// options.lazy_expansion only the cheap part runs here (validation,
  /// static analysis, memo invalidation); the heavy base build is
  /// deferred to EnsureSolvedBase.
  Status EnsureBase();

  /// Heavy half of the base build: full expansion, cluster analysis and
  /// warm-startable Ψ snapshot. Idempotent and thread-safe (probe
  /// workers hit it concurrently when a lazy probe needs the delta
  /// path); no-op when the base is already solved.
  Status EnsureSolvedBase();

  /// The build itself; caller holds base_build_mutex_ or is serial.
  Status EnsureSolvedBaseLocked();

  /// Evaluates one query without consulting the memo. Mirrors the
  /// decision structure of the corresponding Reasoner::Implies* method
  /// exactly (validation order included), with the auxiliary-class
  /// satisfiability checks routed through the incremental path.
  Result<bool> QueryUncached(const ImplicationQuery& query);

  /// Satisfiability of a fresh auxiliary class with the given
  /// definition: delta-extend the base expansion and warm-start the Ψ
  /// solve; falls back to the from-scratch build when the delta path
  /// declines (kFailedPrecondition).
  Result<bool> AuxSatisfiable(
      const ClassFormula& isa, const std::vector<AttributeSpec>& attributes,
      const std::vector<ParticipationSpec>& participations);

  const Schema* schema_;
  ReasonerOptions options_;

  // Base state, valid iff base_ready_; rebuilt on fingerprint change.
  // base_solved_ marks the heavy half (expansion + Ψ snapshot) done; an
  // eager EnsureBase sets both, a lazy one sets only base_ready_ and
  // leaves the heavy half to EnsureSolvedBase.
  bool base_ready_ = false;
  std::atomic<bool> base_solved_{false};
  std::mutex base_build_mutex_;
  uint64_t fingerprint_ = 0;
  std::optional<Expansion> base_expansion_;
  /// Set iff the incremental path is available for this base (pruned
  /// strategy, analyzable clusters); otherwise every probe falls back.
  std::optional<ExpansionBaseAnalysis> analysis_;
  std::optional<IncrementalPsiBase> psi_base_;
  /// Static analysis of the base schema backing the prefilter tiers
  /// (options.prefilter); rebuilt with the base on fingerprint change.
  std::optional<SchemaAnalysis> schema_analysis_;

  /// Canonical query key -> answer. Only successful answers are
  /// memoized — errors and governor trips are always recomputed.
  std::map<std::string, bool> memo_;

  // Statistics. Atomics because probe counters are bumped from the
  // parallel batch workers.
  uint64_t queries_ = 0;
  uint64_t trivial_ = 0;
  uint64_t closure_hits_ = 0;
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  // base_builds_ is bumped under base_build_mutex_ when the heavy build
  // runs from a probe worker (lazy sessions), serially otherwise.
  uint64_t base_builds_ = 0;
  uint64_t base_restores_ = 0;
  std::atomic<uint64_t> lazy_hits_{0};
  std::atomic<uint64_t> lazy_refinement_rounds_{0};
  std::atomic<uint64_t> lazy_compounds_materialized_{0};
  std::atomic<uint64_t> lazy_blocking_constraints_{0};
  std::atomic<uint64_t> lazy_certificate_closures_{0};
  std::atomic<uint64_t> spurious_witnesses_{0};
  std::atomic<uint64_t> cluster_local_{0};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> fallbacks_{0};
  std::atomic<uint64_t> clusters_reused_{0};
  std::atomic<uint64_t> clusters_reenumerated_{0};
  std::atomic<uint64_t> scalar_promotions_{0};
  // Maxima (RecordTableauFill-style), not sums: warm-started probes share
  // the base tableau, so summing would count it once per probe.
  std::atomic<uint64_t> peak_tableau_nonzeros_{0};
  std::atomic<uint64_t> peak_tableau_cells_{0};
};

}  // namespace car

#endif  // CAR_REASONER_INCREMENTAL_H_
