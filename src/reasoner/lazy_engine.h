#ifndef CAR_REASONER_LAZY_ENGINE_H_
#define CAR_REASONER_LAZY_ENGINE_H_

#include <cstddef>
#include <vector>

#include "analysis/analyzer.h"
#include "base/result.h"
#include "expansion/expansion.h"
#include "model/schema.h"
#include "solver/solve.h"

namespace car {

/// Tuning of the lazy (counterexample-guided) expansion engine. The
/// defaults favor dense schemas: small batches cover quickly when the
/// include-first stream order front-loads maximal compounds, and the
/// caps bound the engine's own work well below one eager build before it
/// gives up and falls back.
struct LazyExpansionOptions {
  /// Compounds materialized per advanced stream per round.
  size_t batch_per_class = 8;
  /// Solve rounds (seed round included) before declaring inconclusive.
  size_t max_rounds = 8;
  /// Materialization cap; reaching it declares inconclusive.
  size_t max_materialized = 4096;
  /// Validate the concluding partial solution as a semantic model
  /// witness (semantics/witness_check) before answering; a spurious
  /// witness forces the eager fallback instead of an answer.
  bool validate_witness = true;
  /// UNSAT-side refinement: probe uncovered targets whose own stream is
  /// exhausted with a raw feasibility LP, learn the Farkas certificate of
  /// an infeasible probe as a blocking constraint, conclude UNSAT when
  /// the certificate is closed under the absent columns
  /// (semantics/certificate_check), and otherwise drive the next
  /// materialization round with the certificate's violating classes
  /// instead of the fixed batch. Off = PR 9 behavior (such targets stall
  /// into the eager fallback).
  bool unsat_probes = true;
};

/// What one lazy run reports. `conclusive` is the contract: when false,
/// NOTHING may be concluded and the caller must run the eager path —
/// answers, when present, are bit-identical to eager's by construction
/// (coverage implies full-expansion support by zero-extension;
/// unsatisfiability is only claimed on sound static certificates or on
/// exhausted empty streams).
struct LazyOutcome {
  bool conclusive = false;
  /// True when the final solution failed witness validation (the run is
  /// then inconclusive and the failure was counted on the governor).
  bool spurious_witness = false;
  /// Sized to the schema's class count; meaningful at the queried
  /// targets only.
  std::vector<bool> class_satisfiable;

  // Observability: what the run materialized and solved.
  size_t refinement_rounds = 0;
  size_t compounds_materialized = 0;
  size_t compound_attributes = 0;
  size_t compound_relations = 0;
  size_t lp_solves = 0;
  size_t fixpoint_rounds = 0;
  /// UNSAT-side counters: infeasibility certificates learned from
  /// infeasible probes (each one blocks its partial system for every
  /// later round), and certificates whose dual zero-extension closed —
  /// i.e. lazy UNSAT verdicts concluded without the eager expansion.
  size_t blocking_constraints = 0;
  size_t certificate_closures = 0;
};

/// Decides satisfiability of the `targets` classes lazily:
///
///   seed: per-class compound streams over the pruned enumeration's
///     decision tree (expansion/lazy_enum), opened for the dependency
///     closure of the targets, each advanced by one batch; statically
///     certified-unsat targets (analysis) are answered immediately and a
///     target whose exhausted stream delivered nothing is unsatisfiable
///     outright (no compound of the full expansion contains it);
///   solve: the materialized subset is assembled into a partial
///     expansion (AssembleExpansion) and run through the warm-started
///     acceptability fixpoint (SolvePsiOverDelta over a frozen seed
///     snapshot plus the cumulative refinement delta);
///   refine: targets not covered by an active compound advance their
///     streams (and their direct dependencies') by another batch, the
///     delta grows via PopulateDeltaExtensions, and the solve repeats —
///     each round warm-starts from the same clean seed snapshot;
///   unsat probes: an uncovered target whose own stream is exhausted is
///     probed with a raw feasibility LP over the partial system plus
///     "Σ Var(C̄ ∋ target) >= 1"; an infeasible probe's Farkas
///     certificate (validated exactly, then learned as a blocking
///     constraint and re-seated in later rounds) concludes UNSAT when
///     its dual zero-extension is closed under the absent columns
///     (semantics/certificate_check), and otherwise contributes its
///     violating classes as the next round's materialization hints
///     (adaptive batching);
///   conclude: when every open target is covered, the final solution is
///     validated as a semantic witness; only then are the answers
///     reported. Coverage in a partial expansion implies coverage in the
///     full one (solutions zero-extend), so positive answers are exact.
///
/// Returns an error only for governor trips and internal failures —
/// mirroring the eager path's statuses so callers degrade identically.
/// `analysis` may be null (the engine then runs the static pass itself,
/// lint off). Requires ExpansionOptions::strategy == kPruned; any other
/// configuration returns an inconclusive outcome.
Result<LazyOutcome> RunLazyExpansion(const Schema& schema,
                                     const std::vector<ClassId>& targets,
                                     const SchemaAnalysis* analysis,
                                     const ExpansionOptions& expansion_options,
                                     const PsiSolverOptions& solver_options,
                                     const LazyExpansionOptions& lazy_options);

}  // namespace car

#endif  // CAR_REASONER_LAZY_ENGINE_H_
