#ifndef CAR_REASONER_REASONER_H_
#define CAR_REASONER_REASONER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "expansion/expansion.h"
#include "model/schema.h"
#include "reasoner/lazy_engine.h"
#include "solver/solve.h"

namespace car {

struct ReasonerOptions {
  ExpansionOptions expansion;
  PsiSolverOptions solver;
  /// Worker threads for phase 1 (expansion sharding), phase 2
  /// (certificate post-processing), the per-shape LP feasibility sweeps
  /// of the global typing implications, and batched implication queries.
  /// Any value != 1 overrides the per-stage settings in `expansion` and
  /// `solver`. Results are bit-identical for every thread count;
  /// 1 = the serial reference path, 0 = hardware concurrency.
  int num_threads = 1;
  /// Optional resource governor (borrowed; may be null = ungoverned).
  /// When set, it is propagated into the expansion and solver stages and
  /// CheckSchema degrades gracefully: a tripped deadline, cancellation or
  /// budget yields Verdict::kUnknown with a populated LimitReport instead
  /// of an error status. Ungoverned runs keep the historical
  /// error-status behavior.
  ExecContext* exec = nullptr;
  /// Routes implication queries through an IncrementalSession: one base
  /// expansion + Ψ solve per schema fingerprint, then expansion deltas,
  /// warm-started LP re-solves and a canonical-form memo per query.
  /// Answers are bit-identical to the from-scratch path; only the cost
  /// differs.
  bool incremental = false;
  /// Incremental sessions only: run the static-analysis prefilter tiers
  /// ahead of the memo and the solver — tier-0 answers queries by table
  /// lookup on the propagated inclusion/disjointness closure, tier-2
  /// solves probes on a dependency-closed sub-schema when the closure is
  /// small. Both tiers are sound (certificate-only / exact projection),
  /// so answers stay bit-identical; only the cost and the per-tier hit
  /// counters change.
  bool prefilter = true;
  /// Lazy (counterexample-guided) expansion: CheckSchema,
  /// IsClassSatisfiable and implication probes first try to answer over
  /// a small materialized subset of the compound classes — seeded from
  /// the targets' dependency closure, grown on uncovered targets — and
  /// fall back to the full eager expansion whenever inconclusive.
  /// Verdicts are bit-identical either way; on dense schemas, where the
  /// full enumeration is exponential, the lazy path can answer after
  /// materializing a tiny subset (or answer at all where eager trips its
  /// caps). See DESIGN.md §5i.
  bool lazy_expansion = false;
  LazyExpansionOptions lazy;
};

/// Three-valued outcome of a governed satisfiability check.
enum class Verdict {
  /// Every class of the schema is satisfiable.
  kSat,
  /// At least one class is unsatisfiable.
  kUnsat,
  /// A resource limit tripped before the answer was reached; see
  /// SatReport::limit for which one, and SatReport::progress for the
  /// partial statistics at trip time.
  kUnknown,
};

const char* VerdictToString(Verdict verdict);

/// Per-schema satisfiability report.
struct SatReport {
  Verdict verdict = Verdict::kSat;
  /// One entry per class id. Empty when verdict == Verdict::kUnknown.
  std::vector<bool> class_satisfiable;
  std::vector<ClassId> unsatisfiable_classes;
  size_t num_compound_classes = 0;
  size_t num_compound_attributes = 0;
  size_t num_compound_relations = 0;
  size_t lp_solves = 0;
  size_t fixpoint_rounds = 0;
  /// Which limit ended the run; tripped() is true iff verdict ==
  /// Verdict::kUnknown.
  LimitReport limit;
  /// Progress counters from the governor (populated whenever the run was
  /// governed; for kUnknown these are the partial statistics).
  ProgressSnapshot progress;
  /// Lazy-expansion observability: `lazy` is set when the lazy engine
  /// produced this report, in which case num_compound_* count the
  /// MATERIALIZED subset rather than the full expansion (answers are
  /// identical either way; only these statistics differ).
  bool lazy = false;
  size_t refinement_rounds = 0;
  size_t compounds_materialized = 0;
  /// UNSAT-side refinement observability: Farkas certificates learned as
  /// blocking constraints, and certificates whose dual zero-extension
  /// closed (each closure is one lazily concluded UNSAT target).
  size_t blocking_constraints = 0;
  size_t certificate_closures = 0;
};

/// One logical-implication query for the batched API. Every kind reduces
/// to satisfiability of one auxiliary class in a private extended schema,
/// which makes queries independent of each other and of the reasoner's
/// cached state — the property the parallel batch execution relies on.
struct ImplicationQuery {
  enum class Kind {
    kIsa,               // class_id ⊑ formula?
    kDisjoint,          // class_id and other disjoint?
    kMinCardinality,    // every class_id instance has >= bound term-succs?
    kMaxCardinality,    // ... at most bound term-successors?
    kMinParticipation,  // ... occurs >= bound times as relation[role]?
    kMaxParticipation,  // ... occurs <= bound times as relation[role]?
  };
  Kind kind = Kind::kIsa;
  ClassId class_id = kInvalidId;
  /// kDisjoint only.
  ClassId other = kInvalidId;
  /// kIsa only.
  ClassFormula formula;
  /// kMinCardinality / kMaxCardinality only.
  AttributeTerm term;
  /// kMinParticipation / kMaxParticipation only.
  RelationId relation = kInvalidId;
  RoleId role = kInvalidId;
  /// The cardinality bound for the four cardinality/participation kinds.
  uint64_t bound = 0;
};

/// The reasoning engine of Section 3: class satisfiability via the
/// two-phase method (expansion, then the disequation system), and logical
/// implication by reduction to satisfiability of auxiliary classes.
///
/// The reasoner owns a copy of nothing: it borrows the schema, computes
/// the expansion and the Ψ_S solution lazily on first use, and caches them
/// for subsequent queries (the phase-1/phase-2 computation is
/// query-independent). Implication queries build a private extended copy
/// of the schema with one fresh auxiliary class and run an independent
/// satisfiability check on it; the borrowed schema is never mutated.
class IncrementalSession;

class Reasoner {
 public:
  explicit Reasoner(const Schema* schema, ReasonerOptions options = {});
  ~Reasoner();
  Reasoner(Reasoner&&) = default;
  Reasoner& operator=(Reasoner&&) = default;

  const Schema& schema() const { return *schema_; }

  /// The incremental session backing implication queries, or null when
  /// options.incremental is off or no implication query ran yet.
  /// Exposed for statistics (memo hits, warm starts, fallbacks).
  const IncrementalSession* incremental_session() const {
    return incremental_.get();
  }

  /// Phase 1 + 2, cached. Exposed for benchmarks and diagnostics.
  Result<const Expansion*> GetExpansion();
  Result<const PsiSolution*> GetSolution();

  /// Class satisfiability (paper, Section 2.3): does some model of the
  /// schema give the class a nonempty extension?
  Result<bool> IsClassSatisfiable(ClassId class_id);
  Result<bool> IsClassSatisfiable(std::string_view class_name);

  /// Full report over all classes.
  Result<SatReport> CheckSchema();

  // --- Logical implication (S ⊨ δ) ---------------------------------------
  // Each query reduces to unsatisfiability of a fresh auxiliary class in
  // an extended schema, which is sound and complete because models of the
  // extended schema are exactly models of the original with an arbitrary
  // extension for the auxiliary class.

  /// S ⊨ C isa F? (checked clause by clause: C ⊑ γ iff C ∧ ¬γ is empty).
  Result<bool> ImpliesIsa(ClassId subclass, const ClassFormula& formula);

  /// S ⊨ "A and B are disjoint"?
  Result<bool> ImpliesDisjoint(ClassId a, ClassId b);

  /// S ⊨ "every instance of C has at least `min` att-successors"?
  /// `min` must be >= 1 (the 0 case is trivially true).
  Result<bool> ImpliesMinCardinality(ClassId class_id, AttributeTerm term,
                                     uint64_t min);
  /// S ⊨ "every instance of C has at most `max` att-successors"?
  Result<bool> ImpliesMaxCardinality(ClassId class_id, AttributeTerm term,
                                     uint64_t max);

  /// S ⊨ "every instance of C occurs at least `min` times as the
  /// U-component of R"? `min` must be >= 1.
  Result<bool> ImpliesMinParticipation(ClassId class_id, RelationId relation,
                                       RoleId role, uint64_t min);
  /// S ⊨ "every instance of C occurs at most `max` times as the
  /// U-component of R"?
  Result<bool> ImpliesMaxParticipation(ClassId class_id, RelationId relation,
                                       RoleId role, uint64_t max);

  /// Evaluates a batch of implication queries. Each query is an
  /// independent auxiliary-schema satisfiability check; with
  /// options.num_threads > 1 the checks run concurrently on the shared
  /// pool. Answers are positionally aligned with `queries` and identical
  /// to issuing the queries one by one; on error, the error of the
  /// lowest-indexed failing query is returned.
  Result<std::vector<bool>> RunImplicationBatch(
      const std::vector<ImplicationQuery>& queries);

  /// Evaluates a single ImplicationQuery (the batch of one).
  Result<bool> RunImplicationQuery(const ImplicationQuery& query);

  // --- Global typing implications -----------------------------------------
  // These are decided on the solved expansion: a pair/tuple with the given
  // compound shape can appear in some model iff its compound classes are
  // in the final support and the corresponding counted unknown (if any)
  // can be strictly positive; the queries below enumerate the possible
  // shapes and test the offending ones against Ψ_S.

  /// S ⊨ "in every model, every tuple of R has its `role`-component in F"?
  Result<bool> ImpliesRoleTyping(RelationId relation, RoleId role,
                                 const ClassFormula& formula);

  /// S ⊨ "in every model, every att-successor lies in F"? (The *implied
  /// global range* of the attribute term; for (inv A) this is the implied
  /// domain of A.)
  Result<bool> ImpliesAttributeRange(AttributeTerm term,
                                     const ClassFormula& formula);

  /// The tightest cardinality interval (u, v) such that S implies every
  /// instance of C has between u and v att-successors, with the searched
  /// minimum capped at `search_limit` (the implied max is either found
  /// below `search_limit` or reported unbounded). Returns (0, infinity)
  /// when nothing is implied. For an unsatisfiable class every bound is
  /// implied; (search_limit, 0)-style degenerate answers are normalized
  /// to Cardinality::Exactly(0).
  Result<Cardinality> ImpliedCardinalityBounds(ClassId class_id,
                                               AttributeTerm term,
                                               uint64_t search_limit = 64);

 private:
  /// Ensures the cached expansion/solution exist and match the schema's
  /// current fingerprint; a mutated schema invalidates both.
  Status Prepare();

  /// Lazily constructs the incremental session (options.incremental).
  IncrementalSession* GetIncrementalSession();

  /// Builds a copy of the schema plus a fresh class with the given
  /// definition parts and returns satisfiability of the fresh class.
  Result<bool> AuxiliaryClassSatisfiable(
      const ClassFormula& isa, const std::vector<AttributeSpec>& attributes,
      const std::vector<ParticipationSpec>& participations);

  const Schema* schema_;
  ReasonerOptions options_;
  uint64_t schema_fingerprint_ = 0;
  std::optional<Expansion> expansion_;
  std::optional<PsiSolution> solution_;
  std::unique_ptr<IncrementalSession> incremental_;
};

}  // namespace car

#endif  // CAR_REASONER_REASONER_H_
