#include "reasoner/unrestricted.h"

namespace car {

namespace {

/// True when the cardinality recorded for (term, compound) — if any —
/// admits at least one link. Absent entries are unconstrained.
bool AdmitsOneLink(const Expansion& expansion, const AttributeTerm& term,
                   int compound_index) {
  auto it = expansion.natt.find({term, compound_index});
  if (it == expansion.natt.end()) return true;
  return !it->second.IsEmpty() && it->second.max() >= 1;
}

bool AdmitsOneTuple(const Expansion& expansion, RelationId relation,
                    int role_index, int compound_index) {
  auto it = expansion.nrel.find({relation, role_index, compound_index});
  if (it == expansion.nrel.end()) return true;
  return !it->second.IsEmpty() && it->second.max() >= 1;
}

/// Checks all local obligations of one compound class against the set of
/// currently surviving compound classes.
bool ObligationsWitnessed(const Expansion& expansion, int compound_index,
                          const std::vector<bool>& surviving) {
  // Attribute obligations.
  for (const auto& [key, cardinality] : expansion.natt) {
    const auto& [term, owner] = key;
    if (owner != compound_index) continue;
    if (cardinality.IsEmpty()) return false;
    if (cardinality.min() == 0) continue;

    // Need a surviving opposite-side compound class, consistent as a
    // compound attribute, that can absorb at least one link.
    const auto& index_map =
        term.inverse ? expansion.ca_by_to : expansion.ca_by_from;
    auto it = index_map.find({term.attribute, compound_index});
    bool witnessed = false;
    if (it != index_map.end()) {
      for (int ca_index : it->second) {
        const CompoundAttribute& ca =
            expansion.compound_attributes[ca_index];
        int other = term.inverse ? ca.from : ca.to;
        AttributeTerm opposite = term.inverse
                                     ? AttributeTerm::Direct(term.attribute)
                                     : AttributeTerm::Inverse(term.attribute);
        if (surviving[other] &&
            AdmitsOneLink(expansion, opposite, other)) {
          witnessed = true;
          break;
        }
      }
    }
    if (!witnessed) return false;
  }

  // Participation obligations.
  for (const auto& [key, cardinality] : expansion.nrel) {
    const auto& [relation, role_index, owner] = key;
    if (owner != compound_index) continue;
    if (cardinality.IsEmpty()) return false;
    if (cardinality.min() == 0) continue;

    auto it = expansion.cr_by_role.find({relation, role_index,
                                         compound_index});
    bool witnessed = false;
    if (it != expansion.cr_by_role.end()) {
      for (int cr_index : it->second) {
        const CompoundRelation& cr = expansion.compound_relations[cr_index];
        bool usable = true;
        for (size_t j = 0; j < cr.components.size(); ++j) {
          if (!surviving[cr.components[j]] ||
              !AdmitsOneTuple(expansion, relation, static_cast<int>(j),
                              cr.components[j])) {
            usable = false;
            break;
          }
        }
        if (usable) {
          witnessed = true;
          break;
        }
      }
    }
    if (!witnessed) return false;
  }
  return true;
}

}  // namespace

Result<UnrestrictedResult> CheckUnrestrictedSatisfiability(
    const Expansion& expansion) {
  UnrestrictedResult result;
  result.cc_surviving.assign(expansion.compound_classes.size(), true);

  bool changed = true;
  while (changed) {
    ++result.elimination_rounds;
    changed = false;
    for (size_t i = 0; i < expansion.compound_classes.size(); ++i) {
      if (!result.cc_surviving[i]) continue;
      if (!ObligationsWitnessed(expansion, static_cast<int>(i),
                                result.cc_surviving)) {
        result.cc_surviving[i] = false;
        changed = true;
      }
    }
  }

  const Schema& schema = *expansion.schema;
  result.class_satisfiable.assign(schema.num_classes(), false);
  for (size_t i = 0; i < expansion.compound_classes.size(); ++i) {
    if (!result.cc_surviving[i]) continue;
    for (ClassId member : expansion.compound_classes[i].members()) {
      result.class_satisfiable[member] = true;
    }
  }
  return result;
}

}  // namespace car
