#include "reasoner/query_text.h"

#include <charconv>
#include <sstream>
#include <system_error>
#include <utility>

#include "base/strings.h"
#include "model/cardinality.h"

namespace car {

std::vector<std::string> TokenizeQueryLine(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

Result<ImplicationQuery> ParseQueryTokens(
    const Schema& schema, const std::vector<std::string>& tokens) {
  auto class_of = [&schema](const std::string& name) -> Result<ClassId> {
    ClassId id = schema.LookupClass(name);
    if (id == kInvalidId) {
      return NotFound(StrCat("unknown class '", Elide(name), "'"));
    }
    return id;
  };
  auto term_of = [&schema](
                     const std::string& text) -> Result<AttributeTerm> {
    bool inverse = text.rfind("inv:", 0) == 0;
    std::string name = inverse ? text.substr(4) : text;
    AttributeId id = schema.LookupAttribute(name);
    if (id == kInvalidId) {
      return NotFound(StrCat("unknown attribute '", Elide(name), "'"));
    }
    return inverse ? AttributeTerm::Inverse(id) : AttributeTerm::Direct(id);
  };
  auto bound_of = [](const std::string& text) -> Result<uint64_t> {
    if (text == "inf") return Cardinality::kInfinity;
    // from_chars, not stoull: stoull wraps "-1" to 2^64-1 instead of
    // rejecting it, silently turning a typo into a huge bound.
    uint64_t value = 0;
    auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || end != text.data() + text.size()) {
      return InvalidArgument(StrCat("bad bound '", Elide(text), "'"));
    }
    return value;
  };

  ImplicationQuery query;
  const std::string& op = tokens[0];
  if (op == "isa" && tokens.size() == 3) {
    query.kind = ImplicationQuery::Kind::kIsa;
    CAR_ASSIGN_OR_RETURN(query.class_id, class_of(tokens[1]));
    CAR_ASSIGN_OR_RETURN(ClassId super, class_of(tokens[2]));
    query.formula = ClassFormula::OfClass(super);
    return query;
  }
  if (op == "disjoint" && tokens.size() == 3) {
    query.kind = ImplicationQuery::Kind::kDisjoint;
    CAR_ASSIGN_OR_RETURN(query.class_id, class_of(tokens[1]));
    CAR_ASSIGN_OR_RETURN(query.other, class_of(tokens[2]));
    return query;
  }
  if ((op == "min-card" || op == "max-card") && tokens.size() == 4) {
    query.kind = op == "min-card" ? ImplicationQuery::Kind::kMinCardinality
                                  : ImplicationQuery::Kind::kMaxCardinality;
    CAR_ASSIGN_OR_RETURN(query.class_id, class_of(tokens[1]));
    CAR_ASSIGN_OR_RETURN(query.term, term_of(tokens[2]));
    CAR_ASSIGN_OR_RETURN(query.bound, bound_of(tokens[3]));
    return query;
  }
  if ((op == "min-part" || op == "max-part") && tokens.size() == 5) {
    query.kind = op == "min-part"
                     ? ImplicationQuery::Kind::kMinParticipation
                     : ImplicationQuery::Kind::kMaxParticipation;
    CAR_ASSIGN_OR_RETURN(query.class_id, class_of(tokens[1]));
    query.relation = schema.LookupRelation(tokens[2]);
    if (query.relation == kInvalidId) {
      return NotFound(StrCat("unknown relation '", Elide(tokens[2]), "'"));
    }
    query.role = schema.LookupRole(tokens[3]);
    if (query.role == kInvalidId) {
      return NotFound(StrCat("unknown role '", Elide(tokens[3]), "'"));
    }
    CAR_ASSIGN_OR_RETURN(query.bound, bound_of(tokens[4]));
    return query;
  }
  return InvalidArgument(
      StrCat("bad query '", Elide(op), "' (or wrong arity)"));
}

Result<std::vector<ImplicationQuery>> ParseQueryText(
    const Schema& schema, std::string_view text,
    std::vector<std::string>* normalized_lines) {
  std::vector<ImplicationQuery> queries;
  std::istringstream input{std::string(text)};
  std::string line;
  while (std::getline(input, line)) {
    std::vector<std::string> tokens = TokenizeQueryLine(line);
    if (tokens.empty()) continue;
    auto query = ParseQueryTokens(schema, tokens);
    if (!query.ok()) {
      return Status(
          query.status().code(),
          StrCat("query '", Elide(line), "': ", query.status().message()));
    }
    if (normalized_lines != nullptr) {
      std::string normalized;
      for (const std::string& token : tokens) {
        if (!normalized.empty()) normalized += " ";
        normalized += token;
      }
      normalized_lines->push_back(std::move(normalized));
    }
    queries.push_back(std::move(query.value()));
  }
  return queries;
}

}  // namespace car
