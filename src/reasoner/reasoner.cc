#include "reasoner/reasoner.h"

#include <map>

#include "base/hashing.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "frontend/printer.h"
#include "math/simplex.h"
#include "reasoner/incremental.h"
#include "solver/psi.h"

namespace car {

namespace {

/// Feasibility of the restricted Ψ_S with the given unknowns forced
/// >= 1: "can this counted pair/tuple population be strictly positive in
/// a model?". The caller passes the counted unknown *and* the unknowns of
/// its endpoint compound classes: an acceptable solution needs those
/// positive as well, and conversely any feasible point here plus the
/// maximal-support solution is acceptable (solutions of the homogeneous
/// system add).
Result<bool> FeasibleWithUnitLowerBounds(const PsiSystem& psi,
                                         const std::vector<int>& variables,
                                         ExecContext* exec) {
  LinearSystem system = psi.system;
  for (int variable : variables) {
    LinearConstraint at_least_one;
    at_least_one.expr.Add(variable, Rational(1));
    at_least_one.relation = Relation::kGreaterEqual;
    at_least_one.rhs = Rational(1);
    system.AddConstraint(std::move(at_least_one));
  }
  SimplexSolver::Options simplex_options;
  simplex_options.exec = exec;
  CAR_ASSIGN_OR_RETURN(LpResult lp,
                       SimplexSolver(simplex_options).CheckFeasible(system));
  return lp.outcome == LpOutcome::kOptimal;
}

/// Runs the collected LP feasibility probes (each a set of unknowns
/// forced >= 1), possibly in parallel, and reports whether any probe is
/// feasible. The answer is a disjunction, hence independent of probe
/// order; errors are reported for the lowest-indexed failing probe.
Result<bool> AnyProbeFeasible(const PsiSystem& psi,
                              const std::vector<std::vector<int>>& probes,
                              int num_threads, ExecContext* exec) {
  std::vector<Result<bool>> outcomes(probes.size(), Result<bool>(false));
  ParallelForOptions parallel;
  parallel.num_threads = num_threads;
  parallel.cancel = exec;
  ParallelFor(probes.size(), parallel,
              [&psi, &probes, &outcomes, exec](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  Status charge = GovChargeWork(exec, 1, "implication");
                  if (!charge.ok()) {
                    outcomes[i] = std::move(charge);
                    return;
                  }
                  outcomes[i] =
                      FeasibleWithUnitLowerBounds(psi, probes[i], exec);
                }
              });
  // A trip skips chunks, leaving default-false outcome slots; surface the
  // trip rather than fold a partial disjunction into an answer.
  CAR_RETURN_IF_ERROR(GovCheck(exec, "implication"));
  bool any = false;
  for (const Result<bool>& outcome : outcomes) {
    CAR_RETURN_IF_ERROR(outcome.status());
    any = any || outcome.value();
  }
  return any;
}

}  // namespace

const char* VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSat:
      return "sat";
    case Verdict::kUnsat:
      return "unsat";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "invalid";
}

Reasoner::Reasoner(const Schema* schema, ReasonerOptions options)
    : schema_(schema), options_(std::move(options)) {
  CAR_CHECK(schema != nullptr);
  if (options_.num_threads != 1) {
    options_.expansion.num_threads = options_.num_threads;
    options_.solver.num_threads = options_.num_threads;
  }
  if (options_.exec != nullptr) {
    options_.expansion.exec = options_.exec;
    options_.solver.exec = options_.exec;
  }
}

Reasoner::~Reasoner() = default;

Status Reasoner::Prepare() {
  // The schema is borrowed and may be mutated between queries; the cached
  // expansion/solution are only valid for the fingerprint they were
  // computed under.
  uint64_t fingerprint = Fnv1a64(PrintSchema(*schema_));
  if (solution_.has_value() && fingerprint == schema_fingerprint_) {
    return Status::Ok();
  }
  expansion_.reset();
  solution_.reset();
  CAR_ASSIGN_OR_RETURN(Expansion expansion,
                       BuildExpansion(*schema_, options_.expansion));
  CAR_ASSIGN_OR_RETURN(PsiSolution solution,
                       SolvePsi(expansion, options_.solver));
  expansion_ = std::move(expansion);
  solution_ = std::move(solution);
  schema_fingerprint_ = fingerprint;
  return Status::Ok();
}

IncrementalSession* Reasoner::GetIncrementalSession() {
  if (incremental_ == nullptr) {
    incremental_ = std::make_unique<IncrementalSession>(schema_, options_);
  }
  return incremental_.get();
}

Result<const Expansion*> Reasoner::GetExpansion() {
  CAR_RETURN_IF_ERROR(Prepare());
  return &*expansion_;
}

Result<const PsiSolution*> Reasoner::GetSolution() {
  CAR_RETURN_IF_ERROR(Prepare());
  return &*solution_;
}

Result<bool> Reasoner::IsClassSatisfiable(ClassId class_id) {
  if (class_id < 0 || class_id >= schema_->num_classes()) {
    return NotFound(StrCat("class id ", class_id, " out of range"));
  }
  if (options_.lazy_expansion) {
    CAR_ASSIGN_OR_RETURN(
        LazyOutcome lazy,
        RunLazyExpansion(*schema_, {class_id}, nullptr, options_.expansion,
                         options_.solver, options_.lazy));
    if (lazy.conclusive) return static_cast<bool>(lazy.class_satisfiable[class_id]);
    // Inconclusive: fall through to the eager path.
  }
  CAR_RETURN_IF_ERROR(Prepare());
  return solution_->IsClassSatisfiable(class_id);
}

Result<bool> Reasoner::IsClassSatisfiable(std::string_view class_name) {
  ClassId id = schema_->LookupClass(class_name);
  if (id == kInvalidId) {
    return NotFound(StrCat("unknown class '", class_name, "'"));
  }
  return IsClassSatisfiable(id);
}

Result<SatReport> Reasoner::CheckSchema() {
  if (options_.lazy_expansion) {
    std::vector<ClassId> targets(schema_->num_classes());
    for (ClassId c = 0; c < schema_->num_classes(); ++c) targets[c] = c;
    Result<LazyOutcome> lazy =
        RunLazyExpansion(*schema_, targets, nullptr, options_.expansion,
                         options_.solver, options_.lazy);
    if (!lazy.ok()) {
      // Same graceful degradation as the eager path below.
      if (options_.exec != nullptr && options_.exec->tripped()) {
        SatReport report;
        report.verdict = Verdict::kUnknown;
        report.limit = options_.exec->report();
        report.progress = options_.exec->progress();
        return report;
      }
      return lazy.status();
    }
    if (lazy->conclusive) {
      SatReport report;
      report.lazy = true;
      report.class_satisfiable.assign(lazy->class_satisfiable.begin(),
                                      lazy->class_satisfiable.end());
      for (ClassId c = 0; c < schema_->num_classes(); ++c) {
        if (!report.class_satisfiable[c]) {
          report.unsatisfiable_classes.push_back(c);
        }
      }
      report.verdict = report.unsatisfiable_classes.empty() ? Verdict::kSat
                                                            : Verdict::kUnsat;
      report.num_compound_classes = lazy->compounds_materialized;
      report.num_compound_attributes = lazy->compound_attributes;
      report.num_compound_relations = lazy->compound_relations;
      report.lp_solves = lazy->lp_solves;
      report.fixpoint_rounds = lazy->fixpoint_rounds;
      report.refinement_rounds = lazy->refinement_rounds;
      report.compounds_materialized = lazy->compounds_materialized;
      report.blocking_constraints = lazy->blocking_constraints;
      report.certificate_closures = lazy->certificate_closures;
      if (options_.exec != nullptr) {
        report.progress = options_.exec->progress();
      }
      return report;
    }
    // Inconclusive: fall through to the eager path.
  }
  Status prepared = Prepare();
  if (!prepared.ok()) {
    // Graceful degradation: a governed run whose limit tripped yields a
    // kUnknown report with the structured LimitReport and the partial
    // statistics instead of an error. Ungoverned runs (and genuine
    // failures unrelated to the governor) keep the error status.
    if (options_.exec != nullptr && options_.exec->tripped()) {
      SatReport report;
      report.verdict = Verdict::kUnknown;
      report.limit = options_.exec->report();
      report.progress = options_.exec->progress();
      return report;
    }
    return prepared;
  }
  SatReport report;
  report.class_satisfiable = solution_->class_satisfiable;
  for (ClassId c = 0; c < schema_->num_classes(); ++c) {
    if (!solution_->class_satisfiable[c]) {
      report.unsatisfiable_classes.push_back(c);
    }
  }
  report.verdict = report.unsatisfiable_classes.empty() ? Verdict::kSat
                                                        : Verdict::kUnsat;
  report.num_compound_classes = expansion_->compound_classes.size();
  report.num_compound_attributes = expansion_->compound_attributes.size();
  report.num_compound_relations = expansion_->compound_relations.size();
  report.lp_solves = solution_->lp_solves;
  report.fixpoint_rounds = solution_->fixpoint_rounds;
  if (options_.exec != nullptr) report.progress = options_.exec->progress();
  return report;
}

Result<bool> Reasoner::AuxiliaryClassSatisfiable(
    const ClassFormula& isa, const std::vector<AttributeSpec>& attributes,
    const std::vector<ParticipationSpec>& participations) {
  Schema extended = *schema_;
  // Pick a fresh name for the auxiliary class.
  std::string name = "__car_query";
  int suffix = 0;
  while (extended.LookupClass(name) != kInvalidId) {
    name = StrCat("__car_query_", ++suffix);
  }
  ClassId aux = extended.InternClass(name);
  ClassDefinition* definition = extended.mutable_class_definition(aux);
  definition->isa = isa;
  definition->attributes = attributes;
  definition->participations = participations;
  CAR_RETURN_IF_ERROR(extended.Validate());

  if (options_.lazy_expansion) {
    CAR_ASSIGN_OR_RETURN(
        LazyOutcome lazy,
        RunLazyExpansion(extended, {aux}, nullptr, options_.expansion,
                         options_.solver, options_.lazy));
    if (lazy.conclusive) return static_cast<bool>(lazy.class_satisfiable[aux]);
    // Inconclusive: fall through to the eager probe.
  }

  CAR_ASSIGN_OR_RETURN(Expansion expansion,
                       BuildExpansion(extended, options_.expansion));
  CAR_ASSIGN_OR_RETURN(PsiSolution solution,
                       SolvePsi(expansion, options_.solver));
  return solution.IsClassSatisfiable(aux);
}

Result<bool> Reasoner::ImpliesIsa(ClassId subclass,
                                  const ClassFormula& formula) {
  if (subclass < 0 || subclass >= schema_->num_classes()) {
    return NotFound(StrCat("class id ", subclass, " out of range"));
  }
  // C ⊑ γ1 ∧ ... ∧ γn iff C ⊑ γj for every clause. C ⊑ L1 ∨ ... ∨ Lm iff
  // the auxiliary class (C ∧ ¬L1 ∧ ... ∧ ¬Lm) is unsatisfiable.
  for (const ClassClause& clause : formula.clauses()) {
    ClassFormula auxiliary_isa = ClassFormula::OfClass(subclass);
    for (const ClassLiteral& literal : clause.literals()) {
      auxiliary_isa.AddClause(ClassClause::Of(literal.Complement()));
    }
    CAR_ASSIGN_OR_RETURN(bool satisfiable,
                         AuxiliaryClassSatisfiable(auxiliary_isa, {}, {}));
    if (satisfiable) return false;
  }
  return true;
}

Result<bool> Reasoner::ImpliesDisjoint(ClassId a, ClassId b) {
  if (a < 0 || a >= schema_->num_classes() || b < 0 ||
      b >= schema_->num_classes()) {
    return NotFound("class id out of range");
  }
  ClassFormula both = ClassFormula::OfClass(a);
  both.AndWith(ClassFormula::OfClass(b));
  CAR_ASSIGN_OR_RETURN(bool satisfiable,
                       AuxiliaryClassSatisfiable(both, {}, {}));
  return !satisfiable;
}

Result<bool> Reasoner::ImpliesMinCardinality(ClassId class_id,
                                             AttributeTerm term,
                                             uint64_t min) {
  if (min == 0) return true;
  if (term.attribute < 0 || term.attribute >= schema_->num_attributes()) {
    return NotFound(StrCat("attribute id ", term.attribute, " out of range"));
  }
  // The auxiliary class is a C-instance allowed at most min-1 successors;
  // it is satisfiable iff the minimum is NOT implied.
  AttributeSpec spec;
  spec.term = term;
  spec.cardinality = Cardinality(0, min - 1);
  spec.range = ClassFormula::True();
  CAR_ASSIGN_OR_RETURN(
      bool satisfiable,
      AuxiliaryClassSatisfiable(ClassFormula::OfClass(class_id), {spec}, {}));
  return !satisfiable;
}

Result<bool> Reasoner::ImpliesMaxCardinality(ClassId class_id,
                                             AttributeTerm term,
                                             uint64_t max) {
  if (term.attribute < 0 || term.attribute >= schema_->num_attributes()) {
    return NotFound(StrCat("attribute id ", term.attribute, " out of range"));
  }
  if (max == Cardinality::kInfinity) return true;
  AttributeSpec spec;
  spec.term = term;
  spec.cardinality = Cardinality::AtLeast(max + 1);
  spec.range = ClassFormula::True();
  CAR_ASSIGN_OR_RETURN(
      bool satisfiable,
      AuxiliaryClassSatisfiable(ClassFormula::OfClass(class_id), {spec}, {}));
  return !satisfiable;
}

Result<bool> Reasoner::ImpliesMinParticipation(ClassId class_id,
                                               RelationId relation,
                                               RoleId role, uint64_t min) {
  if (min == 0) return true;
  ParticipationSpec spec;
  spec.relation = relation;
  spec.role = role;
  spec.cardinality = Cardinality(0, min - 1);
  CAR_ASSIGN_OR_RETURN(
      bool satisfiable,
      AuxiliaryClassSatisfiable(ClassFormula::OfClass(class_id), {}, {spec}));
  return !satisfiable;
}

Result<bool> Reasoner::ImpliesRoleTyping(RelationId relation, RoleId role,
                                         const ClassFormula& formula) {
  if (relation < 0 || relation >= schema_->num_relations()) {
    return NotFound(StrCat("relation id ", relation, " out of range"));
  }
  const RelationDefinition* definition =
      schema_->relation_definition(relation);
  CAR_CHECK(definition != nullptr);
  int role_index = definition->RoleIndex(role);
  if (role_index < 0) {
    return NotFound(StrCat("role '", schema_->RoleName(role),
                           "' is not a role of relation '",
                           schema_->RelationName(relation), "'"));
  }
  CAR_RETURN_IF_ERROR(Prepare());

  std::vector<int> active;
  for (size_t i = 0; i < solution_->cc_active.size(); ++i) {
    if (solution_->cc_active[i]) active.push_back(static_cast<int>(i));
  }
  const int arity = definition->arity();
  double combination_estimate = 1;
  for (int k = 0; k < arity; ++k) {
    combination_estimate *= static_cast<double>(active.size());
  }
  if (combination_estimate > 4e6) {
    return GovRecordTrip(options_.exec, LimitKind::kMaxCandidates,
                         "implication", 4'000'000,
                         static_cast<uint64_t>(combination_estimate));
  }

  // Index of the counted compound relations of this relation.
  std::map<std::vector<int>, int> counted;
  for (size_t i = 0; i < expansion_->compound_relations.size(); ++i) {
    const CompoundRelation& cr = expansion_->compound_relations[i];
    if (cr.relation == relation) {
      counted.emplace(cr.components, static_cast<int>(i));
    }
  }
  PsiSystem psi =
      BuildPsiSystem(*expansion_, solution_->cc_active, solution_->ca_active,
                     solution_->cr_active);

  // Enumerate candidate component vectors over the active support,
  // collecting the counted violating shapes; their LP feasibility probes
  // run as a parallel sweep afterwards.
  std::vector<std::vector<int>> probes;
  std::vector<int> components(arity);
  std::vector<size_t> odometer(arity, 0);
  while (true) {
    for (int k = 0; k < arity; ++k) components[k] = active[odometer[k]];
    std::vector<const CompoundClass*> views;
    views.reserve(arity);
    for (int index : components) {
      views.push_back(&expansion_->compound_classes[index]);
    }
    if (IsConsistentCompoundRelation(*schema_, *definition, views) &&
        !views[role_index]->Realizes(formula)) {
      // A tuple of this shape would violate the candidate typing; can it
      // occur? Free (uncounted) shapes always can; counted ones are
      // checked against Ψ_S.
      bool constrained = false;
      for (int k = 0; k < arity; ++k) {
        if (expansion_->nrel.count({relation, k, components[k]}) > 0) {
          constrained = true;
          break;
        }
      }
      if (!constrained) return false;
      auto it = counted.find(components);
      CAR_CHECK(it != counted.end())
          << "constrained compound relation missing from the expansion";
      std::vector<int> forced = {psi.cr_var[it->second]};
      for (int index : components) forced.push_back(psi.cc_var[index]);
      probes.push_back(std::move(forced));
    }
    // Advance the odometer.
    int k = 0;
    while (k < arity && ++odometer[k] == active.size()) {
      odometer[k] = 0;
      ++k;
    }
    if (k == arity) break;
  }
  CAR_ASSIGN_OR_RETURN(bool possible,
                       AnyProbeFeasible(psi, probes, options_.num_threads,
                                        options_.exec));
  return !possible;
}

Result<bool> Reasoner::ImpliesAttributeRange(AttributeTerm term,
                                             const ClassFormula& formula) {
  if (term.attribute < 0 || term.attribute >= schema_->num_attributes()) {
    return NotFound(StrCat("attribute id ", term.attribute, " out of range"));
  }
  CAR_RETURN_IF_ERROR(Prepare());

  std::vector<int> active;
  for (size_t i = 0; i < solution_->cc_active.size(); ++i) {
    if (solution_->cc_active[i]) active.push_back(static_cast<int>(i));
  }
  std::map<std::pair<int, int>, int> counted;
  for (size_t i = 0; i < expansion_->compound_attributes.size(); ++i) {
    const CompoundAttribute& ca = expansion_->compound_attributes[i];
    if (ca.attribute == term.attribute) {
      counted.emplace(std::make_pair(ca.from, ca.to), static_cast<int>(i));
    }
  }
  PsiSystem psi =
      BuildPsiSystem(*expansion_, solution_->cc_active, solution_->ca_active,
                     solution_->cr_active);

  // Collect the counted violating pairs; their LP feasibility probes run
  // as a parallel sweep afterwards.
  std::vector<std::vector<int>> probes;
  for (int from : active) {
    for (int to : active) {
      if (!IsConsistentCompoundAttribute(
              *schema_, term.attribute, expansion_->compound_classes[from],
              expansion_->compound_classes[to])) {
        continue;
      }
      // The "successor" side of a direct term is the pair's target; for
      // an inverse term it is the source.
      const CompoundClass& successor =
          expansion_->compound_classes[term.inverse ? from : to];
      if (successor.Realizes(formula)) continue;
      bool constrained =
          expansion_->natt.count({AttributeTerm::Direct(term.attribute),
                                  from}) > 0 ||
          expansion_->natt.count({AttributeTerm::Inverse(term.attribute),
                                  to}) > 0;
      if (!constrained) return false;
      auto it = counted.find({from, to});
      CAR_CHECK(it != counted.end())
          << "constrained compound attribute missing from the expansion";
      probes.push_back(
          {psi.ca_var[it->second], psi.cc_var[from], psi.cc_var[to]});
    }
  }
  CAR_ASSIGN_OR_RETURN(bool possible,
                       AnyProbeFeasible(psi, probes, options_.num_threads,
                                        options_.exec));
  return !possible;
}

Result<Cardinality> Reasoner::ImpliedCardinalityBounds(
    ClassId class_id, AttributeTerm term, uint64_t search_limit) {
  // Largest implied minimum in [0, search_limit] by binary search
  // (implication of a minimum is downward monotone in the bound).
  uint64_t lo = 0;
  uint64_t hi = search_limit;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo + 1) / 2;
    CAR_ASSIGN_OR_RETURN(bool implied,
                         ImpliesMinCardinality(class_id, term, mid));
    if (implied) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  uint64_t implied_min = lo;

  // Smallest implied maximum in [0, search_limit], or unbounded.
  CAR_ASSIGN_OR_RETURN(bool bounded,
                       ImpliesMaxCardinality(class_id, term, search_limit));
  uint64_t implied_max = Cardinality::kInfinity;
  if (bounded) {
    lo = 0;
    hi = search_limit;
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      CAR_ASSIGN_OR_RETURN(bool implied,
                           ImpliesMaxCardinality(class_id, term, mid));
      if (implied) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    implied_max = lo;
  }
  if (implied_max != Cardinality::kInfinity && implied_min > implied_max) {
    // Only possible when the class is unsatisfiable (every bound holds
    // vacuously); normalize.
    return Cardinality::Exactly(0);
  }
  return Cardinality(implied_min, implied_max);
}

Result<bool> Reasoner::ImpliesMaxParticipation(ClassId class_id,
                                               RelationId relation,
                                               RoleId role, uint64_t max) {
  if (max == Cardinality::kInfinity) return true;
  ParticipationSpec spec;
  spec.relation = relation;
  spec.role = role;
  spec.cardinality = Cardinality::AtLeast(max + 1);
  CAR_ASSIGN_OR_RETURN(
      bool satisfiable,
      AuxiliaryClassSatisfiable(ClassFormula::OfClass(class_id), {}, {spec}));
  return !satisfiable;
}

Result<bool> Reasoner::RunImplicationQuery(const ImplicationQuery& query) {
  if (options_.incremental) {
    return GetIncrementalSession()->RunImplicationQuery(query);
  }
  switch (query.kind) {
    case ImplicationQuery::Kind::kIsa:
      return ImpliesIsa(query.class_id, query.formula);
    case ImplicationQuery::Kind::kDisjoint:
      return ImpliesDisjoint(query.class_id, query.other);
    case ImplicationQuery::Kind::kMinCardinality:
      return ImpliesMinCardinality(query.class_id, query.term, query.bound);
    case ImplicationQuery::Kind::kMaxCardinality:
      return ImpliesMaxCardinality(query.class_id, query.term, query.bound);
    case ImplicationQuery::Kind::kMinParticipation:
      return ImpliesMinParticipation(query.class_id, query.relation,
                                     query.role, query.bound);
    case ImplicationQuery::Kind::kMaxParticipation:
      return ImpliesMaxParticipation(query.class_id, query.relation,
                                     query.role, query.bound);
  }
  return Internal("unknown implication query kind");
}

Result<std::vector<bool>> Reasoner::RunImplicationBatch(
    const std::vector<ImplicationQuery>& queries) {
  if (options_.incremental) {
    return GetIncrementalSession()->RunImplicationBatch(queries);
  }
  // Every query builds and solves a private auxiliary schema and touches
  // no cached reasoner state, so the batch can run concurrently; answers
  // land in per-query slots, making the result order-insensitive.
  std::vector<Result<bool>> outcomes(queries.size(), Result<bool>(false));
  ParallelForOptions parallel;
  parallel.num_threads = options_.num_threads;
  parallel.cancel = options_.exec;
  ParallelFor(queries.size(), parallel,
              [this, &queries, &outcomes](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  Status charge =
                      GovChargeWork(options_.exec, 1, "implication");
                  if (!charge.ok()) {
                    outcomes[i] = std::move(charge);
                    return;
                  }
                  outcomes[i] = RunImplicationQuery(queries[i]);
                  if (options_.exec != nullptr) options_.exec->CountQueries(1);
                }
              });
  // Concurrent queries interleave pipeline phases, so the phase recorded
  // at a trip would depend on the schedule; normalize it to the batch's
  // own phase so tripped batches report identically for every thread
  // count.
  if (options_.exec != nullptr && options_.exec->tripped()) {
    options_.exec->OverridePhaseOnTrip("implication");
  }
  // Skipped chunks leave default-false slots; surface the trip instead.
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "implication"));
  std::vector<bool> answers;
  answers.reserve(outcomes.size());
  for (const Result<bool>& outcome : outcomes) {
    CAR_RETURN_IF_ERROR(outcome.status());
    answers.push_back(outcome.value());
  }
  return answers;
}

}  // namespace car
