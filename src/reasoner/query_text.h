#ifndef CAR_REASONER_QUERY_TEXT_H_
#define CAR_REASONER_QUERY_TEXT_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "model/schema.h"
#include "reasoner/reasoner.h"

namespace car {

/// The textual implication-query format shared by `car_tool query`
/// (--queries files), the car_serve wire protocol and the serve load
/// generator. One query per line:
///
///   isa A B                    S ⊨ A isa B?
///   disjoint A B               S ⊨ A, B disjoint?
///   min-card A att N           every A has >= N att-successors?
///   max-card A att N|inf       ... at most N (or unbounded)?
///   min-part A Rel role N      A occurs >= N times as Rel[role]?
///   max-part A Rel role N|inf  ... at most N times?
///
/// `att` may be `inv:att` for the inverse term. `#` starts a comment;
/// blank and comment-only lines are skipped by the file-level parser.

/// Splits one line into whitespace-separated tokens, dropping everything
/// from the first token that starts with '#'. An empty result means the
/// line carries no query (blank or comment-only).
std::vector<std::string> TokenizeQueryLine(const std::string& line);

/// Parses one tokenized query, resolving names against the schema.
/// `tokens` must be non-empty.
Result<ImplicationQuery> ParseQueryTokens(
    const Schema& schema, const std::vector<std::string>& tokens);

/// Parses a whole query text (one query per line, '#' comments and blank
/// lines skipped). On success the queries are positionally aligned with
/// `normalized_lines` (when non-null): the i-th entry is the i-th query's
/// token text re-joined with single spaces. The first malformed line
/// fails the whole parse with its line's diagnostic.
Result<std::vector<ImplicationQuery>> ParseQueryText(
    const Schema& schema, std::string_view text,
    std::vector<std::string>* normalized_lines = nullptr);

}  // namespace car

#endif  // CAR_REASONER_QUERY_TEXT_H_
