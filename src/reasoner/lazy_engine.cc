#include "reasoner/lazy_engine.h"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include "expansion/expansion_delta.h"
#include "expansion/lazy_enum.h"
#include "semantics/certificate_check.h"
#include "semantics/witness_check.h"
#include "solver/incremental_psi.h"

namespace car {

namespace {

/// The dependency closure of the open targets under the analyzer's
/// depends_on adjacency — the classes whose streams the seed opens.
std::vector<ClassId> DependencyClosure(const SchemaAnalysis& analysis,
                                       const std::vector<ClassId>& roots) {
  std::vector<char> visited(analysis.depends_on.size(), 0);
  std::vector<ClassId> frontier = roots;
  for (ClassId c : roots) visited[c] = 1;
  while (!frontier.empty()) {
    ClassId c = frontier.back();
    frontier.pop_back();
    for (ClassId d : analysis.depends_on[c]) {
      if (visited[d]) continue;
      visited[d] = 1;
      frontier.push_back(d);
    }
  }
  std::vector<ClassId> closure;
  for (size_t c = 0; c < visited.size(); ++c) {
    if (visited[c]) closure.push_back(static_cast<ClassId>(c));
  }
  return closure;
}

/// Maps the solve's seed+delta indexing onto the canonically assembled
/// expansion and validates the result as a semantic witness. Any mapping
/// mismatch (a compound/attribute/relation of one side missing from the
/// other) is itself a spurious witness: the delta-grown artifacts must
/// agree exactly with a from-scratch assembly of the same compound set.
bool ValidateAsWitness(const Schema& schema, const Expansion& canonical,
                       const std::vector<const CompoundClass*>& global_cc,
                       const std::vector<const CompoundAttribute*>& global_ca,
                       const std::vector<const CompoundRelation*>& global_cr,
                       const PartialPsiResult& partial) {
  const size_t total_cc = global_cc.size();
  if (canonical.compound_classes.size() != total_cc ||
      canonical.compound_attributes.size() != global_ca.size() ||
      canonical.compound_relations.size() != global_cr.size()) {
    return false;
  }
  std::vector<int> cc_map(total_cc, -1);
  for (size_t g = 0; g < total_cc; ++g) {
    int canon = canonical.IndexOfCompoundClass(*global_cc[g]);
    if (canon < 0) return false;
    cc_map[g] = canon;
  }

  PsiWitness witness;
  witness.cc_active.assign(total_cc, false);
  witness.cc_value.assign(total_cc, Rational());
  for (size_t g = 0; g < total_cc; ++g) {
    witness.cc_active[cc_map[g]] = partial.cc_active[g];
    witness.cc_value[cc_map[g]] = partial.cc_value[g];
  }

  std::map<std::tuple<AttributeId, int, int>, int> ca_index;
  for (size_t j = 0; j < canonical.compound_attributes.size(); ++j) {
    const CompoundAttribute& ca = canonical.compound_attributes[j];
    ca_index[{ca.attribute, ca.from, ca.to}] = static_cast<int>(j);
  }
  witness.ca_active.assign(global_ca.size(), false);
  witness.ca_value.assign(global_ca.size(), Rational());
  for (size_t j = 0; j < global_ca.size(); ++j) {
    const CompoundAttribute& ca = *global_ca[j];
    auto it = ca_index.find(
        {ca.attribute, cc_map[ca.from], cc_map[ca.to]});
    if (it == ca_index.end()) return false;
    witness.ca_active[it->second] = partial.ca_active[j];
    witness.ca_value[it->second] = partial.ca_value[j];
  }

  std::map<std::pair<RelationId, std::vector<int>>, int> cr_index;
  for (size_t j = 0; j < canonical.compound_relations.size(); ++j) {
    const CompoundRelation& cr = canonical.compound_relations[j];
    cr_index[{cr.relation, cr.components}] = static_cast<int>(j);
  }
  witness.cr_active.assign(global_cr.size(), false);
  witness.cr_value.assign(global_cr.size(), Rational());
  for (size_t j = 0; j < global_cr.size(); ++j) {
    const CompoundRelation& cr = *global_cr[j];
    std::vector<int> mapped;
    mapped.reserve(cr.components.size());
    for (int component : cr.components) mapped.push_back(cc_map[component]);
    auto it = cr_index.find({cr.relation, std::move(mapped)});
    if (it == cr_index.end()) return false;
    witness.cr_active[it->second] = partial.cr_active[j];
    witness.cr_value[it->second] = partial.cr_value[j];
  }

  return ValidatePsiWitness(schema, canonical, witness).valid;
}

/// A validated infeasibility certificate stored by stable row identity
/// (semantics/certificate_check), so it can be re-seated onto a later
/// round's re-indexed, larger probe system — the learned "blocking
/// constraint". The probe row has no PsiRowKey; its multiplier is kept
/// separately.
struct LearnedCertificate {
  std::map<PsiRowKey, Rational> multipliers;
  Rational probe_multiplier;
};

LearnedCertificate LearnCertificate(const Expansion& partial,
                                    const InfeasibilityCertificate& nu) {
  LearnedCertificate learned;
  std::vector<PsiRowKey> keys = PsiRowKeys(partial);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!nu.row_multipliers[i].is_zero()) {
      learned.multipliers.emplace(std::move(keys[i]), nu.row_multipliers[i]);
    }
  }
  learned.probe_multiplier = nu.row_multipliers.back();
  return learned;
}

/// Re-seats a learned certificate onto a new probe system over a grown
/// partial expansion: stored multipliers land on their rows by key, rows
/// the growth added get zero. The result may no longer be valid (newly
/// materialized columns can break the combined-coefficient condition),
/// so the caller re-validates exactly before reusing it — an invalid
/// re-seat just means this round pays the probe LP again.
InfeasibilityCertificate ReseatCertificate(const Expansion& partial,
                                           const LearnedCertificate& learned) {
  std::vector<PsiRowKey> keys = PsiRowKeys(partial);
  InfeasibilityCertificate nu;
  nu.row_multipliers.assign(keys.size() + 1, Rational());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto it = learned.multipliers.find(keys[i]);
    if (it != learned.multipliers.end()) nu.row_multipliers[i] = it->second;
  }
  nu.row_multipliers.back() = learned.probe_multiplier;
  return nu;
}

}  // namespace

Result<LazyOutcome> RunLazyExpansion(
    const Schema& schema, const std::vector<ClassId>& targets,
    const SchemaAnalysis* analysis, const ExpansionOptions& expansion_options,
    const PsiSolverOptions& solver_options,
    const LazyExpansionOptions& lazy_options) {
  // Mirror the eager path's first failure mode (BuildExpansion validates
  // too) so routing through the lazy engine never changes error statuses.
  CAR_RETURN_IF_ERROR(schema.Validate());

  LazyOutcome out;
  const int num_classes = schema.num_classes();
  out.class_satisfiable.assign(num_classes, false);
  if (expansion_options.strategy != ExpansionStrategy::kPruned) {
    return out;  // Inconclusive: only the pruned decision tree streams.
  }
  ExecContext* exec = expansion_options.exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));

  std::optional<SchemaAnalysis> local_analysis;
  if (analysis == nullptr) {
    AnalyzerOptions analyzer_options;
    analyzer_options.lint = false;
    local_analysis = AnalyzeSchema(schema, analyzer_options);
    analysis = &*local_analysis;
  }

  // Static certificates answer their targets outright (sound: a
  // certified class is unsatisfiable in every model, and the eager
  // reasoner agrees by the analyzer's soundness contract).
  std::vector<ClassId> open;
  for (ClassId c : targets) {
    if (analysis->class_unsat[c]) {
      out.class_satisfiable[c] = false;
    } else if (std::find(open.begin(), open.end(), c) == open.end()) {
      open.push_back(c);
    }
  }
  std::sort(open.begin(), open.end());
  if (open.empty()) {
    out.conclusive = true;
    return out;
  }

  const ExpansionPreamble preamble =
      BuildExpansionPreamble(schema, expansion_options);

  // One stream per class in the dependency closure of the open targets.
  // Certificate-driven refinement may open further streams later, so the
  // closure list grows with them.
  std::vector<std::unique_ptr<LazyCompoundStream>> stream_of(num_classes);
  std::vector<ClassId> closure = DependencyClosure(*analysis, open);
  for (ClassId c : closure) {
    const int cluster = preamble.partition.cluster_of[c];
    stream_of[c] = std::make_unique<LazyCompoundStream>(
        schema, preamble.tables, preamble.partition.clusters[cluster], c);
  }

  RefinementLedger ledger;
  auto advance = [&](ClassId c, size_t batch) -> Status {
    return stream_of[c]->Advance(batch, exec,
                                 [&](const CompoundClass& compound) {
                                   if (ledger.Add(compound) &&
                                       exec != nullptr) {
                                     exec->CountCompoundsMaterialized(1);
                                   }
                                 });
  };

  // --- Seed.
  for (ClassId c : closure) {
    CAR_RETURN_IF_ERROR(advance(c, lazy_options.batch_per_class));
  }
  // A target whose exhausted stream delivered nothing is contained in NO
  // compound of the full expansion: unsatisfiable, exactly as eager
  // would report it.
  open.erase(std::remove_if(open.begin(), open.end(),
                            [&](ClassId c) {
                              return stream_of[c]->exhausted() &&
                                     stream_of[c]->delivered() == 0;
                            }),
             open.end());
  ledger.SealRound();
  if (open.empty()) {
    out.conclusive = true;
    out.compounds_materialized = ledger.size();
    return out;
  }

  CAR_ASSIGN_OR_RETURN(
      Expansion seed,
      AssembleExpansion(schema, ledger.Compounds(), expansion_options));
  const size_t num_seed_cc = seed.compound_classes.size();
  std::set<std::vector<ClassId>> seed_members;
  for (const CompoundClass& compound : seed.compound_classes) {
    seed_members.insert(compound.members());
  }

  // The warm-start base: built on first contact with a constrained
  // compound; rounds of an all-unconstrained run (dense tautology
  // clusters) never pay an LP at all.
  std::optional<IncrementalPsiBase> psi_base;

  // UNSAT-side state: one learned blocking constraint per probed target,
  // and the predicate the closure checker (and probe gating) runs on —
  // "is every compound containing this class materialized?", i.e. the
  // class's pinned stream exists and is exhausted.
  std::map<ClassId, LearnedCertificate> learned_certificates;
  const std::function<bool(ClassId)> all_compounds_materialized =
      [&](ClassId c) {
        return c >= 0 && c < num_classes && stream_of[c] != nullptr &&
               stream_of[c]->exhausted();
      };

  for (size_t round = 0;; ++round) {
    CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));
    if (round > 0) {
      out.refinement_rounds = round;
      if (exec != nullptr) exec->CountRefinementRounds(1);
    }

    // Cumulative refinement delta against the frozen seed.
    ExpansionDelta delta;
    for (const CompoundClass& compound : ledger.Compounds()) {
      if (seed_members.count(compound.members()) == 0) {
        delta.new_compound_classes.push_back(compound);
      }
    }
    if (delta.HasNewCompounds()) {
      CAR_RETURN_IF_ERROR(
          PopulateDeltaExtensions(schema, seed, expansion_options, &delta));
    }

    std::vector<const CompoundClass*> global_cc;
    global_cc.reserve(num_seed_cc + delta.new_compound_classes.size());
    for (const CompoundClass& c : seed.compound_classes) {
      global_cc.push_back(&c);
    }
    for (const CompoundClass& c : delta.new_compound_classes) {
      global_cc.push_back(&c);
    }
    std::vector<const CompoundAttribute*> global_ca;
    for (const CompoundAttribute& a : seed.compound_attributes) {
      global_ca.push_back(&a);
    }
    for (const CompoundAttribute& a : delta.new_compound_attributes) {
      global_ca.push_back(&a);
    }
    std::vector<const CompoundRelation*> global_cr;
    for (const CompoundRelation& r : seed.compound_relations) {
      global_cr.push_back(&r);
    }
    for (const CompoundRelation& r : delta.new_compound_relations) {
      global_cr.push_back(&r);
    }

    PartialPsiResult partial;
    const bool any_constrained = !seed.natt.empty() || !seed.nrel.empty() ||
                                 !delta.new_natt.empty() ||
                                 !delta.new_nrel.empty();
    if (!any_constrained) {
      // Every unknown occurs in no disequation: all active, trivially.
      partial.cc_active.assign(global_cc.size(), true);
      partial.cc_value.assign(global_cc.size(), Rational());
      partial.ca_active.assign(global_ca.size(), true);
      partial.ca_value.assign(global_ca.size(), Rational());
      partial.cr_active.assign(global_cr.size(), true);
      partial.cr_value.assign(global_cr.size(), Rational());
    } else {
      if (!psi_base.has_value()) {
        CAR_ASSIGN_OR_RETURN(psi_base,
                             PrepareIncrementalPsi(seed, solver_options));
        ++out.lp_solves;
      }
      CAR_ASSIGN_OR_RETURN(
          partial, SolvePsiOverDelta(seed, *psi_base, delta, solver_options));
      out.lp_solves += partial.lp_solves;
      out.fixpoint_rounds += partial.fixpoint_rounds;
    }

    // Coverage: a target contained in an active compound of the partial
    // expansion is satisfiable in the full schema (partial solutions
    // zero-extend to full ones). Re-checked from scratch every round —
    // coverage is monotone in theory, so a regression would mean a
    // solver defect, and the concluding witness validation still guards
    // the final answer.
    std::vector<ClassId> uncovered;
    for (ClassId c : open) {
      bool covered = false;
      for (size_t i = 0; i < global_cc.size() && !covered; ++i) {
        covered = partial.cc_active[i] && global_cc[i]->Contains(c);
      }
      if (!covered) uncovered.push_back(c);
    }

    // --- UNSAT-side probes (DESIGN.md §5j). An uncovered target whose
    // own stream is exhausted can never be covered by refinement alone,
    // so ask the opposite question: is the raw partial system plus
    // "Σ Var(C̄ ∋ target) >= 1" already infeasible? The Farkas
    // certificate of an infeasible probe — validated exactly, learned as
    // a blocking constraint, re-seated in later rounds before paying
    // another LP — concludes UNSAT when its dual zero-extension is
    // closed under the absent columns; otherwise its violating classes
    // become this round's materialization hints. Gating on exhaustion
    // keeps satisfiable dense runs at zero probe cost (their target
    // streams never exhaust) and is itself the first closure condition.
    std::vector<ClassId> certificate_hints;
    if (lazy_options.unsat_probes && !uncovered.empty()) {
      std::vector<ClassId> eligible;
      for (ClassId c : uncovered) {
        if (all_compounds_materialized(c)) eligible.push_back(c);
      }
      if (!eligible.empty()) {
        CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));
        CAR_ASSIGN_OR_RETURN(
            Expansion partial_expansion,
            AssembleExpansion(schema, ledger.Compounds(), expansion_options));
        std::vector<ClassId> concluded;
        for (ClassId c : eligible) {
          CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));
          UnsatProbe probe = BuildUnsatProbe(partial_expansion, c);
          const InfeasibilityCertificate* certificate = nullptr;
          InfeasibilityCertificate reseated;
          auto learned_it = learned_certificates.find(c);
          if (learned_it != learned_certificates.end()) {
            reseated = ReseatCertificate(partial_expansion,
                                         learned_it->second);
            if (ValidateInfeasibilityCertificate(probe.psi.system,
                                                 reseated)) {
              certificate = &reseated;
            }
          }
          std::optional<LpResult> lp;
          if (certificate == nullptr) {
            CAR_ASSIGN_OR_RETURN(lp,
                                 SolveUnsatProbe(probe, solver_options));
            ++out.lp_solves;
            if (lp->outcome != LpOutcome::kInfeasible) continue;
            if (!lp->infeasibility_certificate.has_value() ||
                !ValidateInfeasibilityCertificate(
                    probe.psi.system, *lp->infeasibility_certificate)) {
              // Extraction defect: never conclude from an unvalidated
              // certificate — this target degrades to the eager path.
              continue;
            }
            certificate = &*lp->infeasibility_certificate;
            learned_certificates[c] =
                LearnCertificate(partial_expansion, *certificate);
            ++out.blocking_constraints;
            if (exec != nullptr) exec->CountBlockingConstraints(1);
          }
          CertificateClosureResult closure_check = CheckCertificateClosure(
              schema, partial_expansion, c, *certificate,
              all_compounds_materialized);
          if (closure_check.closed) {
            // Sound lazy UNSAT: out.class_satisfiable[c] stays false.
            ++out.certificate_closures;
            if (exec != nullptr) exec->CountCertificateClosures(1);
            concluded.push_back(c);
          } else {
            certificate_hints.insert(certificate_hints.end(),
                                     closure_check.refinement_hints.begin(),
                                     closure_check.refinement_hints.end());
          }
        }
        auto is_concluded = [&](ClassId c) {
          return std::find(concluded.begin(), concluded.end(), c) !=
                 concluded.end();
        };
        open.erase(std::remove_if(open.begin(), open.end(), is_concluded),
                   open.end());
        uncovered.erase(
            std::remove_if(uncovered.begin(), uncovered.end(), is_concluded),
            uncovered.end());
        if (open.empty()) {
          out.conclusive = true;
          out.compounds_materialized = ledger.size();
          out.compound_attributes = global_ca.size();
          out.compound_relations = global_cr.size();
          return out;
        }
      }
    }

    if (uncovered.empty()) {
      if (lazy_options.validate_witness) {
        CAR_ASSIGN_OR_RETURN(
            Expansion canonical,
            AssembleExpansion(schema, ledger.Compounds(),
                              expansion_options));
        if (!ValidateAsWitness(schema, canonical, global_cc, global_ca,
                               global_cr, partial)) {
          out.spurious_witness = true;
          if (exec != nullptr) exec->CountSpuriousWitnesses(1);
          return out;  // Inconclusive: the eager fallback answers.
        }
      }
      for (ClassId c : open) out.class_satisfiable[c] = true;
      out.conclusive = true;
      out.compounds_materialized = ledger.size();
      out.compound_attributes = global_ca.size();
      out.compound_relations = global_cr.size();
      return out;
    }

    // Refine or give up.
    if (round + 1 >= lazy_options.max_rounds ||
        ledger.size() >= lazy_options.max_materialized) {
      out.compounds_materialized = ledger.size();
      return out;  // Inconclusive.
    }
    const size_t ledger_before = ledger.size();
    size_t delivered_before = 0;
    size_t delivered_after = 0;
    for (ClassId c : closure) delivered_before += stream_of[c]->delivered();
    for (ClassId c : uncovered) {
      CAR_RETURN_IF_ERROR(advance(c, lazy_options.batch_per_class));
      for (ClassId d : analysis->depends_on[c]) {
        if (stream_of[d] != nullptr) {
          CAR_RETURN_IF_ERROR(advance(d, lazy_options.batch_per_class));
        }
      }
    }
    // Adaptive refinement: the violating classes of non-closed
    // certificates drive materialization directly, opening streams the
    // dependency closure never reached when necessary — the next round's
    // probe system gains exactly the columns that broke the closure.
    std::sort(certificate_hints.begin(), certificate_hints.end());
    certificate_hints.erase(
        std::unique(certificate_hints.begin(), certificate_hints.end()),
        certificate_hints.end());
    for (ClassId h : certificate_hints) {
      if (h < 0 || h >= num_classes) continue;
      if (stream_of[h] == nullptr) {
        const int cluster = preamble.partition.cluster_of[h];
        stream_of[h] = std::make_unique<LazyCompoundStream>(
            schema, preamble.tables, preamble.partition.clusters[cluster], h);
        closure.push_back(h);
      }
      CAR_RETURN_IF_ERROR(advance(h, lazy_options.batch_per_class));
    }
    for (ClassId c : closure) delivered_after += stream_of[c]->delivered();
    if (ledger.size() == ledger_before &&
        delivered_after == delivered_before) {
      // Every relevant stream is exhausted: the partial expansion cannot
      // grow towards the uncovered targets. Inconclusive — an uncovered
      // target here is NOT provably unsatisfiable (compounds outside the
      // materialized set could still lend support in the full system).
      out.compounds_materialized = ledger.size();
      return out;
    }
    ledger.SealRound();
  }
}

}  // namespace car
