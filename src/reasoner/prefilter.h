#ifndef CAR_REASONER_PREFILTER_H_
#define CAR_REASONER_PREFILTER_H_

#include <optional>

#include "analysis/analyzer.h"
#include "model/schema.h"
#include "reasoner/reasoner.h"

namespace car {

/// Tier-0 of the implication answerer: a pure table lookup on the
/// static analysis (propagated inclusion/disjointness closure, inherited
/// cardinality intervals, statically-certified-empty classes) that
/// answers a query without touching the expansion or the simplex.
///
/// Returns a value only when a sound certificate exists; nullopt means
/// "fall through to the next tier", never "false". Because every
/// certificate is a consequence of the schema that holds in all models,
/// a returned answer is bit-identical to the full reasoner's — the
/// differential suite enforces this.
///
/// Error transparency: the full path validates ids by building the
/// auxiliary schema; this tier only answers when every id the full path
/// would validate is in range (and, for participation kinds, the
/// relation is defined and the role belongs to it), so queries that
/// would error always fall through and surface the identical status.
/// Note the asymmetric kIsa rule: the full path checks clauses
/// sequentially and can error on a malformed later clause only after
/// refuting an earlier one, so tier-0 requires *every* literal of
/// *every* clause to be in range before certifying.
std::optional<bool> ClosurePrefilterAnswer(const Schema& schema,
                                           const SchemaAnalysis& analysis,
                                           const ImplicationQuery& query);

}  // namespace car

#endif  // CAR_REASONER_PREFILTER_H_
