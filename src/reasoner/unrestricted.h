#ifndef CAR_REASONER_UNRESTRICTED_H_
#define CAR_REASONER_UNRESTRICTED_H_

#include <vector>

#include "base/result.h"
#include "expansion/expansion.h"

namespace car {

/// Result of class satisfiability over *unrestricted* interpretations
/// (finite or infinite universes).
struct UnrestrictedResult {
  std::vector<bool> class_satisfiable;
  /// Per compound class: did it survive type elimination?
  std::vector<bool> cc_surviving;
  size_t elimination_rounds = 0;

  bool IsClassSatisfiable(ClassId class_id) const {
    return class_id >= 0 &&
           class_id < static_cast<int>(class_satisfiable.size()) &&
           class_satisfiable[class_id];
  }
};

/// Decides class satisfiability when interpretations are allowed to be
/// infinite — the knowledge-representation notion the paper contrasts
/// with its database (finite-model) semantics ("the knowledge
/// representation community does not restrict the reasoning process to
/// finite structures", Section 1).
///
/// Method: type elimination over the expansion's consistent compound
/// classes. A compound class survives iff all its local obligations are
/// witnessable by surviving types:
///   * every Natt interval is nonempty;
///   * every attribute term with a positive minimum has some surviving
///     target compound class forming a consistent compound attribute
///     whose opposite-side cardinality admits at least one link;
///   * every Nrel interval is nonempty, and every participation with a
///     positive minimum has a consistent compound relation over surviving
///     components each of which admits at least one tuple at its role.
/// Fresh witness objects can always be spawned in an infinite model (the
/// standard unravelling/tree-model argument), so no global counting is
/// needed — which is exactly why this semantics misses the finite-model
/// effects: compare with SolvePsi on the same expansion.
///
/// For every schema, finite satisfiability implies unrestricted
/// satisfiability (every database state is an interpretation); the
/// converse fails, e.g. for schemas like FiniteOnlyUnsat in the tests.
Result<UnrestrictedResult> CheckUnrestrictedSatisfiability(
    const Expansion& expansion);

}  // namespace car

#endif  // CAR_REASONER_UNRESTRICTED_H_
