#include "reasoner/incremental.h"

#include <algorithm>
#include <set>
#include <utility>

#include "analysis/subschema.h"
#include "base/hashing.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "frontend/printer.h"
#include "persist/snapshot_format.h"
#include "reasoner/prefilter.h"
#include "solver/solve.h"

namespace car {

namespace {

/// Atomic max for the peak-tableau counters: probes run concurrently and
/// each folds its own per-probe maximum into the session's.
void MaxRelaxed(std::atomic<uint64_t>* counter, uint64_t value) {
  uint64_t current = counter->load(std::memory_order_relaxed);
  while (current < value && !counter->compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

/// The bound-shape shortcuts the from-scratch Implies* methods answer
/// before building anything. Mirrors their validation order exactly:
/// a minimum of 0 is true even for an out-of-range attribute (the
/// from-scratch path returns before validating), while an infinite
/// maximum cardinality is only a shortcut when the attribute id is
/// valid (the from-scratch path validates first).
std::optional<bool> TrivialAnswer(const Schema& schema,
                                  const ImplicationQuery& query) {
  switch (query.kind) {
    case ImplicationQuery::Kind::kMinCardinality:
    case ImplicationQuery::Kind::kMinParticipation:
      if (query.bound == 0) return true;
      return std::nullopt;
    case ImplicationQuery::Kind::kMaxCardinality:
      if (query.term.attribute >= 0 &&
          query.term.attribute < schema.num_attributes() &&
          query.bound == Cardinality::kInfinity) {
        return true;
      }
      return std::nullopt;
    case ImplicationQuery::Kind::kMaxParticipation:
      if (query.bound == Cardinality::kInfinity) return true;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace

IncrementalSession::IncrementalSession(const Schema* schema,
                                       ReasonerOptions options)
    : schema_(schema), options_(std::move(options)) {
  CAR_CHECK(schema != nullptr);
  if (options_.num_threads != 1) {
    options_.expansion.num_threads = options_.num_threads;
    options_.solver.num_threads = options_.num_threads;
  }
  if (options_.exec != nullptr) {
    options_.expansion.exec = options_.exec;
    options_.solver.exec = options_.exec;
  }
}

std::string IncrementalSession::CanonicalQueryKey(
    const ImplicationQuery& query) {
  switch (query.kind) {
    case ImplicationQuery::Kind::kIsa: {
      // C ⊑ F is a conjunction of clause checks, each a disjunction of
      // literals: both levels are order- and duplication-insensitive.
      std::set<std::string> clauses;
      for (const ClassClause& clause : query.formula.clauses()) {
        std::set<std::string> literals;
        for (const ClassLiteral& literal : clause.literals()) {
          literals.insert(
              StrCat(literal.negated ? "-" : "+", literal.class_id));
        }
        std::string text;
        for (const std::string& entry : literals) {
          if (!text.empty()) text += ",";
          text += entry;
        }
        clauses.insert(std::move(text));
      }
      std::string key = StrCat("isa|", query.class_id, "|");
      for (const std::string& clause : clauses) {
        key += clause;
        key += ";";
      }
      return key;
    }
    case ImplicationQuery::Kind::kDisjoint: {
      // Disjointness is symmetric (answer and error behavior alike).
      ClassId a = std::min(query.class_id, query.other);
      ClassId b = std::max(query.class_id, query.other);
      return StrCat("dis|", a, "|", b);
    }
    case ImplicationQuery::Kind::kMinCardinality:
      return StrCat("minc|", query.class_id, "|",
                    query.term.inverse ? "~" : "", query.term.attribute, "|",
                    query.bound);
    case ImplicationQuery::Kind::kMaxCardinality:
      return StrCat("maxc|", query.class_id, "|",
                    query.term.inverse ? "~" : "", query.term.attribute, "|",
                    query.bound);
    case ImplicationQuery::Kind::kMinParticipation:
      return StrCat("minp|", query.class_id, "|", query.relation, "|",
                    query.role, "|", query.bound);
    case ImplicationQuery::Kind::kMaxParticipation:
      return StrCat("maxp|", query.class_id, "|", query.relation, "|",
                    query.role, "|", query.bound);
  }
  return "invalid";
}

Status IncrementalSession::EnsureBase() {
  uint64_t fingerprint = Fnv1a64(PrintSchema(*schema_));
  if (base_ready_ && fingerprint == fingerprint_) return Status::Ok();
  // The schema changed under the session (or this is the first call):
  // every memoized answer and the frozen base state are stale.
  base_ready_ = false;
  base_solved_.store(false, std::memory_order_release);
  memo_.clear();
  base_expansion_.reset();
  analysis_.reset();
  psi_base_.reset();
  schema_analysis_.reset();
  if (options_.lazy_expansion) {
    // Lazy session: defer the (possibly exponential) full expansion and
    // snapshot solve to EnsureSolvedBase — a probe that the lazy engine
    // answers conclusively never pays for them. The analyzer's validity
    // precondition is established explicitly here, since BuildExpansion
    // no longer runs first.
    CAR_RETURN_IF_ERROR(schema_->Validate());
  } else {
    CAR_RETURN_IF_ERROR(EnsureSolvedBaseLocked());
  }
  if (options_.prefilter) {
    // The prefilter tiers' artifact: propagated closure tables, unsat
    // flags and the dependency adjacency. Lint messages are skipped —
    // only the structure is needed here. The schema is validated by this
    // point on both branches above.
    AnalyzerOptions analyzer_options;
    analyzer_options.lint = false;
    schema_analysis_ = AnalyzeSchema(*schema_, analyzer_options);
  }
  fingerprint_ = fingerprint;
  base_ready_ = true;
  return Status::Ok();
}

Status IncrementalSession::EnsureSolvedBase() {
  if (base_solved_.load(std::memory_order_acquire)) return Status::Ok();
  // Double-checked: lazy probe workers race here when the delta path is
  // first needed; exactly one pays the build.
  std::lock_guard<std::mutex> lock(base_build_mutex_);
  if (base_solved_.load(std::memory_order_acquire)) return Status::Ok();
  return EnsureSolvedBaseLocked();
}

Status IncrementalSession::EnsureSolvedBaseLocked() {
  CAR_ASSIGN_OR_RETURN(Expansion expansion,
                       BuildExpansion(*schema_, options_.expansion));
  Result<ExpansionBaseAnalysis> analysis =
      AnalyzeBaseExpansion(*schema_, expansion, options_.expansion);
  if (analysis.ok()) {
    CAR_ASSIGN_OR_RETURN(IncrementalPsiBase psi_base,
                         PrepareIncrementalPsi(expansion, options_.solver));
    scalar_promotions_.fetch_add(psi_base.base_scalar_promotions,
                                 std::memory_order_relaxed);
    MaxRelaxed(&peak_tableau_nonzeros_, psi_base.base_tableau_nonzeros);
    MaxRelaxed(&peak_tableau_cells_, psi_base.base_tableau_cells);
    analysis_ = std::move(analysis.value());
    psi_base_ = std::move(psi_base);
  } else if (analysis.status().code() != StatusCode::kFailedPrecondition) {
    return analysis.status();
  }
  // kFailedPrecondition (e.g. the exhaustive strategy): the session still
  // works, every probe just takes the from-scratch fallback.
  base_expansion_ = std::move(expansion);
  ++base_builds_;
  // Publishes base_expansion_/analysis_/psi_base_ to racing readers in
  // EnsureSolvedBase's fast path.
  base_solved_.store(true, std::memory_order_release);
  return Status::Ok();
}

Result<bool> IncrementalSession::AuxSatisfiable(
    const ClassFormula& isa, const std::vector<AttributeSpec>& attributes,
    const std::vector<ParticipationSpec>& participations) {
  // Identical auxiliary-schema construction to the from-scratch
  // reasoner, so validation errors (bad ids in specs or formulas) are
  // byte-identical.
  Schema extended = *schema_;
  std::string name = "__car_query";
  int suffix = 0;
  while (extended.LookupClass(name) != kInvalidId) {
    name = StrCat("__car_query_", ++suffix);
  }
  ClassId aux = extended.InternClass(name);
  ClassDefinition* definition = extended.mutable_class_definition(aux);
  definition->isa = isa;
  definition->attributes = attributes;
  definition->participations = participations;
  CAR_RETURN_IF_ERROR(extended.Validate());

  probes_.fetch_add(1, std::memory_order_relaxed);
  // Tier-2: when the probe's dependency closure covers at most a quarter
  // of the schema, solve it exactly on the projected sub-schema instead
  // of delta-extending the full base. Sound and exact (subschema.h), so
  // the answer is bit-identical; the decision depends only on the query
  // and the base schema, so it is deterministic across thread counts.
  // The quarter threshold keeps the cold sub-solve competitive with a
  // warm-started delta: the sub-expansion must be much smaller than the
  // base for redoing its fixpoint from scratch to win (EXP-Q measures
  // this crossover; at one half the tier loses on small schemas).
  if (schema_analysis_.has_value()) {
    SubSchemaRequest request;
    request.seed_classes.push_back(aux);
    request.max_classes = static_cast<size_t>(extended.num_classes()) / 4;
    std::optional<SubSchema> sub =
        BuildSubSchema(extended, schema_analysis_->depends_on, request);
    if (sub.has_value() && sub->schema.Validate().ok()) {
      cluster_local_.fetch_add(1, std::memory_order_relaxed);
      if (options_.exec != nullptr) {
        options_.exec->CountClusterLocalSolves(1);
      }
      CAR_ASSIGN_OR_RETURN(Expansion sub_expansion,
                           BuildExpansion(sub->schema, options_.expansion));
      CAR_ASSIGN_OR_RETURN(PsiSolution sub_solution,
                           SolvePsi(sub_expansion, options_.solver));
      return sub_solution.IsClassSatisfiable(sub->class_map[aux]);
    }
  }
  if (options_.lazy_expansion) {
    // Lazy probe: try to decide the auxiliary class over a small
    // materialized subset before touching — or, in a deferred session,
    // even building — the full base expansion. Conclusive answers are
    // bit-identical to the eager path by the lazy engine's contract.
    CAR_ASSIGN_OR_RETURN(
        LazyOutcome lazy,
        RunLazyExpansion(extended, {aux}, /*analysis=*/nullptr,
                         options_.expansion, options_.solver, options_.lazy));
    lazy_refinement_rounds_.fetch_add(lazy.refinement_rounds,
                                      std::memory_order_relaxed);
    lazy_compounds_materialized_.fetch_add(lazy.compounds_materialized,
                                           std::memory_order_relaxed);
    lazy_blocking_constraints_.fetch_add(lazy.blocking_constraints,
                                         std::memory_order_relaxed);
    lazy_certificate_closures_.fetch_add(lazy.certificate_closures,
                                         std::memory_order_relaxed);
    if (lazy.spurious_witness) {
      spurious_witnesses_.fetch_add(1, std::memory_order_relaxed);
    }
    if (lazy.conclusive) {
      lazy_hits_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<bool>(lazy.class_satisfiable[aux]);
    }
    // Inconclusive: fall through to the warm-start ladder, which needs
    // the solved base a lazy session has deferred until now.
    CAR_RETURN_IF_ERROR(EnsureSolvedBase());
  }
  if (analysis_.has_value()) {
    Result<ExpansionDelta> delta = ExtendExpansionWithAuxClass(
        extended, aux, *base_expansion_, *analysis_, options_.expansion);
    if (delta.ok()) {
      clusters_reused_.fetch_add(delta.value().clusters_reused,
                                 std::memory_order_relaxed);
      clusters_reenumerated_.fetch_add(delta.value().clusters_reenumerated,
                                       std::memory_order_relaxed);
      CAR_ASSIGN_OR_RETURN(
          IncrementalProbeResult probe,
          SolvePsiIncremental(*base_expansion_, *psi_base_, delta.value(),
                              aux, options_.solver));
      warm_starts_.fetch_add(probe.lp_solves, std::memory_order_relaxed);
      scalar_promotions_.fetch_add(probe.scalar_promotions,
                                   std::memory_order_relaxed);
      MaxRelaxed(&peak_tableau_nonzeros_, probe.peak_tableau_nonzeros);
      MaxRelaxed(&peak_tableau_cells_, probe.peak_tableau_cells);
      return probe.aux_satisfiable;
    }
    // Governor trips and genuine failures propagate; only the explicit
    // "cannot establish the base-prefix property" verdict falls back.
    if (delta.status().code() != StatusCode::kFailedPrecondition) {
      return delta.status();
    }
  }
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  CAR_ASSIGN_OR_RETURN(Expansion expansion,
                       BuildExpansion(extended, options_.expansion));
  CAR_ASSIGN_OR_RETURN(PsiSolution solution,
                       SolvePsi(expansion, options_.solver));
  return solution.IsClassSatisfiable(aux);
}

Result<bool> IncrementalSession::QueryUncached(const ImplicationQuery& query) {
  // Mirrors Reasoner::Implies* decision-for-decision (validation order
  // included) with AuxSatisfiable swapped for the incremental probe.
  switch (query.kind) {
    case ImplicationQuery::Kind::kIsa: {
      if (query.class_id < 0 || query.class_id >= schema_->num_classes()) {
        return NotFound(StrCat("class id ", query.class_id, " out of range"));
      }
      for (const ClassClause& clause : query.formula.clauses()) {
        ClassFormula auxiliary_isa = ClassFormula::OfClass(query.class_id);
        for (const ClassLiteral& literal : clause.literals()) {
          auxiliary_isa.AddClause(ClassClause::Of(literal.Complement()));
        }
        CAR_ASSIGN_OR_RETURN(bool satisfiable,
                             AuxSatisfiable(auxiliary_isa, {}, {}));
        if (satisfiable) return false;
      }
      return true;
    }
    case ImplicationQuery::Kind::kDisjoint: {
      if (query.class_id < 0 || query.class_id >= schema_->num_classes() ||
          query.other < 0 || query.other >= schema_->num_classes()) {
        return NotFound("class id out of range");
      }
      ClassFormula both = ClassFormula::OfClass(query.class_id);
      both.AndWith(ClassFormula::OfClass(query.other));
      CAR_ASSIGN_OR_RETURN(bool satisfiable, AuxSatisfiable(both, {}, {}));
      return !satisfiable;
    }
    case ImplicationQuery::Kind::kMinCardinality: {
      if (query.bound == 0) return true;
      if (query.term.attribute < 0 ||
          query.term.attribute >= schema_->num_attributes()) {
        return NotFound(
            StrCat("attribute id ", query.term.attribute, " out of range"));
      }
      AttributeSpec spec;
      spec.term = query.term;
      spec.cardinality = Cardinality(0, query.bound - 1);
      spec.range = ClassFormula::True();
      CAR_ASSIGN_OR_RETURN(
          bool satisfiable,
          AuxSatisfiable(ClassFormula::OfClass(query.class_id), {spec}, {}));
      return !satisfiable;
    }
    case ImplicationQuery::Kind::kMaxCardinality: {
      if (query.term.attribute < 0 ||
          query.term.attribute >= schema_->num_attributes()) {
        return NotFound(
            StrCat("attribute id ", query.term.attribute, " out of range"));
      }
      if (query.bound == Cardinality::kInfinity) return true;
      AttributeSpec spec;
      spec.term = query.term;
      spec.cardinality = Cardinality::AtLeast(query.bound + 1);
      spec.range = ClassFormula::True();
      CAR_ASSIGN_OR_RETURN(
          bool satisfiable,
          AuxSatisfiable(ClassFormula::OfClass(query.class_id), {spec}, {}));
      return !satisfiable;
    }
    case ImplicationQuery::Kind::kMinParticipation: {
      if (query.bound == 0) return true;
      ParticipationSpec spec;
      spec.relation = query.relation;
      spec.role = query.role;
      spec.cardinality = Cardinality(0, query.bound - 1);
      CAR_ASSIGN_OR_RETURN(
          bool satisfiable,
          AuxSatisfiable(ClassFormula::OfClass(query.class_id), {}, {spec}));
      return !satisfiable;
    }
    case ImplicationQuery::Kind::kMaxParticipation: {
      if (query.bound == Cardinality::kInfinity) return true;
      ParticipationSpec spec;
      spec.relation = query.relation;
      spec.role = query.role;
      spec.cardinality = Cardinality::AtLeast(query.bound + 1);
      CAR_ASSIGN_OR_RETURN(
          bool satisfiable,
          AuxSatisfiable(ClassFormula::OfClass(query.class_id), {}, {spec}));
      return !satisfiable;
    }
  }
  return Internal("unknown implication query kind");
}

Result<std::vector<bool>> IncrementalSession::RunImplicationBatch(
    const std::vector<ImplicationQuery>& queries) {
  ExecContext* exec = options_.exec;
  Status base = EnsureBase();
  if (!base.ok()) {
    // Match the from-scratch batch: a trip anywhere in the batch is
    // reported in the batch's own phase, independent of scheduling.
    if (exec != nullptr && exec->tripped()) {
      exec->OverridePhaseOnTrip("implication");
    }
    return base;
  }

  // Serial resolve pass: bound-shape shortcuts, memo hits, and
  // deduplication of the remaining queries by canonical key.
  struct Slot {
    bool resolved = false;
    bool answer = false;
    int unique_index = -1;
  };
  std::vector<Slot> slots(queries.size());
  std::vector<const ImplicationQuery*> unique;
  std::vector<std::string> unique_keys;
  std::map<std::string, int> key_to_unique;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::optional<bool> trivial = TrivialAnswer(*schema_, queries[i])) {
      slots[i].resolved = true;
      slots[i].answer = *trivial;
      ++trivial_;
      if (exec != nullptr) exec->CountQueries(1);
      continue;
    }
    std::string key = CanonicalQueryKey(queries[i]);
    if (auto hit = memo_.find(key); hit != memo_.end()) {
      slots[i].resolved = true;
      slots[i].answer = hit->second;
      ++memo_hits_;
      if (exec != nullptr) {
        exec->CountMemoHits(1);
        exec->CountQueries(1);
      }
      continue;
    }
    // Tier-0: sound certificate lookup on the static closure, the first
    // time a query shape is seen; the answer is memoized so repeats stay
    // plain memo hits. Declines (nullopt) fall through to the solver;
    // queries the full path would reject always decline, so error
    // statuses stay identical.
    if (schema_analysis_.has_value()) {
      if (std::optional<bool> certified = ClosurePrefilterAnswer(
              *schema_, *schema_analysis_, queries[i])) {
        slots[i].resolved = true;
        slots[i].answer = *certified;
        ++closure_hits_;
        memo_.emplace(std::move(key), *certified);
        if (exec != nullptr) {
          exec->CountPrefilterHits(1);
          exec->CountQueries(1);
        }
        continue;
      }
    }
    ++memo_misses_;
    if (exec != nullptr) exec->CountMemoMisses(1);
    auto [entry, inserted] = key_to_unique.emplace(
        std::move(key), static_cast<int>(unique.size()));
    if (inserted) {
      unique.push_back(&queries[i]);
      unique_keys.push_back(entry->first);
    }
    slots[i].unique_index = entry->second;
  }

  // Parallel evaluation of the deduplicated misses; per-slot outcomes
  // keep the result order-insensitive, like the from-scratch batch.
  std::vector<Result<bool>> outcomes(unique.size(), Result<bool>(false));
  if (!unique.empty()) {
    ParallelForOptions parallel;
    parallel.num_threads = options_.num_threads;
    parallel.cancel = exec;
    ParallelFor(unique.size(), parallel,
                [this, exec, &unique, &outcomes](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    Status charge = GovChargeWork(exec, 1, "implication");
                    if (!charge.ok()) {
                      outcomes[i] = std::move(charge);
                      return;
                    }
                    outcomes[i] = QueryUncached(*unique[i]);
                    if (exec != nullptr) exec->CountQueries(1);
                  }
                });
    if (exec != nullptr && exec->tripped()) {
      exec->OverridePhaseOnTrip("implication");
    }
    // Skipped chunks leave default-false slots; surface the trip.
    CAR_RETURN_IF_ERROR(GovCheck(exec, "implication"));
  }

  // First error in ORIGINAL query order, matching the from-scratch
  // batch; duplicates share their unique execution's error.
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!slots[i].resolved) {
      CAR_RETURN_IF_ERROR(outcomes[slots[i].unique_index].status());
    }
  }
  // Only successful answers are memoized; a tripped or failed batch
  // recomputes everything next time.
  for (size_t u = 0; u < unique.size(); ++u) {
    memo_.emplace(unique_keys[u], outcomes[u].value());
  }
  queries_ += queries.size();
  std::vector<bool> answers;
  answers.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    answers.push_back(slots[i].resolved
                          ? slots[i].answer
                          : outcomes[slots[i].unique_index].value());
  }
  return answers;
}

Result<bool> IncrementalSession::RunImplicationQuery(
    const ImplicationQuery& query) {
  std::vector<ImplicationQuery> one(1, query);
  CAR_ASSIGN_OR_RETURN(std::vector<bool> answers, RunImplicationBatch(one));
  CAR_CHECK_EQ(answers.size(), size_t{1});
  return static_cast<bool>(answers[0]);
}

void IncrementalSession::set_exec(ExecContext* exec) {
  // Mirrors the constructor's propagation: the expansion and solver
  // stages each read their own exec pointer.
  options_.exec = exec;
  options_.expansion.exec = exec;
  options_.solver.exec = exec;
}

uint64_t IncrementalSession::EstimatedMemoryBytes() const {
  // Order-of-magnitude per-component costs. Exact accounting is neither
  // possible (allocator overhead, node-based containers) nor needed:
  // eviction only ranks warm sessions against each other, so the
  // estimate just has to be deterministic and monotone in the real
  // footprint.
  constexpr uint64_t kPerCompoundClass = 64;
  constexpr uint64_t kPerCompoundEdge = 48;
  constexpr uint64_t kPerTableauNonzero = 24;
  constexpr uint64_t kPerMemoEntry = 48;
  constexpr uint64_t kPerSchemaClass = 96;

  uint64_t bytes = sizeof(*this);
  bytes += static_cast<uint64_t>(schema_->num_classes()) * kPerSchemaClass;
  if (base_expansion_.has_value()) {
    bytes += base_expansion_->compound_classes.size() * kPerCompoundClass;
    bytes +=
        base_expansion_->compound_attributes.size() * kPerCompoundEdge;
    bytes += base_expansion_->compound_relations.size() * kPerCompoundEdge;
  }
  if (psi_base_.has_value()) {
    bytes += psi_base_->base_tableau_nonzeros * kPerTableauNonzero;
  }
  for (const auto& [key, answer] : memo_) {
    (void)answer;
    bytes += key.size() + kPerMemoEntry;
  }
  return bytes;
}

bool IncrementalSession::SnapshotEligible() const {
  return !options_.lazy_expansion ||
         base_solved_.load(std::memory_order_acquire);
}

Result<std::string> IncrementalSession::Serialize() {
  CAR_RETURN_IF_ERROR(EnsureBase());
  if (!SnapshotEligible()) {
    // A lazy session mid-refinement (or one that never needed the full
    // base) holds only a partial materialization. Serializing would
    // require paying the full eager build this session existed to avoid,
    // and silently spilling the partial state as if it were the full
    // warm base would poison every future restore. Decline; the caller
    // (e.g. the serving cache) skips the spill.
    return FailedPrecondition(
        "snapshot-ineligible: lazy session has not built the full base "
        "expansion");
  }
  persist::WarmSnapshot snapshot;
  snapshot.header.format_version = persist::kSnapshotFormatVersion;
  snapshot.header.abi_fingerprint = persist::SnapshotAbiFingerprint();
  snapshot.header.schema_fingerprint = fingerprint_;
  snapshot.header.num_classes =
      static_cast<uint32_t>(schema_->num_classes());
  snapshot.header.num_attributes =
      static_cast<uint32_t>(schema_->num_attributes());
  snapshot.header.num_relations =
      static_cast<uint32_t>(schema_->num_relations());
  snapshot.expansion = *base_expansion_;
  if (psi_base_.has_value()) {
    snapshot.has_psi = true;
    snapshot.psi_snapshot = psi_base_->snapshot;
    snapshot.base_pivots = psi_base_->base_pivots;
    snapshot.base_scalar_promotions = psi_base_->base_scalar_promotions;
    snapshot.base_tableau_nonzeros = psi_base_->base_tableau_nonzeros;
    snapshot.base_tableau_cells = psi_base_->base_tableau_cells;
  }
  snapshot.memo = memo_;
  return persist::EncodeSnapshot(snapshot);
}

Status IncrementalSession::Deserialize(std::string_view bytes) {
  CAR_ASSIGN_OR_RETURN(persist::WarmSnapshot snapshot,
                       persist::DecodeSnapshot(bytes));
  // The snapshot must have been built from exactly the live schema: the
  // fingerprint covers the canonical printed form, the extents guard
  // the id spaces every section was validated against.
  const uint64_t fingerprint = Fnv1a64(PrintSchema(*schema_));
  if (snapshot.header.schema_fingerprint != fingerprint) {
    return FailedPrecondition(
        "snapshot was built for a different schema (fingerprint mismatch)");
  }
  if (snapshot.header.num_classes !=
          static_cast<uint32_t>(schema_->num_classes()) ||
      snapshot.header.num_attributes !=
          static_cast<uint32_t>(schema_->num_attributes()) ||
      snapshot.header.num_relations !=
          static_cast<uint32_t>(schema_->num_relations())) {
    return FailedPrecondition(
        "snapshot schema extents disagree with the live schema");
  }
  // From here on the session is COLD until restore fully succeeds: any
  // failure below leaves base_ready_ false and the next query rebuilds
  // from scratch — a restore can degrade to a cold start but never to a
  // corrupted warm state.
  base_ready_ = false;
  base_solved_.store(false, std::memory_order_release);
  memo_.clear();
  base_expansion_.reset();
  analysis_.reset();
  psi_base_.reset();
  schema_analysis_.reset();

  snapshot.expansion.schema = schema_;
  // Derived lookup indexes are rebuilt, never trusted from disk.
  snapshot.expansion.RebuildDerivedIndexes();
  if (options_.prefilter) {
    AnalyzerOptions analyzer_options;
    analyzer_options.lint = false;
    schema_analysis_ = AnalyzeSchema(*schema_, analyzer_options);
  }
  Result<ExpansionBaseAnalysis> analysis =
      AnalyzeBaseExpansion(*schema_, snapshot.expansion, options_.expansion);
  if (analysis.ok() != snapshot.has_psi) {
    // The live analysis decides whether the incremental Ψ path exists;
    // a snapshot that disagrees was built under different options.
    return FailedPrecondition(
        "snapshot psi presence disagrees with the live base analysis");
  }
  if (!analysis.ok() &&
      analysis.status().code() != StatusCode::kFailedPrecondition) {
    return analysis.status();
  }
  if (snapshot.has_psi) {
    // Rebuild the deterministic structure around the persisted basis and
    // verify the basis fits it before anything resumes from it.
    CAR_ASSIGN_OR_RETURN(
        IncrementalPsiBase psi_base,
        BuildIncrementalPsiBaseStructure(snapshot.expansion,
                                         options_.solver));
    CAR_RETURN_IF_ERROR(ValidateSnapshotShape(snapshot.psi_snapshot,
                                              psi_base.psi.system));
    psi_base.snapshot = std::move(snapshot.psi_snapshot);
    psi_base.base_pivots = static_cast<size_t>(snapshot.base_pivots);
    psi_base.base_scalar_promotions = snapshot.base_scalar_promotions;
    psi_base.base_tableau_nonzeros = snapshot.base_tableau_nonzeros;
    psi_base.base_tableau_cells = snapshot.base_tableau_cells;
    // Fold the frozen base-solve costs into the session counters exactly
    // as EnsureBase would after solving, so stats and memory estimates
    // match a session that paid the solve itself.
    scalar_promotions_.fetch_add(psi_base.base_scalar_promotions,
                                 std::memory_order_relaxed);
    MaxRelaxed(&peak_tableau_nonzeros_, psi_base.base_tableau_nonzeros);
    MaxRelaxed(&peak_tableau_cells_, psi_base.base_tableau_cells);
    analysis_ = std::move(analysis.value());
    psi_base_ = std::move(psi_base);
  }
  base_expansion_ = std::move(snapshot.expansion);
  memo_ = std::move(snapshot.memo);
  fingerprint_ = fingerprint;
  base_ready_ = true;
  // A restored snapshot IS the full warm base, so even a lazy session is
  // immediately snapshot-eligible and delta-capable again.
  base_solved_.store(true, std::memory_order_release);
  ++base_restores_;
  return Status::Ok();
}

IncrementalStats IncrementalSession::stats() const {
  IncrementalStats stats;
  stats.queries = queries_;
  stats.trivial = trivial_;
  stats.closure_hits = closure_hits_;
  stats.cluster_local = cluster_local_.load(std::memory_order_relaxed);
  stats.memo_hits = memo_hits_;
  stats.memo_misses = memo_misses_;
  stats.base_builds = base_builds_;
  stats.base_restores = base_restores_;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  stats.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  stats.lazy_hits = lazy_hits_.load(std::memory_order_relaxed);
  stats.lazy_refinement_rounds =
      lazy_refinement_rounds_.load(std::memory_order_relaxed);
  stats.lazy_compounds_materialized =
      lazy_compounds_materialized_.load(std::memory_order_relaxed);
  stats.lazy_blocking_constraints =
      lazy_blocking_constraints_.load(std::memory_order_relaxed);
  stats.lazy_certificate_closures =
      lazy_certificate_closures_.load(std::memory_order_relaxed);
  stats.spurious_witnesses =
      spurious_witnesses_.load(std::memory_order_relaxed);
  stats.clusters_reused = clusters_reused_.load(std::memory_order_relaxed);
  stats.clusters_reenumerated =
      clusters_reenumerated_.load(std::memory_order_relaxed);
  stats.scalar_promotions =
      scalar_promotions_.load(std::memory_order_relaxed);
  stats.peak_tableau_nonzeros =
      peak_tableau_nonzeros_.load(std::memory_order_relaxed);
  stats.peak_tableau_cells =
      peak_tableau_cells_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace car
