#ifndef CAR_BASE_STRINGS_H_
#define CAR_BASE_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace car {

namespace internal {

inline void StrCatAppend(std::ostringstream&) {}

template <typename T, typename... Rest>
void StrCatAppend(std::ostringstream& os, const T& first,
                  const Rest&... rest) {
  os << first;
  StrCatAppend(os, rest...);
}

}  // namespace internal

/// Concatenates the streamed representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  internal::StrCatAppend(os, args...);
  return os.str();
}

/// Joins the streamed representations of the elements of `items` with
/// `separator` between consecutive elements.
template <typename Container>
std::string StrJoin(const Container& items, std::string_view separator) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : items) {
    if (!first) os << separator;
    first = false;
    os << item;
  }
  return os.str();
}

/// Splits `text` at each occurrence of `separator`; empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view text, char separator);

/// Returns `text` unchanged when it fits in `max_bytes`, otherwise its
/// first `max_bytes` bytes followed by an elision marker carrying the
/// elided byte count. For echoing untrusted input in error messages without
/// letting the message inherit the input's size.
std::string Elide(std::string_view text, size_t max_bytes = 256);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view text);

}  // namespace car

#endif  // CAR_BASE_STRINGS_H_
