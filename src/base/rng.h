#ifndef CAR_BASE_RNG_H_
#define CAR_BASE_RNG_H_

#include <cstdint>

#include "base/check.h"

namespace car {

/// A small, fast, deterministic pseudo-random generator (splitmix64).
///
/// Workload generators and property tests use this instead of <random> so
/// that a given seed produces identical schemas on every platform and
/// standard-library implementation — benchmark series and failing test
/// seeds stay reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Returns the next 64 pseudo-random bits.
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Returns a value uniformly distributed in [0, bound). `bound` > 0.
  uint64_t NextBelow(uint64_t bound) {
    CAR_CHECK_GT(bound, 0u);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ull - bound) % bound;
    while (true) {
      uint64_t value = Next();
      if (value >= threshold) return value % bound;
    }
  }

  /// Returns an int uniformly distributed in [lo, hi] (inclusive).
  int NextInt(int lo, int hi) {
    CAR_CHECK_LE(lo, hi);
    return lo + static_cast<int>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Returns true with probability `numerator / denominator`.
  bool NextChance(uint64_t numerator, uint64_t denominator) {
    return NextBelow(denominator) < numerator;
  }

 private:
  uint64_t state_;
};

}  // namespace car

#endif  // CAR_BASE_RNG_H_
