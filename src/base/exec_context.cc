#include "base/exec_context.h"

#include <algorithm>

#include "base/strings.h"

namespace car {

const char* LimitKindToString(LimitKind kind) {
  switch (kind) {
    case LimitKind::kNone:
      return "none";
    case LimitKind::kDeadline:
      return "deadline";
    case LimitKind::kCancelled:
      return "cancelled";
    case LimitKind::kMemoryBudget:
      return "memory_budget";
    case LimitKind::kWorkBudget:
      return "work_budget";
    case LimitKind::kFaultInjection:
      return "fault_injection";
    case LimitKind::kMaxCompoundClasses:
      return "max_compound_classes";
    case LimitKind::kMaxCompoundAttributes:
      return "max_compound_attributes";
    case LimitKind::kMaxCompoundRelations:
      return "max_compound_relations";
    case LimitKind::kMaxPivots:
      return "max_pivots";
    case LimitKind::kMaxConfigurations:
      return "max_configurations";
    case LimitKind::kMaxCandidates:
      return "max_candidates";
  }
  return "unknown";
}

std::string LimitReport::ToString() const {
  return StrCat("limit=", LimitKindToString(kind), " phase=", phase,
                " count=", count);
}

Status LimitReport::ToStatus() const {
  if (kind == LimitKind::kCancelled) return Cancelled(ToString());
  return ResourceExhausted(ToString());
}

Status LimitTripStatus(LimitKind kind, const char* phase, uint64_t limit,
                       uint64_t count) {
  LimitReport report;
  report.kind = kind;
  report.phase = phase;
  report.limit = limit;
  report.count = count;
  return report.ToStatus();
}

uint8_t LimitKindToWire(LimitKind kind) {
  return static_cast<uint8_t>(kind);
}

LimitKind LimitKindFromWire(uint8_t value) {
  if (value > static_cast<uint8_t>(LimitKind::kMaxCandidates)) {
    return LimitKind::kNone;
  }
  return static_cast<LimitKind>(value);
}

AdmissionLimits AdmissionLimits::Tighten(const AdmissionLimits& a,
                                         const AdmissionLimits& b) {
  // 0 = unlimited for the budgets, kNoInjection = disabled for the
  // injection threshold: in both cases the configured side wins, and two
  // configured sides take the minimum.
  auto tighter = [](uint64_t x, uint64_t y, uint64_t none) {
    if (x == none) return y;
    if (y == none) return x;
    return std::min(x, y);
  };
  AdmissionLimits result;
  result.deadline_ms = tighter(a.deadline_ms, b.deadline_ms, 0);
  result.work_budget = tighter(a.work_budget, b.work_budget, 0);
  result.memory_budget_bytes =
      tighter(a.memory_budget_bytes, b.memory_budget_bytes, 0);
  result.inject_after =
      tighter(a.inject_after, b.inject_after, kNoInjection);
  return result;
}

void AdmissionLimits::ConfigureContext(ExecContext* context) const {
  if (deadline_ms > 0) {
    context->SetDeadlineAfter(std::chrono::milliseconds(deadline_ms));
  }
  if (work_budget > 0) context->SetWorkBudget(work_budget);
  if (memory_budget_bytes > 0) context->SetMemoryBudget(memory_budget_bytes);
  if (inject_after != kNoInjection) context->InjectTripAfter(inject_after);
}

void ExecContext::set_deadline(
    std::chrono::steady_clock::time_point deadline) {
  auto now = std::chrono::steady_clock::now();
  deadline_budget_ms_.store(
      static_cast<uint64_t>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                   now)
                 .count())),
      std::memory_order_relaxed);
  deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          deadline.time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

void ExecContext::SetDeadlineAfter(std::chrono::milliseconds budget) {
  deadline_budget_ms_.store(
      static_cast<uint64_t>(std::max<int64_t>(0, budget.count())),
      std::memory_order_relaxed);
  deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          (std::chrono::steady_clock::now() + budget).time_since_epoch())
          .count(),
      std::memory_order_relaxed);
}

void ExecContext::SetWorkBudget(uint64_t units) {
  work_budget_.store(units, std::memory_order_relaxed);
}

void ExecContext::SetMemoryBudget(uint64_t bytes) {
  byte_budget_.store(bytes, std::memory_order_relaxed);
}

void ExecContext::InjectTripAfter(uint64_t units) {
  inject_after_.store(units, std::memory_order_relaxed);
}

void ExecContext::RequestCancellation() {
  RecordTrip(LimitKind::kCancelled, "", 0, 0);
}

Status ExecContext::TripStatus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return first_trip_.ToStatus();
}

Status ExecContext::DeadlineStatus(const char* phase) {
  auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  int64_t deadline_ns = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline_ns == 0 || now_ns < deadline_ns) return Status::Ok();
  uint64_t budget_ms = deadline_budget_ms_.load(std::memory_order_relaxed);
  return RecordTrip(LimitKind::kDeadline, phase, budget_ms, budget_ms);
}

Status ExecContext::ChargeWork(uint64_t units, const char* phase) {
  if (units == 0) return Check(phase);
  if (tripped_.load(std::memory_order_relaxed)) return TripStatus();
  uint64_t pre = work_.fetch_add(units, std::memory_order_relaxed);
  // Fault injection takes precedence over the real budget so tests can
  // exercise abort points below any configured budget.
  uint64_t inject = inject_after_.load(std::memory_order_relaxed);
  if (Crossed(pre, units, inject)) {
    return RecordTrip(LimitKind::kFaultInjection, phase, inject, inject);
  }
  uint64_t budget = work_budget_.load(std::memory_order_relaxed);
  if (Crossed(pre, units, budget)) {
    return RecordTrip(LimitKind::kWorkBudget, phase, budget, budget);
  }
  // Opportunistic deadline check once per stride of charged work (every
  // Check() at a phase boundary also looks at the clock).
  if (deadline_ns_.load(std::memory_order_relaxed) != 0 &&
      (pre / kDeadlineStride != (pre + units) / kDeadlineStride ||
       units >= kDeadlineStride)) {
    return DeadlineStatus(phase);
  }
  return Status::Ok();
}

Status ExecContext::ChargeBytes(uint64_t bytes, const char* phase) {
  if (tripped_.load(std::memory_order_relaxed)) return TripStatus();
  if (bytes == 0) return Status::Ok();
  uint64_t pre = bytes_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t budget = byte_budget_.load(std::memory_order_relaxed);
  if (Crossed(pre, bytes, budget)) {
    return RecordTrip(LimitKind::kMemoryBudget, phase, budget, budget);
  }
  return Status::Ok();
}

Status ExecContext::Check(const char* phase) {
  if (tripped_.load(std::memory_order_relaxed)) return TripStatus();
  if (deadline_ns_.load(std::memory_order_relaxed) != 0) {
    return DeadlineStatus(phase);
  }
  return Status::Ok();
}

Status ExecContext::RecordTrip(LimitKind kind, const char* phase,
                               uint64_t limit, uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_trip_.tripped()) {
    first_trip_.kind = kind;
    first_trip_.phase = phase;
    first_trip_.limit = limit;
    first_trip_.count = count;
    tripped_.store(true, std::memory_order_release);
  }
  return first_trip_.ToStatus();
}

void ExecContext::OverridePhaseOnTrip(const char* phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (first_trip_.tripped()) first_trip_.phase = phase;
}

ProgressSnapshot ExecContext::progress() const {
  ProgressSnapshot snapshot;
  snapshot.work_charged = work_.load(std::memory_order_relaxed);
  snapshot.bytes_charged = bytes_.load(std::memory_order_relaxed);
  snapshot.compounds_enumerated = compounds_.load(std::memory_order_relaxed);
  snapshot.pivots_executed = pivots_.load(std::memory_order_relaxed);
  snapshot.lp_solves = lp_solves_.load(std::memory_order_relaxed);
  snapshot.configurations_examined =
      configurations_.load(std::memory_order_relaxed);
  snapshot.queries_completed = queries_.load(std::memory_order_relaxed);
  snapshot.memo_hits = memo_hits_.load(std::memory_order_relaxed);
  snapshot.memo_misses = memo_misses_.load(std::memory_order_relaxed);
  snapshot.prefilter_hits = prefilter_hits_.load(std::memory_order_relaxed);
  snapshot.cluster_local_solves =
      cluster_local_.load(std::memory_order_relaxed);
  snapshot.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  snapshot.scalar_promotions =
      scalar_promotions_.load(std::memory_order_relaxed);
  snapshot.peak_tableau_nonzeros =
      peak_tableau_nonzeros_.load(std::memory_order_relaxed);
  snapshot.peak_tableau_cells =
      peak_tableau_cells_.load(std::memory_order_relaxed);
  snapshot.refinement_rounds =
      refinement_rounds_.load(std::memory_order_relaxed);
  snapshot.compounds_materialized =
      compounds_materialized_.load(std::memory_order_relaxed);
  snapshot.spurious_witnesses =
      spurious_witnesses_.load(std::memory_order_relaxed);
  snapshot.blocking_constraints =
      blocking_constraints_.load(std::memory_order_relaxed);
  snapshot.certificate_closures =
      certificate_closures_.load(std::memory_order_relaxed);
  return snapshot;
}

LimitReport ExecContext::report() const {
  LimitReport report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    report = first_trip_;
  }
  report.progress = progress();
  return report;
}

}  // namespace car
