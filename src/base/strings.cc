#include "base/strings.h"

#include <cctype>

namespace car {

std::vector<std::string> StrSplit(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Elide(std::string_view text, size_t max_bytes) {
  if (text.size() <= max_bytes) return std::string(text);
  return StrCat(text.substr(0, max_bytes), "... [", text.size() - max_bytes,
                " more bytes]");
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace car
