#ifndef CAR_BASE_THREAD_POOL_H_
#define CAR_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace car {

/// A small work-stealing thread pool.
///
/// Each worker owns a deque of tasks: it pops its own deque from the
/// front and, when it runs dry, steals from the back of a sibling's
/// deque. Submission round-robins across the deques so independent
/// batches spread without a central bottleneck.
///
/// The pool is only an execution substrate. Determinism of the parallel
/// algorithms in libcar comes from ParallelFor's fixed chunking plus
/// order-preserving merges in the callers — never from scheduling order.
class ThreadPool {
 public:
  /// Creates a pool with `num_workers` worker threads (clamped to >= 1).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// The process-wide pool, sized to the hardware concurrency. Created on
  /// first use and intentionally leaked (workers sleep when idle).
  static ThreadPool& Shared();

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Runs one pending task on the calling thread if any is immediately
  /// available; returns false when every deque is empty. Lets a thread
  /// that waits on a parallel region help instead of blocking, which also
  /// keeps nested ParallelFor calls deadlock-free.
  bool RunOnePendingTask();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t worker_index);
  bool PopTask(size_t preferred, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<bool> shutdown_{false};
};

class ExecContext;

/// Options for ParallelFor.
struct ParallelForOptions {
  /// Maximum number of threads used, including the calling thread.
  /// 1 = run inline on the caller (the serial reference path);
  /// 0 = hardware concurrency.
  int num_threads = 1;
  /// Minimum number of iterations per chunk; below this, chunks are not
  /// split further.
  size_t min_chunk = 1;
  /// Optional cooperative-cancellation token: once cancel->cancelled()
  /// is observed, workers skip the bodies of chunks they have not yet
  /// started (the barrier still completes). Bodies of a cancelled region
  /// must produce output the caller will discard, so skipping whole
  /// chunks never changes observable results — aborted runs stay
  /// bit-identical across thread counts.
  const ExecContext* cancel = nullptr;
};

/// Resolves a `num_threads` option value to an effective thread count:
/// 0 means hardware concurrency, anything else is clamped to >= 1.
int EffectiveThreads(int num_threads);

/// Invokes body(begin, end) over a partition of [0, n) into near-equal
/// contiguous chunks, executing chunks on the shared pool (the caller
/// participates, so progress never depends on free workers).
///
/// Chunk boundaries depend only on `n` and `options` — never on thread
/// timing — so callers that write into per-index or per-chunk slots and
/// merge in index order obtain results bit-identical to the serial
/// (num_threads = 1) execution. Returns after every chunk has completed.
void ParallelFor(size_t n, const ParallelForOptions& options,
                 const std::function<void(size_t begin, size_t end)>& body);

}  // namespace car

#endif  // CAR_BASE_THREAD_POOL_H_
