#ifndef CAR_BASE_CHECK_H_
#define CAR_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace car {
namespace internal {

/// Collects a failure message via operator<< and aborts on destruction.
/// Used only by the CAR_CHECK family below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace car

/// Aborts (with file/line and a streamed message) if `cond` is false.
/// These checks guard internal invariants and are active in all build
/// modes: a failed check is a bug in libcar or in its caller.
#define CAR_CHECK(cond)  \
  if (cond) {            \
  } else                 \
    ::car::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define CAR_CHECK_EQ(a, b) CAR_CHECK((a) == (b))
#define CAR_CHECK_NE(a, b) CAR_CHECK((a) != (b))
#define CAR_CHECK_LT(a, b) CAR_CHECK((a) < (b))
#define CAR_CHECK_LE(a, b) CAR_CHECK((a) <= (b))
#define CAR_CHECK_GT(a, b) CAR_CHECK((a) > (b))
#define CAR_CHECK_GE(a, b) CAR_CHECK((a) >= (b))

#endif  // CAR_BASE_CHECK_H_
