#ifndef CAR_BASE_HASHING_H_
#define CAR_BASE_HASHING_H_

#include <cstdint>
#include <string_view>

namespace car {

/// 64-bit FNV-1a. Used for schema fingerprints and probe-memo display
/// hashes: stable across platforms and runs (no seed), cheap, and good
/// enough for cache keying when the full canonical string is kept for
/// exact comparison.
inline uint64_t Fnv1a64(std::string_view data,
                        uint64_t seed = 14695981039346656037ull) {
  uint64_t hash = seed;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace car

#endif  // CAR_BASE_HASHING_H_
