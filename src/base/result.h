#ifndef CAR_BASE_RESULT_H_
#define CAR_BASE_RESULT_H_

#include <optional>
#include <utility>

#include "base/check.h"
#include "base/status.h"

namespace car {

/// A value-or-error sum type (the no-exceptions analogue of StatusOr<T>).
///
/// A Result is either OK and holds a T, or holds a non-OK Status. Accessing
/// the value of a non-OK Result aborts the process via CAR_CHECK; callers
/// must test ok() (or use CAR_ASSIGN_OR_RETURN) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing a Result from
  /// an OK status is a programming error and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    CAR_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    CAR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CAR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CAR_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace car

/// Evaluates `expr` (a Result<T> expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
#define CAR_ASSIGN_OR_RETURN(lhs, expr)          \
  CAR_ASSIGN_OR_RETURN_IMPL_(                    \
      CAR_RESULT_CONCAT_(car_result_, __LINE__), lhs, expr)

#define CAR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  lhs = std::move(tmp).value()

#define CAR_RESULT_CONCAT_INNER_(a, b) a##b
#define CAR_RESULT_CONCAT_(a, b) CAR_RESULT_CONCAT_INNER_(a, b)

#endif  // CAR_BASE_RESULT_H_
