#ifndef CAR_BASE_EXEC_CONTEXT_H_
#define CAR_BASE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "base/status.h"

namespace car {

/// Which configured limit aborted a governed computation.
enum class LimitKind {
  kNone = 0,
  /// The wall-clock deadline passed.
  kDeadline,
  /// ExecContext::RequestCancellation() was called.
  kCancelled,
  /// The cumulative byte budget was exceeded.
  kMemoryBudget,
  /// The cumulative work-unit budget was exceeded.
  kWorkBudget,
  /// A deterministic fault-injection trip (InjectTripAfter).
  kFaultInjection,
  /// ExpansionOptions::max_compound_classes.
  kMaxCompoundClasses,
  /// ExpansionOptions::max_compound_attributes.
  kMaxCompoundAttributes,
  /// ExpansionOptions::max_compound_relations.
  kMaxCompoundRelations,
  /// SimplexSolver::Options::max_pivots / PsiSolverOptions::max_pivots.
  kMaxPivots,
  /// BoundedSearchOptions::max_configurations.
  kMaxConfigurations,
  /// A structural tractability guard (exhaustive enumeration over too
  /// many classes, too many candidate pairs/tuples in bounded search).
  kMaxCandidates,
};

/// Canonical snake_case spelling ("max_compound_classes", "deadline", ...).
const char* LimitKindToString(LimitKind kind);

/// Counters a governed run keeps while it works; snapshotted into the
/// partial statistics of a degraded (kUnknown) result.
struct ProgressSnapshot {
  uint64_t work_charged = 0;
  uint64_t bytes_charged = 0;
  uint64_t compounds_enumerated = 0;
  uint64_t pivots_executed = 0;
  uint64_t lp_solves = 0;
  uint64_t configurations_examined = 0;
  uint64_t queries_completed = 0;
  /// Implication-probe memo cache hits/misses (incremental sessions).
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  /// Queries answered by the tier-0 static-closure prefilter, and
  /// probes solved on a dependency-closed sub-schema (tier-2), before
  /// the memo / full incremental solve engaged.
  uint64_t prefilter_hits = 0;
  uint64_t cluster_local_solves = 0;
  /// Warm-started (resumed) simplex solves.
  uint64_t warm_starts = 0;
  /// Scalar fast-path overflows promoted to BigInt form (simplex cells).
  uint64_t scalar_promotions = 0;
  /// Largest tableau seen, as nonzero cells and as dense extent
  /// (rows * columns); their ratio is the peak fill of the run.
  uint64_t peak_tableau_nonzeros = 0;
  uint64_t peak_tableau_cells = 0;
  /// Lazy (counterexample-guided) expansion: refinement rounds run,
  /// compound classes materialized on demand, and witnesses that failed
  /// semantic validation (each forces an eager fallback).
  uint64_t refinement_rounds = 0;
  uint64_t compounds_materialized = 0;
  uint64_t spurious_witnesses = 0;
  /// UNSAT-side lazy expansion: infeasibility certificates learned from
  /// infeasible partial-Ψ probes (blocking constraints) and certificates
  /// whose dual zero-extension closed (lazy UNSAT verdicts).
  uint64_t blocking_constraints = 0;
  uint64_t certificate_closures = 0;
};

/// A structured description of which limit tripped, where, and at what
/// counter value. `kind`, `phase`, `limit` and `count` are deterministic
/// for deterministic limits (count caps, work budgets, fault injection):
/// they do not depend on thread count or scheduling. The progress fields
/// are best-effort diagnostics and MAY vary across schedules; callers
/// that promise bit-identical output must print ToString() only.
struct LimitReport {
  LimitKind kind = LimitKind::kNone;
  /// The pipeline stage that tripped: "expansion", "expansion-filter",
  /// "expansion-relations", "solver", "simplex", "bounded-search",
  /// "implication".
  std::string phase;
  /// The configured limit value (cap, budget, injection threshold).
  uint64_t limit = 0;
  /// The deterministic counter value at the trip check (normalized to
  /// `limit` for budget crossings).
  uint64_t count = 0;
  /// Best-effort progress at trip time (see determinism note above).
  ProgressSnapshot progress;

  bool tripped() const { return kind != LimitKind::kNone; }

  /// "limit=max_compound_classes phase=expansion count=1048576".
  std::string ToString() const;

  /// kCancelled for cancellations, kResourceExhausted otherwise, with
  /// ToString() as the message.
  Status ToStatus() const;
};

/// Builds a LimitReport for a tripped cap and renders it as a Status.
/// Used by layers whose caller did not supply an ExecContext, so every
/// kResourceExhausted message carries the structured limit description.
Status LimitTripStatus(LimitKind kind, const char* phase, uint64_t limit,
                       uint64_t count);

/// Stable single-byte encoding of a LimitKind for wire protocols and
/// persisted artifacts. The values are the enum values today, but the
/// codec is the contract: kinds are append-only and never renumbered.
uint8_t LimitKindToWire(LimitKind kind);
/// Decodes a wire byte; out-of-range values yield LimitKind::kNone (the
/// caller sees "no limit" rather than garbage).
LimitKind LimitKindFromWire(uint8_t value);

class ExecContext;

/// The resource limits one admitted request is allowed to consume. This
/// is the admission-control vocabulary of the serving layer: a transport
/// ships AdmissionLimits with each request, the server tightens them
/// against its own per-request caps, and the result configures the fresh
/// ExecContext the request runs under. 0 means unlimited for the three
/// budgets; kNoInjection disables fault injection (0 trips on the first
/// charge, making every admission abort path testable).
struct AdmissionLimits {
  static constexpr uint64_t kNoInjection = ~uint64_t{0};

  uint64_t deadline_ms = 0;
  uint64_t work_budget = 0;
  uint64_t memory_budget_bytes = 0;
  /// Deterministic fault injection threshold (tests only).
  uint64_t inject_after = kNoInjection;

  bool operator==(const AdmissionLimits&) const = default;

  /// The pointwise-tightest combination: for each budget the smaller
  /// configured value wins (an unlimited side defers to the other).
  static AdmissionLimits Tighten(const AdmissionLimits& a,
                                 const AdmissionLimits& b);

  /// Applies the configured limits to a fresh context. Call once, before
  /// the governed work starts.
  void ConfigureContext(ExecContext* context) const;
};

/// The execution context of one governed request: a monotonic deadline, a
/// cooperative cancellation token, byte/work budgets and a deterministic
/// fault-injection hook, plus the LimitReport of the first limit that
/// tripped.
///
/// Thread-safety: all methods may be called concurrently. Budgets and the
/// deadline should be configured before the governed work starts.
///
/// Determinism contract (relied on by the bit-identical-across-threads
/// guarantee of the parallel pipeline): work/byte charges are commutative
/// sums, so whether a budget or injection threshold is crossed — and the
/// phase in which the cumulative counter crosses it, as long as phases
/// are sequential stages of the pipeline — does not depend on scheduling.
/// Parallel regions that interleave several phase labels normalize the
/// recorded phase via OverridePhaseOnTrip. Wall-clock deadline trips are
/// inherently schedule-dependent; only the verdict (not the trip point)
/// is meaningful for them.
class ExecContext {
 public:
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // --- Configuration (call before the governed work starts) --------------

  /// Absolute monotonic deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline);
  /// Deadline `budget` from now.
  void SetDeadlineAfter(std::chrono::milliseconds budget);
  /// Trips kWorkBudget when cumulative charged work exceeds `units`.
  void SetWorkBudget(uint64_t units);
  /// Trips kMemoryBudget when cumulative charged bytes exceed `bytes`.
  void SetMemoryBudget(uint64_t bytes);
  /// Deterministic fault injection: trips kFaultInjection as soon as
  /// cumulative charged work exceeds `units`. InjectTripAfter(0) trips on
  /// the first charge. Makes every abort path testable without timeouts.
  void InjectTripAfter(uint64_t units);

  // --- Deterministic I/O fault injection ----------------------------------
  // The persistence layer (src/persist) routes every I/O primitive —
  // write chunk, fsync, rename, unlink, read — through NextIoOpFails().
  // Ops are numbered from 0 in execution order; every op at index >=
  // the configured threshold fails. The failure is STICKY (fail-stop):
  // once the threshold is reached nothing later succeeds either, which
  // models a process that died mid-sequence — the bytes written before
  // the threshold are on disk, nothing after is, and even the cleanup
  // unlink of a torn temp file "dies" with the process. Unlike
  // InjectTripAfter this never trips the context: a failed spill must
  // not poison the request that triggered it.

  /// Configures the I/O fault threshold; AdmissionLimits::kNoInjection
  /// (the default) disables injection.
  void InjectIoFaultAfter(uint64_t ops) {
    io_fault_after_.store(ops, std::memory_order_relaxed);
  }
  /// Consumes the next I/O op index; true when that op must fail.
  bool NextIoOpFails() {
    uint64_t index = io_ops_.fetch_add(1, std::memory_order_relaxed);
    return index >= io_fault_after_.load(std::memory_order_relaxed);
  }
  /// I/O ops consumed so far (sweep instrumentation: run once uninjected
  /// to learn the op count, then sweep thresholds 0..count).
  uint64_t io_ops() const {
    return io_ops_.load(std::memory_order_relaxed);
  }

  // --- Cooperative cancellation ------------------------------------------

  /// Requests cancellation; workers observe it at their next charge or
  /// Check() and unwind with report() of kind kCancelled.
  void RequestCancellation();

  /// True once any limit tripped or cancellation was requested. Cheap
  /// (one relaxed atomic load); safe to poll in inner loops and at
  /// ParallelFor chunk boundaries.
  bool cancelled() const {
    return tripped_.load(std::memory_order_relaxed);
  }
  bool tripped() const { return cancelled(); }

  // --- Charging (hot paths) ----------------------------------------------

  /// Adds `units` of abstract work in `phase`. Returns the trip status if
  /// this charge crosses the work budget or injection threshold, the
  /// deadline is observed to have passed, or the context already tripped.
  Status ChargeWork(uint64_t units, const char* phase);

  /// Adds `bytes` of (estimated, cumulative) memory in `phase`.
  Status ChargeBytes(uint64_t bytes, const char* phase);

  /// Checks deadline + cancellation without charging; for phase
  /// boundaries and loops that do no countable work.
  Status Check(const char* phase);

  /// Records an externally detected limit (a count cap owned by a layer,
  /// e.g. max_compound_classes). First trip wins; always returns the
  /// recorded (first) trip's status.
  Status RecordTrip(LimitKind kind, const char* phase, uint64_t limit,
                    uint64_t count);

  /// Normalizes the recorded phase of an already-tripped report. Called
  /// by parallel regions that interleave charges from several phases
  /// (implication batches), so the reported phase is deterministic.
  void OverridePhaseOnTrip(const char* phase);

  // --- Progress counters --------------------------------------------------

  void CountCompounds(uint64_t n) { AddRelaxed(&compounds_, n); }
  void CountPivots(uint64_t n) { AddRelaxed(&pivots_, n); }
  void CountLpSolves(uint64_t n) { AddRelaxed(&lp_solves_, n); }
  void CountConfigurations(uint64_t n) { AddRelaxed(&configurations_, n); }
  void CountQueries(uint64_t n) { AddRelaxed(&queries_, n); }
  void CountMemoHits(uint64_t n) { AddRelaxed(&memo_hits_, n); }
  void CountMemoMisses(uint64_t n) { AddRelaxed(&memo_misses_, n); }
  void CountPrefilterHits(uint64_t n) { AddRelaxed(&prefilter_hits_, n); }
  void CountClusterLocalSolves(uint64_t n) {
    AddRelaxed(&cluster_local_, n);
  }
  void CountWarmStarts(uint64_t n) { AddRelaxed(&warm_starts_, n); }
  void CountRefinementRounds(uint64_t n) {
    AddRelaxed(&refinement_rounds_, n);
  }
  void CountCompoundsMaterialized(uint64_t n) {
    AddRelaxed(&compounds_materialized_, n);
  }
  void CountSpuriousWitnesses(uint64_t n) {
    AddRelaxed(&spurious_witnesses_, n);
  }
  void CountBlockingConstraints(uint64_t n) {
    AddRelaxed(&blocking_constraints_, n);
  }
  void CountCertificateClosures(uint64_t n) {
    AddRelaxed(&certificate_closures_, n);
  }
  void CountScalarPromotions(uint64_t n) {
    AddRelaxed(&scalar_promotions_, n);
  }
  /// Folds one solve's final tableau size into the peak-fill counters
  /// (atomic max; a sum would double-count the shared base tableau of
  /// warm-started solves).
  void RecordTableauFill(uint64_t nonzeros, uint64_t cells) {
    MaxRelaxed(&peak_tableau_nonzeros_, nonzeros);
    MaxRelaxed(&peak_tableau_cells_, cells);
  }

  // --- Inspection ----------------------------------------------------------

  uint64_t work_charged() const {
    return work_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_charged() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  ProgressSnapshot progress() const;

  /// Copy of the first trip's report (kind kNone if still running). The
  /// progress fields are filled at snapshot time.
  LimitReport report() const;

 private:
  static constexpr uint64_t kNoBudget = ~uint64_t{0};
  /// Work-unit stride between opportunistic deadline checks in
  /// ChargeWork (the deadline is also checked by every Check()).
  static constexpr uint64_t kDeadlineStride = 1024;

  static void AddRelaxed(std::atomic<uint64_t>* counter, uint64_t n) {
    counter->fetch_add(n, std::memory_order_relaxed);
  }

  static void MaxRelaxed(std::atomic<uint64_t>* counter, uint64_t n) {
    uint64_t current = counter->load(std::memory_order_relaxed);
    while (current < n && !counter->compare_exchange_weak(
                              current, n, std::memory_order_relaxed)) {
    }
  }

  /// True when the cumulative counter moving [pre, pre + units) crossed
  /// `threshold` (exactly one charge observes the crossing).
  static bool Crossed(uint64_t pre, uint64_t units, uint64_t threshold) {
    return threshold != kNoBudget && pre <= threshold &&
           threshold < pre + units;
  }

  Status TripStatus() const;
  Status DeadlineStatus(const char* phase);

  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> bytes_{0};
  std::atomic<uint64_t> compounds_{0};
  std::atomic<uint64_t> pivots_{0};
  std::atomic<uint64_t> lp_solves_{0};
  std::atomic<uint64_t> configurations_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> memo_hits_{0};
  std::atomic<uint64_t> memo_misses_{0};
  std::atomic<uint64_t> prefilter_hits_{0};
  std::atomic<uint64_t> cluster_local_{0};
  std::atomic<uint64_t> warm_starts_{0};
  std::atomic<uint64_t> scalar_promotions_{0};
  std::atomic<uint64_t> peak_tableau_nonzeros_{0};
  std::atomic<uint64_t> peak_tableau_cells_{0};
  std::atomic<uint64_t> refinement_rounds_{0};
  std::atomic<uint64_t> compounds_materialized_{0};
  std::atomic<uint64_t> spurious_witnesses_{0};
  std::atomic<uint64_t> blocking_constraints_{0};
  std::atomic<uint64_t> certificate_closures_{0};

  std::atomic<uint64_t> work_budget_{kNoBudget};
  std::atomic<uint64_t> byte_budget_{kNoBudget};
  std::atomic<uint64_t> inject_after_{kNoBudget};
  std::atomic<uint64_t> io_ops_{0};
  std::atomic<uint64_t> io_fault_after_{kNoBudget};
  /// Deadline as nanoseconds on the steady clock; 0 = none.
  std::atomic<int64_t> deadline_ns_{0};
  /// The configured deadline budget in ms, for the report.
  std::atomic<uint64_t> deadline_budget_ms_{0};

  std::atomic<bool> tripped_{false};
  mutable std::mutex mutex_;
  LimitReport first_trip_;  // Guarded by mutex_; valid once tripped_.
};

// --- Nullable-context helpers ---------------------------------------------
// All governed layers accept an optional ExecContext*; a null context
// means "ungoverned" and every helper below degrades to a no-op.

inline bool GovCancelled(const ExecContext* ctx) {
  return ctx != nullptr && ctx->cancelled();
}

inline Status GovChargeWork(ExecContext* ctx, uint64_t units,
                            const char* phase) {
  return ctx == nullptr ? Status::Ok() : ctx->ChargeWork(units, phase);
}

inline Status GovChargeBytes(ExecContext* ctx, uint64_t bytes,
                             const char* phase) {
  return ctx == nullptr ? Status::Ok() : ctx->ChargeBytes(bytes, phase);
}

inline Status GovCheck(ExecContext* ctx, const char* phase) {
  return ctx == nullptr ? Status::Ok() : ctx->Check(phase);
}

/// Records the trip when a context is present, otherwise builds the
/// structured status locally — either way the caller gets the
/// "limit=... phase=... count=..." message.
inline Status GovRecordTrip(ExecContext* ctx, LimitKind kind,
                            const char* phase, uint64_t limit,
                            uint64_t count) {
  return ctx == nullptr ? LimitTripStatus(kind, phase, limit, count)
                        : ctx->RecordTrip(kind, phase, limit, count);
}

}  // namespace car

#endif  // CAR_BASE_EXEC_CONTEXT_H_
