#ifndef CAR_BASE_STATUS_H_
#define CAR_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace car {

/// Coarse error taxonomy for all fallible operations in libcar.
///
/// libcar does not use exceptions: every operation that can fail returns a
/// Status (or a Result<T>, see result.h) and callers are expected to check
/// it. The codes follow the usual canonical-status conventions.
enum class StatusCode {
  kOk = 0,
  /// Caller passed an argument that is malformed in itself (e.g. an empty
  /// symbol name, a negative cardinality).
  kInvalidArgument = 1,
  /// A referenced entity does not exist (e.g. an undeclared role symbol).
  kNotFound = 2,
  /// An entity is being declared twice (e.g. two definitions of one class).
  kAlreadyExists = 3,
  /// The operation is valid but the object is in the wrong state for it
  /// (e.g. asking for a satisfying model of an unsatisfiable class).
  kFailedPrecondition = 4,
  /// An internal invariant was violated; indicates a bug in libcar.
  kInternal = 5,
  /// A configured resource limit was exceeded (e.g. expansion size cap).
  kResourceExhausted = 6,
  /// Input text could not be parsed.
  kParseError = 7,
  /// The requested feature is intentionally not supported (e.g. reifying a
  /// relation whose role clauses are disjunctive, outside Theorem 4.5).
  kUnsupported = 8,
  /// The operation was cancelled cooperatively (deadline, explicit
  /// cancellation request); see base/exec_context.h.
  kCancelled = 9,
};

/// Returns the canonical lower-case spelling of a status code.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value carrying a code and a human-readable message.
///
/// Status is cheap to copy in the success case (no allocation) and carries
/// an explanatory message otherwise. Use the factory helpers below
/// (InvalidArgument(), NotFound(), ...) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);
Status ParseError(std::string message);
Status Unsupported(std::string message);
Status Cancelled(std::string message);

}  // namespace car

/// Evaluates `expr` (a Status expression); if not OK, returns it from the
/// enclosing function. The enclosing function must return Status or a type
/// constructible from Status (e.g. Result<T>).
#define CAR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::car::Status car_status_tmp_ = (expr);        \
    if (!car_status_tmp_.ok()) {                   \
      return car_status_tmp_;                      \
    }                                              \
  } while (false)

#endif  // CAR_BASE_STATUS_H_
