#include "base/thread_pool.h"

#include <algorithm>

#include "base/exec_context.h"

namespace car {

ThreadPool::ThreadPool(int num_workers) {
  num_workers = std::max(1, num_workers);
  queues_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Pairs with the wait in WorkerLoop: no worker can miss the shutdown
    // flag between its last pending check and going to sleep.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency())));
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t index = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                 queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mutex);
    queues_[index]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // See ~ThreadPool: makes the pending increment visible to any worker
    // deciding whether to sleep.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_.notify_one();
}

bool ThreadPool::PopTask(size_t preferred, std::function<void()>* task) {
  // Own deque first (front, LIFO locality), then steal from the back of
  // the siblings' deques.
  {
    Queue& own = *queues_[preferred % queues_.size()];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(preferred + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      *task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool ThreadPool::RunOnePendingTask() {
  std::function<void()> task;
  if (!PopTask(next_queue_.load(std::memory_order_relaxed), &task)) {
    return false;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  while (true) {
    std::function<void()> task;
    if (PopTask(worker_index, &task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (shutdown_.load(std::memory_order_acquire)) return;
    // A task may have been submitted between the failed PopTask and
    // taking the lock; re-check before sleeping so the notify cannot be
    // missed (Submit acquires wake_mutex_ before notifying).
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    wake_.wait(lock);
  }
}

int EffectiveThreads(int num_threads) {
  if (num_threads == 0) {
    return static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  return std::max(1, num_threads);
}

namespace {

/// Shared completion state of one ParallelFor call. Heap-allocated and
/// reference-counted: helper tasks that are still queued when the region
/// finishes (because the caller drained every chunk itself) outlive the
/// call and must find valid state to observe "nothing left to do".
struct ParallelForState {
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> chunks_done{0};
  size_t num_chunks = 0;
  size_t base = 0;       // Chunk size floor.
  size_t remainder = 0;  // First `remainder` chunks get one extra item.
  const ExecContext* cancel = nullptr;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::mutex mutex;
  std::condition_variable all_done;
};

/// Claims and runs chunks until none are left. The `body` pointer is only
/// dereferenced for successfully claimed chunks, which the caller waits
/// for — so it never dangles.
void RunChunks(const std::shared_ptr<ParallelForState>& state) {
  while (true) {
    size_t chunk = state->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state->num_chunks) return;
    size_t begin = chunk * state->base + std::min(chunk, state->remainder);
    size_t end = begin + state->base + (chunk < state->remainder ? 1 : 0);
    // Cooperative cancellation at the chunk boundary: a chunk whose body
    // has not started when the trip is observed is skipped outright (its
    // output would be discarded by the caller anyway). The chunk still
    // counts toward completion so the barrier always resolves.
    if (state->cancel == nullptr || !state->cancel->cancelled()) {
      (*state->body)(begin, end);
    }
    if (state->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->num_chunks) {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->all_done.notify_all();
    }
  }
}

}  // namespace

void ParallelFor(size_t n, const ParallelForOptions& options,
                 const std::function<void(size_t begin, size_t end)>& body) {
  if (n == 0) return;
  const int threads = EffectiveThreads(options.num_threads);
  const size_t min_chunk = std::max<size_t>(1, options.min_chunk);
  if (threads <= 1 || n <= min_chunk) {
    body(0, n);
    return;
  }

  // Deterministic chunking: ~4 chunks per thread for stealing slack,
  // but never chunks smaller than min_chunk.
  const size_t max_chunks = static_cast<size_t>(threads) * 4;
  const size_t num_chunks =
      std::max<size_t>(1, std::min({n, max_chunks, n / min_chunk}));

  auto state = std::make_shared<ParallelForState>();
  state->num_chunks = num_chunks;
  state->base = n / num_chunks;
  state->remainder = n % num_chunks;
  state->cancel = options.cancel;
  state->body = &body;

  ThreadPool& pool = ThreadPool::Shared();
  const int helpers =
      std::min(threads - 1, static_cast<int>(num_chunks) - 1);
  for (int i = 0; i < helpers; ++i) {
    pool.Submit([state] { RunChunks(state); });
  }
  RunChunks(state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] {
    return state->chunks_done.load(std::memory_order_acquire) ==
           state->num_chunks;
  });
}

}  // namespace car
