#include "base/status.h"

namespace car {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "ok";
  }
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status Unsupported(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace car
