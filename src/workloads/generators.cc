#include "workloads/generators.h"

#include <vector>

#include "base/strings.h"

namespace car {

namespace {

/// A random literal over classes [0, num_classes), negated with the given
/// percent probability.
ClassLiteral RandomLiteral(Rng* rng, int num_classes, int negation_percent) {
  ClassId id = rng->NextInt(0, num_classes - 1);
  bool negated = rng->NextChance(static_cast<uint64_t>(negation_percent),
                                 100);
  return negated ? ClassLiteral::Negative(id) : ClassLiteral::Positive(id);
}

Cardinality RandomCardinality(Rng* rng, uint64_t max_cardinality) {
  uint64_t lo = static_cast<uint64_t>(
      rng->NextInt(0, static_cast<int>(max_cardinality)));
  if (rng->NextChance(1, 3)) {
    return Cardinality::AtLeast(lo);
  }
  uint64_t hi = lo + static_cast<uint64_t>(
                         rng->NextInt(0, static_cast<int>(max_cardinality)));
  return Cardinality(lo, hi);
}

}  // namespace

Schema RandomGeneralSchema(Rng* rng, const GeneralSchemaParams& params) {
  Schema schema;
  for (int c = 0; c < params.num_classes; ++c) {
    schema.InternClass(StrCat("C", c));
  }
  for (ClassId c = 0; c < params.num_classes; ++c) {
    ClassDefinition* definition = schema.mutable_class_definition(c);
    if (rng->NextChance(static_cast<uint64_t>(params.isa_percent), 100)) {
      ClassClause clause;
      clause.AddLiteral(
          RandomLiteral(rng, params.num_classes, params.negation_percent));
      if (rng->NextChance(static_cast<uint64_t>(params.union_percent), 100)) {
        clause.AddLiteral(
            RandomLiteral(rng, params.num_classes, params.negation_percent));
      }
      definition->isa.AddClause(std::move(clause));
    }
    if (params.num_attributes > 0 &&
        rng->NextChance(static_cast<uint64_t>(params.attribute_percent),
                        100)) {
      AttributeSpec spec;
      // Attribute symbols are interned lazily so that only attributes
      // actually used appear in the schema (keeps print/parse faithful).
      AttributeId attribute = schema.InternAttribute(
          StrCat("a", rng->NextInt(0, params.num_attributes - 1)));
      bool inverse = rng->NextChance(
          static_cast<uint64_t>(params.inverse_percent), 100);
      // Avoid duplicate attribute terms within one definition.
      bool duplicate = false;
      for (const AttributeSpec& existing : definition->attributes) {
        if (existing.term.attribute == attribute &&
            existing.term.inverse == inverse) {
          duplicate = true;
        }
      }
      if (!duplicate) {
        spec.term = inverse ? AttributeTerm::Inverse(attribute)
                            : AttributeTerm::Direct(attribute);
        spec.cardinality = RandomCardinality(rng, params.max_cardinality);
        ClassClause range_clause;
        range_clause.AddLiteral(
            RandomLiteral(rng, params.num_classes, params.negation_percent));
        spec.range = ClassFormula({range_clause});
        definition->attributes.push_back(std::move(spec));
      }
    }
  }

  for (int r = 0; r < params.num_relations; ++r) {
    RelationDefinition relation;
    relation.relation_id = schema.InternRelation(StrCat("R", r));
    RoleId left = schema.InternRole(StrCat("left", r));
    RoleId right = schema.InternRole(StrCat("right", r));
    relation.roles = {left, right};
    RoleClause clause;
    RoleLiteral literal;
    literal.role = rng->NextChance(1, 2) ? left : right;
    literal.formula = ClassFormula::OfClass(
        rng->NextInt(0, params.num_classes - 1));
    clause.literals.push_back(std::move(literal));
    relation.constraints.push_back(std::move(clause));
    CAR_CHECK(schema.SetRelationDefinition(std::move(relation)).ok());

    // One or two participating classes.
    int participants = rng->NextInt(1, 2);
    for (int i = 0; i < participants; ++i) {
      ClassId c = rng->NextInt(0, params.num_classes - 1);
      ClassDefinition* definition = schema.mutable_class_definition(c);
      bool duplicate = false;
      RoleId role = rng->NextChance(1, 2) ? left : right;
      for (const ParticipationSpec& existing : definition->participations) {
        if (existing.relation == r && existing.role == role) {
          duplicate = true;
        }
      }
      if (duplicate) continue;
      ParticipationSpec spec;
      spec.relation = r;
      spec.role = role;
      spec.cardinality = RandomCardinality(rng, params.max_cardinality);
      definition->participations.push_back(spec);
    }
  }

  CAR_CHECK(schema.Validate().ok());
  return schema;
}

Schema RandomTinySchema(Rng* rng, const TinySchemaParams& params) {
  GeneralSchemaParams general;
  general.num_classes = rng->NextInt(1, params.max_classes);
  general.num_attributes = params.allow_attribute ? 1 : 0;
  general.isa_percent = 50;
  general.negation_percent = 35;
  general.union_percent = 35;
  general.attribute_percent = 60;
  general.max_cardinality = params.max_cardinality;
  general.num_relations = params.allow_relation && rng->NextChance(1, 2)
                              ? 1
                              : 0;
  return RandomGeneralSchema(rng, general);
}

Schema GenerateHierarchy(Rng* rng, const HierarchyParams& params) {
  Schema schema;
  std::vector<ClassId> nodes;
  std::vector<int> parent_of;
  std::vector<std::vector<ClassId>> children;

  for (int c = 0; c < params.num_classes; ++c) {
    ClassId id = schema.InternClass(StrCat("H", c));
    nodes.push_back(id);
    children.emplace_back();
    if (c < params.num_trees) {
      parent_of.push_back(-1);  // Roots.
      continue;
    }
    // Attach to a random existing node with spare child slots.
    while (true) {
      int candidate = rng->NextInt(0, c - 1);
      if (static_cast<int>(children[candidate].size()) <
          params.max_children) {
        parent_of.push_back(candidate);
        children[candidate].push_back(id);
        break;
      }
    }
  }

  for (int c = 0; c < params.num_classes; ++c) {
    if (parent_of[c] < 0) continue;
    ClassDefinition* definition = schema.mutable_class_definition(nodes[c]);
    definition->isa.AddClause(
        ClassClause::Of(ClassLiteral::Positive(nodes[parent_of[c]])));
    // Pairwise disjoint from earlier siblings ([BCN92] semantics).
    for (ClassId sibling : children[parent_of[c]]) {
      if (sibling == nodes[c]) break;
      definition->isa.AddClause(
          ClassClause::Of(ClassLiteral::Negative(sibling)));
    }
  }

  // A light attribute per root, ranged at the root itself, so the schema
  // has cardinality content without affecting the hierarchy structure.
  // One attribute symbol per tree: a shared symbol would put all roots in
  // one target-side clique and merge the trees into a single cluster.
  for (int t = 0; t < params.num_trees && t < params.num_classes; ++t) {
    AttributeId link = schema.InternAttribute(StrCat("link", t));
    ClassDefinition* definition = schema.mutable_class_definition(nodes[t]);
    AttributeSpec spec;
    spec.term = AttributeTerm::Direct(link);
    spec.cardinality = Cardinality(0, 2);
    spec.range = ClassFormula::OfClass(nodes[t]);
    definition->attributes.push_back(std::move(spec));
  }

  CAR_CHECK(schema.Validate().ok());
  return schema;
}

Schema GenerateClusteredSchema(Rng* rng, const ClusteredParams& params) {
  Schema schema;
  for (int k = 0; k < params.num_clusters; ++k) {
    std::vector<ClassId> members;
    for (int i = 0; i < params.cluster_size; ++i) {
      members.push_back(schema.InternClass(StrCat("K", k, "_", i)));
    }
    AttributeId attribute = schema.InternAttribute(StrCat("f", k));
    if (!params.dense) {
      // isa edges forming a chain, so consistent compound classes within
      // the cluster are exactly the chain prefixes.
      for (int i = 1; i < params.cluster_size; ++i) {
        ClassDefinition* definition =
            schema.mutable_class_definition(members[i]);
        definition->isa.AddClause(
            ClassClause::Of(ClassLiteral::Positive(members[i - 1])));
      }
    }
    ClassDefinition* head = schema.mutable_class_definition(members[0]);
    AttributeSpec spec;
    spec.term = AttributeTerm::Direct(attribute);
    spec.cardinality = Cardinality(
        1, 1 + rng->NextBelow(params.max_cardinality));
    if (params.dense) {
      // One clause mentioning every member: a target-side clique that
      // keeps the cluster connected with no isa pruning possible.
      ClassClause clause;
      for (ClassId member : members) {
        clause.AddLiteral(ClassLiteral::Positive(member));
      }
      spec.range = ClassFormula({clause});
    } else {
      spec.range = ClassFormula::OfClass(
          members[rng->NextBelow(members.size())]);
    }
    head->attributes.push_back(std::move(spec));
  }
  CAR_CHECK(schema.Validate().ok());
  return schema;
}

Schema GenerateDenseBlowupSchema(const DenseBlowupParams& params) {
  CAR_CHECK(params.chaff_classes >= 1);
  CAR_CHECK(params.core_classes >= 1);
  Schema schema;
  // Chaff: D1..Dn-1 each carry `isa D0 | !D0`. The clause constrains
  // nothing (every subset stays consistent) but mentions D0, which fuses
  // all chaff classes into one cluster of 2^chaff_classes compounds.
  std::vector<ClassId> chaff;
  for (int i = 0; i < params.chaff_classes; ++i) {
    chaff.push_back(schema.InternClass(StrCat("D", i)));
  }
  for (int i = 1; i < params.chaff_classes; ++i) {
    ClassClause tautology;
    tautology.AddLiteral(ClassLiteral::Positive(chaff[0]));
    tautology.AddLiteral(ClassLiteral::Negative(chaff[0]));
    schema.mutable_class_definition(chaff[i])
        ->isa.AddClause(std::move(tautology));
  }
  // Core: an isa chain E0 <- E1 <- ... with the head requiring
  // g-successors in the deepest class, so its compounds carry counted
  // unknowns and bound rows.
  std::vector<ClassId> core;
  for (int i = 0; i < params.core_classes; ++i) {
    core.push_back(schema.InternClass(StrCat("E", i)));
  }
  for (int i = 1; i < params.core_classes; ++i) {
    schema.mutable_class_definition(core[i])->isa.AddClause(
        ClassClause::Of(ClassLiteral::Positive(core[i - 1])));
  }
  AttributeId attribute = schema.InternAttribute("g");
  AttributeSpec spec;
  spec.term = AttributeTerm::Direct(attribute);
  spec.cardinality = Cardinality(1, params.max_cardinality);
  spec.range = ClassFormula::OfClass(core[params.core_classes - 1]);
  schema.mutable_class_definition(core[0])->attributes.push_back(
      std::move(spec));
  CAR_CHECK(schema.Validate().ok());
  return schema;
}

uint64_t DenseBlowupCompoundCount(const DenseBlowupParams& params) {
  // Chaff cluster: every nonempty subset of the chaff classes is a
  // consistent compound (the tautological clause prunes nothing). Core
  // cluster: the isa chain admits exactly the nonempty prefixes. Plus
  // the empty compound the expansion always carries at index 0.
  return ((uint64_t{1} << params.chaff_classes) - 1) +
         static_cast<uint64_t>(params.core_classes) + 1;
}

Schema GenerateDenseUnsatSchema(const DenseUnsatParams& params) {
  CAR_CHECK(params.chaff_classes >= 1);
  CAR_CHECK(params.core_classes >= 1);
  CAR_CHECK(params.max_cardinality >= 1);
  Schema schema;
  // Chaff: identical to GenerateDenseBlowupSchema. D1..Dn-1 carry the
  // tautological `isa D0 | !D0`, fusing all chaff classes into one
  // cluster of 2^chaff_classes consistent subsets with no Ψ content.
  std::vector<ClassId> chaff;
  for (int i = 0; i < params.chaff_classes; ++i) {
    chaff.push_back(schema.InternClass(StrCat("D", i)));
  }
  for (int i = 1; i < params.chaff_classes; ++i) {
    ClassClause tautology;
    tautology.AddLiteral(ClassLiteral::Positive(chaff[0]));
    tautology.AddLiteral(ClassLiteral::Negative(chaff[0]));
    schema.mutable_class_definition(chaff[i])
        ->isa.AddClause(std::move(tautology));
  }
  // Core: pairwise-disjoint classes, so the only consistent core
  // compounds are the singletons {E_i} — each core class's lazy stream
  // delivers one compound and exhausts, which is what arms the UNSAT
  // probes (they only fire on exhausted targets).
  std::vector<ClassId> core;
  for (int i = 0; i < params.core_classes; ++i) {
    core.push_back(schema.InternClass(StrCat("E", i)));
  }
  for (int i = 1; i < params.core_classes; ++i) {
    ClassDefinition* definition = schema.mutable_class_definition(core[i]);
    for (int j = 0; j < i; ++j) {
      definition->isa.AddClause(
          ClassClause::Of(ClassLiteral::Negative(core[j])));
    }
  }
  // Chain: each E_i needs at least one g_i-successor in E_{i+1} and each
  // E_{i+1} member receives at most max_cardinality of them, so Ψ forces
  // V(E_i) <= m * V(E_{i+1}).
  const int last = params.core_classes - 1;
  for (int i = 0; i < last; ++i) {
    AttributeId g = schema.InternAttribute(StrCat("g", i));
    AttributeSpec forward;
    forward.term = AttributeTerm::Direct(g);
    forward.cardinality = Cardinality(1, params.max_cardinality);
    forward.range = ClassFormula::OfClass(core[i + 1]);
    schema.mutable_class_definition(core[i])->attributes.push_back(
        std::move(forward));
    AttributeSpec backward;
    backward.term = AttributeTerm::Inverse(g);
    backward.cardinality = Cardinality(0, params.max_cardinality);
    backward.range = ClassFormula::OfClass(core[i]);
    schema.mutable_class_definition(core[i + 1])->attributes.push_back(
        std::move(backward));
  }
  // Terminal contradiction: every member of E_last has exactly two
  // f-links into E_last while every member receives at most one, so
  // 2 * V(E_last) <= ca_f <= V(E_last) forces V(E_last) = 0 and the
  // chain pulls every V(E_i) to zero with it.
  AttributeId f = schema.InternAttribute("f");
  ClassDefinition* terminal = schema.mutable_class_definition(core[last]);
  AttributeSpec self_loop;
  self_loop.term = AttributeTerm::Direct(f);
  self_loop.cardinality = Cardinality(2, 2);
  self_loop.range = ClassFormula::OfClass(core[last]);
  terminal->attributes.push_back(std::move(self_loop));
  AttributeSpec in_bound;
  in_bound.term = AttributeTerm::Inverse(f);
  in_bound.cardinality = Cardinality(0, 1);
  in_bound.range = ClassFormula::OfClass(core[last]);
  terminal->attributes.push_back(std::move(in_bound));
  CAR_CHECK(schema.Validate().ok());
  return schema;
}

uint64_t DenseUnsatCompoundCount(const DenseUnsatParams& params) {
  // Chaff: every nonempty subset. Core: the pairwise disjointness prunes
  // everything but the singletons. Plus the empty compound (index 0).
  return ((uint64_t{1} << params.chaff_classes) - 1) +
         static_cast<uint64_t>(params.core_classes) + 1;
}

Schema GenerateChainSchema(const ChainParams& params) {
  Schema schema;
  std::vector<ClassId> links;
  for (int k = 0; k <= params.length; ++k) {
    links.push_back(schema.InternClass(StrCat("N", k)));
  }
  for (int k = 0; k < params.length; ++k) {
    AttributeId attribute = schema.InternAttribute(StrCat("e", k));
    ClassDefinition* definition = schema.mutable_class_definition(links[k]);
    AttributeSpec forward;
    forward.term = AttributeTerm::Direct(attribute);
    forward.cardinality = Cardinality(1, params.fanout);
    forward.range = ClassFormula::OfClass(links[k + 1]);
    definition->attributes.push_back(std::move(forward));

    ClassDefinition* next = schema.mutable_class_definition(links[k + 1]);
    AttributeSpec backward;
    backward.term = AttributeTerm::Inverse(attribute);
    backward.cardinality = Cardinality(1, params.fanout);
    backward.range = ClassFormula::OfClass(links[k]);
    next->attributes.push_back(std::move(backward));
  }
  CAR_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace car
