#ifndef CAR_WORKLOADS_GENERATORS_H_
#define CAR_WORKLOADS_GENERATORS_H_

#include "base/result.h"
#include "base/rng.h"
#include "model/schema.h"

namespace car {

/// Parameters for the generators. All generators are deterministic given
/// the Rng seed, so benchmark series are reproducible.
struct GeneralSchemaParams {
  int num_classes = 8;
  int num_attributes = 3;
  /// Probability (percent) that a class gets an isa clause; each clause
  /// has 1-2 literals, possibly negated.
  int isa_percent = 60;
  int negation_percent = 30;
  int union_percent = 30;
  /// Probability (percent) that a class gets an attribute spec.
  int attribute_percent = 50;
  /// Probability (percent) that an attribute spec uses the inverse term
  /// (inv A) — the construct whose interaction with cardinalities drives
  /// the paper's finite-model effects.
  int inverse_percent = 25;
  uint64_t max_cardinality = 3;
  /// Number of binary relations (with role clauses and participations).
  int num_relations = 0;
};

/// A random "general" CAR schema exercising all constructs. Schemas are
/// always well-formed (validated) but may contain unsatisfiable classes —
/// that is the point.
Schema RandomGeneralSchema(Rng* rng, const GeneralSchemaParams& params);

/// A tiny random schema suitable for the brute-force oracle: at most
/// `max_classes` classes (<= 3 recommended), at most one attribute, small
/// cardinalities, optionally one binary relation.
struct TinySchemaParams {
  int max_classes = 3;
  bool allow_attribute = true;
  bool allow_relation = false;
  uint64_t max_cardinality = 2;
};
Schema RandomTinySchema(Rng* rng, const TinySchemaParams& params);

/// A generalization hierarchy in the sense of Section 4.4: a forest of
/// `num_trees` trees with `num_classes` classes total, each child class
/// isa its parent and explicitly disjoint from its earlier siblings
/// (classes at the same depth in a group are pairwise disjoint, [BCN92]).
/// Every class additionally gets a (0, max) attribute toward its parent's
/// domain so the schema is not trivially constraint-free.
struct HierarchyParams {
  int num_classes = 15;
  int num_trees = 1;
  int max_children = 3;
};
Schema GenerateHierarchy(Rng* rng, const HierarchyParams& params);

/// `num_clusters` independent copies of a small strongly-connected
/// cluster of `cluster_size` classes (isa diamonds plus attributes whose
/// ranges stay inside the cluster). The expansion of the whole schema is
/// the union of the per-cluster expansions — the favourable case of
/// Section 4.3.
struct ClusteredParams {
  int num_clusters = 4;
  int cluster_size = 4;
  uint64_t max_cardinality = 2;
  /// Dense clusters: instead of an isa chain (whose consistent subsets
  /// are just prefixes), the cluster's classes are tied only by a shared
  /// attribute-range clause, so *all* 2^cluster_size subsets are
  /// consistent — the worst case for enumeration within a cluster.
  bool dense = false;
};
Schema GenerateClusteredSchema(Rng* rng, const ClusteredParams& params);

/// The lazy-expansion stress family (examples/schemas/dense_blowup.car,
/// scaled): one *chaff* cluster of `chaff_classes` classes tied together
/// only by the tautological clause `isa D0 | !D0` — semantically vacuous
/// but cluster-connecting, so all 2^chaff_classes subsets are consistent
/// compounds and the eager pruned enumeration must visit every one —
/// plus a small attribute-bearing *core* cluster (an isa chain whose
/// head requires 1..max_cardinality g-successors in the deepest chain
/// class) so the schema has real Ψ content and a lazy verdict rests on
/// an LP witness, not just the all-unconstrained shortcut. Every class
/// is satisfiable; the interesting measurement is the cost of finding
/// that out (EXP-T).
struct DenseBlowupParams {
  int chaff_classes = 12;
  int core_classes = 4;
  uint64_t max_cardinality = 2;
};
Schema GenerateDenseBlowupSchema(const DenseBlowupParams& params);

/// Analytic size of the full (eager) expansion of
/// GenerateDenseBlowupSchema: the number of compound classes the pruned
/// eager enumeration materializes. Exact — verified against the eager
/// reasoner in tests — so benchmarks can report the avoided work even on
/// cells where the eager build trips its compound cap before counting.
uint64_t DenseBlowupCompoundCount(const DenseBlowupParams& params);

/// The lazy-UNSAT stress family (EXP-U): the same tautological chaff
/// cluster as GenerateDenseBlowupSchema (all 2^chaff_classes subsets are
/// consistent compounds with no Ψ content, so the eager enumeration
/// drowns), plus a disjoint *core* chain E0..E_{k-1} that is deeply
/// UNSATISFIABLE: the core classes are pairwise disjoint (so only the k
/// singleton compounds are consistent and the per-class lazy streams
/// exhaust after one batch), each E_i needs >= 1 g_i-successor in
/// E_{i+1} whose inverse is bounded by max_cardinality (forcing
/// V(E_i) <= m * V(E_{i+1}) in Ψ), and the terminal class needs exactly
/// two f-links into itself while receiving at most one
/// (2 * V <= ca_f <= V, forcing V(E_{k-1}) = 0). Every core class is
/// unsatisfiable by cascade; every chaff class is satisfiable. The
/// interesting measurement is concluding the core's UNSAT without
/// enumerating the chaff (EXP-U).
struct DenseUnsatParams {
  int chaff_classes = 12;
  /// Depth k of the contradiction chain (>= 1; k == 1 is just the
  /// terminal self-loop contradiction).
  int core_classes = 4;
  /// Chain fanout bound m: larger values make the cascade numerically
  /// shallower (V_i <= m^(k-1-i) * V_{k-1}) without changing the verdict.
  uint64_t max_cardinality = 2;
};
Schema GenerateDenseUnsatSchema(const DenseUnsatParams& params);

/// Analytic eager-expansion size of GenerateDenseUnsatSchema (exact,
/// test-verified): 2^chaff_classes - 1 chaff subsets, the core_classes
/// singletons, and the always-present empty compound.
uint64_t DenseUnsatCompoundCount(const DenseUnsatParams& params);

/// A chain of `length` classes where class k requires between 1 and
/// `fanout` successors (attribute a_k) in class k+1, and the inverse
/// direction is bounded too. Compound classes stay linear in `length`
/// while the disequation system grows with it — the workload for the
/// phase-2 (LP) scaling benchmark.
struct ChainParams {
  int length = 10;
  uint64_t fanout = 3;
};
Schema GenerateChainSchema(const ChainParams& params);

}  // namespace car

#endif  // CAR_WORKLOADS_GENERATORS_H_
