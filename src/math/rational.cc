#include "math/rational.h"

#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  CAR_CHECK(!denominator_.is_zero()) << "rational with zero denominator";
  Reduce();
}

Result<Rational> Rational::FromString(std::string_view text) {
  text = StripWhitespace(text);
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    CAR_ASSIGN_OR_RETURN(BigInt value, BigInt::FromString(text));
    return Rational(std::move(value));
  }
  CAR_ASSIGN_OR_RETURN(BigInt numerator,
                       BigInt::FromString(text.substr(0, slash)));
  CAR_ASSIGN_OR_RETURN(BigInt denominator,
                       BigInt::FromString(text.substr(slash + 1)));
  if (denominator.is_zero()) {
    return ParseError("rational literal with zero denominator");
  }
  return Rational(std::move(numerator), std::move(denominator));
}

void Rational::Reduce() {
  if (denominator_.is_negative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (g != BigInt(1)) {
    numerator_ /= g;
    denominator_ /= g;
  }
}

std::string Rational::ToString() const {
  if (is_integer()) return numerator_.ToString();
  return StrCat(numerator_, "/", denominator_);
}

BigInt Rational::Floor() const {
  BigInt quotient;
  BigInt remainder;
  BigInt::DivMod(numerator_, denominator_, &quotient, &remainder);
  if (remainder.is_negative()) quotient -= BigInt(1);
  return quotient;
}

BigInt Rational::Ceil() const {
  BigInt quotient;
  BigInt remainder;
  BigInt::DivMod(numerator_, denominator_, &quotient, &remainder);
  if (remainder.is_positive()) quotient += BigInt(1);
  return quotient;
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_ = -result.numerator_;
  return result;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(
      numerator_ * other.denominator_ + other.numerator_ * denominator_,
      denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return *this + (-other);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(numerator_ * other.numerator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator/(const Rational& other) const {
  CAR_CHECK(!other.is_zero()) << "rational division by zero";
  return Rational(numerator_ * other.denominator_,
                  denominator_ * other.numerator_);
}

// In debug builds every in-place operator checks itself against the
// binary operator it replaces; both reduce fully, so the results must be
// member-wise identical.
#ifndef NDEBUG
#define CAR_RATIONAL_ASSERT_MATCHES(expected)                         \
  CAR_CHECK(numerator_ == (expected).numerator_ &&                    \
            denominator_ == (expected).denominator_)                  \
      << "in-place rational operator diverged from binary operator"
#else
#define CAR_RATIONAL_ASSERT_MATCHES(expected) (void)(expected)
#endif

Rational& Rational::operator+=(const Rational& other) {
#ifndef NDEBUG
  const Rational expected = *this + other;
#else
  const int expected = 0;
#endif
  numerator_ = numerator_ * other.denominator_ + other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  CAR_RATIONAL_ASSERT_MATCHES(expected);
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
#ifndef NDEBUG
  const Rational expected = *this - other;
#else
  const int expected = 0;
#endif
  numerator_ = numerator_ * other.denominator_ - other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Reduce();
  CAR_RATIONAL_ASSERT_MATCHES(expected);
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
#ifndef NDEBUG
  const Rational expected = *this * other;
#else
  const int expected = 0;
#endif
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Reduce();
  CAR_RATIONAL_ASSERT_MATCHES(expected);
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  CAR_CHECK(!other.is_zero()) << "rational division by zero";
#ifndef NDEBUG
  const Rational expected = *this / other;
#else
  const int expected = 0;
#endif
  // Copy the divisor's numerator first: under aliasing (x /= x) the
  // member update below would otherwise read the mutated value.
  const BigInt other_numerator = other.numerator_;
  numerator_ *= other.denominator_;
  denominator_ *= other_numerator;
  Reduce();  // Restores the positive-denominator invariant.
  CAR_RATIONAL_ASSERT_MATCHES(expected);
  return *this;
}

#undef CAR_RATIONAL_ASSERT_MATCHES

bool Rational::operator<(const Rational& other) const {
  // Denominators are positive, so cross-multiplication preserves order.
  return numerator_ * other.denominator_ < other.numerator_ * denominator_;
}

}  // namespace car
