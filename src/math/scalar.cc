#include "math/scalar.h"

#include <numeric>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// Promotions performed by this thread (see promotions_this_thread()).
thread_local uint64_t tls_promotions = 0;

/// |value| as uint64, correct for INT64_MIN.
inline uint64_t Magnitude(int64_t value) {
  return value < 0 ? ~static_cast<uint64_t>(value) + 1
                   : static_cast<uint64_t>(value);
}

inline uint64_t Gcd64(uint64_t a, uint64_t b) { return std::gcd(a, b); }

}  // namespace

uint64_t Scalar::promotions_this_thread() { return tls_promotions; }

Scalar::Scalar(const Rational& value) { SetFromRational(value); }

void Scalar::SetFromRational(const Rational& value) {
  if (value.numerator().FitsInt64() && value.denominator().FitsInt64()) {
    num_ = value.numerator().ToInt64();
    den_ = value.denominator().ToInt64();
    delete big_;
    big_ = nullptr;
    return;
  }
  if (big_ == nullptr) ++tls_promotions;
  if (big_ != nullptr) {
    *big_ = value;
  } else {
    big_ = new Rational(value);
  }
}

Rational Scalar::ToRational() const {
  if (big_ != nullptr) return *big_;
  return Rational(BigInt(num_), BigInt(den_));
}

std::string Scalar::ToString() const {
  if (big_ != nullptr) return big_->ToString();
  if (den_ == 1) return std::to_string(num_);
  return StrCat(num_, "/", den_);
}

Scalar Scalar::operator-() const {
  Scalar result = *this;
  if (result.big_ == nullptr && result.num_ != INT64_MIN) {
    result.num_ = -result.num_;
    return result;
  }
  // -INT64_MIN overflows (promotes); big values stay big.
  result.SetFromRational(-ToRational());
  return result;
}

bool Scalar::AddSmall(int64_t c, int64_t d) {
  // a/b + c/d with a/b, c/d reduced and b, d > 0 (Knuth 4.5.1): with
  // g1 = gcd(b, d), the parts b/g1 and d/g1 are coprime to the sum
  // t = a*(d/g1) + c*(b/g1), so the final reduction only needs
  // gcd(t, g1).
  const int64_t g1 = static_cast<int64_t>(
      Gcd64(static_cast<uint64_t>(den_), static_cast<uint64_t>(d)));
  const int64_t d1 = d / g1;
  const int64_t b1 = den_ / g1;
  int64_t lhs, rhs, t, new_den;
  if (__builtin_mul_overflow(num_, d1, &lhs)) return false;
  if (__builtin_mul_overflow(c, b1, &rhs)) return false;
  if (__builtin_add_overflow(lhs, rhs, &t)) return false;
  if (t == 0) {
    num_ = 0;
    den_ = 1;
    return true;
  }
  if (__builtin_mul_overflow(den_, d1, &new_den)) return false;
  const int64_t g2 =
      static_cast<int64_t>(Gcd64(Magnitude(t), static_cast<uint64_t>(g1)));
  num_ = t / g2;
  den_ = new_den / g2;
  return true;
}

bool Scalar::MulSmall(const Scalar& other) {
  // (a/b) * (c/d) with cross-reduction: dividing a by gcd(|a|, d) and c
  // by gcd(|c|, b) first keeps the products as small as possible and
  // leaves the result already in lowest terms.
  const uint64_t g1 =
      Gcd64(Magnitude(num_), static_cast<uint64_t>(other.den_));
  const uint64_t g2 =
      Gcd64(Magnitude(other.num_), static_cast<uint64_t>(den_));
  // Denominators are strictly positive, so g1 and g2 are nonzero and
  // (dividing an int64) fit in int64 themselves.
  const int64_t a = num_ / static_cast<int64_t>(g1);
  const int64_t c = other.num_ / static_cast<int64_t>(g2);
  const int64_t b = den_ / static_cast<int64_t>(g2);
  const int64_t d = other.den_ / static_cast<int64_t>(g1);
  int64_t new_num, new_den;
  if (__builtin_mul_overflow(a, c, &new_num)) return false;
  if (__builtin_mul_overflow(b, d, &new_den)) return false;
  num_ = new_num;
  den_ = new_den;
  if (num_ == 0) den_ = 1;
  return true;
}

Scalar& Scalar::operator/=(const Scalar& other) {
  CAR_CHECK(!other.is_zero()) << "scalar division by zero";
  if (big_ == nullptr && other.big_ == nullptr &&
      other.num_ != INT64_MIN) {
    // Multiply by the reciprocal, keeping the denominator positive.
    Scalar reciprocal;
    reciprocal.num_ = other.num_ < 0 ? -other.den_ : other.den_;
    reciprocal.den_ = other.num_ < 0 ? -other.num_ : other.num_;
    if (MulSmall(reciprocal)) return *this;
  }
  DivSlow(other);
  return *this;
}

void Scalar::AddSlow(const Scalar& other) {
  SetFromRational(ToRational() + other.ToRational());
}

void Scalar::SubSlow(const Scalar& other) {
  SetFromRational(ToRational() - other.ToRational());
}

void Scalar::MulSlow(const Scalar& other) {
  SetFromRational(ToRational() * other.ToRational());
}

void Scalar::DivSlow(const Scalar& other) {
  SetFromRational(ToRational() / other.ToRational());
}

bool Scalar::operator<(const Scalar& other) const {
#ifdef __SIZEOF_INT128__
  if (big_ == nullptr && other.big_ == nullptr) {
    // Denominators are positive, so cross-multiplication preserves
    // order; the products fit in 128 bits by construction.
    return static_cast<__int128>(num_) * other.den_ <
           static_cast<__int128>(other.num_) * den_;
  }
#endif
  return ToRational() < other.ToRational();
}

}  // namespace car
