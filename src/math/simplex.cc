#include "math/simplex.h"

#include <map>
#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

// --- Cell helpers shared by the sparse production kernel and the dense
// reference kernels. A "cell" is Scalar (production, dense-scalar) or
// Rational (dense-rational); both are exact, so every kernel follows the
// identical Bland pivot sequence and returns bit-identical results.

template <typename Cell>
Cell CellFromRational(const Rational& value);
template <>
inline Rational CellFromRational<Rational>(const Rational& value) {
  return value;
}
template <>
inline Scalar CellFromRational<Scalar>(const Rational& value) {
  return Scalar(value);
}

inline Rational CellToRational(const Rational& value) { return value; }
inline Rational CellToRational(const Scalar& value) {
  return value.ToRational();
}

// ===========================================================================
// Sparse production kernel: compressed sparse rows of Scalar cells.
// ===========================================================================

/// The production simplex tableau. Column layout: structural variables
/// first, then slack/surplus variables, then artificial variables; the
/// right-hand side is stored separately per row. Rows are compressed
/// sparse (math/sparse_row.h): Ψ_S rows touch only one cluster or one
/// Natt/Nrel constraint each, so pivots, pricing, and snapshot clones
/// walk nonzeros instead of columns.
struct SparseTableau {
  std::vector<SparseRow> rows;
  std::vector<Scalar> rhs;
  std::vector<int> basis;           // Basic variable of each row.
  std::vector<bool> is_artificial;  // Indexed by column.
  // Warm-start bookkeeping (see SimplexSnapshot): the identity column a
  // row was created with, and whether the row was negated at creation.
  std::vector<int> init_basic;
  std::vector<bool> flipped;
  // Per row: width up to which the row is known all-zero over real
  // columns (see SimplexSnapshot::zero_checked).
  std::vector<int> zero_checked;
  int num_cols = 0;
  // Reusable merge buffer for Pivot (SubtractScaled swaps row storage
  // through it, so the whole elimination sweep allocates at most once).
  std::vector<SparseRow::Entry> scratch;

  /// Pivots on (pivot_row, pivot_col): divides the pivot row by the pivot
  /// element and eliminates the column from every row that has a nonzero
  /// there — rows with a structural zero at the pivot column are not even
  /// read past one binary search.
  void Pivot(size_t pivot_row, int pivot_col) {
    SparseRow& prow = rows[pivot_row];
    const Scalar* pivot_cell = prow.Find(pivot_col);
    CAR_CHECK(pivot_cell != nullptr) << "pivot on a zero cell";
    Scalar pivot_value = *pivot_cell;
    // Normalizing the pivot row preserves its zero pattern, so its
    // zero_checked prefix stays valid; eliminated rows change and lose
    // theirs.
    prow.DivideAll(pivot_value);
    rhs[pivot_row] /= pivot_value;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row) continue;
      const Scalar* cell = rows[r].Find(pivot_col);
      if (cell == nullptr) continue;
      Scalar factor = *cell;
      rows[r].SubtractScaled(factor, prow, &scratch);
      rhs[r] -= factor * rhs[pivot_row];
      zero_checked[r] = 0;
    }
    basis[pivot_row] = pivot_col;
  }
};

uint64_t NonzeroCells(const SparseTableau& tableau) {
  uint64_t nonzeros = 0;
  for (const SparseRow& row : tableau.rows) nonzeros += row.nnz();
  return nonzeros;
}

uint64_t DenseExtent(const SparseTableau& tableau) {
  return tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols);
}

/// Resident-byte estimate of the sparse tableau for the governor: entry
/// storage plus the right-hand sides (Scalar cells own heap storage
/// beyond sizeof only after promotion, so this is a lower bound, exactly
/// as the dense estimate was).
uint64_t NonzeroBytes(const SparseTableau& tableau) {
  return NonzeroCells(tableau) * sizeof(SparseRow::Entry) +
         tableau.rhs.size() * sizeof(Scalar);
}

/// Runs primal simplex with Bland's rule, maximizing `cost . x` on the
/// current tableau. Artificial columns never enter the basis unless
/// `allow_artificial` is set (phase 1). Returns the outcome; on
/// kResourceExhausted-style pivot overflow returns an error carrying a
/// LimitReport-formatted message, and a tripped/cancelled ExecContext
/// aborts between pivots.
Result<LpOutcome> RunSimplex(SparseTableau* tableau,
                             const std::vector<Scalar>& cost,
                             bool allow_artificial, size_t max_pivots,
                             ExecContext* exec, size_t* pivots) {
  const size_t num_rows = tableau->rows.size();
  // Reduced costs z_j = c_j - sum_i c_{B(i)} * T[i][j], computed once and
  // then maintained incrementally across pivots (the pivot makes the
  // entering column's reduced cost zero and updates the rest by one row
  // combination). The vector is dense, but both the initial fold and the
  // per-pivot update only touch the pivot row's nonzeros.
  std::vector<Scalar> reduced(cost.begin(),
                              cost.begin() + tableau->num_cols);
  for (size_t i = 0; i < num_rows; ++i) {
    const Scalar& basic_cost = cost[tableau->basis[i]];
    if (basic_cost.is_zero()) continue;
    for (const SparseRow::Entry& entry : tableau->rows[i].entries()) {
      reduced[entry.col] -= basic_cost * entry.value;
    }
  }
  while (true) {
    // Bland's rule: enter the lowest-indexed column with positive
    // reduced cost.
    int entering = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!allow_artificial && tableau->is_artificial[j]) continue;
      if (reduced[j].is_positive()) {
        entering = j;
        break;
      }
    }
    if (entering < 0) return LpOutcome::kOptimal;

    // Ratio test; ties broken by lowest basic-variable index (Bland).
    int leaving_row = -1;
    Scalar best_ratio;
    for (size_t i = 0; i < num_rows; ++i) {
      const Scalar* coefficient = tableau->rows[i].Find(entering);
      if (coefficient == nullptr || !coefficient->is_positive()) continue;
      Scalar ratio = tableau->rhs[i] / *coefficient;
      if (leaving_row < 0 || ratio < best_ratio ||
          (ratio == best_ratio &&
           tableau->basis[i] < tableau->basis[leaving_row])) {
        leaving_row = static_cast<int>(i);
        best_ratio = std::move(ratio);
      }
    }
    if (leaving_row < 0) return LpOutcome::kUnbounded;

    tableau->Pivot(static_cast<size_t>(leaving_row), entering);
    // Fold the (now normalized) pivot row into the reduced-cost row.
    Scalar factor = reduced[entering];
    if (!factor.is_zero()) {
      for (const SparseRow::Entry& entry :
           tableau->rows[static_cast<size_t>(leaving_row)].entries()) {
        reduced[entry.col] -= factor * entry.value;
      }
    }
    ++*pivots;
    if (exec != nullptr) exec->CountPivots(1);
    CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "simplex"));
    // A pivot is an expensive work unit (O(nonzeros) exact operations),
    // so the budget stride of ChargeWork is too coarse for deadlines
    // here; consult the clock every pivot — a clock read is noise next
    // to the pivot itself.
    CAR_RETURN_IF_ERROR(GovCheck(exec, "simplex"));
    if (max_pivots != 0 && *pivots > max_pivots) {
      return GovRecordTrip(exec, LimitKind::kMaxPivots, "simplex",
                           max_pivots, max_pivots);
    }
  }
}

Scalar ObjectiveValue(const SparseTableau& tableau,
                      const std::vector<Scalar>& cost) {
  Scalar value;
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const Scalar& basic_cost = cost[tableau.basis[i]];
    if (!basic_cost.is_zero()) value += basic_cost * tableau.rhs[i];
  }
  return value;
}

/// Reads a Farkas certificate off an optimal phase-1 tableau whose
/// objective is negative (infeasible system). COLD tableaus only
/// (straight out of BuildTableau + phase 1): there, row i's init_basic
/// column held the identity unit at creation and no other row's creation
/// wrote to it, so its current contents are B^-1 e_i and the phase-1 dual
/// prices out as y_i = -S_i with
///   S_i = Σ_{rows r with an artificial basic} T[r][init_basic[i]].
/// (Resumed tableaus violate the premise — an appended row's creation
/// vector overlaps earlier rows' init_basic columns — which is why the
/// extraction is never offered on the resume path.) With ν' = -y, LP
/// duality at the phase-1 optimum gives ν'ᵀA_j <= 0 for every
/// non-artificial tableau column and ν'ᵀb' > 0; mapping tableau rows back
/// through their creation sign flip yields multipliers on the ORIGINAL
/// constraints, ν_i = flipped[i] ? -S_i : S_i, satisfying the
/// InfeasibilityCertificate contract. Callers re-validate regardless.
InfeasibilityCertificate ExtractFarkasCertificate(
    const SparseTableau& tableau) {
  const size_t num_rows = tableau.rows.size();
  std::vector<int> row_of_col(static_cast<size_t>(tableau.num_cols), -1);
  for (size_t i = 0; i < num_rows; ++i) {
    row_of_col[static_cast<size_t>(tableau.init_basic[i])] =
        static_cast<int>(i);
  }
  InfeasibilityCertificate certificate;
  certificate.row_multipliers.assign(num_rows, Rational());
  for (size_t r = 0; r < num_rows; ++r) {
    if (!tableau.is_artificial[tableau.basis[r]]) continue;
    for (const SparseRow::Entry& entry : tableau.rows[r].entries()) {
      int i = row_of_col[static_cast<size_t>(entry.col)];
      if (i < 0) continue;
      certificate.row_multipliers[static_cast<size_t>(i)] +=
          entry.value.ToRational();
    }
  }
  for (size_t i = 0; i < num_rows; ++i) {
    if (tableau.flipped[i]) {
      certificate.row_multipliers[i] = -certificate.row_multipliers[i];
    }
  }
  return certificate;
}

/// Builds the phase-1 tableau from the system: slack variables for <=,
/// surplus+artificial for >=, artificial for =; right-hand sides are made
/// nonnegative first. Rows are assembled directly in sparse form from the
/// (already sparse) LinearExpr term maps — the system is never densified.
SparseTableau BuildTableau(const LinearSystem& system) {
  const int n = system.num_variables();
  const auto& constraints = system.constraints();

  // First pass: count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const LinearConstraint& constraint : constraints) {
    bool flip = constraint.rhs.is_negative();
    Relation relation = constraint.relation;
    if (flip && relation == Relation::kLessEqual) {
      relation = Relation::kGreaterEqual;
    } else if (flip && relation == Relation::kGreaterEqual) {
      relation = Relation::kLessEqual;
    }
    switch (relation) {
      case Relation::kLessEqual:
        ++num_slack;
        break;
      case Relation::kGreaterEqual:
        ++num_slack;  // Surplus.
        ++num_artificial;
        break;
      case Relation::kEqual:
        ++num_artificial;
        break;
    }
  }

  SparseTableau tableau;
  tableau.num_cols = n + num_slack + num_artificial;
  tableau.is_artificial.assign(tableau.num_cols, false);
  for (int j = n + num_slack; j < tableau.num_cols; ++j) {
    tableau.is_artificial[j] = true;
  }

  int next_slack = n;
  int next_artificial = n + num_slack;
  for (const LinearConstraint& constraint : constraints) {
    SparseRow row;
    row.reserve(constraint.expr.terms().size() + 2);
    Rational rhs = constraint.rhs;
    Relation relation = constraint.relation;
    bool flip = rhs.is_negative();
    // LinearExpr terms are sorted by variable and nonzero, and every
    // structural index is below the auxiliary columns, so the row can be
    // appended in order without any sorting pass.
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, n);
      row.Append(variable, Scalar(flip ? -coefficient : coefficient));
    }
    if (flip) {
      rhs = -rhs;
      if (relation == Relation::kLessEqual) {
        relation = Relation::kGreaterEqual;
      } else if (relation == Relation::kGreaterEqual) {
        relation = Relation::kLessEqual;
      }
    }
    int basic = -1;
    switch (relation) {
      case Relation::kLessEqual:
        row.Append(next_slack, Scalar(1));
        basic = next_slack++;
        break;
      case Relation::kGreaterEqual:
        row.Append(next_slack, Scalar(-1));
        ++next_slack;
        row.Append(next_artificial, Scalar(1));
        basic = next_artificial++;
        break;
      case Relation::kEqual:
        row.Append(next_artificial, Scalar(1));
        basic = next_artificial++;
        break;
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(Scalar(rhs));
    tableau.basis.push_back(basic);
    tableau.init_basic.push_back(basic);
    tableau.flipped.push_back(flip);
    tableau.zero_checked.push_back(0);
  }
  return tableau;
}

/// After a successful phase 1, pivots artificial variables out of the
/// basis (their value is zero); rows where no structural or slack column
/// is available are redundant and removed. Entries are sorted by column,
/// so "first nonzero non-artificial cell" is the same column the dense
/// left-to-right scan picked.
void RemoveArtificialsFromBasis(SparseTableau* tableau) {
  for (size_t i = 0; i < tableau->rows.size();) {
    if (!tableau->is_artificial[tableau->basis[i]]) {
      ++i;
      continue;
    }
    int replacement = -1;
    for (const SparseRow::Entry& entry : tableau->rows[i].entries()) {
      if (tableau->is_artificial[entry.col]) continue;
      replacement = entry.col;
      break;
    }
    if (replacement >= 0) {
      tableau->Pivot(i, replacement);
      ++i;
    } else {
      // Redundant constraint: the whole row is zero over real columns.
      tableau->rows.erase(tableau->rows.begin() + static_cast<long>(i));
      tableau->rhs.erase(tableau->rhs.begin() + static_cast<long>(i));
      tableau->basis.erase(tableau->basis.begin() + static_cast<long>(i));
      tableau->init_basic.erase(tableau->init_basic.begin() +
                                static_cast<long>(i));
      tableau->flipped.erase(tableau->flipped.begin() + static_cast<long>(i));
      tableau->zero_checked.erase(tableau->zero_checked.begin() +
                                  static_cast<long>(i));
    }
  }
}

std::vector<Rational> ExtractSolution(const SparseTableau& tableau, int n) {
  std::vector<Rational> values(n);
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    if (tableau.basis[i] < n) {
      values[tableau.basis[i]] = tableau.rhs[i].ToRational();
    }
  }
  return values;
}

/// Moves the tableau-shaped members of a snapshot into a SparseTableau
/// (and back): the snapshot is the persisted form of the same sparse
/// state.
SparseTableau TableauFromSnapshot(SimplexSnapshot* snapshot) {
  SparseTableau tableau;
  tableau.rows = std::move(snapshot->rows);
  tableau.rhs = std::move(snapshot->rhs);
  tableau.basis = std::move(snapshot->basis);
  tableau.is_artificial = std::move(snapshot->is_artificial);
  tableau.init_basic = std::move(snapshot->init_basic);
  tableau.flipped = std::move(snapshot->row_flipped);
  tableau.zero_checked = std::move(snapshot->zero_checked);
  tableau.zero_checked.resize(tableau.rows.size(), 0);
  tableau.num_cols = snapshot->num_cols;
  return tableau;
}

void TableauIntoSnapshot(SparseTableau tableau, SimplexSnapshot* snapshot) {
  snapshot->rows = std::move(tableau.rows);
  snapshot->rhs = std::move(tableau.rhs);
  snapshot->basis = std::move(tableau.basis);
  snapshot->is_artificial = std::move(tableau.is_artificial);
  snapshot->init_basic = std::move(tableau.init_basic);
  snapshot->row_flipped = std::move(tableau.flipped);
  snapshot->zero_checked = std::move(tableau.zero_checked);
  snapshot->num_cols = tableau.num_cols;
}

/// Appends a zero column; returns the new column's index. Sparse rows
/// store nothing for a zero column, so this is O(1) — the dense kernel's
/// per-row push_back is exactly the cost this representation deletes.
int AppendColumn(SparseTableau* tableau, bool artificial) {
  tableau->is_artificial.push_back(artificial);
  return tableau->num_cols++;
}

/// Pivots zero-valued basic artificial variables out of the basis
/// wherever the row has a nonzero non-artificial cell. Rows where it does
/// not (all-zero over real columns) stay parked on their zero-valued
/// artificial: they are inert for the current solve but may receive
/// nonzero cells from a later delta, after which this sweep runs again.
/// Pivoting on a cell of either sign is sound here because the row's
/// right-hand side is zero (the artificial's value), so feasibility is
/// preserved. Rows whose artificial is still positive (fresh rows awaiting
/// phase 1) are left alone — evicting those would fabricate feasibility.
void ParkOrEvictArtificials(SparseTableau* tableau) {
  for (size_t i = 0; i < tableau->rows.size(); ++i) {
    if (!tableau->is_artificial[tableau->basis[i]]) continue;
    if (!tableau->rhs[i].is_zero()) continue;
    // Resume from the row's known-zero prefix: columns below it were
    // found zero by an earlier sweep and no pivot has modified the row
    // since (Pivot resets the prefix), so only appended columns — the
    // ones a delta could have populated — need scanning. The sparse row
    // holds only nonzeros, so the scan is over entries, not columns.
    bool evicted = false;
    for (const SparseRow::Entry& entry : tableau->rows[i].entries()) {
      if (entry.col < tableau->zero_checked[i]) continue;
      if (tableau->is_artificial[entry.col]) continue;
      tableau->Pivot(i, entry.col);
      evicted = true;
      break;
    }
    if (!evicted) tableau->zero_checked[i] = tableau->num_cols;
  }
}

// ===========================================================================
// Dense reference kernel, templated on the cell type. Retained for the
// differential tests and the dense-vs-sparse / bigint-vs-scalar bench
// cells; reachable only through Maximize/CheckFeasible with an explicit
// Options::kernel selection.
// ===========================================================================

template <typename Cell>
struct DenseTableau {
  std::vector<std::vector<Cell>> rows;
  std::vector<Cell> rhs;
  std::vector<int> basis;
  std::vector<bool> is_artificial;
  int num_cols = 0;

  void Pivot(size_t pivot_row, int pivot_col) {
    Cell pivot_value = rows[pivot_row][pivot_col];
    CAR_CHECK(!pivot_value.is_zero());
    for (Cell& cell : rows[pivot_row]) cell /= pivot_value;
    rhs[pivot_row] /= pivot_value;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row) continue;
      Cell factor = rows[r][pivot_col];
      if (factor.is_zero()) continue;
      for (int c = 0; c < num_cols; ++c) {
        if (!rows[pivot_row][c].is_zero()) {
          rows[r][c] -= factor * rows[pivot_row][c];
        }
      }
      rhs[r] -= factor * rhs[pivot_row];
    }
    basis[pivot_row] = pivot_col;
  }
};

template <typename Cell>
Result<LpOutcome> RunDenseSimplex(DenseTableau<Cell>* tableau,
                                  const std::vector<Cell>& cost,
                                  bool allow_artificial, size_t max_pivots,
                                  ExecContext* exec, size_t* pivots) {
  const size_t num_rows = tableau->rows.size();
  std::vector<Cell> reduced(cost.begin(), cost.begin() + tableau->num_cols);
  for (size_t i = 0; i < num_rows; ++i) {
    const Cell& basic_cost = cost[tableau->basis[i]];
    if (basic_cost.is_zero()) continue;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!tableau->rows[i][j].is_zero()) {
        reduced[j] -= basic_cost * tableau->rows[i][j];
      }
    }
  }
  while (true) {
    int entering = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!allow_artificial && tableau->is_artificial[j]) continue;
      if (reduced[j].is_positive()) {
        entering = j;
        break;
      }
    }
    if (entering < 0) return LpOutcome::kOptimal;

    int leaving_row = -1;
    Cell best_ratio;
    for (size_t i = 0; i < num_rows; ++i) {
      const Cell& coefficient = tableau->rows[i][entering];
      if (!coefficient.is_positive()) continue;
      Cell ratio = tableau->rhs[i] / coefficient;
      if (leaving_row < 0 || ratio < best_ratio ||
          (ratio == best_ratio &&
           tableau->basis[i] < tableau->basis[leaving_row])) {
        leaving_row = static_cast<int>(i);
        best_ratio = std::move(ratio);
      }
    }
    if (leaving_row < 0) return LpOutcome::kUnbounded;

    tableau->Pivot(static_cast<size_t>(leaving_row), entering);
    Cell factor = reduced[entering];
    if (!factor.is_zero()) {
      const std::vector<Cell>& pivot_row =
          tableau->rows[static_cast<size_t>(leaving_row)];
      for (int j = 0; j < tableau->num_cols; ++j) {
        if (!pivot_row[j].is_zero()) {
          reduced[j] -= factor * pivot_row[j];
        }
      }
    }
    ++*pivots;
    if (exec != nullptr) exec->CountPivots(1);
    CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "simplex"));
    CAR_RETURN_IF_ERROR(GovCheck(exec, "simplex"));
    if (max_pivots != 0 && *pivots > max_pivots) {
      return GovRecordTrip(exec, LimitKind::kMaxPivots, "simplex",
                           max_pivots, max_pivots);
    }
  }
}

template <typename Cell>
Cell DenseObjectiveValue(const DenseTableau<Cell>& tableau,
                         const std::vector<Cell>& cost) {
  Cell value;
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const Cell& basic_cost = cost[tableau.basis[i]];
    if (!basic_cost.is_zero()) value += basic_cost * tableau.rhs[i];
  }
  return value;
}

template <typename Cell>
DenseTableau<Cell> BuildDenseTableau(const LinearSystem& system) {
  const int n = system.num_variables();
  const auto& constraints = system.constraints();

  int num_slack = 0;
  int num_artificial = 0;
  for (const LinearConstraint& constraint : constraints) {
    bool flip = constraint.rhs.is_negative();
    Relation relation = constraint.relation;
    if (flip && relation == Relation::kLessEqual) {
      relation = Relation::kGreaterEqual;
    } else if (flip && relation == Relation::kGreaterEqual) {
      relation = Relation::kLessEqual;
    }
    switch (relation) {
      case Relation::kLessEqual:
        ++num_slack;
        break;
      case Relation::kGreaterEqual:
        ++num_slack;
        ++num_artificial;
        break;
      case Relation::kEqual:
        ++num_artificial;
        break;
    }
  }

  DenseTableau<Cell> tableau;
  tableau.num_cols = n + num_slack + num_artificial;
  tableau.is_artificial.assign(tableau.num_cols, false);
  for (int j = n + num_slack; j < tableau.num_cols; ++j) {
    tableau.is_artificial[j] = true;
  }

  int next_slack = n;
  int next_artificial = n + num_slack;
  for (const LinearConstraint& constraint : constraints) {
    std::vector<Cell> row(tableau.num_cols);
    Rational rhs = constraint.rhs;
    Relation relation = constraint.relation;
    bool flip = rhs.is_negative();
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, n);
      row[variable] =
          CellFromRational<Cell>(flip ? -coefficient : coefficient);
    }
    if (flip) {
      rhs = -rhs;
      if (relation == Relation::kLessEqual) {
        relation = Relation::kGreaterEqual;
      } else if (relation == Relation::kGreaterEqual) {
        relation = Relation::kLessEqual;
      }
    }
    int basic = -1;
    switch (relation) {
      case Relation::kLessEqual:
        row[next_slack] = Cell(1);
        basic = next_slack++;
        break;
      case Relation::kGreaterEqual:
        row[next_slack] = Cell(-1);
        ++next_slack;
        row[next_artificial] = Cell(1);
        basic = next_artificial++;
        break;
      case Relation::kEqual:
        row[next_artificial] = Cell(1);
        basic = next_artificial++;
        break;
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(CellFromRational<Cell>(rhs));
    tableau.basis.push_back(basic);
  }
  return tableau;
}

template <typename Cell>
void RemoveArtificialsFromDenseBasis(DenseTableau<Cell>* tableau) {
  for (size_t i = 0; i < tableau->rows.size();) {
    if (!tableau->is_artificial[tableau->basis[i]]) {
      ++i;
      continue;
    }
    int replacement = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (tableau->is_artificial[j]) continue;
      if (!tableau->rows[i][j].is_zero()) {
        replacement = j;
        break;
      }
    }
    if (replacement >= 0) {
      tableau->Pivot(i, replacement);
      ++i;
    } else {
      tableau->rows.erase(tableau->rows.begin() + static_cast<long>(i));
      tableau->rhs.erase(tableau->rhs.begin() + static_cast<long>(i));
      tableau->basis.erase(tableau->basis.begin() + static_cast<long>(i));
    }
  }
}

template <typename Cell>
uint64_t DenseNonzeroCells(const DenseTableau<Cell>& tableau) {
  uint64_t nonzeros = 0;
  for (const std::vector<Cell>& row : tableau.rows) {
    for (const Cell& cell : row) {
      if (!cell.is_zero()) ++nonzeros;
    }
  }
  return nonzeros;
}

/// The dense-kernel Maximize: identical control flow (and hence identical
/// pivot sequence and answer) to the sparse production path, over dense
/// rows of `Cell`.
template <typename Cell>
Result<LpResult> DenseMaximize(const SimplexSolver::Options& options,
                               const LinearSystem& system,
                               const LinearExpr& objective) {
  ExecContext* exec = options.exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "simplex"));
  const uint64_t promotions_before = Scalar::promotions_this_thread();
  DenseTableau<Cell> tableau = BuildDenseTableau<Cell>(system);
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      exec,
      tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols) *
          sizeof(Cell),
      "simplex"));
  const int n = system.num_variables();
  LpResult result;
  auto finish = [&]() {
    result.scalar_promotions =
        Scalar::promotions_this_thread() - promotions_before;
    result.tableau_nonzeros = DenseNonzeroCells(tableau);
    result.tableau_cells =
        tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols);
    if (exec != nullptr) {
      exec->CountScalarPromotions(result.scalar_promotions);
      exec->RecordTableauFill(result.tableau_nonzeros, result.tableau_cells);
    }
  };

  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Cell> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Cell(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunDenseSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                        options.max_pivots, exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!DenseObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      finish();
      return result;
    }
    RemoveArtificialsFromDenseBasis(&tableau);
  }

  std::vector<Cell> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = CellFromRational<Cell>(coefficient);
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunDenseSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                      options.max_pivots, exec, &result.pivots));
  result.outcome = outcome;
  result.values.assign(n, Rational());
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    if (tableau.basis[i] < n) {
      result.values[tableau.basis[i]] = CellToRational(tableau.rhs[i]);
    }
  }
  result.objective = CellToRational(DenseObjectiveValue(tableau, phase2_cost));
  finish();
  return result;
}

}  // namespace

const char* LpOutcomeToString(LpOutcome outcome) {
  switch (outcome) {
    case LpOutcome::kOptimal:
      return "optimal";
    case LpOutcome::kInfeasible:
      return "infeasible";
    case LpOutcome::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

const char* SimplexKernelToString(SimplexKernel kernel) {
  switch (kernel) {
    case SimplexKernel::kSparseScalar:
      return "sparse-scalar";
    case SimplexKernel::kDenseRational:
      return "dense-rational";
    case SimplexKernel::kDenseScalar:
      return "dense-scalar";
  }
  return "unknown";
}

bool ValidateInfeasibilityCertificate(
    const LinearSystem& system, const InfeasibilityCertificate& certificate) {
  const std::vector<LinearConstraint>& constraints = system.constraints();
  if (certificate.row_multipliers.size() != constraints.size()) return false;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Rational& nu = certificate.row_multipliers[i];
    switch (constraints[i].relation) {
      case Relation::kGreaterEqual:
        if (nu.is_negative()) return false;
        break;
      case Relation::kLessEqual:
        if (nu.is_positive()) return false;
        break;
      case Relation::kEqual:
        break;
    }
  }
  // Fold the used rows into one combined row; the fold is sparse (term
  // maps), so the cost is O(nonzeros of the used rows).
  std::map<int, Rational> combined;
  Rational gap;
  for (size_t i = 0; i < constraints.size(); ++i) {
    const Rational& nu = certificate.row_multipliers[i];
    if (nu.is_zero()) continue;
    for (const auto& [variable, coefficient] : constraints[i].expr.terms()) {
      combined[variable] += nu * coefficient;
    }
    gap += nu * constraints[i].rhs;
  }
  for (const auto& [variable, value] : combined) {
    static_cast<void>(variable);
    if (value.is_positive()) return false;
  }
  return gap.is_positive();
}

Result<LpResult> SimplexSolver::Maximize(const LinearSystem& system,
                                         const LinearExpr& objective) const {
  switch (options_.kernel) {
    case SimplexKernel::kDenseRational:
      return DenseMaximize<Rational>(options_, system, objective);
    case SimplexKernel::kDenseScalar:
      return DenseMaximize<Scalar>(options_, system, objective);
    case SimplexKernel::kSparseScalar:
      break;
  }

  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  const uint64_t promotions_before = Scalar::promotions_this_thread();
  SparseTableau tableau = BuildTableau(system);
  // The tableau is the dominant allocation of a solve; charge its
  // nonzero storage (the whole point of the sparse kernel is that this
  // is far below rows * cols).
  CAR_RETURN_IF_ERROR(
      GovChargeBytes(options_.exec, NonzeroBytes(tableau), "simplex"));
  const int n = system.num_variables();
  LpResult result;
  auto finish = [&]() {
    result.scalar_promotions =
        Scalar::promotions_this_thread() - promotions_before;
    result.tableau_nonzeros = NonzeroCells(tableau);
    result.tableau_cells = DenseExtent(tableau);
    if (options_.exec != nullptr) {
      options_.exec->CountScalarPromotions(result.scalar_promotions);
      options_.exec->RecordTableauFill(result.tableau_nonzeros,
                                       result.tableau_cells);
    }
  };

  // Phase 1: maximize minus the sum of artificial variables.
  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Scalar> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Scalar(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      if (options_.extract_certificate) {
        result.infeasibility_certificate = ExtractFarkasCertificate(tableau);
      }
      finish();
      return result;
    }
    RemoveArtificialsFromBasis(&tableau);
  }

  // Phase 2: maximize the real objective.
  std::vector<Scalar> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = Scalar(coefficient);
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots));
  result.outcome = outcome;
  result.values = ExtractSolution(tableau, n);
  result.objective = ObjectiveValue(tableau, phase2_cost).ToRational();
  finish();
  return result;
}

Result<LpResult> SimplexSolver::CheckFeasible(
    const LinearSystem& system) const {
  return Maximize(system, LinearExpr());
}

Result<LpResult> SimplexSolver::SolveForSnapshot(
    const LinearSystem& system, const LinearExpr& objective,
    SimplexSnapshot* snapshot) const {
  CAR_CHECK(snapshot != nullptr);
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  const uint64_t promotions_before = Scalar::promotions_this_thread();
  SparseTableau tableau = BuildTableau(system);
  CAR_RETURN_IF_ERROR(
      GovChargeBytes(options_.exec, NonzeroBytes(tableau), "simplex"));
  const int n = system.num_variables();
  LpResult result;
  auto finish = [&]() {
    result.scalar_promotions =
        Scalar::promotions_this_thread() - promotions_before;
    result.tableau_nonzeros = NonzeroCells(tableau);
    result.tableau_cells = DenseExtent(tableau);
    if (options_.exec != nullptr) {
      options_.exec->CountScalarPromotions(result.scalar_promotions);
      options_.exec->RecordTableauFill(result.tableau_nonzeros,
                                       result.tableau_cells);
    }
  };

  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Scalar> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Scalar(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      if (options_.extract_certificate) {
        result.infeasibility_certificate = ExtractFarkasCertificate(tableau);
      }
      finish();
      return result;
    }
    // Unlike Maximize, keep redundant rows: a later delta may hand them
    // nonzero columns, and the snapshot's row indices must stay aligned
    // with the system's constraint indices.
    ParkOrEvictArtificials(&tableau);
  }

  std::vector<Scalar> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = Scalar(coefficient);
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots));
  result.outcome = outcome;
  result.values = ExtractSolution(tableau, n);
  result.objective = ObjectiveValue(tableau, phase2_cost).ToRational();
  finish();

  snapshot->col_of_var.resize(n);
  snapshot->var_of_col.assign(tableau.num_cols, -1);
  for (int v = 0; v < n; ++v) {
    snapshot->col_of_var[v] = v;
    snapshot->var_of_col[v] = v;
  }
  snapshot->num_constraints = system.constraints().size();
  TableauIntoSnapshot(std::move(tableau), snapshot);
  return result;
}

Result<LpResult> SimplexSolver::ResumeMaximize(
    SimplexSnapshot* snapshot, const SimplexDelta& delta,
    const LinearExpr& objective) const {
  CAR_CHECK(snapshot != nullptr);
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  if (options_.exec != nullptr) options_.exec->CountWarmStarts(1);
  const uint64_t promotions_before = Scalar::promotions_this_thread();

  const int old_num_vars = snapshot->num_variables();
  const size_t old_num_rows = snapshot->num_constraints;
  SparseTableau tableau = TableauFromSnapshot(snapshot);
  const uint64_t bytes_before = NonzeroBytes(tableau);

  // Appending a zero column to a sparse row stores nothing, so the dense
  // kernel's per-row width reservation is gone entirely; only the row
  // list and the column-indexed side arrays need headroom: one column
  // per new structural variable plus at most two (slack and artificial)
  // per new constraint.
  const size_t width_bound = static_cast<size_t>(tableau.num_cols) +
                             static_cast<size_t>(delta.num_new_variables) +
                             2 * delta.new_constraints.size();
  tableau.is_artificial.reserve(width_bound);
  tableau.rows.reserve(tableau.rows.size() + delta.new_constraints.size());
  snapshot->col_of_var.reserve(old_num_vars + delta.num_new_variables);
  snapshot->var_of_col.reserve(width_bound);

  // --- Append the new structural columns (O(1) now — no row traffic).
  // Each one is priced out against the frozen basis: its tableau form is
  // sum_i a_i * B^-1 e_i, where column init_basic[i] holds B^-1 e_i for
  // the row of constraint i.
  if (delta.num_new_variables > 0) {
    const int first = tableau.num_cols;
    tableau.num_cols = first + delta.num_new_variables;
    tableau.is_artificial.resize(static_cast<size_t>(tableau.num_cols),
                                 false);
    for (int v = 0; v < delta.num_new_variables; ++v) {
      snapshot->col_of_var.push_back(first + v);
      snapshot->var_of_col.push_back(old_num_vars + v);
    }
  }
  for (const SimplexDelta::RowExtension& extension : delta.row_extensions) {
    CAR_CHECK_LT(extension.constraint, old_num_rows);
    CAR_CHECK_GE(extension.variable, old_num_vars);
    CAR_CHECK_LT(extension.variable,
                 old_num_vars + delta.num_new_variables);
    const int column = snapshot->col_of_var[extension.variable];
    const size_t row = extension.constraint;
    Scalar coefficient(tableau.flipped[row] ? -extension.coefficient
                                            : extension.coefficient);
    const int unit = tableau.init_basic[row];
    for (size_t i = 0; i < tableau.rows.size(); ++i) {
      const Scalar* unit_cell = tableau.rows[i].Find(unit);
      if (unit_cell == nullptr) continue;
      // Compute before AddAt: the insertion may reallocate the entries
      // the unit-cell pointer aims into.
      Scalar increment = coefficient * *unit_cell;
      tableau.rows[i].AddAt(column, increment);
    }
  }

  // --- Append the new constraints: slack/surplus column, elimination of
  // the current basic variables, sign normalization, then a basic column
  // (the slack if it survived with +1, else a fresh artificial). The row
  // is accumulated densely in `accumulator` (the scratch dense pivot-row
  // buffer of the sparse design) and compressed once at the end.
  bool added_artificial = false;
  std::vector<Scalar> accumulator;
  for (const LinearConstraint& constraint : delta.new_constraints) {
    int aux = -1;
    if (constraint.relation != Relation::kEqual) {
      aux = AppendColumn(&tableau, /*artificial=*/false);
      snapshot->var_of_col.push_back(-1);
    }
    accumulator.assign(static_cast<size_t>(tableau.num_cols), Scalar());
    Scalar rhs(constraint.rhs);
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, static_cast<int>(snapshot->col_of_var.size()));
      accumulator[snapshot->col_of_var[variable]] = Scalar(coefficient);
    }
    if (aux >= 0) {
      accumulator[aux] = constraint.relation == Relation::kLessEqual
                             ? Scalar(1)
                             : Scalar(-1);
    }
    // Eliminate the basic variables (their columns carry an identity
    // pattern, so a single sweep suffices); only each pivot row's
    // nonzeros touch the accumulator.
    for (size_t i = 0; i < tableau.rows.size(); ++i) {
      Scalar factor = accumulator[tableau.basis[i]];
      if (factor.is_zero()) continue;
      for (const SparseRow::Entry& entry : tableau.rows[i].entries()) {
        accumulator[entry.col] -= factor * entry.value;
      }
      rhs -= factor * tableau.rhs[i];
    }
    bool negate = rhs.is_negative();
    if (negate) {
      for (Scalar& cell : accumulator) {
        if (!cell.is_zero()) cell = -cell;
      }
      rhs = -rhs;
    }
    int basic = -1;
    if (aux >= 0 && accumulator[aux] == Scalar(1)) {
      basic = aux;
    } else {
      basic = AppendColumn(&tableau, /*artificial=*/true);
      snapshot->var_of_col.push_back(-1);
      accumulator.push_back(Scalar(1));
      added_artificial = true;
    }
    SparseRow row;
    for (int c = 0; c < tableau.num_cols; ++c) {
      if (!accumulator[static_cast<size_t>(c)].is_zero()) {
        row.Append(c, std::move(accumulator[static_cast<size_t>(c)]));
      }
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(std::move(rhs));
    tableau.basis.push_back(basic);
    tableau.init_basic.push_back(basic);
    tableau.flipped.push_back(negate);
    tableau.zero_checked.push_back(0);
  }
  snapshot->num_constraints = old_num_rows + delta.new_constraints.size();

  const uint64_t bytes_after = NonzeroBytes(tableau);
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      options_.exec,
      bytes_after > bytes_before ? bytes_after - bytes_before : 0,
      "simplex"));

  LpResult result;
  auto finish = [&]() {
    result.scalar_promotions =
        Scalar::promotions_this_thread() - promotions_before;
    result.tableau_nonzeros = NonzeroCells(tableau);
    result.tableau_cells = DenseExtent(tableau);
    if (options_.exec != nullptr) {
      options_.exec->CountScalarPromotions(result.scalar_promotions);
      options_.exec->RecordTableauFill(result.tableau_nonzeros,
                                       result.tableau_cells);
    }
  };
  auto park = [&]() {
    // Evict parked artificials that a new column made live again before
    // any pivoting: a basic artificial must stay at zero, which is only
    // guaranteed while its row is all-zero over real columns.
    ParkOrEvictArtificials(&tableau);
  };
  park();

  if (added_artificial) {
    std::vector<Scalar> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Scalar(-1);
    }
    Result<LpOutcome> phase1 =
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots);
    if (!phase1.ok()) {
      TableauIntoSnapshot(std::move(tableau), snapshot);
      return phase1.status();
    }
    CAR_CHECK(phase1.value() == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      finish();
      TableauIntoSnapshot(std::move(tableau), snapshot);
      return result;
    }
    park();
  }

  const int num_vars = snapshot->num_variables();
  std::vector<Scalar> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, num_vars);
    phase2_cost[snapshot->col_of_var[variable]] = Scalar(coefficient);
  }
  Result<LpOutcome> phase2 =
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots);
  if (!phase2.ok()) {
    TableauIntoSnapshot(std::move(tableau), snapshot);
    return phase2.status();
  }
  result.outcome = phase2.value();
  result.objective = ObjectiveValue(tableau, phase2_cost).ToRational();
  result.values.assign(num_vars, Rational());
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const int variable = snapshot->var_of_col[tableau.basis[i]];
    if (variable >= 0) result.values[variable] = tableau.rhs[i].ToRational();
  }
  finish();
  TableauIntoSnapshot(std::move(tableau), snapshot);
  return result;
}

Status ValidateSnapshotShape(const SimplexSnapshot& snapshot,
                             const LinearSystem& system) {
  auto fail = [](std::string what) {
    return FailedPrecondition(
        StrCat("simplex snapshot incompatible with system: ",
               std::move(what)));
  };
  if (snapshot.num_cols < 0) return fail("negative column count");
  const size_t num_rows = snapshot.rows.size();
  const size_t num_cols = static_cast<size_t>(snapshot.num_cols);
  if (snapshot.num_variables() != system.num_variables()) {
    return fail(StrCat("snapshot has ", snapshot.num_variables(),
                       " variables, system has ", system.num_variables()));
  }
  if (snapshot.num_constraints != system.constraints().size()) {
    return fail(StrCat("snapshot has ", snapshot.num_constraints,
                       " constraints, system has ",
                       system.constraints().size()));
  }
  if (snapshot.rhs.size() != num_rows || snapshot.basis.size() != num_rows ||
      snapshot.init_basic.size() != num_rows ||
      snapshot.row_flipped.size() != num_rows ||
      snapshot.zero_checked.size() != num_rows) {
    return fail("per-row vector lengths disagree");
  }
  if (snapshot.is_artificial.size() != num_cols ||
      snapshot.var_of_col.size() != num_cols) {
    return fail("per-column vector lengths disagree");
  }
  for (size_t r = 0; r < num_rows; ++r) {
    if (snapshot.basis[r] < 0 || snapshot.basis[r] >= snapshot.num_cols) {
      return fail(StrCat("basis column of row ", r, " out of range"));
    }
    if (snapshot.init_basic[r] < 0 ||
        snapshot.init_basic[r] >= snapshot.num_cols) {
      return fail(StrCat("init_basic column of row ", r, " out of range"));
    }
    if (snapshot.zero_checked[r] < 0 ||
        snapshot.zero_checked[r] > snapshot.num_cols) {
      return fail(StrCat("zero_checked width of row ", r, " out of range"));
    }
    if (snapshot.rhs[r].is_negative()) {
      return fail(StrCat("negative basic value in row ", r));
    }
    int last_col = -1;
    for (const SparseRow::Entry& entry : snapshot.rows[r].entries()) {
      if (entry.col <= last_col || entry.col >= snapshot.num_cols) {
        return fail(StrCat("row ", r, " entries unsorted or out of range"));
      }
      if (entry.value.is_zero()) {
        return fail(StrCat("explicit zero entry in row ", r));
      }
      last_col = entry.col;
    }
  }
  for (int v = 0; v < snapshot.num_variables(); ++v) {
    const int col = snapshot.col_of_var[v];
    if (col < -1 || col >= snapshot.num_cols) {
      return fail(StrCat("column of variable ", v, " out of range"));
    }
    if (col >= 0 && snapshot.var_of_col[col] != v) {
      return fail(StrCat("variable ", v, " and column ", col,
                         " maps disagree"));
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    const int variable = snapshot.var_of_col[c];
    if (variable < -1 || variable >= snapshot.num_variables()) {
      return fail(StrCat("variable of column ", c, " out of range"));
    }
    if (variable >= 0 &&
        snapshot.col_of_var[variable] != static_cast<int>(c)) {
      return fail(StrCat("column ", c, " and variable ", variable,
                         " maps disagree"));
    }
  }
  return Status::Ok();
}

}  // namespace car
