#include "math/simplex.h"

#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// A dense simplex tableau. Column layout: structural variables first,
/// then slack/surplus variables, then artificial variables; the right-hand
/// side is stored separately per row.
struct Tableau {
  // rows[i] has size num_cols; rhs[i] is the right-hand side of row i.
  std::vector<std::vector<Rational>> rows;
  std::vector<Rational> rhs;
  std::vector<int> basis;            // Basic variable of each row.
  std::vector<bool> is_artificial;   // Indexed by column.
  // Warm-start bookkeeping (see SimplexSnapshot): the identity column a
  // row was created with, and whether the row was negated at creation.
  std::vector<int> init_basic;
  std::vector<bool> flipped;
  // Per row: width up to which the row is known all-zero over real
  // columns (see SimplexSnapshot::zero_checked).
  std::vector<int> zero_checked;
  int num_cols = 0;

  /// Pivots on (pivot_row, pivot_col): divides the pivot row by the pivot
  /// element and eliminates the column from all other rows.
  void Pivot(size_t pivot_row, int pivot_col) {
    Rational pivot_value = rows[pivot_row][pivot_col];
    CAR_CHECK(!pivot_value.is_zero());
    // Normalizing the pivot row preserves its zero pattern, so its
    // zero_checked prefix stays valid; eliminated rows change and lose
    // theirs.
    for (Rational& cell : rows[pivot_row]) cell /= pivot_value;
    rhs[pivot_row] /= pivot_value;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row) continue;
      Rational factor = rows[r][pivot_col];
      if (factor.is_zero()) continue;
      for (int c = 0; c < num_cols; ++c) {
        if (!rows[pivot_row][c].is_zero()) {
          rows[r][c] -= factor * rows[pivot_row][c];
        }
      }
      rhs[r] -= factor * rhs[pivot_row];
      zero_checked[r] = 0;
    }
    basis[pivot_row] = pivot_col;
  }
};

/// Runs primal simplex with Bland's rule, maximizing `cost . x` on the
/// current tableau. Artificial columns never enter the basis unless
/// `allow_artificial` is set (phase 1). Returns the outcome; on
/// kResourceExhausted-style pivot overflow returns an error carrying a
/// LimitReport-formatted message, and a tripped/cancelled ExecContext
/// aborts between pivots.
Result<LpOutcome> RunSimplex(Tableau* tableau,
                             const std::vector<Rational>& cost,
                             bool allow_artificial, size_t max_pivots,
                             ExecContext* exec, size_t* pivots) {
  const size_t num_rows = tableau->rows.size();
  // Reduced costs z_j = c_j - sum_i c_{B(i)} * T[i][j], computed once and
  // then maintained incrementally across pivots (the pivot makes the
  // entering column's reduced cost zero and updates the rest by one row
  // combination). This keeps each simplex iteration at O(rows * cols)
  // instead of O(rows * cols^2).
  std::vector<Rational> reduced(cost.begin(),
                                cost.begin() + tableau->num_cols);
  for (size_t i = 0; i < num_rows; ++i) {
    const Rational& basic_cost = cost[tableau->basis[i]];
    if (basic_cost.is_zero()) continue;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!tableau->rows[i][j].is_zero()) {
        reduced[j] -= basic_cost * tableau->rows[i][j];
      }
    }
  }
  while (true) {
    // Bland's rule: enter the lowest-indexed column with positive
    // reduced cost.
    int entering = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!allow_artificial && tableau->is_artificial[j]) continue;
      if (reduced[j].is_positive()) {
        entering = j;
        break;
      }
    }
    if (entering < 0) return LpOutcome::kOptimal;

    // Ratio test; ties broken by lowest basic-variable index (Bland).
    int leaving_row = -1;
    Rational best_ratio;
    for (size_t i = 0; i < num_rows; ++i) {
      const Rational& coefficient = tableau->rows[i][entering];
      if (!coefficient.is_positive()) continue;
      Rational ratio = tableau->rhs[i] / coefficient;
      if (leaving_row < 0 || ratio < best_ratio ||
          (ratio == best_ratio &&
           tableau->basis[i] < tableau->basis[leaving_row])) {
        leaving_row = static_cast<int>(i);
        best_ratio = ratio;
      }
    }
    if (leaving_row < 0) return LpOutcome::kUnbounded;

    tableau->Pivot(static_cast<size_t>(leaving_row), entering);
    // Fold the (now normalized) pivot row into the reduced-cost row.
    Rational factor = reduced[entering];
    if (!factor.is_zero()) {
      const std::vector<Rational>& pivot_row =
          tableau->rows[static_cast<size_t>(leaving_row)];
      for (int j = 0; j < tableau->num_cols; ++j) {
        if (!pivot_row[j].is_zero()) {
          reduced[j] -= factor * pivot_row[j];
        }
      }
    }
    ++*pivots;
    if (exec != nullptr) exec->CountPivots(1);
    CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "simplex"));
    // A pivot is an expensive work unit (O(rows * cols) exact-rational
    // operations), so the budget stride of ChargeWork is too coarse for
    // deadlines here; consult the clock every pivot — a clock read is
    // noise next to the pivot itself.
    CAR_RETURN_IF_ERROR(GovCheck(exec, "simplex"));
    if (max_pivots != 0 && *pivots > max_pivots) {
      return GovRecordTrip(exec, LimitKind::kMaxPivots, "simplex",
                           max_pivots, max_pivots);
    }
  }
}

Rational ObjectiveValue(const Tableau& tableau,
                        const std::vector<Rational>& cost) {
  Rational value;
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const Rational& basic_cost = cost[tableau.basis[i]];
    if (!basic_cost.is_zero()) value += basic_cost * tableau.rhs[i];
  }
  return value;
}

/// Builds the phase-1 tableau from the system: slack variables for <=,
/// surplus+artificial for >=, artificial for =; right-hand sides are made
/// nonnegative first.
Tableau BuildTableau(const LinearSystem& system) {
  const int n = system.num_variables();
  const auto& constraints = system.constraints();

  // First pass: count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const LinearConstraint& constraint : constraints) {
    bool flip = constraint.rhs.is_negative();
    Relation relation = constraint.relation;
    if (flip && relation == Relation::kLessEqual) {
      relation = Relation::kGreaterEqual;
    } else if (flip && relation == Relation::kGreaterEqual) {
      relation = Relation::kLessEqual;
    }
    switch (relation) {
      case Relation::kLessEqual:
        ++num_slack;
        break;
      case Relation::kGreaterEqual:
        ++num_slack;  // Surplus.
        ++num_artificial;
        break;
      case Relation::kEqual:
        ++num_artificial;
        break;
    }
  }

  Tableau tableau;
  tableau.num_cols = n + num_slack + num_artificial;
  tableau.is_artificial.assign(tableau.num_cols, false);
  for (int j = n + num_slack; j < tableau.num_cols; ++j) {
    tableau.is_artificial[j] = true;
  }

  int next_slack = n;
  int next_artificial = n + num_slack;
  for (const LinearConstraint& constraint : constraints) {
    std::vector<Rational> row(tableau.num_cols);
    Rational rhs = constraint.rhs;
    Relation relation = constraint.relation;
    bool flip = rhs.is_negative();
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, n);
      row[variable] = flip ? -coefficient : coefficient;
    }
    if (flip) {
      rhs = -rhs;
      if (relation == Relation::kLessEqual) {
        relation = Relation::kGreaterEqual;
      } else if (relation == Relation::kGreaterEqual) {
        relation = Relation::kLessEqual;
      }
    }
    int basic = -1;
    switch (relation) {
      case Relation::kLessEqual:
        row[next_slack] = Rational(1);
        basic = next_slack++;
        break;
      case Relation::kGreaterEqual:
        row[next_slack] = Rational(-1);
        ++next_slack;
        row[next_artificial] = Rational(1);
        basic = next_artificial++;
        break;
      case Relation::kEqual:
        row[next_artificial] = Rational(1);
        basic = next_artificial++;
        break;
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(std::move(rhs));
    tableau.basis.push_back(basic);
    tableau.init_basic.push_back(basic);
    tableau.flipped.push_back(flip);
    tableau.zero_checked.push_back(0);
  }
  return tableau;
}

/// After a successful phase 1, pivots artificial variables out of the
/// basis (their value is zero); rows where no structural or slack column
/// is available are redundant and removed.
void RemoveArtificialsFromBasis(Tableau* tableau) {
  for (size_t i = 0; i < tableau->rows.size();) {
    if (!tableau->is_artificial[tableau->basis[i]]) {
      ++i;
      continue;
    }
    int replacement = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (tableau->is_artificial[j]) continue;
      if (!tableau->rows[i][j].is_zero()) {
        replacement = j;
        break;
      }
    }
    if (replacement >= 0) {
      tableau->Pivot(i, replacement);
      ++i;
    } else {
      // Redundant constraint: the whole row is zero over real columns.
      tableau->rows.erase(tableau->rows.begin() + static_cast<long>(i));
      tableau->rhs.erase(tableau->rhs.begin() + static_cast<long>(i));
      tableau->basis.erase(tableau->basis.begin() + static_cast<long>(i));
      tableau->init_basic.erase(tableau->init_basic.begin() +
                                static_cast<long>(i));
      tableau->flipped.erase(tableau->flipped.begin() + static_cast<long>(i));
      tableau->zero_checked.erase(tableau->zero_checked.begin() +
                                  static_cast<long>(i));
    }
  }
}

std::vector<Rational> ExtractSolution(const Tableau& tableau, int n) {
  std::vector<Rational> values(n);
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    if (tableau.basis[i] < n) {
      values[tableau.basis[i]] = tableau.rhs[i];
    }
  }
  return values;
}

/// Moves the tableau-shaped members of a snapshot into a Tableau (and
/// back): the snapshot is the persisted form of the same dense state.
Tableau TableauFromSnapshot(SimplexSnapshot* snapshot) {
  Tableau tableau;
  tableau.rows = std::move(snapshot->rows);
  tableau.rhs = std::move(snapshot->rhs);
  tableau.basis = std::move(snapshot->basis);
  tableau.is_artificial = std::move(snapshot->is_artificial);
  tableau.init_basic = std::move(snapshot->init_basic);
  tableau.flipped = std::move(snapshot->row_flipped);
  tableau.zero_checked = std::move(snapshot->zero_checked);
  tableau.zero_checked.resize(tableau.rows.size(), 0);
  tableau.num_cols = snapshot->num_cols;
  return tableau;
}

void TableauIntoSnapshot(Tableau tableau, SimplexSnapshot* snapshot) {
  snapshot->rows = std::move(tableau.rows);
  snapshot->rhs = std::move(tableau.rhs);
  snapshot->basis = std::move(tableau.basis);
  snapshot->is_artificial = std::move(tableau.is_artificial);
  snapshot->init_basic = std::move(tableau.init_basic);
  snapshot->row_flipped = std::move(tableau.flipped);
  snapshot->zero_checked = std::move(tableau.zero_checked);
  snapshot->num_cols = tableau.num_cols;
}

/// Appends a zero column to every row; returns the new column's index.
int AppendColumn(Tableau* tableau, bool artificial) {
  for (std::vector<Rational>& row : tableau->rows) {
    row.emplace_back();
  }
  tableau->is_artificial.push_back(artificial);
  return tableau->num_cols++;
}

/// Pivots zero-valued basic artificial variables out of the basis
/// wherever the row has a nonzero non-artificial cell. Rows where it does
/// not (all-zero over real columns) stay parked on their zero-valued
/// artificial: they are inert for the current solve but may receive
/// nonzero cells from a later delta, after which this sweep runs again.
/// Pivoting on a cell of either sign is sound here because the row's
/// right-hand side is zero (the artificial's value), so feasibility is
/// preserved. Rows whose artificial is still positive (fresh rows awaiting
/// phase 1) are left alone — evicting those would fabricate feasibility.
void ParkOrEvictArtificials(Tableau* tableau) {
  for (size_t i = 0; i < tableau->rows.size(); ++i) {
    if (!tableau->is_artificial[tableau->basis[i]]) continue;
    if (!tableau->rhs[i].is_zero()) continue;
    // Resume from the row's known-zero prefix: columns below it were
    // found zero by an earlier sweep and no pivot has modified the row
    // since (Pivot resets the prefix), so only appended columns — the
    // ones a delta could have populated — need scanning.
    bool evicted = false;
    for (int j = tableau->zero_checked[i]; j < tableau->num_cols; ++j) {
      if (tableau->is_artificial[j]) continue;
      if (!tableau->rows[i][j].is_zero()) {
        tableau->Pivot(i, j);
        evicted = true;
        break;
      }
    }
    if (!evicted) tableau->zero_checked[i] = tableau->num_cols;
  }
}

}  // namespace

const char* LpOutcomeToString(LpOutcome outcome) {
  switch (outcome) {
    case LpOutcome::kOptimal:
      return "optimal";
    case LpOutcome::kInfeasible:
      return "infeasible";
    case LpOutcome::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

Result<LpResult> SimplexSolver::Maximize(const LinearSystem& system,
                                         const LinearExpr& objective) const {
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  Tableau tableau = BuildTableau(system);
  // The tableau is the dominant allocation of a solve; the Rational
  // cells own heap storage beyond sizeof, so this is a lower-bound
  // estimate of the resident bytes.
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      options_.exec,
      tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols) *
          sizeof(Rational),
      "simplex"));
  const int n = system.num_variables();
  LpResult result;

  // Phase 1: maximize minus the sum of artificial variables.
  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Rational> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Rational(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      return result;
    }
    RemoveArtificialsFromBasis(&tableau);
  }

  // Phase 2: maximize the real objective.
  std::vector<Rational> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = coefficient;
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots));
  result.outcome = outcome;
  result.values = ExtractSolution(tableau, n);
  result.objective = ObjectiveValue(tableau, phase2_cost);
  return result;
}

Result<LpResult> SimplexSolver::CheckFeasible(
    const LinearSystem& system) const {
  return Maximize(system, LinearExpr());
}

Result<LpResult> SimplexSolver::SolveForSnapshot(
    const LinearSystem& system, const LinearExpr& objective,
    SimplexSnapshot* snapshot) const {
  CAR_CHECK(snapshot != nullptr);
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  Tableau tableau = BuildTableau(system);
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      options_.exec,
      tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols) *
          sizeof(Rational),
      "simplex"));
  const int n = system.num_variables();
  LpResult result;

  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Rational> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Rational(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      return result;
    }
    // Unlike Maximize, keep redundant rows: a later delta may hand them
    // nonzero columns, and the snapshot's row indices must stay aligned
    // with the system's constraint indices.
    ParkOrEvictArtificials(&tableau);
  }

  std::vector<Rational> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = coefficient;
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots));
  result.outcome = outcome;
  result.values = ExtractSolution(tableau, n);
  result.objective = ObjectiveValue(tableau, phase2_cost);

  snapshot->col_of_var.resize(n);
  snapshot->var_of_col.assign(tableau.num_cols, -1);
  for (int v = 0; v < n; ++v) {
    snapshot->col_of_var[v] = v;
    snapshot->var_of_col[v] = v;
  }
  snapshot->num_constraints = system.constraints().size();
  TableauIntoSnapshot(std::move(tableau), snapshot);
  return result;
}

Result<LpResult> SimplexSolver::ResumeMaximize(
    SimplexSnapshot* snapshot, const SimplexDelta& delta,
    const LinearExpr& objective) const {
  CAR_CHECK(snapshot != nullptr);
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  if (options_.exec != nullptr) options_.exec->CountWarmStarts(1);

  const int old_num_vars = snapshot->num_variables();
  const size_t old_num_rows = snapshot->num_constraints;
  Tableau tableau = TableauFromSnapshot(snapshot);
  const size_t cells_before =
      tableau.rows.size() * static_cast<size_t>(tableau.num_cols);

  // Reserve the final width once so every column append below is
  // reallocation-free: one column per new structural variable plus at
  // most two (slack and artificial) per new constraint. Growing the
  // dense rows one cell at a time shows up as the dominant cost of a
  // warm start otherwise — the pivot counts are small, the setup isn't.
  const size_t width_bound = static_cast<size_t>(tableau.num_cols) +
                             static_cast<size_t>(delta.num_new_variables) +
                             2 * delta.new_constraints.size();
  for (std::vector<Rational>& row : tableau.rows) row.reserve(width_bound);
  tableau.is_artificial.reserve(width_bound);
  tableau.rows.reserve(tableau.rows.size() + delta.new_constraints.size());
  snapshot->col_of_var.reserve(old_num_vars + delta.num_new_variables);
  snapshot->var_of_col.reserve(width_bound);

  // --- Append the new structural columns in one bulk resize. Each one is
  // priced out against the frozen basis: its tableau form is
  // sum_i a_i * B^-1 e_i, where column init_basic[i] holds B^-1 e_i for
  // the row of constraint i.
  if (delta.num_new_variables > 0) {
    const int first = tableau.num_cols;
    tableau.num_cols = first + delta.num_new_variables;
    for (std::vector<Rational>& row : tableau.rows) {
      row.resize(static_cast<size_t>(tableau.num_cols));
    }
    tableau.is_artificial.resize(static_cast<size_t>(tableau.num_cols),
                                 false);
    for (int v = 0; v < delta.num_new_variables; ++v) {
      snapshot->col_of_var.push_back(first + v);
      snapshot->var_of_col.push_back(old_num_vars + v);
    }
  }
  for (const SimplexDelta::RowExtension& extension : delta.row_extensions) {
    CAR_CHECK_LT(extension.constraint, old_num_rows);
    CAR_CHECK_GE(extension.variable, old_num_vars);
    CAR_CHECK_LT(extension.variable,
                 old_num_vars + delta.num_new_variables);
    const int column = snapshot->col_of_var[extension.variable];
    const size_t row = extension.constraint;
    Rational coefficient = tableau.flipped[row] ? -extension.coefficient
                                                : extension.coefficient;
    const int unit = tableau.init_basic[row];
    for (size_t i = 0; i < tableau.rows.size(); ++i) {
      if (!tableau.rows[i][unit].is_zero()) {
        tableau.rows[i][column] += coefficient * tableau.rows[i][unit];
      }
    }
  }

  // --- Append the new constraints: slack/surplus column, elimination of
  // the current basic variables, sign normalization, then a basic column
  // (the slack if it survived with +1, else a fresh artificial).
  bool added_artificial = false;
  for (const LinearConstraint& constraint : delta.new_constraints) {
    int aux = -1;
    if (constraint.relation != Relation::kEqual) {
      aux = AppendColumn(&tableau, /*artificial=*/false);
      snapshot->var_of_col.push_back(-1);
    }
    std::vector<Rational> row;
    row.reserve(width_bound);
    row.resize(static_cast<size_t>(tableau.num_cols));
    Rational rhs = constraint.rhs;
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, static_cast<int>(snapshot->col_of_var.size()));
      row[snapshot->col_of_var[variable]] = coefficient;
    }
    if (aux >= 0) {
      row[aux] = constraint.relation == Relation::kLessEqual ? Rational(1)
                                                             : Rational(-1);
    }
    // Eliminate the basic variables (their columns carry an identity
    // pattern, so a single sweep suffices).
    for (size_t i = 0; i < tableau.rows.size(); ++i) {
      Rational factor = row[tableau.basis[i]];
      if (factor.is_zero()) continue;
      const std::vector<Rational>& pivot_row = tableau.rows[i];
      for (int c = 0; c < tableau.num_cols; ++c) {
        if (!pivot_row[c].is_zero()) row[c] -= factor * pivot_row[c];
      }
      rhs -= factor * tableau.rhs[i];
    }
    bool negate = rhs.is_negative();
    if (negate) {
      for (Rational& cell : row) {
        if (!cell.is_zero()) cell = -cell;
      }
      rhs = -rhs;
    }
    int basic = -1;
    if (aux >= 0 && row[aux] == Rational(1)) {
      basic = aux;
    } else {
      basic = AppendColumn(&tableau, /*artificial=*/true);
      snapshot->var_of_col.push_back(-1);
      row.resize(static_cast<size_t>(tableau.num_cols));
      row[basic] = Rational(1);
      added_artificial = true;
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(std::move(rhs));
    tableau.basis.push_back(basic);
    tableau.init_basic.push_back(basic);
    tableau.flipped.push_back(negate);
    tableau.zero_checked.push_back(0);
  }
  snapshot->num_constraints = old_num_rows + delta.new_constraints.size();

  const size_t cells_after =
      tableau.rows.size() * static_cast<size_t>(tableau.num_cols);
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      options_.exec, (cells_after - cells_before) * sizeof(Rational),
      "simplex"));

  LpResult result;
  auto park = [&]() {
    // Evict parked artificials that a new column made live again before
    // any pivoting: a basic artificial must stay at zero, which is only
    // guaranteed while its row is all-zero over real columns.
    ParkOrEvictArtificials(&tableau);
  };
  park();

  if (added_artificial) {
    std::vector<Rational> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Rational(-1);
    }
    Result<LpOutcome> phase1 =
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots);
    if (!phase1.ok()) {
      TableauIntoSnapshot(std::move(tableau), snapshot);
      return phase1.status();
    }
    CAR_CHECK(phase1.value() == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      TableauIntoSnapshot(std::move(tableau), snapshot);
      return result;
    }
    park();
  }

  const int num_vars = snapshot->num_variables();
  std::vector<Rational> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, num_vars);
    phase2_cost[snapshot->col_of_var[variable]] = coefficient;
  }
  Result<LpOutcome> phase2 =
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots);
  if (!phase2.ok()) {
    TableauIntoSnapshot(std::move(tableau), snapshot);
    return phase2.status();
  }
  result.outcome = phase2.value();
  result.objective = ObjectiveValue(tableau, phase2_cost);
  result.values.assign(num_vars, Rational());
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const int variable = snapshot->var_of_col[tableau.basis[i]];
    if (variable >= 0) result.values[variable] = tableau.rhs[i];
  }
  TableauIntoSnapshot(std::move(tableau), snapshot);
  return result;
}

}  // namespace car
