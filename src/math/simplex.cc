#include "math/simplex.h"

#include <utility>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {

/// A dense simplex tableau. Column layout: structural variables first,
/// then slack/surplus variables, then artificial variables; the right-hand
/// side is stored separately per row.
struct Tableau {
  // rows[i] has size num_cols; rhs[i] is the right-hand side of row i.
  std::vector<std::vector<Rational>> rows;
  std::vector<Rational> rhs;
  std::vector<int> basis;            // Basic variable of each row.
  std::vector<bool> is_artificial;   // Indexed by column.
  int num_cols = 0;

  /// Pivots on (pivot_row, pivot_col): divides the pivot row by the pivot
  /// element and eliminates the column from all other rows.
  void Pivot(size_t pivot_row, int pivot_col) {
    Rational pivot_value = rows[pivot_row][pivot_col];
    CAR_CHECK(!pivot_value.is_zero());
    for (Rational& cell : rows[pivot_row]) cell /= pivot_value;
    rhs[pivot_row] /= pivot_value;
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r == pivot_row) continue;
      Rational factor = rows[r][pivot_col];
      if (factor.is_zero()) continue;
      for (int c = 0; c < num_cols; ++c) {
        if (!rows[pivot_row][c].is_zero()) {
          rows[r][c] -= factor * rows[pivot_row][c];
        }
      }
      rhs[r] -= factor * rhs[pivot_row];
    }
    basis[pivot_row] = pivot_col;
  }
};

/// Runs primal simplex with Bland's rule, maximizing `cost . x` on the
/// current tableau. Artificial columns never enter the basis unless
/// `allow_artificial` is set (phase 1). Returns the outcome; on
/// kResourceExhausted-style pivot overflow returns an error carrying a
/// LimitReport-formatted message, and a tripped/cancelled ExecContext
/// aborts between pivots.
Result<LpOutcome> RunSimplex(Tableau* tableau,
                             const std::vector<Rational>& cost,
                             bool allow_artificial, size_t max_pivots,
                             ExecContext* exec, size_t* pivots) {
  const size_t num_rows = tableau->rows.size();
  // Reduced costs z_j = c_j - sum_i c_{B(i)} * T[i][j], computed once and
  // then maintained incrementally across pivots (the pivot makes the
  // entering column's reduced cost zero and updates the rest by one row
  // combination). This keeps each simplex iteration at O(rows * cols)
  // instead of O(rows * cols^2).
  std::vector<Rational> reduced(cost.begin(),
                                cost.begin() + tableau->num_cols);
  for (size_t i = 0; i < num_rows; ++i) {
    const Rational& basic_cost = cost[tableau->basis[i]];
    if (basic_cost.is_zero()) continue;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!tableau->rows[i][j].is_zero()) {
        reduced[j] -= basic_cost * tableau->rows[i][j];
      }
    }
  }
  while (true) {
    // Bland's rule: enter the lowest-indexed column with positive
    // reduced cost.
    int entering = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (!allow_artificial && tableau->is_artificial[j]) continue;
      if (reduced[j].is_positive()) {
        entering = j;
        break;
      }
    }
    if (entering < 0) return LpOutcome::kOptimal;

    // Ratio test; ties broken by lowest basic-variable index (Bland).
    int leaving_row = -1;
    Rational best_ratio;
    for (size_t i = 0; i < num_rows; ++i) {
      const Rational& coefficient = tableau->rows[i][entering];
      if (!coefficient.is_positive()) continue;
      Rational ratio = tableau->rhs[i] / coefficient;
      if (leaving_row < 0 || ratio < best_ratio ||
          (ratio == best_ratio &&
           tableau->basis[i] < tableau->basis[leaving_row])) {
        leaving_row = static_cast<int>(i);
        best_ratio = ratio;
      }
    }
    if (leaving_row < 0) return LpOutcome::kUnbounded;

    tableau->Pivot(static_cast<size_t>(leaving_row), entering);
    // Fold the (now normalized) pivot row into the reduced-cost row.
    Rational factor = reduced[entering];
    if (!factor.is_zero()) {
      const std::vector<Rational>& pivot_row =
          tableau->rows[static_cast<size_t>(leaving_row)];
      for (int j = 0; j < tableau->num_cols; ++j) {
        if (!pivot_row[j].is_zero()) {
          reduced[j] -= factor * pivot_row[j];
        }
      }
    }
    ++*pivots;
    if (exec != nullptr) exec->CountPivots(1);
    CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "simplex"));
    // A pivot is an expensive work unit (O(rows * cols) exact-rational
    // operations), so the budget stride of ChargeWork is too coarse for
    // deadlines here; consult the clock every pivot — a clock read is
    // noise next to the pivot itself.
    CAR_RETURN_IF_ERROR(GovCheck(exec, "simplex"));
    if (max_pivots != 0 && *pivots > max_pivots) {
      return GovRecordTrip(exec, LimitKind::kMaxPivots, "simplex",
                           max_pivots, max_pivots);
    }
  }
}

Rational ObjectiveValue(const Tableau& tableau,
                        const std::vector<Rational>& cost) {
  Rational value;
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    const Rational& basic_cost = cost[tableau.basis[i]];
    if (!basic_cost.is_zero()) value += basic_cost * tableau.rhs[i];
  }
  return value;
}

/// Builds the phase-1 tableau from the system: slack variables for <=,
/// surplus+artificial for >=, artificial for =; right-hand sides are made
/// nonnegative first.
Tableau BuildTableau(const LinearSystem& system) {
  const int n = system.num_variables();
  const auto& constraints = system.constraints();

  // First pass: count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const LinearConstraint& constraint : constraints) {
    bool flip = constraint.rhs.is_negative();
    Relation relation = constraint.relation;
    if (flip && relation == Relation::kLessEqual) {
      relation = Relation::kGreaterEqual;
    } else if (flip && relation == Relation::kGreaterEqual) {
      relation = Relation::kLessEqual;
    }
    switch (relation) {
      case Relation::kLessEqual:
        ++num_slack;
        break;
      case Relation::kGreaterEqual:
        ++num_slack;  // Surplus.
        ++num_artificial;
        break;
      case Relation::kEqual:
        ++num_artificial;
        break;
    }
  }

  Tableau tableau;
  tableau.num_cols = n + num_slack + num_artificial;
  tableau.is_artificial.assign(tableau.num_cols, false);
  for (int j = n + num_slack; j < tableau.num_cols; ++j) {
    tableau.is_artificial[j] = true;
  }

  int next_slack = n;
  int next_artificial = n + num_slack;
  for (const LinearConstraint& constraint : constraints) {
    std::vector<Rational> row(tableau.num_cols);
    Rational rhs = constraint.rhs;
    Relation relation = constraint.relation;
    bool flip = rhs.is_negative();
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      CAR_CHECK_GE(variable, 0);
      CAR_CHECK_LT(variable, n);
      row[variable] = flip ? -coefficient : coefficient;
    }
    if (flip) {
      rhs = -rhs;
      if (relation == Relation::kLessEqual) {
        relation = Relation::kGreaterEqual;
      } else if (relation == Relation::kGreaterEqual) {
        relation = Relation::kLessEqual;
      }
    }
    int basic = -1;
    switch (relation) {
      case Relation::kLessEqual:
        row[next_slack] = Rational(1);
        basic = next_slack++;
        break;
      case Relation::kGreaterEqual:
        row[next_slack] = Rational(-1);
        ++next_slack;
        row[next_artificial] = Rational(1);
        basic = next_artificial++;
        break;
      case Relation::kEqual:
        row[next_artificial] = Rational(1);
        basic = next_artificial++;
        break;
    }
    tableau.rows.push_back(std::move(row));
    tableau.rhs.push_back(std::move(rhs));
    tableau.basis.push_back(basic);
  }
  return tableau;
}

/// After a successful phase 1, pivots artificial variables out of the
/// basis (their value is zero); rows where no structural or slack column
/// is available are redundant and removed.
void RemoveArtificialsFromBasis(Tableau* tableau) {
  for (size_t i = 0; i < tableau->rows.size();) {
    if (!tableau->is_artificial[tableau->basis[i]]) {
      ++i;
      continue;
    }
    int replacement = -1;
    for (int j = 0; j < tableau->num_cols; ++j) {
      if (tableau->is_artificial[j]) continue;
      if (!tableau->rows[i][j].is_zero()) {
        replacement = j;
        break;
      }
    }
    if (replacement >= 0) {
      tableau->Pivot(i, replacement);
      ++i;
    } else {
      // Redundant constraint: the whole row is zero over real columns.
      tableau->rows.erase(tableau->rows.begin() + static_cast<long>(i));
      tableau->rhs.erase(tableau->rhs.begin() + static_cast<long>(i));
      tableau->basis.erase(tableau->basis.begin() + static_cast<long>(i));
    }
  }
}

std::vector<Rational> ExtractSolution(const Tableau& tableau, int n) {
  std::vector<Rational> values(n);
  for (size_t i = 0; i < tableau.rows.size(); ++i) {
    if (tableau.basis[i] < n) {
      values[tableau.basis[i]] = tableau.rhs[i];
    }
  }
  return values;
}

}  // namespace

const char* LpOutcomeToString(LpOutcome outcome) {
  switch (outcome) {
    case LpOutcome::kOptimal:
      return "optimal";
    case LpOutcome::kInfeasible:
      return "infeasible";
    case LpOutcome::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

Result<LpResult> SimplexSolver::Maximize(const LinearSystem& system,
                                         const LinearExpr& objective) const {
  CAR_RETURN_IF_ERROR(GovCheck(options_.exec, "simplex"));
  Tableau tableau = BuildTableau(system);
  // The tableau is the dominant allocation of a solve; the Rational
  // cells own heap storage beyond sizeof, so this is a lower-bound
  // estimate of the resident bytes.
  CAR_RETURN_IF_ERROR(GovChargeBytes(
      options_.exec,
      tableau.rows.size() * static_cast<uint64_t>(tableau.num_cols) *
          sizeof(Rational),
      "simplex"));
  const int n = system.num_variables();
  LpResult result;

  // Phase 1: maximize minus the sum of artificial variables.
  bool has_artificial = false;
  for (bool flag : tableau.is_artificial) has_artificial |= flag;
  if (has_artificial) {
    std::vector<Rational> phase1_cost(tableau.num_cols);
    for (int j = 0; j < tableau.num_cols; ++j) {
      if (tableau.is_artificial[j]) phase1_cost[j] = Rational(-1);
    }
    CAR_ASSIGN_OR_RETURN(
        LpOutcome outcome,
        RunSimplex(&tableau, phase1_cost, /*allow_artificial=*/true,
                   options_.max_pivots, options_.exec, &result.pivots));
    CAR_CHECK(outcome == LpOutcome::kOptimal)
        << "phase 1 cannot be unbounded";
    if (!ObjectiveValue(tableau, phase1_cost).is_zero()) {
      result.outcome = LpOutcome::kInfeasible;
      return result;
    }
    RemoveArtificialsFromBasis(&tableau);
  }

  // Phase 2: maximize the real objective.
  std::vector<Rational> phase2_cost(tableau.num_cols);
  for (const auto& [variable, coefficient] : objective.terms()) {
    CAR_CHECK_GE(variable, 0);
    CAR_CHECK_LT(variable, n);
    phase2_cost[variable] = coefficient;
  }
  CAR_ASSIGN_OR_RETURN(
      LpOutcome outcome,
      RunSimplex(&tableau, phase2_cost, /*allow_artificial=*/false,
                 options_.max_pivots, options_.exec, &result.pivots));
  result.outcome = outcome;
  result.values = ExtractSolution(tableau, n);
  result.objective = ObjectiveValue(tableau, phase2_cost);
  return result;
}

Result<LpResult> SimplexSolver::CheckFeasible(
    const LinearSystem& system) const {
  return Maximize(system, LinearExpr());
}

}  // namespace car
