#ifndef CAR_MATH_LINEAR_H_
#define CAR_MATH_LINEAR_H_

#include <map>
#include <string>
#include <vector>

#include "math/rational.h"

namespace car {

/// A sparse linear expression over integer-indexed variables.
class LinearExpr {
 public:
  LinearExpr() = default;

  /// Adds `coefficient * variable` to the expression, merging with any
  /// existing term and dropping the term if the sum is zero.
  void Add(int variable, const Rational& coefficient);

  /// Returns the coefficient of `variable` (zero if absent).
  Rational CoefficientOf(int variable) const;

  /// Terms in increasing variable order; coefficients are nonzero.
  const std::map<int, Rational>& terms() const { return terms_; }

  bool empty() const { return terms_.empty(); }

  /// Evaluates the expression under the given assignment (indexed by
  /// variable); missing variables evaluate as zero.
  Rational Evaluate(const std::vector<Rational>& assignment) const;

 private:
  std::map<int, Rational> terms_;
};

/// Comparison operator of a linear constraint.
enum class Relation {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

const char* RelationToString(Relation relation);

/// A single linear constraint: `expr <relation> rhs`.
struct LinearConstraint {
  LinearExpr expr;
  Relation relation = Relation::kLessEqual;
  Rational rhs;
  /// Optional provenance label (e.g. which Natt entry produced it); used
  /// for diagnostics and system dumps only.
  std::string label;

  /// Returns true if `assignment` satisfies this constraint.
  bool IsSatisfiedBy(const std::vector<Rational>& assignment) const;
};

/// A system of linear constraints over named, implicitly nonnegative
/// variables. This is the "system of linear disequations" Ψ_S of the
/// paper's Section 3.2: all variables are required >= 0 by the solver.
class LinearSystem {
 public:
  /// Adds a variable and returns its index.
  int AddVariable(std::string name);

  void AddConstraint(LinearConstraint constraint);

  int num_variables() const { return static_cast<int>(names_.size()); }
  const std::string& variable_name(int variable) const;
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }

  /// Returns true if `assignment` (one value per variable) satisfies every
  /// constraint and every value is nonnegative.
  bool IsSatisfiedBy(const std::vector<Rational>& assignment) const;

  /// Multi-line human-readable rendering of the system.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<LinearConstraint> constraints_;
};

}  // namespace car

#endif  // CAR_MATH_LINEAR_H_
