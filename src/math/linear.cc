#include "math/linear.h"

#include <sstream>

#include "base/check.h"

namespace car {

void LinearExpr::Add(int variable, const Rational& coefficient) {
  if (coefficient.is_zero()) return;
  auto [it, inserted] = terms_.emplace(variable, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second.is_zero()) terms_.erase(it);
  }
}

Rational LinearExpr::CoefficientOf(int variable) const {
  auto it = terms_.find(variable);
  return it == terms_.end() ? Rational() : it->second;
}

Rational LinearExpr::Evaluate(const std::vector<Rational>& assignment) const {
  Rational total;
  for (const auto& [variable, coefficient] : terms_) {
    if (variable < static_cast<int>(assignment.size())) {
      total += coefficient * assignment[variable];
    }
  }
  return total;
}

const char* RelationToString(Relation relation) {
  switch (relation) {
    case Relation::kLessEqual:
      return "<=";
    case Relation::kGreaterEqual:
      return ">=";
    case Relation::kEqual:
      return "=";
  }
  return "?";
}

bool LinearConstraint::IsSatisfiedBy(
    const std::vector<Rational>& assignment) const {
  Rational value = expr.Evaluate(assignment);
  switch (relation) {
    case Relation::kLessEqual:
      return value <= rhs;
    case Relation::kGreaterEqual:
      return value >= rhs;
    case Relation::kEqual:
      return value == rhs;
  }
  return false;
}

int LinearSystem::AddVariable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<int>(names_.size()) - 1;
}

void LinearSystem::AddConstraint(LinearConstraint constraint) {
  constraints_.push_back(std::move(constraint));
}

const std::string& LinearSystem::variable_name(int variable) const {
  CAR_CHECK_GE(variable, 0);
  CAR_CHECK_LT(variable, num_variables());
  return names_[variable];
}

bool LinearSystem::IsSatisfiedBy(
    const std::vector<Rational>& assignment) const {
  if (assignment.size() != names_.size()) return false;
  for (const Rational& value : assignment) {
    if (value.is_negative()) return false;
  }
  for (const LinearConstraint& constraint : constraints_) {
    if (!constraint.IsSatisfiedBy(assignment)) return false;
  }
  return true;
}

std::string LinearSystem::ToString() const {
  std::ostringstream os;
  os << "variables (" << names_.size() << "):\n";
  for (size_t i = 0; i < names_.size(); ++i) {
    os << "  x" << i << " = " << names_[i] << "\n";
  }
  os << "constraints (" << constraints_.size() << "):\n";
  for (const LinearConstraint& constraint : constraints_) {
    os << "  ";
    bool first = true;
    for (const auto& [variable, coefficient] : constraint.expr.terms()) {
      if (!first) os << " + ";
      first = false;
      os << coefficient << "*x" << variable;
    }
    if (first) os << "0";
    os << " " << RelationToString(constraint.relation) << " "
       << constraint.rhs;
    if (!constraint.label.empty()) os << "    [" << constraint.label << "]";
    os << "\n";
  }
  return os.str();
}

}  // namespace car
