#ifndef CAR_MATH_SIMPLEX_H_
#define CAR_MATH_SIMPLEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "math/linear.h"
#include "math/scalar.h"
#include "math/sparse_row.h"

namespace car {

/// Which tableau representation a solve runs on.
///
/// kSparseScalar is the production kernel: compressed sparse rows of
/// word-sized Scalar cells. The dense kernels are retained as reference
/// implementations — they follow the identical Bland pivot sequence over
/// the identical exact values, so their results are bit-identical to the
/// sparse kernel's — and exist for differential tests and for the
/// dense-vs-sparse / bigint-vs-scalar cells of bench_pivot_kernel. Only
/// Maximize/CheckFeasible honor the selection; the snapshot/resume paths
/// always run the production sparse kernel.
enum class SimplexKernel {
  /// Sparse rows, int64-fast-path exact scalars (production).
  kSparseScalar,
  /// Dense rows of BigInt-backed Rationals (the pre-optimization kernel).
  kDenseRational,
  /// Dense rows of Scalar cells (isolates the scalar-layer win).
  kDenseScalar,
};

const char* SimplexKernelToString(SimplexKernel kernel);

/// Outcome of a linear program.
enum class LpOutcome {
  /// A finite optimum (or, for feasibility checks, a feasible point) was
  /// found; LpResult::values holds one attaining assignment.
  kOptimal,
  /// No nonnegative assignment satisfies the constraints.
  kInfeasible,
  /// The objective is unbounded above on the feasible region.
  kUnbounded,
};

const char* LpOutcomeToString(LpOutcome outcome);

/// A Farkas certificate of infeasibility: one exact multiplier per
/// constraint of the LinearSystem, proving that no nonnegative assignment
/// can satisfy the system. Writing constraint i as `a_i · x <rel_i> b_i`,
/// a valid certificate ν satisfies
///   - sign coherence:  ν_i >= 0 for >=-rows, ν_i <= 0 for <=-rows,
///     unrestricted for =-rows;
///   - combined columns: Σ_i ν_i · a_ij <= 0 for every variable j;
///   - positive gap:     Σ_i ν_i · b_i > 0.
/// Then for any x >= 0, Σ ν_i (a_i·x) <= 0 < Σ ν_i b_i, yet each
/// constraint would force ν_i (a_i·x) >= ν_i b_i — a contradiction, so
/// the system is infeasible. The certificate is independent of how it
/// was produced; ValidateInfeasibilityCertificate re-checks the three
/// conditions from scratch in exact arithmetic.
struct InfeasibilityCertificate {
  /// One multiplier per constraint, aligned with
  /// LinearSystem::constraints(). Zero entries mean the row is unused.
  std::vector<Rational> row_multipliers;
};

/// Exact re-validation of `certificate` against `system` (the three
/// Farkas conditions above). Trust-nothing: O(nonzeros) rational
/// arithmetic, no reference to any solver state. Returns false on a size
/// mismatch, any sign violation, any positive combined column, or a
/// nonpositive combined right-hand side.
bool ValidateInfeasibilityCertificate(
    const LinearSystem& system, const InfeasibilityCertificate& certificate);

struct LpResult {
  LpOutcome outcome = LpOutcome::kInfeasible;
  /// One value per LinearSystem variable; meaningful for kOptimal (and for
  /// kUnbounded it holds the last feasible vertex visited).
  std::vector<Rational> values;
  /// Objective value at `values`.
  Rational objective;
  /// Number of simplex pivots performed (both phases).
  size_t pivots = 0;
  /// Scalar fast-path overflows promoted to BigInt form during this solve
  /// (always 0 for the kDenseRational kernel).
  uint64_t scalar_promotions = 0;
  /// Nonzero cells of the final tableau, and its dense extent
  /// (rows * columns): nonzeros/cells is the fill ratio the sparse
  /// kernel exploits.
  uint64_t tableau_nonzeros = 0;
  uint64_t tableau_cells = 0;
  /// Farkas infeasibility certificate, populated only when the outcome is
  /// kInfeasible, Options::extract_certificate is set, and the solve ran
  /// the cold sparse kernel (Maximize / CheckFeasible / SolveForSnapshot
  /// with kSparseScalar; resumed solves never extract — their appended
  /// rows pollute the dual read-off). Callers must re-validate via
  /// ValidateInfeasibilityCertificate before acting on it.
  std::optional<InfeasibilityCertificate> infeasibility_certificate;
};

/// A frozen simplex state that later solves can resume from.
///
/// Produced by SimplexSolver::SolveForSnapshot and advanced in place by
/// SimplexSolver::ResumeMaximize. The snapshot owns a full tableau in
/// compressed-sparse-row form (the production kernel's representation,
/// so cloning a snapshot copies nonzeros, not columns) whose basis stays
/// feasible for the solved system; resuming appends columns and rows to
/// it instead of rebuilding, so a batch of closely related systems pays
/// one cold phase 1 in total. Treat the members as opaque: they encode
/// tableau bookkeeping (per-row identity columns, sign flips, the
/// structural-variable <-> column maps) that only the solver maintains
/// coherently.
struct SimplexSnapshot {
  std::vector<SparseRow> rows;
  std::vector<Scalar> rhs;
  std::vector<int> basis;           // Basic variable (column) of each row.
  std::vector<bool> is_artificial;  // Indexed by column.
  /// Per row: the column that held the identity unit at the row's
  /// insertion (its current contents are B^-1 e_row, the key to pricing
  /// out appended columns).
  std::vector<int> init_basic;
  /// Per row: whether the row was negated when incorporated (its
  /// right-hand side was negative), so appended terms must negate too.
  std::vector<bool> row_flipped;
  /// Structural variable -> column and back (-1 for auxiliary columns).
  std::vector<int> col_of_var;
  std::vector<int> var_of_col;
  /// Per row: the width (column count) up to which the row is known to be
  /// all-zero over non-artificial columns, or 0 if unknown. Maintained by
  /// the parked-artificial sweep and invalidated by any pivot that
  /// modifies the row, it lets resumed solves rescan only the columns a
  /// delta appended instead of the whole (mostly untouched) tableau.
  std::vector<int> zero_checked;
  int num_cols = 0;
  /// Constraints of the solved system incorporated so far.
  size_t num_constraints = 0;

  int num_variables() const { return static_cast<int>(col_of_var.size()); }
};

/// Structural-coherence check of a (deserialized) snapshot against the
/// system it claims to solve. Verifies the invariants ResumeMaximize
/// relies on — matching variable and constraint counts, per-row vectors
/// of equal length, per-column vectors of length num_cols, basis and
/// init_basic columns in range, the structural-variable <-> column maps
/// mutually inverse, row entries column-sorted with nonzero values, and
/// nonnegative basic values (rhs) — and returns kFailedPrecondition on
/// the first violation. A snapshot produced by SolveForSnapshot /
/// ResumeMaximize on `system` always passes; persisted snapshots
/// (src/persist) must pass before they are resumed.
Status ValidateSnapshotShape(const SimplexSnapshot& snapshot,
                             const LinearSystem& system);

/// The difference between an already-snapshotted system and the system a
/// resumed solve should decide: fresh variables, new terms that existing
/// constraints gain on those fresh variables, and appended constraints.
struct SimplexDelta {
  /// Variables appended after the snapshot's variables (their indices are
  /// snapshot.num_variables() .. +num_new_variables-1).
  int num_new_variables = 0;
  /// `constraint` (an index into the solved system's constraint list)
  /// gains the term `coefficient * variable`. Only NEW variables may be
  /// added to existing constraints; the old coefficients must stay
  /// untouched — this is what keeps the frozen basis feasible.
  struct RowExtension {
    size_t constraint = 0;
    int variable = 0;
    Rational coefficient;
  };
  std::vector<RowExtension> row_extensions;
  /// Appended constraints, over old and new variables alike.
  std::vector<LinearConstraint> new_constraints;

  bool empty() const {
    return num_new_variables == 0 && row_extensions.empty() &&
           new_constraints.empty();
  }
};

/// An exact two-phase primal simplex solver over rationals.
///
/// All variables of the LinearSystem are constrained to be nonnegative,
/// matching the disequation systems of the paper (Section 3.2): every
/// unknown Var(X̄) counts instances and the system always contains
/// Var(X̄) >= 0. Bland's anti-cycling rule is used throughout, so the
/// solver terminates on every input; arithmetic is exact (Scalar: int64
/// fast path with checked overflow promoting to BigInt-backed Rational),
/// so the answer is never affected by rounding or wraparound.
class SimplexSolver {
 public:
  struct Options {
    /// Safety valve: abort with kResourceExhausted after this many pivots.
    /// Zero means no limit (Bland's rule still guarantees termination).
    /// The trip carries a LimitReport ("limit=max_pivots ...").
    size_t max_pivots = 0;
    /// Optional resource governor (borrowed; may be null = ungoverned).
    /// Each pivot charges one work unit and observes cancellation; the
    /// tableau's dominant allocation charges bytes.
    ExecContext* exec = nullptr;
    /// Tableau representation for Maximize/CheckFeasible (see
    /// SimplexKernel). Snapshot/resume solves always use the production
    /// sparse kernel regardless of this setting.
    SimplexKernel kernel = SimplexKernel::kSparseScalar;
    /// When set, infeasible cold sparse solves additionally read a Farkas
    /// certificate off the optimal phase-1 tableau into
    /// LpResult::infeasibility_certificate (see there for scope).
    bool extract_certificate = false;
  };

  SimplexSolver() : options_() {}
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Maximizes `objective` subject to `system` and x >= 0.
  Result<LpResult> Maximize(const LinearSystem& system,
                            const LinearExpr& objective) const;

  /// Checks feasibility of `system` with x >= 0 (phase 1 only).
  /// The outcome is kOptimal (feasible, with a witness) or kInfeasible.
  Result<LpResult> CheckFeasible(const LinearSystem& system) const;

  /// Like Maximize, but additionally exports the final tableau into
  /// `snapshot` so that later solves of extended systems can warm-start
  /// from this basis via ResumeMaximize. Unlike Maximize, redundant rows
  /// are kept (parked on a zero-valued artificial basic) because resumed
  /// deltas may later give them nonzero columns. `snapshot` is only
  /// meaningful when the returned outcome is kOptimal.
  Result<LpResult> SolveForSnapshot(const LinearSystem& system,
                                    const LinearExpr& objective,
                                    SimplexSnapshot* snapshot) const;

  /// Applies `delta` to `snapshot` and maximizes `objective` (over old and
  /// new variables) on the extended system, reusing the frozen basis:
  /// phase 1 only has to repair the appended constraints, not rediscover
  /// feasibility of the whole system. `snapshot` is advanced in place and
  /// can be resumed again with a further delta. The answer (outcome,
  /// objective value, feasibility of `values`) is exactly what Maximize
  /// would return on the extended system built from scratch; only the
  /// pivot path — and hence the particular optimal vertex — may differ.
  Result<LpResult> ResumeMaximize(SimplexSnapshot* snapshot,
                                  const SimplexDelta& delta,
                                  const LinearExpr& objective) const;

 private:
  Options options_;
};

}  // namespace car

#endif  // CAR_MATH_SIMPLEX_H_
