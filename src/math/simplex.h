#ifndef CAR_MATH_SIMPLEX_H_
#define CAR_MATH_SIMPLEX_H_

#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "math/linear.h"

namespace car {

/// Outcome of a linear program.
enum class LpOutcome {
  /// A finite optimum (or, for feasibility checks, a feasible point) was
  /// found; LpResult::values holds one attaining assignment.
  kOptimal,
  /// No nonnegative assignment satisfies the constraints.
  kInfeasible,
  /// The objective is unbounded above on the feasible region.
  kUnbounded,
};

const char* LpOutcomeToString(LpOutcome outcome);

struct LpResult {
  LpOutcome outcome = LpOutcome::kInfeasible;
  /// One value per LinearSystem variable; meaningful for kOptimal (and for
  /// kUnbounded it holds the last feasible vertex visited).
  std::vector<Rational> values;
  /// Objective value at `values`.
  Rational objective;
  /// Number of simplex pivots performed (both phases).
  size_t pivots = 0;
};

/// An exact two-phase primal simplex solver over rationals.
///
/// All variables of the LinearSystem are constrained to be nonnegative,
/// matching the disequation systems of the paper (Section 3.2): every
/// unknown Var(X̄) counts instances and the system always contains
/// Var(X̄) >= 0. Bland's anti-cycling rule is used throughout, so the
/// solver terminates on every input; arithmetic is exact (Rational), so
/// the answer is never affected by rounding.
class SimplexSolver {
 public:
  struct Options {
    /// Safety valve: abort with kResourceExhausted after this many pivots.
    /// Zero means no limit (Bland's rule still guarantees termination).
    /// The trip carries a LimitReport ("limit=max_pivots ...").
    size_t max_pivots = 0;
    /// Optional resource governor (borrowed; may be null = ungoverned).
    /// Each pivot charges one work unit and observes cancellation; the
    /// tableau's dominant allocation charges bytes.
    ExecContext* exec = nullptr;
  };

  SimplexSolver() : options_() {}
  explicit SimplexSolver(Options options) : options_(options) {}

  /// Maximizes `objective` subject to `system` and x >= 0.
  Result<LpResult> Maximize(const LinearSystem& system,
                            const LinearExpr& objective) const;

  /// Checks feasibility of `system` with x >= 0 (phase 1 only).
  /// The outcome is kOptimal (feasible, with a witness) or kInfeasible.
  Result<LpResult> CheckFeasible(const LinearSystem& system) const;

 private:
  Options options_;
};

}  // namespace car

#endif  // CAR_MATH_SIMPLEX_H_
