#ifndef CAR_MATH_SPARSE_ROW_H_
#define CAR_MATH_SPARSE_ROW_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "base/check.h"
#include "math/scalar.h"

namespace car {

/// One compressed sparse row of a simplex tableau: (column, value) entries
/// sorted by column, with every stored value nonzero.
///
/// Ψ_S rows are extremely sparse — a disequation touches only the
/// compound classes of one cluster or one Natt/Nrel constraint — so a
/// pivot that walks entries instead of columns skips the zeros that
/// dominate a dense sweep. All mutators preserve both invariants
/// (ascending columns, no explicit zeros); cancellation during a merge
/// drops the entry rather than storing a zero.
class SparseRow {
 public:
  struct Entry {
    int col = 0;
    Scalar value;
  };

  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  void clear() { entries_.clear(); }
  void reserve(size_t n) { entries_.reserve(n); }

  /// Pointer to the value at `col`, or null when the cell is zero.
  const Scalar* Find(int col) const {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), col,
        [](const Entry& entry, int c) { return entry.col < c; });
    if (it == entries_.end() || it->col != col) return nullptr;
    return &it->value;
  }

  /// The value at `col` (zero when absent).
  Scalar Get(int col) const {
    const Scalar* value = Find(col);
    return value != nullptr ? *value : Scalar();
  }

  /// Appends an entry with a column strictly beyond the current last.
  /// For building rows in ascending column order; `value` must be
  /// nonzero.
  void Append(int col, Scalar value) {
    CAR_CHECK(entries_.empty() || entries_.back().col < col);
    CAR_CHECK(!value.is_zero());
    entries_.push_back(Entry{col, std::move(value)});
  }

  /// Adds `delta` into the cell at `col`, inserting, merging, or erasing
  /// (on exact cancellation) as needed.
  void AddAt(int col, const Scalar& delta) {
    if (delta.is_zero()) return;
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), col,
        [](const Entry& entry, int c) { return entry.col < c; });
    if (it != entries_.end() && it->col == col) {
      it->value += delta;
      if (it->value.is_zero()) entries_.erase(it);
      return;
    }
    entries_.insert(it, Entry{col, delta});
  }

  /// Divides every entry by `divisor` (nonzero): no entry can become
  /// zero, so the pattern is unchanged.
  void DivideAll(const Scalar& divisor) {
    for (Entry& entry : entries_) entry.value /= divisor;
  }

  /// this -= factor * other, as a two-pointer merge. `scratch` is the
  /// caller's reusable buffer (the row swaps its storage with it), so a
  /// pivot's sweep over all rows performs no per-row allocation once the
  /// buffer has grown to the working size.
  void SubtractScaled(const Scalar& factor, const SparseRow& other,
                      std::vector<Entry>* scratch) {
    scratch->clear();
    scratch->reserve(entries_.size() + other.entries_.size());
    size_t i = 0, j = 0;
    while (i < entries_.size() && j < other.entries_.size()) {
      const int my_col = entries_[i].col;
      const int other_col = other.entries_[j].col;
      if (my_col == other_col) {
        Scalar value = std::move(entries_[i].value);
        value -= factor * other.entries_[j].value;
        if (!value.is_zero()) {
          scratch->push_back(Entry{my_col, std::move(value)});
        }
        ++i;
        ++j;
      } else if (my_col < other_col) {
        scratch->push_back(std::move(entries_[i]));
        ++i;
      } else {
        Scalar value = -(factor * other.entries_[j].value);
        if (!value.is_zero()) {
          scratch->push_back(Entry{other_col, std::move(value)});
        }
        ++j;
      }
    }
    for (; i < entries_.size(); ++i) {
      scratch->push_back(std::move(entries_[i]));
    }
    for (; j < other.entries_.size(); ++j) {
      Scalar value = -(factor * other.entries_[j].value);
      if (!value.is_zero()) {
        scratch->push_back(Entry{other.entries_[j].col, std::move(value)});
      }
    }
    entries_.swap(*scratch);
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace car

#endif  // CAR_MATH_SPARSE_ROW_H_
