#include "math/bigint.h"

#include <algorithm>
#include <cctype>

#include "base/check.h"
#include "base/strings.h"

namespace car {

namespace {
constexpr uint64_t kLimbBase = 1ull << 32;
}  // namespace

Result<BigInt> BigInt::FromString(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return ParseError("empty integer literal");
  }
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    text.remove_prefix(1);
  }
  if (text.empty()) {
    return ParseError("integer literal has sign but no digits");
  }
  BigInt value;
  const BigInt ten(10);
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return ParseError(StrCat("invalid digit '", c, "' in integer literal"));
    }
    value = value * ten + BigInt(c - '0');
  }
  if (negative) value = -value;
  return value;
}

Result<BigInt> BigInt::FromParts(int sign, const uint32_t* limbs,
                                 size_t count) {
  if (sign < -1 || sign > 1) {
    return ParseError(StrCat("bigint sign ", sign, " out of range"));
  }
  if ((sign == 0) != (count == 0)) {
    return ParseError("bigint sign/magnitude mismatch");
  }
  if (count > 0 && limbs[count - 1] == 0) {
    return ParseError("bigint magnitude has a leading zero limb");
  }
  BigInt value;
  value.sign_ = sign;
  value.limbs_ = LimbVector(limbs, count);
  return value;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  uint64_t magnitude =
      (static_cast<uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (sign_ > 0) return magnitude <= 0x7fffffffffffffffull;
  return magnitude <= 0x8000000000000000ull;
}

int64_t BigInt::ToInt64() const {
  CAR_CHECK(FitsInt64()) << "BigInt does not fit in int64: " << ToString();
  uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() > 1) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (sign_ >= 0) return static_cast<int64_t>(magnitude);
  return -static_cast<int64_t>(magnitude - 1) - 1;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^9 and emit 9 digits at a time.
  LimbVector work = limbs_;
  std::string digits;
  constexpr uint32_t kChunk = 1000000000u;
  while (!work.empty()) {
    uint64_t remainder = 0;
    for (size_t i = work.size(); i-- > 0;) {
      uint64_t current = (remainder << 32) | work[i];
      work[i] = static_cast<uint32_t>(current / kChunk);
      remainder = current % kChunk;
    }
    Trim(&work);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + remainder % 10));
      remainder /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.sign_ = -result.sign_;
  return result;
}

BigInt BigInt::Abs() const {
  BigInt result = *this;
  if (result.sign_ < 0) result.sign_ = 1;
  return result;
}

int BigInt::CompareMagnitude(const LimbVector& a,
                             const LimbVector& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

LimbVector BigInt::AddMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  const LimbVector& longer = a.size() >= b.size() ? a : b;
  const LimbVector& shorter = a.size() >= b.size() ? b : a;
  LimbVector result;
  result.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0u);
    result.push_back(static_cast<uint32_t>(sum & 0xffffffffull));
    carry = sum >> 32;
  }
  if (carry != 0) result.push_back(static_cast<uint32_t>(carry));
  return result;
}

LimbVector BigInt::SubMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  CAR_CHECK_GE(CompareMagnitude(a, b), 0);
  LimbVector result;
  result.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    result.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&result);
  return result;
}

LimbVector BigInt::MulMagnitude(const LimbVector& a,
                                           const LimbVector& b) {
  if (a.empty() || b.empty()) return {};
  LimbVector result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t current = static_cast<uint64_t>(a[i]) * b[j] +
                         result[i + j] + carry;
      result[i + j] = static_cast<uint32_t>(current & 0xffffffffull);
      carry = current >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t current = result[k] + carry;
      result[k] = static_cast<uint32_t>(current & 0xffffffffull);
      carry = current >> 32;
      ++k;
    }
  }
  Trim(&result);
  return result;
}

void BigInt::DivModMagnitude(const LimbVector& dividend,
                             const LimbVector& divisor,
                             LimbVector* quotient,
                             LimbVector* remainder) {
  CAR_CHECK(!divisor.empty());
  quotient->clear();
  remainder->clear();
  if (CompareMagnitude(dividend, divisor) < 0) {
    *remainder = dividend;
    Trim(remainder);
    return;
  }
  if (divisor.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = divisor[0];
    quotient->assign(dividend.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.size(); i-- > 0;) {
      uint64_t current = (rem << 32) | dividend[i];
      (*quotient)[i] = static_cast<uint32_t>(current / d);
      rem = current % d;
    }
    Trim(quotient);
    if (rem != 0) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }

  // Knuth algorithm D. Normalize so the divisor's top limb has its high
  // bit set, which makes the per-digit quotient estimate off by at most 2.
  int shift = 0;
  {
    uint32_t top = divisor.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shift_left = [shift](const LimbVector& in) {
    LimbVector out(in.size() + 1, 0);
    for (size_t i = 0; i < in.size(); ++i) {
      out[i] |= shift == 0 ? in[i] : (in[i] << shift);
      if (shift != 0) out[i + 1] = in[i] >> (32 - shift);
    }
    Trim(&out);
    return out;
  };
  LimbVector u = shift_left(dividend);
  LimbVector v = shift_left(divisor);
  const size_t n = v.size();
  // Ensure u has an extra high limb for the algorithm.
  u.push_back(0);
  const size_t m = u.size() - n - 1;
  quotient->assign(m + 1, 0);

  const uint64_t v_top = v[n - 1];
  const uint64_t v_second = n >= 2 ? v[n - 2] : 0;
  for (size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top limbs.
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v_top;
    uint64_t r_hat = numerator % v_top;
    if (q_hat >= kLimbBase) {
      q_hat = kLimbBase - 1;
      r_hat = numerator - q_hat * v_top;
    }
    while (r_hat < kLimbBase &&
           q_hat * v_second >
               ((r_hat << 32) | (n >= 2 ? u[j + n - 2] : 0u))) {
      --q_hat;
      r_hat += v_top;
    }
    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffull) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kLimbBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t top_diff = static_cast<int64_t>(u[j + n]) -
                       static_cast<int64_t>(carry) - borrow;
    bool underflow = top_diff < 0;
    u[j + n] = static_cast<uint32_t>(top_diff & 0xffffffffll);
    if (underflow) {
      // The estimate was one too large: add v back once.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffull);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + add_carry);
    }
    (*quotient)[j] = static_cast<uint32_t>(q_hat);
  }
  Trim(quotient);

  // Denormalize the remainder: shift right by `shift`.
  LimbVector rem(u.data(), n);
  if (shift != 0) {
    for (size_t i = 0; i < rem.size(); ++i) {
      rem[i] >>= shift;
      if (i + 1 < n) rem[i] |= u[i + 1] << (32 - shift);
    }
  }
  Trim(&rem);
  *remainder = std::move(rem);
}

void BigInt::Trim(LimbVector* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

void BigInt::Normalize() {
  Trim(&limbs_);
  if (limbs_.empty()) sign_ = 0;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;
  BigInt result;
  if (sign_ == other.sign_) {
    result.sign_ = sign_;
    result.limbs_ = AddMagnitude(limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      result.sign_ = sign_;
      result.limbs_ = SubMagnitude(limbs_, other.limbs_);
    } else {
      result.sign_ = other.sign_;
      result.limbs_ = SubMagnitude(other.limbs_, limbs_);
    }
  }
  result.Normalize();
  return result;
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt result;
  result.sign_ = sign_ * other.sign_;
  result.limbs_ = MulMagnitude(limbs_, other.limbs_);
  result.Normalize();
  return result;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  CAR_CHECK(!divisor.is_zero()) << "division by zero";
  BigInt q;
  BigInt r;
  DivModMagnitude(dividend.limbs_, divisor.limbs_, &q.limbs_, &r.limbs_);
  q.sign_ = dividend.sign_ * divisor.sign_;
  r.sign_ = dividend.sign_;
  q.Normalize();
  r.Normalize();
  *quotient = std::move(q);
  *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  DivMod(*this, other, &quotient, &remainder);
  return quotient;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt quotient;
  BigInt remainder;
  DivMod(*this, other, &quotient, &remainder);
  return remainder;
}

bool BigInt::operator==(const BigInt& other) const {
  return sign_ == other.sign_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_;
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  return sign_ >= 0 ? cmp < 0 : cmp > 0;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt BigInt::Lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

}  // namespace car
