#ifndef CAR_MATH_RATIONAL_H_
#define CAR_MATH_RATIONAL_H_

#include <ostream>
#include <string>

#include "math/bigint.h"

namespace car {

/// An exact rational number: BigInt numerator over positive BigInt
/// denominator, always in lowest terms.
///
/// Rational is the scalar type of the simplex solver (simplex.h); exactness
/// here is what makes the satisfiability decision procedure sound.
class Rational {
 public:
  /// Constructs zero.
  Rational() : numerator_(0), denominator_(1) {}

  /// Constructs an integer value.
  Rational(int64_t value)  // NOLINT(runtime/explicit): numeric promotion.
      : numerator_(value), denominator_(1) {}

  Rational(BigInt value)  // NOLINT(runtime/explicit): numeric promotion.
      : numerator_(std::move(value)), denominator_(1) {}

  /// Constructs numerator/denominator; CHECK-fails on zero denominator.
  Rational(BigInt numerator, BigInt denominator);

  /// Parses "a", "-a", or "a/b".
  static Result<Rational> FromString(std::string_view text);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_negative() const { return numerator_.is_negative(); }
  bool is_positive() const { return numerator_.is_positive(); }
  bool is_integer() const { return denominator_ == BigInt(1); }
  int sign() const { return numerator_.sign(); }

  /// Renders "a" for integers, "a/b" otherwise.
  std::string ToString() const;

  /// Largest integer <= this.
  BigInt Floor() const;
  /// Smallest integer >= this.
  BigInt Ceil() const;

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// CHECK-fails on division by zero.
  Rational operator/(const Rational& other) const;

  // In-place operators update the members directly instead of routing
  // through `*this = *this + other` (which built and destroyed a full
  // temporary Rational per call — measurable on the simplex hot path).
  // Debug builds micro-assert that each one matches its binary operator.
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  /// CHECK-fails on division by zero.
  Rational& operator/=(const Rational& other);

  bool operator==(const Rational& other) const {
    return numerator_ == other.numerator_ &&
           denominator_ == other.denominator_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return !(other < *this); }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return !(*this < other); }

 private:
  void Reduce();

  BigInt numerator_;
  BigInt denominator_;  // Always positive.
};

inline std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace car

#endif  // CAR_MATH_RATIONAL_H_
