#ifndef CAR_MATH_SCALAR_H_
#define CAR_MATH_SCALAR_H_

#include <cstdint>
#include <numeric>
#include <ostream>
#include <string>

#include "math/rational.h"

namespace car {

/// The scalar type of the simplex kernel: an exact rational with a
/// word-sized fast path.
///
/// Representation: an int64 numerator over a positive int64 denominator,
/// always in lowest terms, for as long as the value fits in machine
/// words; the first operation whose intermediate or result overflows an
/// int64 promotes the value to a heap-allocated BigInt-backed Rational.
/// Overflow is detected with __builtin_*_overflow — never silently
/// wrapped — so a Scalar computation produces exactly the value the same
/// Rational computation would, only (usually) without touching the heap.
///
/// The representation is canonical: a Scalar is stored in big form if and
/// only if its reduced numerator or denominator does not fit in int64
/// (every big-path result that fits demotes back to words). Equality and
/// ordering are therefore pure functions of the value, which is what
/// keeps simplex pivot sequences — and hence verdicts and certificates —
/// bit-identical to the all-Rational kernel.
///
/// Scalar is not a drop-in replacement for Rational everywhere: it is
/// the tableau cell type. Results cross back into Rational at the solver
/// boundary via ToRational().
class Scalar {
 public:
  /// Constructs zero.
  Scalar() : num_(0), den_(1) {}

  /// Constructs an integer value.
  Scalar(int64_t value)  // NOLINT(runtime/explicit): numeric promotion.
      : num_(value), den_(1) {}
  Scalar(int value)  // NOLINT(runtime/explicit): numeric promotion.
      : num_(value), den_(1) {}

  /// Converts from Rational: small iff the reduced value fits in words.
  explicit Scalar(const Rational& value);

  Scalar(const Scalar& other) : num_(other.num_), den_(other.den_) {
    if (other.big_ != nullptr) big_ = new Rational(*other.big_);
  }
  Scalar(Scalar&& other) noexcept
      : num_(other.num_), den_(other.den_), big_(other.big_) {
    other.big_ = nullptr;
    other.num_ = 0;
    other.den_ = 1;
  }
  Scalar& operator=(const Scalar& other) {
    if (this == &other) return *this;
    Rational* copy =
        other.big_ != nullptr ? new Rational(*other.big_) : nullptr;
    delete big_;
    big_ = copy;
    num_ = other.num_;
    den_ = other.den_;
    return *this;
  }
  Scalar& operator=(Scalar&& other) noexcept {
    if (this == &other) return *this;
    delete big_;
    big_ = other.big_;
    num_ = other.num_;
    den_ = other.den_;
    other.big_ = nullptr;
    other.num_ = 0;
    other.den_ = 1;
    return *this;
  }
  ~Scalar() { delete big_; }

  /// True while the value is held in the int64 fast path.
  bool is_small() const { return big_ == nullptr; }

  bool is_zero() const { return big_ == nullptr && num_ == 0; }
  bool is_negative() const {
    return big_ == nullptr ? num_ < 0 : big_->is_negative();
  }
  bool is_positive() const {
    return big_ == nullptr ? num_ > 0 : big_->is_positive();
  }
  int sign() const {
    if (big_ != nullptr) return big_->sign();
    return num_ == 0 ? 0 : (num_ < 0 ? -1 : 1);
  }

  /// The value as a Rational (exact in either representation).
  Rational ToRational() const;

  /// Renders "a" for integers, "a/b" otherwise.
  std::string ToString() const;

  Scalar operator-() const;

  Scalar& operator+=(const Scalar& other) {
    if (big_ == nullptr && other.big_ == nullptr &&
        AddSmall(other.num_, other.den_)) {
      return *this;
    }
    AddSlow(other);
    return *this;
  }
  Scalar& operator-=(const Scalar& other) {
    // -INT64_MIN overflows; route that single case through the slow path.
    if (big_ == nullptr && other.big_ == nullptr &&
        other.num_ != INT64_MIN && AddSmall(-other.num_, other.den_)) {
      return *this;
    }
    SubSlow(other);
    return *this;
  }
  Scalar& operator*=(const Scalar& other) {
    if (big_ == nullptr && other.big_ == nullptr && MulSmall(other)) {
      return *this;
    }
    MulSlow(other);
    return *this;
  }
  /// CHECK-fails on division by zero.
  Scalar& operator/=(const Scalar& other);

  Scalar operator+(const Scalar& other) const {
    Scalar result = *this;
    result += other;
    return result;
  }
  Scalar operator-(const Scalar& other) const {
    Scalar result = *this;
    result -= other;
    return result;
  }
  Scalar operator*(const Scalar& other) const {
    Scalar result = *this;
    result *= other;
    return result;
  }
  Scalar operator/(const Scalar& other) const {
    Scalar result = *this;
    result /= other;
    return result;
  }

  bool operator==(const Scalar& other) const {
    // Canonical representation: small and big forms never hold the same
    // value, so mixed-form operands are always unequal.
    if (big_ == nullptr && other.big_ == nullptr) {
      return num_ == other.num_ && den_ == other.den_;
    }
    if (big_ != nullptr && other.big_ != nullptr) {
      return *big_ == *other.big_;
    }
    return false;
  }
  bool operator!=(const Scalar& other) const { return !(*this == other); }
  bool operator<(const Scalar& other) const;
  bool operator<=(const Scalar& other) const { return !(other < *this); }
  bool operator>(const Scalar& other) const { return other < *this; }
  bool operator>=(const Scalar& other) const { return !(*this < other); }

  /// Number of lazy promotions (small-path overflows that forced a value
  /// into BigInt form) performed by THIS thread since it started. The
  /// simplex kernel snapshots this around a solve to report the solve's
  /// promotion count; counts are deterministic because each solve runs on
  /// one thread and promotion depends only on the value sequence.
  static uint64_t promotions_this_thread();

 private:
  /// In-place a/b += c/d on the small path. Returns false (leaving *this
  /// untouched) if any intermediate overflows int64.
  bool AddSmall(int64_t c, int64_t d);
  bool MulSmall(const Scalar& other);

  // Slow paths: compute via Rational, then demote if the result fits.
  void AddSlow(const Scalar& other);
  void SubSlow(const Scalar& other);
  void MulSlow(const Scalar& other);
  void DivSlow(const Scalar& other);

  /// Installs `value`, demoting to the small path when it fits. `value`
  /// is already reduced (Rational maintains lowest terms).
  void SetFromRational(const Rational& value);

  int64_t num_ = 0;  // Valid iff big_ == nullptr; reduced, den_ > 0.
  int64_t den_ = 1;
  Rational* big_ = nullptr;  // Owned. Non-null iff the value exceeds words.
};

inline std::ostream& operator<<(std::ostream& os, const Scalar& value) {
  return os << value.ToString();
}

}  // namespace car

#endif  // CAR_MATH_SCALAR_H_
