#ifndef CAR_MATH_BIGINT_H_
#define CAR_MATH_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace car {

/// An arbitrary-precision signed integer.
///
/// The decision procedure of libcar (Section 3.2 of the paper) must be
/// exact: the satisfiability answer is derived from the feasibility of a
/// system of linear disequations, and a single rounding error could flip
/// it. BigInt is the integer layer under Rational (see rational.h), which
/// in turn is the scalar type of the simplex solver.
///
/// Representation: sign/magnitude with base-2^32 limbs stored little-endian.
/// Zero is represented by an empty limb vector and sign 0. All operations
/// keep the representation normalized (no leading zero limbs; sign 0 iff
/// magnitude empty).
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : sign_(0) {}

  /// Constructs from a machine integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit): numeric promotion.

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(std::string_view text);

  /// Returns -1, 0 or +1.
  int sign() const { return sign_; }
  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  bool is_positive() const { return sign_ > 0; }

  /// Returns true if the value fits in an int64_t.
  bool FitsInt64() const;
  /// Returns the value as int64_t; CHECK-fails if it does not fit.
  int64_t ToInt64() const;

  /// Returns the number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero and
  /// the remainder has the sign of the dividend). CHECK-fails on zero
  /// divisor.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Computes quotient and remainder in one pass (truncated division).
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Greatest common divisor; always nonnegative. Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple; always nonnegative. Lcm with 0 is 0.
  static BigInt Lcm(const BigInt& a, const BigInt& b);

 private:
  /// Compares magnitudes only: -1, 0, +1.
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  /// Magnitude division (Knuth algorithm D). Requires non-empty divisor.
  static void DivModMagnitude(const std::vector<uint32_t>& dividend,
                              const std::vector<uint32_t>& divisor,
                              std::vector<uint32_t>* quotient,
                              std::vector<uint32_t>* remainder);
  static void Trim(std::vector<uint32_t>* limbs);

  void Normalize();

  int sign_;
  std::vector<uint32_t> limbs_;  // Little-endian magnitude.
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace car

#endif  // CAR_MATH_BIGINT_H_
