#ifndef CAR_MATH_BIGINT_H_
#define CAR_MATH_BIGINT_H_

#include <cstdint>
#include <cstring>
#include <ostream>
#include <string>
#include <string_view>

#include "base/result.h"

namespace car {

/// Limb storage for BigInt magnitudes with a small inline buffer.
///
/// The simplex solver allocates, copies, and snapshots dense tableaus of
/// Rationals whose magnitudes are almost always one or two limbs — and
/// every zero Rational carries a denominator of 1. With std::vector limbs,
/// each such value costs a heap allocation to construct and another to
/// copy, and that malloc traffic (not pivoting) dominates warm-started
/// incremental solves. Storing up to kInlineLimbs limbs inline makes
/// small values allocation-free; larger magnitudes spill to a heap buffer.
/// Only the operations BigInt needs are provided.
class LimbVector {
 public:
  LimbVector() = default;
  LimbVector(size_t count, uint32_t fill) {
    EnsureCapacity(count);
    uint32_t* out = data();
    for (size_t i = 0; i < count; ++i) out[i] = fill;
    size_ = static_cast<uint32_t>(count);
  }
  LimbVector(const uint32_t* limbs, size_t count) {
    EnsureCapacity(count);
    std::memcpy(data(), limbs, count * sizeof(uint32_t));
    size_ = static_cast<uint32_t>(count);
  }
  LimbVector(const LimbVector& other)
      : LimbVector(other.data(), other.size()) {}
  LimbVector(LimbVector&& other) noexcept
      : heap_(other.heap_), size_(other.size_), capacity_(other.capacity_) {
    std::memcpy(inline_, other.inline_, sizeof(inline_));
    other.heap_ = nullptr;
    other.size_ = 0;
    other.capacity_ = kInlineLimbs;
  }
  LimbVector& operator=(const LimbVector& other) {
    if (this == &other) return *this;
    size_ = 0;  // Nothing to preserve if growth reallocates.
    EnsureCapacity(other.size());
    std::memcpy(data(), other.data(), other.size() * sizeof(uint32_t));
    size_ = other.size_;
    return *this;
  }
  LimbVector& operator=(LimbVector&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = other.heap_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    std::memcpy(inline_, other.inline_, sizeof(inline_));
    other.heap_ = nullptr;
    other.size_ = 0;
    other.capacity_ = kInlineLimbs;
    return *this;
  }
  ~LimbVector() { delete[] heap_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t* data() { return heap_ != nullptr ? heap_ : inline_; }
  const uint32_t* data() const {
    return heap_ != nullptr ? heap_ : inline_;
  }
  uint32_t operator[](size_t i) const { return data()[i]; }
  uint32_t& operator[](size_t i) { return data()[i]; }
  uint32_t back() const { return data()[size_ - 1]; }

  void clear() { size_ = 0; }
  void reserve(size_t count) { EnsureCapacity(count); }
  void push_back(uint32_t limb) {
    if (size_ == capacity_) EnsureCapacity(size_ + 1);
    data()[size_++] = limb;
  }
  void pop_back() { --size_; }
  void assign(size_t count, uint32_t fill) {
    size_ = 0;
    EnsureCapacity(count);
    uint32_t* out = data();
    for (size_t i = 0; i < count; ++i) out[i] = fill;
    size_ = static_cast<uint32_t>(count);
  }

  bool operator==(const LimbVector& other) const {
    return size_ == other.size_ &&
           std::memcmp(data(), other.data(), size_ * sizeof(uint32_t)) == 0;
  }

 private:
  static constexpr uint32_t kInlineLimbs = 4;

  /// Grows the buffer to at least `count` limbs, preserving the first
  /// size_ limbs.
  void EnsureCapacity(size_t count) {
    if (count <= capacity_) return;
    uint32_t new_capacity = capacity_;
    while (new_capacity < count) new_capacity *= 2;
    uint32_t* grown = new uint32_t[new_capacity];
    std::memcpy(grown, data(), size_ * sizeof(uint32_t));
    delete[] heap_;
    heap_ = grown;
    capacity_ = new_capacity;
  }

  uint32_t* heap_ = nullptr;  // Null while the inline buffer is in use.
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineLimbs;
  uint32_t inline_[kInlineLimbs] = {};
};

/// An arbitrary-precision signed integer.
///
/// The decision procedure of libcar (Section 3.2 of the paper) must be
/// exact: the satisfiability answer is derived from the feasibility of a
/// system of linear disequations, and a single rounding error could flip
/// it. BigInt is the integer layer under Rational (see rational.h), which
/// in turn is the scalar type of the simplex solver.
///
/// Representation: sign/magnitude with base-2^32 limbs stored little-endian.
/// Zero is represented by an empty limb vector and sign 0. All operations
/// keep the representation normalized (no leading zero limbs; sign 0 iff
/// magnitude empty).
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : sign_(0) {}

  /// Constructs from a machine integer. Inline: the solver constructs
  /// huge numbers of small values (every zero Rational has denominator
  /// 1), and the call must collapse to a few stores.
  BigInt(int64_t value) {  // NOLINT(runtime/explicit): numeric promotion.
    if (value == 0) {
      sign_ = 0;
      return;
    }
    sign_ = value > 0 ? 1 : -1;
    // Avoid overflow on INT64_MIN by working in uint64.
    uint64_t magnitude = value > 0 ? static_cast<uint64_t>(value)
                                   : ~static_cast<uint64_t>(value) + 1;
    limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffull));
    if (magnitude >> 32) {
      limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
    }
  }

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(std::string_view text);

  /// Rebuilds a value from serialized parts (the snapshot codec of
  /// src/persist). Total: kParseError unless the representation is
  /// normalized — sign in {-1, 0, +1}, no leading zero limb, and sign 0
  /// exactly when the magnitude is empty — so a decoded BigInt is
  /// byte-identical to a constructed one.
  static Result<BigInt> FromParts(int sign, const uint32_t* limbs,
                                  size_t count);

  /// Read-only limb view: the normalized little-endian base-2^32
  /// magnitude (serialization counterpart of FromParts).
  const LimbVector& limbs() const { return limbs_; }

  /// Returns -1, 0 or +1.
  int sign() const { return sign_; }
  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  bool is_positive() const { return sign_ > 0; }

  /// Returns true if the value fits in an int64_t.
  bool FitsInt64() const;
  /// Returns the value as int64_t; CHECK-fails if it does not fit.
  int64_t ToInt64() const;

  /// Returns the number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (C++ semantics: quotient rounds toward zero and
  /// the remainder has the sign of the dividend). CHECK-fails on zero
  /// divisor.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  /// Computes quotient and remainder in one pass (truncated division).
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Greatest common divisor; always nonnegative. Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);
  /// Least common multiple; always nonnegative. Lcm with 0 is 0.
  static BigInt Lcm(const BigInt& a, const BigInt& b);

 private:
  /// Compares magnitudes only: -1, 0, +1.
  static int CompareMagnitude(const LimbVector& a, const LimbVector& b);
  static LimbVector AddMagnitude(const LimbVector& a, const LimbVector& b);
  /// Requires |a| >= |b|.
  static LimbVector SubMagnitude(const LimbVector& a, const LimbVector& b);
  static LimbVector MulMagnitude(const LimbVector& a, const LimbVector& b);
  /// Magnitude division (Knuth algorithm D). Requires non-empty divisor.
  static void DivModMagnitude(const LimbVector& dividend,
                              const LimbVector& divisor,
                              LimbVector* quotient, LimbVector* remainder);
  static void Trim(LimbVector* limbs);

  void Normalize();

  int sign_;
  LimbVector limbs_;  // Little-endian magnitude.
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace car

#endif  // CAR_MATH_BIGINT_H_
