#ifndef CAR_CORE_CAR_H_
#define CAR_CORE_CAR_H_

/// \mainpage libcar — the CAR data model and its reasoner
///
/// libcar is a from-scratch C++20 implementation of the data model and
/// reasoning technique of:
///
///   Diego Calvanese and Maurizio Lenzerini,
///   "Making Object-Oriented Schemas More Expressive", PODS 1994.
///
/// The umbrella header pulls in the full public API. Typical use:
///
/// \code{.cpp}
///   #include "core/car.h"
///
///   car::SchemaBuilder builder;
///   builder.BeginClass("Student")
///       .Isa({{"Person"}, {"!Professor"}})
///       .Participates("Enrollment", "enrolls", 1, 6)
///       .EndClass();
///   ...
///   car::Result<car::Schema> schema = std::move(builder).Build();
///   car::Reasoner reasoner(&schema.value());
///   bool ok = reasoner.IsClassSatisfiable("Student").value();
/// \endcode
///
/// Module map (see DESIGN.md for the full inventory):
///  - model/      schema representation (Section 2 of the paper)
///  - semantics/  finite database states and model checking (Section 2.3)
///  - expansion/  compound classes/attributes/relations, Natt/Nrel (3.1)
///  - solver/     the disequation system Ψ_S and its solution (3.2)
///  - reasoner/   satisfiability + logical implication API (Section 3)
///  - synthesis/  explicit finite models from certificates
///  - analysis/   preselection tables, clusters (Section 4.3-4.4)
///  - transform/  n-ary relation reification (Theorem 4.5)
///  - frontend/   text syntax: parser and printer
///  - reductions/ hardness-witness generators (Section 4.1)
///  - workloads/  random schema generators for benchmarks
///  - enumerate/  brute-force bounded model search (testing oracle)

#include "analysis/clusters.h"
#include "analysis/pair_tables.h"
#include "analysis/union_free.h"
#include "base/exec_context.h"
#include "base/result.h"
#include "base/status.h"
#include "enumerate/bounded_search.h"
#include "expansion/expansion.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "model/builder.h"
#include "model/schema.h"
#include "reasoner/reasoner.h"
#include "reasoner/unrestricted.h"
#include "reductions/counting_ladder.h"
#include "reductions/sat_reduction.h"
#include "semantics/compound_extensions.h"
#include "semantics/dump.h"
#include "semantics/interpretation.h"
#include "semantics/model_check.h"
#include "solver/naive_solve.h"
#include "solver/psi.h"
#include "solver/solve.h"
#include "synthesis/synthesize.h"
#include "transform/reify.h"
#include "workloads/generators.h"

namespace car {

/// Library version, bumped on public-API changes.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace car

#endif  // CAR_CORE_CAR_H_
