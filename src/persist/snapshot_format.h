#ifndef CAR_PERSIST_SNAPSHOT_FORMAT_H_
#define CAR_PERSIST_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "base/result.h"
#include "expansion/expansion.h"
#include "math/simplex.h"

namespace car {
namespace persist {

// The on-disk format of one warm-state snapshot: the serialized warm
// state of an IncrementalSession (base expansion, solved Ψ simplex
// snapshot, canonical-form memo) under a versioned, checksummed header.
//
// Layout (all integers little-endian):
//
//   magic[8]            "CARSNAP1"
//   u32 format_version  kSnapshotFormatVersion
//   u64 abi_fingerprint SnapshotAbiFingerprint()
//   u64 schema_fingerprint  FNV-1a of the canonical printed schema
//   u32 num_classes, u32 num_attributes, u32 num_relations
//   u32 section_count
//   sections, each:  u8 tag, u64 payload_length, u32 crc32c(payload),
//                    payload
//
// Sections appear in strictly ascending tag order: kExpansion (always),
// kPsi (iff the base analysis succeeded and a solved snapshot exists),
// kMemo (always). No other tags, no duplicates, no trailing bytes.
//
// Decoding is TOTAL, in the same property style as serve/protocol:
// arbitrary bytes either decode to a snapshot or yield kParseError /
// kInvalidArgument — never undefined behavior, never a crash, and never
// an allocation larger than the input itself (every count is bounded
// against the remaining bytes before use). Decoding is additionally
// STRICT: every accepted input is in canonical form (section order,
// ascending map keys, reduced rationals, normalized bigints, 0/1
// bools), so Encode(Decode(bytes)) == bytes for every accepted input —
// the invariant the snapshot fuzzer enforces.
//
// Trust model: checksums and validation protect against torn writes,
// media corruption and version/ABI skew, and the decoder is safe (no
// UB) on adversarial bytes. Semantic integrity of answers, however, is
// only guaranteed for snapshots the serializer wrote: the state
// directory is trusted like the binary itself (DESIGN.md §5h).

/// First bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'C', 'A', 'R', 'S',
                                           'N', 'A', 'P', '1'};

/// Bumped on any change to the layout or the section payloads.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Fingerprint of the in-memory shapes the payloads serialize and of
/// the deterministic rebuild recipe the loader replays (Ψ structure
/// replay, derived-index rebuild). Computed from a layout-describing
/// string, not compiler internals, so it only moves when the format
/// semantics move; a mismatch quarantines the file rather than risking
/// a misinterpreted tableau.
uint64_t SnapshotAbiFingerprint();

/// Software CRC32C (Castagnoli polynomial, table-driven).
uint32_t Crc32c(std::string_view data);

/// The fixed-size part of a snapshot: everything a recovery scan needs
/// to triage a file without decoding payloads.
struct SnapshotHeader {
  uint32_t format_version = 0;
  uint64_t abi_fingerprint = 0;
  uint64_t schema_fingerprint = 0;
  /// Extents of the schema the snapshot was built from; every id in the
  /// expansion section is validated against them.
  uint32_t num_classes = 0;
  uint32_t num_attributes = 0;
  uint32_t num_relations = 0;
};

/// Serialized size of the header plus magic, in bytes.
inline constexpr size_t kSnapshotHeaderBytes = 8 + 4 + 8 + 8 + 4 + 4 + 4;

/// The warm state of one IncrementalSession in serializable form.
/// `expansion.schema` is null and the derived lookup indexes are empty
/// after decoding — the loader re-points the schema and calls
/// Expansion::RebuildDerivedIndexes (both are rebuilt, not trusted from
/// disk). The Ψ part is optional: a session whose base analysis
/// declined (exhaustive strategy) has no solved snapshot to persist.
struct WarmSnapshot {
  SnapshotHeader header;
  Expansion expansion;
  bool has_psi = false;
  SimplexSnapshot psi_snapshot;
  /// Statistics of the base solve the snapshot froze, re-installed on
  /// restore so session stats and memory estimates match a session that
  /// solved the base itself.
  uint64_t base_pivots = 0;
  uint64_t base_scalar_promotions = 0;
  uint64_t base_tableau_nonzeros = 0;
  uint64_t base_tableau_cells = 0;
  /// Canonical query key -> memoized answer.
  std::map<std::string, bool> memo;
};

/// Encodes a snapshot into its canonical byte form. The result depends
/// only on the values (map iteration is sorted, vectors keep their
/// order), so two sessions with identical warm state — in particular
/// the same session run under different thread counts — encode to
/// byte-identical snapshots.
std::string EncodeSnapshot(const WarmSnapshot& snapshot);

/// Total decoder: kParseError on malformed or non-canonical bytes,
/// kInvalidArgument on a well-formed header with a format-version or
/// ABI mismatch. Checksums are verified per section before the section
/// is parsed.
Result<WarmSnapshot> DecodeSnapshot(std::string_view bytes);

/// Decodes only the fixed-size header (magic, version, ABI, schema
/// fingerprint, extents): the cheap triage a recovery scan or a
/// `car_tool snapshot verify` runs before touching payloads. Same error
/// taxonomy as DecodeSnapshot.
Result<SnapshotHeader> PeekSnapshotHeader(std::string_view bytes);

}  // namespace persist
}  // namespace car

#endif  // CAR_PERSIST_SNAPSHOT_FORMAT_H_
