#include "persist/snapshot_format.h"

#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/strings.h"
#include "math/rational.h"

namespace car {
namespace persist {

namespace {

// Section tags. Append-only: never renumber, never reuse.
enum class SectionTag : uint8_t {
  kExpansion = 1,
  kPsi = 2,
  kMemo = 3,
};

/// Ids, counts and column indexes are stored as u32 but live as int in
/// memory; this cap keeps every accepted value safely castable.
constexpr uint32_t kMaxIndex = 1u << 30;
/// Compound-relation arity cap (a format constraint, far above any real
/// relation's role count).
constexpr uint32_t kMaxArity = 1u << 16;

/// Little-endian flat-field writer (the serve/protocol idiom).
class Writer {
 public:
  void PutU8(uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void PutBool(bool value) { PutU8(value ? 1 : 0); }
  void PutU32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }
  void PutU64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }
  void PutString(std::string_view text) {
    PutU32(static_cast<uint32_t>(text.size()));
    out_.append(text);
  }
  void PutBigInt(const BigInt& value) {
    // Sign byte: 0 = zero, 1 = positive, 2 = negative.
    PutU8(value.sign() == 0 ? 0 : (value.sign() > 0 ? 1 : 2));
    const LimbVector& limbs = value.limbs();
    PutU32(static_cast<uint32_t>(limbs.size()));
    for (size_t i = 0; i < limbs.size(); ++i) PutU32(limbs[i]);
  }
  void PutMagnitude(const BigInt& value) {
    // Sign-free form for denominators (always positive).
    const LimbVector& limbs = value.limbs();
    PutU32(static_cast<uint32_t>(limbs.size()));
    for (size_t i = 0; i < limbs.size(); ++i) PutU32(limbs[i]);
  }
  void PutScalar(const Scalar& value) {
    // The canonical two-form representation of Scalar is value-determined
    // (small iff the reduced value fits int64), so serializing the exact
    // Rational value loses nothing: Scalar(Rational) restores the same
    // form on decode.
    Rational rational = value.ToRational();
    PutBigInt(rational.numerator());
    PutMagnitude(rational.denominator());
  }
  void PutCardinality(const Cardinality& value) {
    PutU64(value.min());
    PutU64(value.max());
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Total little-endian reader over one payload: every Read* checks the
/// remaining extent, and every count is bounded by the remaining bytes
/// before any allocation.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* value) {
    if (remaining() < 1) return Truncated("u8");
    *value = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }
  Status ReadBool(bool* value) {
    uint8_t byte = 0;
    CAR_RETURN_IF_ERROR(ReadU8(&byte));
    if (byte > 1) {
      return ParseError(StrCat("bad bool byte ", static_cast<int>(byte)));
    }
    *value = byte == 1;
    return Status::Ok();
  }
  Status ReadU32(uint32_t* value) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
      result |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 4;
    *value = result;
    return Status::Ok();
  }
  Status ReadU64(uint64_t* value) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t result = 0;
    for (int i = 0; i < 8; ++i) {
      result |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 8;
    *value = result;
    return Status::Ok();
  }
  /// A u32 whose value must fit the int-typed indexes of the in-memory
  /// structures.
  Status ReadIndex(uint32_t* value, const char* what) {
    CAR_RETURN_IF_ERROR(ReadU32(value));
    if (*value > kMaxIndex) {
      return ParseError(StrCat(what, " ", *value, " exceeds index cap"));
    }
    return Status::Ok();
  }
  /// A u32 element count whose elements occupy at least
  /// `min_element_bytes` each; bounded by the remaining payload before
  /// the caller allocates.
  Status ReadCount(uint32_t* count, size_t min_element_bytes,
                   const char* what) {
    CAR_RETURN_IF_ERROR(ReadU32(count));
    if (static_cast<uint64_t>(*count) * min_element_bytes > remaining()) {
      return ParseError(StrCat(what, " count ", *count, " exceeds ",
                               remaining(), " remaining bytes"));
    }
    return Status::Ok();
  }
  Status ReadString(std::string* value) {
    uint32_t length = 0;
    CAR_RETURN_IF_ERROR(ReadU32(&length));
    if (length > remaining()) {
      return ParseError(StrCat("string length ", length, " exceeds ",
                               remaining(), " remaining bytes"));
    }
    value->assign(data_.substr(pos_, length));
    pos_ += length;
    return Status::Ok();
  }
  Status ReadBigInt(BigInt* value) {
    uint8_t sign_byte = 0;
    CAR_RETURN_IF_ERROR(ReadU8(&sign_byte));
    if (sign_byte > 2) {
      return ParseError(
          StrCat("bad bigint sign byte ", static_cast<int>(sign_byte)));
    }
    const int sign = sign_byte == 0 ? 0 : (sign_byte == 1 ? 1 : -1);
    uint32_t count = 0;
    CAR_RETURN_IF_ERROR(ReadCount(&count, 4, "bigint limb"));
    std::vector<uint32_t> limbs(count);
    for (uint32_t i = 0; i < count; ++i) {
      CAR_RETURN_IF_ERROR(ReadU32(&limbs[i]));
    }
    CAR_ASSIGN_OR_RETURN(*value,
                         BigInt::FromParts(sign, limbs.data(), limbs.size()));
    return Status::Ok();
  }
  Status ReadMagnitude(BigInt* value) {
    uint32_t count = 0;
    CAR_RETURN_IF_ERROR(ReadCount(&count, 4, "bigint limb"));
    std::vector<uint32_t> limbs(count);
    for (uint32_t i = 0; i < count; ++i) {
      CAR_RETURN_IF_ERROR(ReadU32(&limbs[i]));
    }
    CAR_ASSIGN_OR_RETURN(
        *value,
        BigInt::FromParts(count == 0 ? 0 : 1, limbs.data(), limbs.size()));
    return Status::Ok();
  }
  Status ReadScalar(Scalar* value) {
    BigInt numerator;
    BigInt denominator;
    CAR_RETURN_IF_ERROR(ReadBigInt(&numerator));
    CAR_RETURN_IF_ERROR(ReadMagnitude(&denominator));
    if (!denominator.is_positive()) {
      return ParseError("scalar denominator not positive");
    }
    // Canonical-form requirement: the stored fraction must already be in
    // lowest terms, else re-encoding would differ from the input.
    if (BigInt::Gcd(numerator, denominator) != BigInt(1)) {
      return ParseError("scalar fraction not in lowest terms");
    }
    *value = Scalar(Rational(std::move(numerator), std::move(denominator)));
    return Status::Ok();
  }
  Status ReadCardinality(Cardinality* value) {
    uint64_t min = 0;
    uint64_t max = 0;
    CAR_RETURN_IF_ERROR(ReadU64(&min));
    CAR_RETURN_IF_ERROR(ReadU64(&max));
    // Natt/Nrel intervals may be empty (min > max); IntersectUnchecked is
    // the only constructor that admits them.
    *value = Cardinality::IntersectUnchecked(Cardinality::AtLeast(min),
                                             Cardinality::AtMost(max));
    return Status::Ok();
  }

  /// Skips bytes the caller already consumed through a sub-view.
  Status Skip(size_t count) {
    if (count > remaining()) return Truncated("section payload");
    pos_ += count;
    return Status::Ok();
  }

  /// Trailing bytes are a framing bug, not ignorable padding.
  Status ExpectConsumed() const {
    if (remaining() != 0) {
      return ParseError(StrCat(remaining(), " trailing byte(s)"));
    }
    return Status::Ok();
  }

 private:
  static Status Truncated(const char* what) {
    return ParseError(StrCat("truncated ", what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Section payload codecs -------------------------------------------------

void EncodeExpansionPayload(const Expansion& expansion, Writer* writer) {
  writer->PutU32(static_cast<uint32_t>(expansion.compound_classes.size()));
  for (const CompoundClass& compound : expansion.compound_classes) {
    writer->PutU32(static_cast<uint32_t>(compound.members().size()));
    for (ClassId member : compound.members()) {
      writer->PutU32(static_cast<uint32_t>(member));
    }
  }
  writer->PutU32(static_cast<uint32_t>(expansion.compound_attributes.size()));
  for (const CompoundAttribute& ca : expansion.compound_attributes) {
    writer->PutU32(static_cast<uint32_t>(ca.attribute));
    writer->PutU32(static_cast<uint32_t>(ca.from));
    writer->PutU32(static_cast<uint32_t>(ca.to));
  }
  writer->PutU32(static_cast<uint32_t>(expansion.compound_relations.size()));
  for (const CompoundRelation& cr : expansion.compound_relations) {
    writer->PutU32(static_cast<uint32_t>(cr.relation));
    writer->PutU32(static_cast<uint32_t>(cr.components.size()));
    for (int component : cr.components) {
      writer->PutU32(static_cast<uint32_t>(component));
    }
  }
  writer->PutU32(static_cast<uint32_t>(expansion.natt.size()));
  for (const auto& [key, cardinality] : expansion.natt) {
    writer->PutU32(static_cast<uint32_t>(key.first.attribute));
    writer->PutBool(key.first.inverse);
    writer->PutU32(static_cast<uint32_t>(key.second));
    writer->PutCardinality(cardinality);
  }
  writer->PutU32(static_cast<uint32_t>(expansion.nrel.size()));
  for (const auto& [key, cardinality] : expansion.nrel) {
    writer->PutU32(static_cast<uint32_t>(std::get<0>(key)));
    writer->PutU32(static_cast<uint32_t>(std::get<1>(key)));
    writer->PutU32(static_cast<uint32_t>(std::get<2>(key)));
    writer->PutCardinality(cardinality);
  }
  writer->PutU64(expansion.subsets_visited);
}

Status DecodeExpansionPayload(std::string_view payload,
                              const SnapshotHeader& header,
                              Expansion* expansion) {
  Reader reader(payload);
  uint32_t cc_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&cc_count, 4, "compound class"));
  if (cc_count == 0) {
    return ParseError("expansion has no compound classes");
  }
  expansion->compound_classes.reserve(cc_count);
  for (uint32_t i = 0; i < cc_count; ++i) {
    uint32_t member_count = 0;
    CAR_RETURN_IF_ERROR(
        reader.ReadCount(&member_count, 4, "compound member"));
    std::vector<ClassId> members;
    members.reserve(member_count);
    for (uint32_t k = 0; k < member_count; ++k) {
      uint32_t member = 0;
      CAR_RETURN_IF_ERROR(reader.ReadIndex(&member, "class id"));
      if (member >= header.num_classes) {
        return ParseError(StrCat("class id ", member, " out of range"));
      }
      if (!members.empty() &&
          members.back() >= static_cast<ClassId>(member)) {
        return ParseError("compound members not strictly ascending");
      }
      members.push_back(static_cast<ClassId>(member));
    }
    CompoundClass compound(std::move(members));
    if (i == 0 && !compound.empty()) {
      return ParseError("compound class 0 is not the empty compound");
    }
    if (!expansion->compound_classes.empty() &&
        !(expansion->compound_classes.back() < compound)) {
      return ParseError("compound classes not strictly ascending");
    }
    expansion->compound_classes.push_back(std::move(compound));
  }
  uint32_t ca_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&ca_count, 12, "compound attribute"));
  expansion->compound_attributes.reserve(ca_count);
  for (uint32_t i = 0; i < ca_count; ++i) {
    uint32_t attribute = 0;
    uint32_t from = 0;
    uint32_t to = 0;
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&attribute, "attribute id"));
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&from, "compound index"));
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&to, "compound index"));
    if (attribute >= header.num_attributes) {
      return ParseError(StrCat("attribute id ", attribute, " out of range"));
    }
    if (from >= cc_count || to >= cc_count) {
      return ParseError("compound-attribute endpoint out of range");
    }
    expansion->compound_attributes.push_back(
        {static_cast<AttributeId>(attribute), static_cast<int>(from),
         static_cast<int>(to)});
  }
  uint32_t cr_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&cr_count, 8, "compound relation"));
  expansion->compound_relations.reserve(cr_count);
  for (uint32_t i = 0; i < cr_count; ++i) {
    uint32_t relation = 0;
    uint32_t arity = 0;
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&relation, "relation id"));
    if (relation >= header.num_relations) {
      return ParseError(StrCat("relation id ", relation, " out of range"));
    }
    CAR_RETURN_IF_ERROR(reader.ReadCount(&arity, 4, "relation component"));
    if (arity == 0 || arity > kMaxArity) {
      return ParseError(StrCat("bad compound-relation arity ", arity));
    }
    CompoundRelation cr;
    cr.relation = static_cast<RelationId>(relation);
    cr.components.reserve(arity);
    for (uint32_t k = 0; k < arity; ++k) {
      uint32_t component = 0;
      CAR_RETURN_IF_ERROR(reader.ReadIndex(&component, "compound index"));
      if (component >= cc_count) {
        return ParseError("compound-relation component out of range");
      }
      cr.components.push_back(static_cast<int>(component));
    }
    expansion->compound_relations.push_back(std::move(cr));
  }
  uint32_t natt_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&natt_count, 25, "natt entry"));
  for (uint32_t i = 0; i < natt_count; ++i) {
    uint32_t attribute = 0;
    bool inverse = false;
    uint32_t compound = 0;
    Cardinality cardinality;
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&attribute, "attribute id"));
    CAR_RETURN_IF_ERROR(reader.ReadBool(&inverse));
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&compound, "compound index"));
    CAR_RETURN_IF_ERROR(reader.ReadCardinality(&cardinality));
    if (attribute >= header.num_attributes) {
      return ParseError(StrCat("attribute id ", attribute, " out of range"));
    }
    if (compound >= cc_count) {
      return ParseError("natt compound index out of range");
    }
    std::pair<AttributeTerm, int> key(
        AttributeTerm{static_cast<AttributeId>(attribute), inverse},
        static_cast<int>(compound));
    if (!expansion->natt.empty() && !(expansion->natt.rbegin()->first < key)) {
      return ParseError("natt keys not strictly ascending");
    }
    expansion->natt.emplace_hint(expansion->natt.end(), key, cardinality);
  }
  uint32_t nrel_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&nrel_count, 28, "nrel entry"));
  for (uint32_t i = 0; i < nrel_count; ++i) {
    uint32_t relation = 0;
    uint32_t role = 0;
    uint32_t compound = 0;
    Cardinality cardinality;
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&relation, "relation id"));
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&role, "role index"));
    CAR_RETURN_IF_ERROR(reader.ReadIndex(&compound, "compound index"));
    CAR_RETURN_IF_ERROR(reader.ReadCardinality(&cardinality));
    if (relation >= header.num_relations) {
      return ParseError(StrCat("relation id ", relation, " out of range"));
    }
    if (role >= kMaxArity) {
      return ParseError(StrCat("role index ", role, " out of range"));
    }
    if (compound >= cc_count) {
      return ParseError("nrel compound index out of range");
    }
    std::tuple<RelationId, int, int> key(static_cast<RelationId>(relation),
                                         static_cast<int>(role),
                                         static_cast<int>(compound));
    if (!expansion->nrel.empty() && !(expansion->nrel.rbegin()->first < key)) {
      return ParseError("nrel keys not strictly ascending");
    }
    expansion->nrel.emplace_hint(expansion->nrel.end(), key, cardinality);
  }
  CAR_RETURN_IF_ERROR(reader.ReadU64(&expansion->subsets_visited));
  return reader.ExpectConsumed();
}

void EncodePsiPayload(const WarmSnapshot& snapshot, Writer* writer) {
  writer->PutU64(snapshot.base_pivots);
  writer->PutU64(snapshot.base_scalar_promotions);
  writer->PutU64(snapshot.base_tableau_nonzeros);
  writer->PutU64(snapshot.base_tableau_cells);
  const SimplexSnapshot& psi = snapshot.psi_snapshot;
  writer->PutU32(static_cast<uint32_t>(psi.rows.size()));
  writer->PutU32(static_cast<uint32_t>(psi.num_cols));
  writer->PutU64(psi.num_constraints);
  writer->PutU32(static_cast<uint32_t>(psi.col_of_var.size()));
  for (const SparseRow& row : psi.rows) {
    writer->PutU32(static_cast<uint32_t>(row.nnz()));
    for (const SparseRow::Entry& entry : row.entries()) {
      writer->PutU32(static_cast<uint32_t>(entry.col));
      writer->PutScalar(entry.value);
    }
  }
  for (const Scalar& value : psi.rhs) writer->PutScalar(value);
  for (int column : psi.basis) {
    writer->PutU32(static_cast<uint32_t>(column));
  }
  for (size_t c = 0; c < psi.is_artificial.size(); ++c) {
    writer->PutBool(psi.is_artificial[c]);
  }
  for (int column : psi.init_basic) {
    writer->PutU32(static_cast<uint32_t>(column));
  }
  for (size_t r = 0; r < psi.row_flipped.size(); ++r) {
    writer->PutBool(psi.row_flipped[r]);
  }
  for (int column : psi.col_of_var) {
    writer->PutU32(column < 0 ? ~uint32_t{0} : static_cast<uint32_t>(column));
  }
  for (int variable : psi.var_of_col) {
    writer->PutU32(variable < 0 ? ~uint32_t{0}
                                : static_cast<uint32_t>(variable));
  }
  for (int width : psi.zero_checked) {
    writer->PutU32(static_cast<uint32_t>(width));
  }
}

Status DecodePsiPayload(std::string_view payload, WarmSnapshot* snapshot) {
  Reader reader(payload);
  CAR_RETURN_IF_ERROR(reader.ReadU64(&snapshot->base_pivots));
  CAR_RETURN_IF_ERROR(reader.ReadU64(&snapshot->base_scalar_promotions));
  CAR_RETURN_IF_ERROR(reader.ReadU64(&snapshot->base_tableau_nonzeros));
  CAR_RETURN_IF_ERROR(reader.ReadU64(&snapshot->base_tableau_cells));
  SimplexSnapshot& psi = snapshot->psi_snapshot;
  uint32_t num_rows = 0;
  uint32_t num_cols = 0;
  uint64_t num_constraints = 0;
  uint32_t num_vars = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&num_rows, 4, "tableau row"));
  CAR_RETURN_IF_ERROR(reader.ReadIndex(&num_cols, "tableau column count"));
  CAR_RETURN_IF_ERROR(reader.ReadU64(&num_constraints));
  if (num_constraints > kMaxIndex) {
    return ParseError("constraint count exceeds index cap");
  }
  CAR_RETURN_IF_ERROR(reader.ReadCount(&num_vars, 4, "structural variable"));
  if (num_vars > kMaxIndex) {
    return ParseError("variable count exceeds index cap");
  }
  psi.num_cols = static_cast<int>(num_cols);
  psi.num_constraints = static_cast<size_t>(num_constraints);
  psi.rows.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t nnz = 0;
    CAR_RETURN_IF_ERROR(reader.ReadCount(&nnz, 17, "row entry"));
    SparseRow& row = psi.rows[r];
    row.reserve(nnz);
    int last_col = -1;
    for (uint32_t k = 0; k < nnz; ++k) {
      uint32_t col = 0;
      Scalar value;
      CAR_RETURN_IF_ERROR(reader.ReadIndex(&col, "entry column"));
      CAR_RETURN_IF_ERROR(reader.ReadScalar(&value));
      if (col >= num_cols || static_cast<int>(col) <= last_col) {
        return ParseError("row entries unsorted or out of range");
      }
      if (value.is_zero()) {
        return ParseError("explicit zero tableau entry");
      }
      last_col = static_cast<int>(col);
      row.Append(last_col, std::move(value));
    }
  }
  psi.rhs.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    CAR_RETURN_IF_ERROR(reader.ReadScalar(&psi.rhs[r]));
  }
  psi.basis.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t column = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU32(&column));
    if (column >= num_cols) {
      return ParseError("basis column out of range");
    }
    psi.basis[r] = static_cast<int>(column);
  }
  psi.is_artificial.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    bool artificial = false;
    CAR_RETURN_IF_ERROR(reader.ReadBool(&artificial));
    psi.is_artificial[c] = artificial;
  }
  psi.init_basic.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t column = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU32(&column));
    if (column >= num_cols) {
      return ParseError("init_basic column out of range");
    }
    psi.init_basic[r] = static_cast<int>(column);
  }
  psi.row_flipped.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    bool flipped = false;
    CAR_RETURN_IF_ERROR(reader.ReadBool(&flipped));
    psi.row_flipped[r] = flipped;
  }
  psi.col_of_var.resize(num_vars);
  for (uint32_t v = 0; v < num_vars; ++v) {
    uint32_t column = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU32(&column));
    if (column == ~uint32_t{0}) {
      psi.col_of_var[v] = -1;
    } else if (column >= num_cols) {
      return ParseError("variable column out of range");
    } else {
      psi.col_of_var[v] = static_cast<int>(column);
    }
  }
  psi.var_of_col.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    uint32_t variable = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU32(&variable));
    if (variable == ~uint32_t{0}) {
      psi.var_of_col[c] = -1;
    } else if (variable >= num_vars) {
      return ParseError("column variable out of range");
    } else {
      psi.var_of_col[c] = static_cast<int>(variable);
    }
  }
  psi.zero_checked.resize(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    uint32_t width = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU32(&width));
    if (width > num_cols) {
      return ParseError("zero_checked width out of range");
    }
    psi.zero_checked[r] = static_cast<int>(width);
  }
  return reader.ExpectConsumed();
}

void EncodeMemoPayload(const std::map<std::string, bool>& memo,
                       Writer* writer) {
  writer->PutU32(static_cast<uint32_t>(memo.size()));
  for (const auto& [key, answer] : memo) {
    writer->PutString(key);
    writer->PutBool(answer);
  }
}

Status DecodeMemoPayload(std::string_view payload,
                         std::map<std::string, bool>* memo) {
  Reader reader(payload);
  uint32_t count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadCount(&count, 5, "memo entry"));
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    bool answer = false;
    CAR_RETURN_IF_ERROR(reader.ReadString(&key));
    CAR_RETURN_IF_ERROR(reader.ReadBool(&answer));
    if (!memo->empty() && !(memo->rbegin()->first < key)) {
      return ParseError("memo keys not strictly ascending");
    }
    memo->emplace_hint(memo->end(), std::move(key), answer);
  }
  return reader.ExpectConsumed();
}

// --- Header + framing -------------------------------------------------------

void EncodeHeader(const SnapshotHeader& header, Writer* writer) {
  for (char byte : kSnapshotMagic) writer->PutU8(static_cast<uint8_t>(byte));
  writer->PutU32(header.format_version);
  writer->PutU64(header.abi_fingerprint);
  writer->PutU64(header.schema_fingerprint);
  writer->PutU32(header.num_classes);
  writer->PutU32(header.num_attributes);
  writer->PutU32(header.num_relations);
}

Status DecodeHeader(Reader* reader, SnapshotHeader* header) {
  char magic[sizeof(kSnapshotMagic)] = {};
  for (char& byte : magic) {
    uint8_t value = 0;
    CAR_RETURN_IF_ERROR(reader->ReadU8(&value));
    byte = static_cast<char>(value);
  }
  if (std::memcmp(magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return ParseError("bad snapshot magic");
  }
  CAR_RETURN_IF_ERROR(reader->ReadU32(&header->format_version));
  CAR_RETURN_IF_ERROR(reader->ReadU64(&header->abi_fingerprint));
  CAR_RETURN_IF_ERROR(reader->ReadU64(&header->schema_fingerprint));
  CAR_RETURN_IF_ERROR(reader->ReadIndex(&header->num_classes, "class count"));
  CAR_RETURN_IF_ERROR(
      reader->ReadIndex(&header->num_attributes, "attribute count"));
  CAR_RETURN_IF_ERROR(
      reader->ReadIndex(&header->num_relations, "relation count"));
  if (header->format_version != kSnapshotFormatVersion) {
    return InvalidArgument(StrCat("snapshot format version ",
                                  header->format_version, ", expected ",
                                  kSnapshotFormatVersion));
  }
  if (header->abi_fingerprint != SnapshotAbiFingerprint()) {
    return InvalidArgument(
        StrCat("snapshot ABI fingerprint ", header->abi_fingerprint,
               ", expected ", SnapshotAbiFingerprint()));
  }
  return Status::Ok();
}

void AppendSection(SectionTag tag, std::string payload, Writer* writer) {
  writer->PutU8(static_cast<uint8_t>(tag));
  writer->PutU64(payload.size());
  writer->PutU32(Crc32c(payload));
  for (char byte : payload) writer->PutU8(static_cast<uint8_t>(byte));
}

}  // namespace

uint64_t SnapshotAbiFingerprint() {
  // A layout-describing string, not compiler internals: the fingerprint
  // moves exactly when the persisted semantics move. The trailing
  // recipe token must be bumped whenever the deterministic rebuild the
  // loader replays (Ψ structure build, derived-index rebuild) changes
  // meaning, even if the byte layout itself is unchanged.
  static const uint64_t fingerprint = Fnv1a64(StrCat(
      "car-warm-snapshot v", kSnapshotFormatVersion,
      " expansion{cc,ca,cr,natt,nrel,subsets}",
      " psi{stats,rows,rhs,basis,is_artificial,init_basic,row_flipped,"
      "col_of_var,var_of_col,zero_checked}",
      " memo{key,bool} scalar=bigint-rational limb=u32",
      " rebuild=psi-structure-replay-v1"));
  return fingerprint;
}

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0x82f63b78u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = ~uint32_t{0};
  for (char byte : data) {
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<uint8_t>(byte)) & 0xff];
  }
  return ~crc;
}

std::string EncodeSnapshot(const WarmSnapshot& snapshot) {
  Writer writer;
  EncodeHeader(snapshot.header, &writer);
  writer.PutU32(snapshot.has_psi ? 3 : 2);
  {
    Writer payload;
    EncodeExpansionPayload(snapshot.expansion, &payload);
    AppendSection(SectionTag::kExpansion, payload.Take(), &writer);
  }
  if (snapshot.has_psi) {
    Writer payload;
    EncodePsiPayload(snapshot, &payload);
    AppendSection(SectionTag::kPsi, payload.Take(), &writer);
  }
  {
    Writer payload;
    EncodeMemoPayload(snapshot.memo, &payload);
    AppendSection(SectionTag::kMemo, payload.Take(), &writer);
  }
  return writer.Take();
}

Result<WarmSnapshot> DecodeSnapshot(std::string_view bytes) {
  Reader reader(bytes);
  WarmSnapshot snapshot;
  CAR_RETURN_IF_ERROR(DecodeHeader(&reader, &snapshot.header));
  uint32_t section_count = 0;
  CAR_RETURN_IF_ERROR(reader.ReadU32(&section_count));
  if (section_count != 2 && section_count != 3) {
    return ParseError(StrCat("bad section count ", section_count));
  }
  bool expansion_seen = false;
  bool memo_seen = false;
  int last_tag = 0;
  for (uint32_t s = 0; s < section_count; ++s) {
    uint8_t tag = 0;
    uint64_t length = 0;
    uint32_t crc = 0;
    CAR_RETURN_IF_ERROR(reader.ReadU8(&tag));
    CAR_RETURN_IF_ERROR(reader.ReadU64(&length));
    CAR_RETURN_IF_ERROR(reader.ReadU32(&crc));
    if (tag <= last_tag ||
        tag > static_cast<uint8_t>(SectionTag::kMemo)) {
      return ParseError(StrCat("bad section tag ", static_cast<int>(tag)));
    }
    last_tag = tag;
    if (length > reader.remaining()) {
      return ParseError(StrCat("section length ", length, " exceeds ",
                               reader.remaining(), " remaining bytes"));
    }
    std::string_view payload =
        bytes.substr(bytes.size() - reader.remaining(),
                     static_cast<size_t>(length));
    // Checksum first: a corrupt payload is reported as corruption, not
    // as whatever parse error the flipped bytes happen to produce.
    if (Crc32c(payload) != crc) {
      return ParseError(
          StrCat("section ", static_cast<int>(tag), " checksum mismatch"));
    }
    switch (static_cast<SectionTag>(tag)) {
      case SectionTag::kExpansion:
        CAR_RETURN_IF_ERROR(DecodeExpansionPayload(payload, snapshot.header,
                                                   &snapshot.expansion));
        expansion_seen = true;
        break;
      case SectionTag::kPsi:
        CAR_RETURN_IF_ERROR(DecodePsiPayload(payload, &snapshot));
        snapshot.has_psi = true;
        break;
      case SectionTag::kMemo:
        CAR_RETURN_IF_ERROR(DecodeMemoPayload(payload, &snapshot.memo));
        memo_seen = true;
        break;
    }
    CAR_RETURN_IF_ERROR(reader.Skip(static_cast<size_t>(length)));
  }
  CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
  if (!expansion_seen || !memo_seen) {
    return ParseError("mandatory section missing");
  }
  if (snapshot.has_psi != (section_count == 3)) {
    return ParseError("section count disagrees with section set");
  }
  return snapshot;
}

Result<SnapshotHeader> PeekSnapshotHeader(std::string_view bytes) {
  Reader reader(bytes);
  SnapshotHeader header;
  CAR_RETURN_IF_ERROR(DecodeHeader(&reader, &header));
  return header;
}

}  // namespace persist
}  // namespace car
