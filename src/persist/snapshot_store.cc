#include "persist/snapshot_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "base/hashing.h"
#include "base/strings.h"
#include "persist/snapshot_format.h"

namespace car {
namespace persist {

namespace {

constexpr std::string_view kSnapSuffix = ".snap";
constexpr std::string_view kTmpSuffix = ".snap.tmp";
constexpr std::string_view kQuarantineSuffix = ".quarantine";
constexpr size_t kWriteChunkBytes = 64u << 10;

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Status Errno(std::string_view op, const std::string& path) {
  return Internal(StrCat(op, " ", path, ": ", std::strerror(errno)));
}

Status InjectedFault(std::string_view op) {
  return Internal(StrCat("injected I/O fault: ", op));
}

/// RAII fd so every error path closes.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadWholeFile(const std::string& path,
                                  size_t max_bytes) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (fd.get() < 0) {
    if (errno == ENOENT) return NotFound(StrCat("no snapshot at ", path));
    return Errno("open", path);
  }
  struct stat st;
  if (::fstat(fd.get(), &st) != 0) return Errno("fstat", path);
  if (static_cast<uint64_t>(st.st_size) > max_bytes) {
    return InvalidArgument(StrCat("snapshot ", path, " is ", st.st_size,
                                  " bytes, above the ", max_bytes,
                                  "-byte limit"));
  }
  std::string bytes;
  bytes.resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < bytes.size()) {
    ssize_t n = ::read(fd.get(), bytes.data() + got, bytes.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read", path);
    }
    if (n == 0) break;  // Shrunk underneath us; decoder reports truncation.
    got += static_cast<size_t>(n);
  }
  bytes.resize(got);
  return bytes;
}

}  // namespace

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    std::string directory, SnapshotStoreOptions options) {
  if (directory.empty()) {
    return InvalidArgument("snapshot store directory is empty");
  }
  struct stat st;
  if (::stat(directory.c_str(), &st) != 0) {
    if (errno != ENOENT) return Errno("stat", directory);
    if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", directory);
    }
  } else if (!S_ISDIR(st.st_mode)) {
    return InvalidArgument(
        StrCat("snapshot store path ", directory, " is not a directory"));
  }
  std::unique_ptr<SnapshotStore> store(
      new SnapshotStore(std::move(directory), options));
  CAR_RETURN_IF_ERROR(store->RecoveryScan());
  return store;
}

Status SnapshotStore::RecoveryScan() {
  // Recovery-scan I/O is never fault-injected: injection models the
  // serving path (Save/Load); a store that cannot even scan its
  // directory fails Open with the real error.
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return Errno("opendir", directory_);
  std::vector<std::string> names;
  while (true) {
    errno = 0;
    struct dirent* entry = ::readdir(dir);
    if (entry == nullptr) break;
    names.emplace_back(entry->d_name);
  }
  ::closedir(dir);
  for (const std::string& name : names) {
    if (name == "." || name == "..") continue;
    if (EndsWith(name, kQuarantineSuffix)) continue;
    const std::string path = StrCat(directory_, "/", name);
    if (EndsWith(name, kTmpSuffix)) {
      // A leftover tmp is a torn write: the process died between
      // opening the tmp and renaming it into place.
      CAR_RETURN_IF_ERROR(QuarantineFile(path, "torn write (leftover tmp)"));
      continue;
    }
    if (!EndsWith(name, kSnapSuffix)) continue;  // Foreign file: untouched.
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (static_cast<uint64_t>(st.st_size) > options_.max_snapshot_bytes) {
      CAR_RETURN_IF_ERROR(QuarantineFile(path, "oversize"));
      continue;
    }
    // Header triage only; payload corruption surfaces on Load/decode.
    char head[kSnapshotHeaderBytes];
    Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.get() < 0) continue;
    ssize_t n = ::read(fd.get(), head, sizeof(head));
    Result<SnapshotHeader> header = PeekSnapshotHeader(
        std::string_view(head, n < 0 ? 0 : static_cast<size_t>(n)));
    if (!header.ok()) {
      CAR_RETURN_IF_ERROR(
          QuarantineFile(path, header.status().message()));
    }
  }
  return Status::Ok();
}

Status SnapshotStore::QuarantineFile(const std::string& path,
                                     std::string_view reason) {
  const std::string quarantined = StrCat(path, kQuarantineSuffix);
  if (::rename(path.c_str(), quarantined.c_str()) != 0) {
    return Errno("rename", path);
  }
  std::fprintf(stderr, "car snapshot store: quarantined %s (%.*s)\n",
               path.c_str(), static_cast<int>(reason.size()), reason.data());
  quarantines_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

std::string SnapshotStore::FileName(std::string_view tenant) {
  std::string prefix;
  for (char c : tenant.substr(0, 32)) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
    prefix.push_back(safe ? c : '_');
  }
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(tenant)));
  return StrCat(prefix, "-", hash, kSnapSuffix);
}

std::string SnapshotStore::PathFor(std::string_view tenant) const {
  return StrCat(directory_, "/", FileName(tenant));
}

bool SnapshotStore::NextOpFails() const {
  return options_.exec != nullptr && options_.exec->NextIoOpFails();
}

Status SnapshotStore::Save(std::string_view tenant,
                           const std::string& bytes) {
  const std::string path = PathFor(tenant);
  const std::string tmp = StrCat(path, ".tmp");
  Status status = [&]() -> Status {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644));
    if (fd.get() < 0) return Errno("open", tmp);
    for (size_t offset = 0; offset < bytes.size() || offset == 0;
         offset += kWriteChunkBytes) {
      const size_t chunk =
          std::min(kWriteChunkBytes, bytes.size() - offset);
      if (NextOpFails()) {
        // A short write, not a clean abort: half the chunk lands on
        // disk before the "crash", leaving a genuinely torn tmp.
        Status torn =
            WriteAll(fd.get(), bytes.data() + offset, chunk / 2, tmp);
        (void)torn;
        return InjectedFault("write");
      }
      CAR_RETURN_IF_ERROR(
          WriteAll(fd.get(), bytes.data() + offset, chunk, tmp));
      if (bytes.empty()) break;
    }
    if (NextOpFails()) return InjectedFault("fsync");
    if (::fsync(fd.get()) != 0) return Errno("fsync", tmp);
    if (::close(fd.Release()) != 0) return Errno("close", tmp);
    if (NextOpFails()) return InjectedFault("rename");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      return Errno("rename", tmp);
    }
    Fd dir(::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
    if (dir.get() < 0) return Errno("open", directory_);
    if (NextOpFails()) return InjectedFault("fsync directory");
    if (::fsync(dir.get()) != 0) return Errno("fsync", directory_);
    return Status::Ok();
  }();
  if (status.ok()) {
    saves_.fetch_add(1, std::memory_order_relaxed);
    return status;
  }
  save_failures_.fetch_add(1, std::memory_order_relaxed);
  // Best-effort cleanup of the tmp — itself an injected op, so under
  // sticky injection the torn tmp survives exactly as it would after a
  // real crash, and the next Open's recovery scan quarantines it.
  if (!NextOpFails()) ::unlink(tmp.c_str());
  return status;
}

Result<std::string> SnapshotStore::Load(std::string_view tenant,
                                        uint64_t schema_fingerprint) {
  const std::string path = PathFor(tenant);
  Result<std::string> bytes =
      ReadWholeFile(path, options_.max_snapshot_bytes);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) {
      load_misses_.fetch_add(1, std::memory_order_relaxed);
      return bytes.status();
    }
    // Oversize files fail header triage semantics: quarantine.
    if (bytes.status().code() == StatusCode::kInvalidArgument) {
      CAR_RETURN_IF_ERROR(
          QuarantineFile(path, bytes.status().message()));
    }
    return bytes.status();
  }
  if (NextOpFails() && !bytes->empty()) {
    // Injected read corruption: flip one bit mid-file. The flip is in
    // the payload region for any realistic snapshot, so the per-section
    // CRC — not luck — must catch it downstream.
    (*bytes)[bytes->size() / 2] ^= 0x01;
  }
  Result<SnapshotHeader> header = PeekSnapshotHeader(*bytes);
  if (!header.ok()) {
    CAR_RETURN_IF_ERROR(QuarantineFile(path, header.status().message()));
    return header.status();
  }
  if (header->schema_fingerprint != schema_fingerprint) {
    // A snapshot of an older schema version: superseded, not corrupt.
    // The next Save overwrites it.
    load_misses_.fetch_add(1, std::memory_order_relaxed);
    return NotFound(StrCat("snapshot at ", path,
                           " was built for a different schema"));
  }
  loads_.fetch_add(1, std::memory_order_relaxed);
  return bytes;
}

Status SnapshotStore::Quarantine(std::string_view tenant,
                                 std::string_view reason) {
  const std::string path = PathFor(tenant);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::Ok();  // Already gone.
  }
  return QuarantineFile(path, reason);
}

Status SnapshotStore::Remove(std::string_view tenant) {
  const std::string path = PathFor(tenant);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace car
