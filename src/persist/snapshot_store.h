#ifndef CAR_PERSIST_SNAPSHOT_STORE_H_
#define CAR_PERSIST_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/exec_context.h"
#include "base/result.h"

namespace car {
namespace persist {

// Durable storage of warm-state snapshots: one flat file per tenant
// under a single state directory.
//
// Durability protocol (Save): write to `<file>.tmp`, fsync the file,
// rename onto `<file>`, fsync the directory. A crash at any point
// leaves either the previous snapshot or a `.tmp` the next Open
// quarantines — never a half-written `<file>.snap`.
//
// Recovery (Open): the directory is scanned once. Leftover `.snap.tmp`
// files (torn writes) and `.snap` files whose header fails triage
// (bad magic, wrong format version or ABI fingerprint, oversize) are
// renamed to `<name>.quarantine` and kept for inspection; they are
// never deleted and never read again. Files with other extensions are
// ignored entirely.
//
// The store treats snapshot payloads as opaque bytes: full decoding and
// schema-fingerprint verification beyond the header happen in the
// session layer, which calls Quarantine() when a payload that passed
// header triage fails to deserialize.
//
// Every I/O primitive on the serving path (write chunk, fsync, rename,
// unlink, read) is routed through ExecContext::NextIoOpFails() when an
// ExecContext is configured, giving tests a deterministic sweep over
// every abort point. Injection is sticky fail-stop: once an op fails,
// all later ops fail too, modeling a process that dies mid-sequence.

struct SnapshotStoreOptions {
  /// Files larger than this are quarantined, not read: a corrupt length
  /// field must not translate into an arbitrary allocation.
  size_t max_snapshot_bytes = 256u << 20;
  /// Borrowed fault-injection context; null = real I/O only.
  ExecContext* exec = nullptr;
};

struct SnapshotStoreStats {
  uint64_t saves = 0;
  uint64_t save_failures = 0;
  uint64_t loads = 0;
  uint64_t load_misses = 0;
  uint64_t quarantines = 0;
};

class SnapshotStore {
 public:
  /// Creates the directory if missing and runs the recovery scan.
  /// Fails (kInternal) if the directory cannot be created or scanned;
  /// individual bad snapshot files never fail Open — they are
  /// quarantined.
  static Result<std::unique_ptr<SnapshotStore>> Open(
      std::string directory, SnapshotStoreOptions options = {});

  /// Atomically replaces the tenant's snapshot file with `bytes`.
  /// On failure the previous snapshot (if any) is still intact, though
  /// a torn `.tmp` may remain for the next recovery scan to quarantine.
  Status Save(std::string_view tenant, const std::string& bytes);

  /// Reads the tenant's snapshot. kNotFound if there is no file or the
  /// header's schema fingerprint differs from `schema_fingerprint`
  /// (a stale snapshot of an older schema — superseded, not corrupt).
  /// Files failing header triage are quarantined and the triage error
  /// returned. The payload past the header is NOT validated here.
  Result<std::string> Load(std::string_view tenant,
                           uint64_t schema_fingerprint);

  /// Moves the tenant's snapshot file aside as `<file>.quarantine`
  /// (used by the session layer when a payload fails to deserialize).
  /// No-op if the file does not exist.
  Status Quarantine(std::string_view tenant, std::string_view reason);

  /// Deletes the tenant's snapshot file. No-op if absent.
  Status Remove(std::string_view tenant);

  /// Basename of the tenant's snapshot file: a sanitized prefix of the
  /// tenant name plus a 64-bit hash, so arbitrary tenant strings map to
  /// distinct, filesystem-safe names.
  static std::string FileName(std::string_view tenant);

  const std::string& directory() const { return directory_; }

  SnapshotStoreStats stats() const {
    SnapshotStoreStats out;
    out.saves = saves_.load(std::memory_order_relaxed);
    out.save_failures = save_failures_.load(std::memory_order_relaxed);
    out.loads = loads_.load(std::memory_order_relaxed);
    out.load_misses = load_misses_.load(std::memory_order_relaxed);
    out.quarantines = quarantines_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  SnapshotStore(std::string directory, SnapshotStoreOptions options)
      : directory_(std::move(directory)), options_(options) {}

  Status RecoveryScan();
  Status QuarantineFile(const std::string& path, std::string_view reason);
  std::string PathFor(std::string_view tenant) const;
  /// True if the next injected I/O op fails (always false without an
  /// ExecContext).
  bool NextOpFails() const;

  std::string directory_;
  SnapshotStoreOptions options_;
  std::atomic<uint64_t> saves_{0};
  std::atomic<uint64_t> save_failures_{0};
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> load_misses_{0};
  std::atomic<uint64_t> quarantines_{0};
};

}  // namespace persist
}  // namespace car

#endif  // CAR_PERSIST_SNAPSHOT_STORE_H_
