#include "expansion/cluster_enum.h"

namespace car {

bool CanIncludeClass(const PairTables& tables,
                     const std::vector<ClassId>& included,
                     const std::vector<bool>& excluded, ClassId c) {
  if (tables.AreDisjoint(c, c)) return false;
  for (ClassId d : included) {
    if (tables.AreDisjoint(c, d)) return false;
  }
  for (ClassId super : tables.SuperclassesOf(c)) {
    if (excluded[super]) return false;
  }
  return true;
}

bool CanExcludeClass(const PairTables& tables,
                     const std::vector<ClassId>& included, ClassId c) {
  for (ClassId d : included) {
    if (tables.IsIncluded(d, c)) return false;
  }
  return true;
}

namespace {

Status Dfs(const Schema& schema, const PairTables& tables,
           const std::vector<ClassId>& cluster, size_t pos,
           ExecContext* exec, size_t* subsets_visited,
           std::vector<ClassId>* included, std::vector<bool>* excluded,
           const std::function<Status(CompoundClass)>& emit) {
  if (GovCancelled(exec)) return GovCheck(exec, "expansion");
  if (pos == cluster.size()) {
    CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "expansion"));
    ++*subsets_visited;
    if (included->empty()) return Status::Ok();
    CompoundClass compound(*included);
    if (compound.IsConsistent(schema)) {
      return emit(std::move(compound));
    }
    return Status::Ok();
  }
  const ClassId c = cluster[pos];
  if (CanIncludeClass(tables, *included, *excluded, c)) {
    included->push_back(c);
    CAR_RETURN_IF_ERROR(Dfs(schema, tables, cluster, pos + 1, exec,
                            subsets_visited, included, excluded, emit));
    included->pop_back();
  }
  if (CanExcludeClass(tables, *included, c)) {
    (*excluded)[c] = true;
    CAR_RETURN_IF_ERROR(Dfs(schema, tables, cluster, pos + 1, exec,
                            subsets_visited, included, excluded, emit));
    (*excluded)[c] = false;
  }
  return Status::Ok();
}

}  // namespace

Status EnumerateClusterSubsets(
    const Schema& schema, const PairTables& tables,
    const std::vector<ClassId>& cluster, ExecContext* exec,
    size_t* subsets_visited,
    const std::function<Status(CompoundClass)>& emit) {
  std::vector<ClassId> included;
  std::vector<bool> excluded(schema.num_classes(), false);
  return Dfs(schema, tables, cluster, 0, exec, subsets_visited, &included,
             &excluded, emit);
}

}  // namespace car
