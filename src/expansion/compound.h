#ifndef CAR_EXPANSION_COMPOUND_H_
#define CAR_EXPANSION_COMPOUND_H_

#include <algorithm>
#include <string>
#include <vector>

#include "model/schema.h"

namespace car {

/// A compound class C̄: a subset of the class symbols (Section 3.1). It
/// stands for the objects that are instances of exactly the classes in the
/// subset — instances of every member and non-instances of every
/// non-member. Compound classes therefore have pairwise disjoint
/// extensions, which is what makes the disequation system of phase (2)
/// well-defined.
class CompoundClass {
 public:
  CompoundClass() = default;
  /// `members` need not be sorted; duplicates are removed.
  explicit CompoundClass(std::vector<ClassId> members);

  const std::vector<ClassId>& members() const { return members_; }
  bool empty() const { return members_.empty(); }
  size_t size() const { return members_.size(); }

  bool Contains(ClassId class_id) const {
    return std::binary_search(members_.begin(), members_.end(), class_id);
  }

  /// The induced truth assignment Φ_C̄ extended to literals, clauses and
  /// formulae: a positive literal is true iff its class is a member.
  bool Realizes(const ClassLiteral& literal) const {
    return literal.negated != Contains(literal.class_id);
  }
  bool Realizes(const ClassClause& clause) const;
  bool Realizes(const ClassFormula& formula) const;

  /// Consistency w.r.t. the schema: for every member C, Φ_C̄ realizes the
  /// isa formula of C (Section 3.1).
  bool IsConsistent(const Schema& schema) const;

  /// Renders "{A, B}" using schema names.
  std::string ToString(const Schema& schema) const;

  bool operator==(const CompoundClass& other) const {
    return members_ == other.members_;
  }
  bool operator<(const CompoundClass& other) const {
    return members_ < other.members_;
  }

 private:
  std::vector<ClassId> members_;  // Sorted, unique.
};

/// A compound attribute ⟨C̄1, C̄2⟩_A, stored as indices into the
/// expansion's compound-class list.
struct CompoundAttribute {
  AttributeId attribute = kInvalidId;
  int from = -1;  // Index of C̄1.
  int to = -1;    // Index of C̄2.

  bool operator==(const CompoundAttribute& other) const {
    return attribute == other.attribute && from == other.from &&
           to == other.to;
  }
};

/// A compound relation ⟨U1: C̄1, ..., UK: C̄K⟩_R: one compound-class index
/// per role, in the role order of the relation's definition.
struct CompoundRelation {
  RelationId relation = kInvalidId;
  std::vector<int> components;

  bool operator==(const CompoundRelation& other) const {
    return relation == other.relation && components == other.components;
  }
};

/// Consistency of a compound attribute (Section 3.1): for every member C
/// of C̄1 with a direct A-spec, C̄2 realizes its range; for every member C
/// of C̄2 with an (inv A)-spec, C̄1 realizes its range. (Consistency of
/// the component compound classes is checked by the caller.)
bool IsConsistentCompoundAttribute(const Schema& schema, AttributeId attribute,
                                   const CompoundClass& from,
                                   const CompoundClass& to);

/// Consistency of a compound relation (Section 3.1): for every role-clause
/// of R's definition, at least one role-literal (U_ki : F_i) has its
/// formula realized by the compound class at that role.
bool IsConsistentCompoundRelation(const Schema& schema,
                                  const RelationDefinition& definition,
                                  const std::vector<const CompoundClass*>&
                                      components);

}  // namespace car

#endif  // CAR_EXPANSION_COMPOUND_H_
