#ifndef CAR_EXPANSION_CLUSTER_ENUM_H_
#define CAR_EXPANSION_CLUSTER_ENUM_H_

#include <functional>
#include <vector>

#include "analysis/pair_tables.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "expansion/compound.h"
#include "model/schema.h"

namespace car {

/// The include/exclude pruning predicates of the pruned depth-first
/// enumeration (Section 4.3 criterion (a)), shared by the parallel
/// ExpansionBuilder shards and the serial per-cluster enumeration of the
/// incremental delta path. `included` holds the classes already chosen;
/// `excluded` marks classes decided out (indexed by class id; classes of
/// other clusters are implicitly out and never consulted).

/// Include is futile when c is self-disjoint, disjoint from an already
/// included class, or has a recorded superclass already decided out.
bool CanIncludeClass(const PairTables& tables,
                     const std::vector<ClassId>& included,
                     const std::vector<bool>& excluded, ClassId c);

/// Exclude is impossible when an included class is recorded as a subclass
/// of c (then c is forced in).
bool CanExcludeClass(const PairTables& tables,
                     const std::vector<ClassId>& included, ClassId c);

/// Serial pruned depth-first enumeration of the consistent non-empty
/// compound classes within one cluster — the same decision tree as one
/// unsharded ExpansionBuilder shard, so for identical (cluster, tables,
/// per-member isa formulas) it yields exactly the same compound set.
/// Charges one "expansion" work unit per subset visited and observes
/// cancellation between nodes; `emit` may return a non-ok status to abort
/// (e.g. a tripped cap), which is returned as-is.
Status EnumerateClusterSubsets(
    const Schema& schema, const PairTables& tables,
    const std::vector<ClassId>& cluster, ExecContext* exec,
    size_t* subsets_visited,
    const std::function<Status(CompoundClass)>& emit);

}  // namespace car

#endif  // CAR_EXPANSION_CLUSTER_ENUM_H_
