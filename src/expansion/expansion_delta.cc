#include "expansion/expansion_delta.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "analysis/union_free.h"
#include "base/check.h"
#include "expansion/cluster_enum.h"

namespace car {

namespace {

/// Replays the preselection preamble of the pruned enumeration (the same
/// recipe ExpansionBuilder::EnumerateCompoundClasses uses).
PairTables BuildTablesFor(const Schema& schema,
                          const ExpansionOptions& options) {
  PairTableOptions table_options;
  table_options.propagate = options.propagate_tables;
  PairTables tables = BuildPairTables(schema, table_options);
  if (options.union_free_completion && schema.IsUnionFree()) {
    CompleteDisjointnessUnionFree(schema, &tables);
  }
  return tables;
}

/// True when the cluster's pruning inputs agree under both tables: every
/// within-cluster disjointness and inclusion entry (including the
/// self-disjointness diagonal) is identical. Together with an identical
/// class list this makes the pruned DFS decision tree — and hence the
/// emitted compound set — identical, because the DFS consults exactly
/// AreDisjoint(c, c), AreDisjoint(c, included), IsIncluded(included, c)
/// and the excluded-superclass test, whose out-of-cluster part is inert
/// (classes of other clusters are never marked excluded).
bool ClusterTablesUnchanged(const std::vector<ClassId>& cluster,
                            const PairTables& base_tables,
                            const PairTables& ext_tables) {
  for (ClassId c : cluster) {
    for (ClassId d : cluster) {
      if (base_tables.AreDisjoint(c, d) != ext_tables.AreDisjoint(c, d)) {
        return false;
      }
      if (base_tables.IsIncluded(c, d) != ext_tables.IsIncluded(c, d)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<ExpansionBaseAnalysis> AnalyzeBaseExpansion(
    const Schema& schema, const Expansion& base,
    const ExpansionOptions& options) {
  if (options.strategy != ExpansionStrategy::kPruned) {
    return FailedPrecondition(
        "incremental expansion deltas require the pruned strategy");
  }
  ExpansionBaseAnalysis analysis{BuildTablesFor(schema, options), {}, {}, {}};
  analysis.partition = options.use_clusters
                           ? ComputeClusters(schema, analysis.tables)
                           : SingleCluster(schema);
  analysis.cluster_compounds.assign(analysis.partition.num_clusters(), {});
  for (size_t i = 1; i < base.compound_classes.size(); ++i) {
    const CompoundClass& compound = base.compound_classes[i];
    CAR_CHECK(!compound.empty());
    const int cluster =
        analysis.partition.cluster_of[compound.members().front()];
    // The pruned enumeration never mixes clusters; verify rather than
    // assume (a mismatch would mean `base` was built with different
    // options than the ones replayed here).
    for (ClassId member : compound.members()) {
      if (analysis.partition.cluster_of[member] != cluster) {
        return FailedPrecondition(
            "base expansion has a cross-cluster compound class; it was "
            "not built with the replayed options");
      }
    }
    analysis.cluster_compounds[cluster].push_back(static_cast<int>(i));
  }
  for (int k = 0; k < analysis.partition.num_clusters(); ++k) {
    analysis.cluster_by_classes.emplace(analysis.partition.clusters[k], k);
  }
  return analysis;
}

Result<ExpansionDelta> ExtendExpansionWithAuxClass(
    const Schema& ext_schema, ClassId aux, const Expansion& base,
    const ExpansionBaseAnalysis& analysis, const ExpansionOptions& options) {
  CAR_CHECK_EQ(static_cast<int>(aux), ext_schema.num_classes() - 1);
  ExecContext* exec = options.exec;
  CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));

  const int num_base_cc = static_cast<int>(base.compound_classes.size());
  ExpansionDelta delta;

  // --- Compound classes: re-cluster the extended schema; clusters whose
  // class list and within-cluster table rows are unchanged keep their base
  // compounds wholesale, the rest are re-enumerated with the extended
  // tables.
  PairTables ext_tables = BuildTablesFor(ext_schema, options);
  ClusterPartition ext_partition =
      options.use_clusters ? ComputeClusters(ext_schema, ext_tables)
                           : SingleCluster(ext_schema);

  // Base compounds the re-enumerated clusters must re-emit (all compounds
  // of every base cluster they cover) vs. those actually seen. Set
  // equality is the base-prefix guarantee: extended set = base ∪ new.
  std::set<int> expected_base;
  std::set<int> reemitted_base;
  std::vector<CompoundClass> new_compounds;

  for (const std::vector<ClassId>& cluster : ext_partition.clusters) {
    bool reusable = false;
    if (std::find(cluster.begin(), cluster.end(), aux) == cluster.end()) {
      auto it = analysis.cluster_by_classes.find(cluster);
      if (it != analysis.cluster_by_classes.end() &&
          ClusterTablesUnchanged(cluster, analysis.tables, ext_tables)) {
        reusable = true;
      }
    }
    if (reusable) {
      ++delta.clusters_reused;
      continue;
    }
    ++delta.clusters_reenumerated;
    for (ClassId c : cluster) {
      if (c == aux) continue;
      for (int index :
           analysis.cluster_compounds[analysis.partition.cluster_of[c]]) {
        expected_base.insert(index);
      }
    }
    CAR_RETURN_IF_ERROR(EnumerateClusterSubsets(
        ext_schema, ext_tables, cluster, exec, &delta.subsets_visited,
        [&](CompoundClass compound) -> Status {
          const int base_index = base.IndexOfCompoundClass(compound);
          if (base_index >= 0) {
            reemitted_base.insert(base_index);
            return Status::Ok();
          }
          if (static_cast<size_t>(num_base_cc) + new_compounds.size() >=
              options.max_compound_classes) {
            return GovRecordTrip(exec, LimitKind::kMaxCompoundClasses,
                                 "expansion", options.max_compound_classes,
                                 options.max_compound_classes);
          }
          CAR_RETURN_IF_ERROR(GovChargeBytes(
              exec,
              sizeof(CompoundClass) +
                  compound.members().size() * sizeof(ClassId),
              "expansion"));
          if (exec != nullptr) exec->CountCompounds(1);
          new_compounds.push_back(std::move(compound));
          return Status::Ok();
        }));
  }
  if (expected_base != reemitted_base) {
    // The auxiliary class changed the preselection outcome for base
    // classes (e.g. a union-free schema became non-union-free, losing
    // completed disjointness entries); the frozen base prefix would not
    // match a from-scratch build, so the caller must fall back. Answers
    // are never silently approximated.
    return FailedPrecondition(
        "expansion delta: re-enumerated clusters did not reproduce the "
        "base compound classes; from-scratch fallback required");
  }
  std::sort(new_compounds.begin(), new_compounds.end());
  delta.new_compound_classes = std::move(new_compounds);
  CAR_RETURN_IF_ERROR(
      PopulateDeltaExtensions(ext_schema, base, options, &delta));
  CAR_RETURN_IF_ERROR(GovCheck(exec, "expansion"));
  return delta;
}

Status PopulateDeltaExtensions(const Schema& schema, const Expansion& base,
                               const ExpansionOptions& options,
                               ExpansionDelta* deltap) {
  ExecContext* exec = options.exec;
  ExpansionDelta& delta = *deltap;
  const int num_base_cc = static_cast<int>(base.compound_classes.size());
  const int num_new_cc = static_cast<int>(delta.new_compound_classes.size());
  const int num_total_cc = num_base_cc + num_new_cc;
  auto compound_at = [&](int global) -> const CompoundClass& {
    return global < num_base_cc
               ? base.compound_classes[global]
               : delta.new_compound_classes[global - num_base_cc];
  };
  const Schema& ext_schema = schema;

  // --- Natt/Nrel entries of the new compounds. Entries are intrinsic to
  // a compound's members (intersection of their specs), so base entries
  // are unchanged and only the new compounds contribute.
  for (int j = 0; j < num_new_cc; ++j) {
    const int global = num_base_cc + j;
    for (ClassId member : delta.new_compound_classes[j].members()) {
      const ClassDefinition& definition = ext_schema.class_definition(member);
      for (const AttributeSpec& spec : definition.attributes) {
        auto key = std::make_pair(spec.term, global);
        auto [it, inserted] = delta.new_natt.emplace(key, spec.cardinality);
        if (!inserted) {
          it->second =
              Cardinality::IntersectUnchecked(it->second, spec.cardinality);
        }
      }
      for (const ParticipationSpec& spec : definition.participations) {
        const RelationDefinition* relation =
            ext_schema.relation_definition(spec.relation);
        CAR_CHECK(relation != nullptr);
        const int role_index = relation->RoleIndex(spec.role);
        CAR_CHECK_GE(role_index, 0);
        auto key = std::make_tuple(spec.relation, role_index, global);
        auto [it, inserted] = delta.new_nrel.emplace(key, spec.cardinality);
        if (!inserted) {
          it->second =
              Cardinality::IntersectUnchecked(it->second, spec.cardinality);
        }
      }
    }
  }

  // --- New compound attributes: the extended candidate set minus the
  // base candidate set is exactly the pairs with at least one NEW
  // element — base-constrained endpoints against new partners plus
  // new-constrained endpoints against everything. Consistency is
  // intrinsic to (attribute, from, to), so base pairs keep their base
  // verdicts and need no re-filtering.
  std::vector<std::set<int>> base_cf(ext_schema.num_attributes());
  std::vector<std::set<int>> base_ct(ext_schema.num_attributes());
  for (const auto& [key, cardinality] : base.natt) {
    (void)cardinality;
    const auto& [term, compound_index] = key;
    (term.inverse ? base_ct : base_cf)[term.attribute].insert(compound_index);
  }
  std::vector<std::set<int>> new_cf(ext_schema.num_attributes());
  std::vector<std::set<int>> new_ct(ext_schema.num_attributes());
  for (const auto& [key, cardinality] : delta.new_natt) {
    (void)cardinality;
    const auto& [term, compound_index] = key;
    (term.inverse ? new_ct : new_cf)[term.attribute].insert(compound_index);
  }
  const size_t num_base_ca = base.compound_attributes.size();
  for (AttributeId a = 0; a < ext_schema.num_attributes(); ++a) {
    std::set<std::pair<int, int>> candidates;
    for (int from : base_cf[a]) {
      for (int to = num_base_cc; to < num_total_cc; ++to) {
        candidates.emplace(from, to);
      }
    }
    for (int from : new_cf[a]) {
      for (int to = 0; to < num_total_cc; ++to) {
        candidates.emplace(from, to);
      }
    }
    for (int to : base_ct[a]) {
      for (int from = num_base_cc; from < num_total_cc; ++from) {
        candidates.emplace(from, to);
      }
    }
    for (int to : new_ct[a]) {
      for (int from = 0; from < num_total_cc; ++from) {
        candidates.emplace(from, to);
      }
    }
    for (const auto& [from, to] : candidates) {
      CAR_RETURN_IF_ERROR(GovChargeWork(exec, 1, "expansion-filter"));
      if (!IsConsistentCompoundAttribute(ext_schema, a, compound_at(from),
                                         compound_at(to))) {
        continue;
      }
      if (num_base_ca + delta.new_compound_attributes.size() >=
          options.max_compound_attributes) {
        return GovRecordTrip(exec, LimitKind::kMaxCompoundAttributes,
                             "expansion-filter",
                             options.max_compound_attributes,
                             options.max_compound_attributes);
      }
      const int index = static_cast<int>(num_base_ca +
                                         delta.new_compound_attributes.size());
      delta.new_compound_attributes.push_back({a, from, to});
      delta.new_ca_by_from[{a, from}].push_back(index);
      delta.new_ca_by_to[{a, to}].push_back(index);
    }
  }

  // --- New compound relations: constrained-anchored component vectors
  // with at least one NEW component. Decomposition: tuples anchored at a
  // new constrained compound are all new; tuples anchored at a base
  // constrained compound are enumerated by the first position holding a
  // new compound (positions before it base-only, that position new-only,
  // positions after it unrestricted). A shared per-relation seen-set
  // dedupes across anchors like the base build.
  const size_t num_base_cr = base.compound_relations.size();
  for (RelationId r = 0; r < ext_schema.num_relations(); ++r) {
    const RelationDefinition* definition = ext_schema.relation_definition(r);
    if (definition == nullptr) continue;
    const int arity = definition->arity();

    std::vector<std::set<int>> constrained_base(arity);
    std::vector<std::set<int>> constrained_new(arity);
    bool any_constraint = false;
    for (const auto& [key, cardinality] : base.nrel) {
      (void)cardinality;
      if (std::get<0>(key) != r) continue;
      constrained_base[std::get<1>(key)].insert(std::get<2>(key));
      any_constraint = true;
    }
    for (const auto& [key, cardinality] : delta.new_nrel) {
      (void)cardinality;
      if (std::get<0>(key) != r) continue;
      constrained_new[std::get<1>(key)].insert(std::get<2>(key));
      any_constraint = true;
    }
    if (!any_constraint) continue;

    // Single-literal role-clause prefilter, split base/new. Realizing a
    // formula is intrinsic to the compound, so the base half coincides
    // with the base enumeration's `allowed` sets.
    std::vector<std::vector<int>> allowed_base(arity);
    std::vector<std::vector<int>> allowed_new(arity);
    for (int k = 0; k < arity; ++k) {
      for (int i = 0; i < num_total_cc; ++i) {
        bool ok = true;
        for (const RoleClause& clause : definition->constraints) {
          if (clause.literals.size() != 1) continue;
          const RoleLiteral& literal = clause.literals[0];
          if (definition->RoleIndex(literal.role) != k) continue;
          if (!compound_at(i).Realizes(literal.formula)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          (i < num_base_cc ? allowed_base : allowed_new)[k].push_back(i);
        }
      }
    }

    std::set<std::vector<int>> seen;
    Status status = Status::Ok();
    // Fillers advance left to right, skipping the pre-placed anchor.
    // `min_new` = -1: every position ranges over base then new compounds
    // (the anchor itself is new). `min_new` >= 0: positions before it are
    // base-only, it is new-only, later positions are unrestricted —
    // partitioning the ≥1-new tuples by their first new filler position.
    std::function<void(int, int, std::vector<int>*)> fill =
        [&](int position, int min_new, std::vector<int>* components) {
          if (!status.ok()) return;
          if (position == arity) {
            status = GovChargeWork(exec, 1, "expansion-relations");
            if (!status.ok()) return;
            if (!seen.insert(*components).second) return;
            std::vector<const CompoundClass*> views;
            views.reserve(arity);
            for (int index : *components) {
              views.push_back(&compound_at(index));
            }
            if (!IsConsistentCompoundRelation(ext_schema, *definition,
                                              views)) {
              return;
            }
            if (num_base_cr + delta.new_compound_relations.size() >=
                options.max_compound_relations) {
              status = GovRecordTrip(exec, LimitKind::kMaxCompoundRelations,
                                     "expansion-relations",
                                     options.max_compound_relations,
                                     options.max_compound_relations);
              return;
            }
            const int index = static_cast<int>(
                num_base_cr + delta.new_compound_relations.size());
            for (int k = 0; k < arity; ++k) {
              delta.new_cr_by_role[{r, k, (*components)[k]}].push_back(index);
            }
            delta.new_compound_relations.push_back({r, *components});
            return;
          }
          if ((*components)[position] >= 0) {  // The anchor; already placed.
            fill(position + 1, min_new, components);
            return;
          }
          const bool use_base = min_new < 0 || position != min_new;
          const bool use_new = min_new < 0 || position >= min_new;
          if (use_base) {
            for (int candidate : allowed_base[position]) {
              (*components)[position] = candidate;
              fill(position + 1, min_new, components);
              if (!status.ok()) break;
            }
          }
          if (use_new && status.ok()) {
            for (int candidate : allowed_new[position]) {
              (*components)[position] = candidate;
              fill(position + 1, min_new, components);
              if (!status.ok()) break;
            }
          }
          (*components)[position] = -1;
        };

    for (int anchor = 0; anchor < arity && status.ok(); ++anchor) {
      for (int anchored : constrained_new[anchor]) {
        std::vector<int> components(arity, -1);
        components[anchor] = anchored;
        fill(0, -1, &components);
        if (!status.ok()) break;
      }
      for (int anchored : constrained_base[anchor]) {
        for (int min_new = 0; min_new < arity && status.ok(); ++min_new) {
          if (min_new == anchor) continue;
          std::vector<int> components(arity, -1);
          components[anchor] = anchored;
          fill(0, min_new, &components);
        }
      }
    }
    CAR_RETURN_IF_ERROR(status);
  }

  return GovCheck(exec, "expansion");
}

}  // namespace car
