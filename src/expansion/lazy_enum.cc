#include "expansion/lazy_enum.h"

#include <utility>

#include "analysis/union_free.h"
#include "base/check.h"
#include "expansion/cluster_enum.h"

namespace car {

ExpansionPreamble BuildExpansionPreamble(const Schema& schema,
                                         const ExpansionOptions& options) {
  // Same recipe as ExpansionBuilder::EnumerateCompoundClasses (and
  // AnalyzeBaseExpansion): propagated pair tables, union-free completion
  // when it applies, then the configured partition.
  PairTableOptions table_options;
  table_options.propagate = options.propagate_tables;
  ExpansionPreamble preamble{BuildPairTables(schema, table_options), {}};
  if (options.union_free_completion && schema.IsUnionFree()) {
    CompleteDisjointnessUnionFree(schema, &preamble.tables);
  }
  preamble.partition = options.use_clusters
                           ? ComputeClusters(schema, preamble.tables)
                           : SingleCluster(schema);
  return preamble;
}

LazyCompoundStream::LazyCompoundStream(const Schema& schema,
                                       const PairTables& tables,
                                       const std::vector<ClassId>& cluster,
                                       ClassId pinned)
    : schema_(&schema), tables_(&tables), pinned_(pinned) {
  order_.reserve(cluster.size());
  order_.push_back(pinned);
  bool found = false;
  for (ClassId c : cluster) {
    if (c == pinned) {
      found = true;
      continue;
    }
    order_.push_back(c);
  }
  CAR_CHECK(found);  // the pinned class must belong to its cluster
}

Status LazyCompoundStream::Advance(
    size_t limit, ExecContext* exec,
    const std::function<void(const CompoundClass&)>& sink) {
  if (exhausted_ || limit == 0) return Status::Ok();

  // Replay the pruned decision tree from the root, skipping the leaves
  // already delivered. The predicates and the leaf check are the ones the
  // eager DFS uses, so a full assignment survives here iff it survives
  // there — the pruning conditions (self-disjointness, pairwise
  // disjointness, inclusion-closure under the tables) are properties of
  // the final subset, independent of the decision order.
  std::vector<ClassId> included;
  std::vector<bool> excluded(schema_->num_classes(), false);
  size_t seen = 0;
  size_t produced = 0;
  Status status;
  bool done = false;

  std::function<void(size_t)> dfs = [&](size_t pos) {
    if (!status.ok() || done) return;
    if (GovCancelled(exec)) {
      status = GovCheck(exec, "expansion");
      return;
    }
    if (pos == order_.size()) {
      status = GovChargeWork(exec, 1, "expansion");
      if (!status.ok()) return;
      CompoundClass compound(included);
      if (!compound.IsConsistent(*schema_)) return;
      if (seen++ < delivered_) return;  // delivered by an earlier Advance
      sink(compound);
      ++delivered_;
      if (++produced == limit) done = true;
      return;
    }
    const ClassId c = order_[pos];
    if (CanIncludeClass(*tables_, included, excluded, c)) {
      included.push_back(c);
      dfs(pos + 1);
      included.pop_back();
    }
    // The pinned class (pos 0) only ever takes the include branch: every
    // compound of this stream contains it.
    if (pos == 0) return;
    if (!status.ok() || done) return;
    if (CanExcludeClass(*tables_, included, c)) {
      excluded[c] = true;
      dfs(pos + 1);
      excluded[c] = false;
    }
  };
  dfs(0);

  if (status.ok() && !done) exhausted_ = true;
  return status;
}

}  // namespace car
