#ifndef CAR_EXPANSION_LAZY_ENUM_H_
#define CAR_EXPANSION_LAZY_ENUM_H_

#include <functional>
#include <set>
#include <vector>

#include "analysis/clusters.h"
#include "analysis/pair_tables.h"
#include "base/exec_context.h"
#include "base/status.h"
#include "expansion/compound.h"
#include "expansion/expansion.h"
#include "model/schema.h"

namespace car {

/// The preselection preamble of the pruned enumeration — pair tables with
/// the configured propagation (and union-free completion when it
/// applies), plus the cluster partition. The lazy expansion engine
/// replays exactly the recipe ExpansionBuilder uses, so every compound it
/// materializes is a member of the eager compound set and the partial
/// expansion stays an index-stable prefix-compatible subset of the full
/// one.
struct ExpansionPreamble {
  PairTables tables;
  ClusterPartition partition;
};

ExpansionPreamble BuildExpansionPreamble(const Schema& schema,
                                         const ExpansionOptions& options);

/// A resumable stream of the consistent compound classes containing one
/// pinned class, in a fixed canonical order (the pruned DFS over the
/// pinned class's cluster, with the pinned class decided first and
/// forced in). Each Advance call re-traverses the pruned decision tree
/// and skips the compounds already delivered, so the stream needs no
/// persistent DFS state and stays cheap while deliveries are shallow —
/// the regime the lazy engine operates in (a handful of batches per
/// class, versus the exponential full enumeration it avoids).
///
/// The emitted set is exactly { C̄ in the full pruned expansion :
/// pinned ∈ C̄ }: the pruning predicates accept an assignment
/// independently of decision order (self-disjointness, pairwise
/// disjointness and inclusion-closure are properties of the final
/// subset), and the leaf consistency check is shared with the eager
/// builder.
class LazyCompoundStream {
 public:
  /// `cluster` is the pinned class's cluster (must contain `pinned`);
  /// `tables` and the cluster come from BuildExpansionPreamble with the
  /// same options as the eager build being shadowed. All borrowed; the
  /// caller keeps them alive.
  LazyCompoundStream(const Schema& schema, const PairTables& tables,
                     const std::vector<ClassId>& cluster, ClassId pinned);

  /// Delivers up to `limit` further compounds into `sink` (in stream
  /// order), charging one "expansion" work unit per subset visited.
  /// Returns the governor's trip status on aborts; the stream is then
  /// mid-replay and a later Advance re-delivers nothing twice (only
  /// compounds actually sunk count as delivered).
  Status Advance(size_t limit, ExecContext* exec,
                 const std::function<void(const CompoundClass&)>& sink);

  /// True once a completed Advance traversed the whole decision tree:
  /// every compound containing the pinned class has been delivered.
  bool exhausted() const { return exhausted_; }

  /// Compounds delivered so far.
  size_t delivered() const { return delivered_; }

  ClassId pinned() const { return pinned_; }

 private:
  const Schema* schema_;
  const PairTables* tables_;
  /// Decision order: pinned first (include-only), then the rest of the
  /// cluster in canonical cluster order.
  std::vector<ClassId> order_;
  ClassId pinned_;
  size_t delivered_ = 0;
  bool exhausted_ = false;
};

/// The refinement ledger of one lazy expansion run: which compound
/// classes have been materialized (seed + every refinement round), with
/// per-round counts for observability. The member-set key makes
/// cross-stream duplicates (a compound containing two pinned classes is
/// emitted by both streams) materialize once.
class RefinementLedger {
 public:
  /// Records the compound; false when it was already materialized.
  bool Add(const CompoundClass& compound) {
    return materialized_.insert(compound.members()).second;
  }

  bool Contains(const CompoundClass& compound) const {
    return materialized_.count(compound.members()) > 0;
  }

  /// All materialized compounds in canonical order (std::set iteration
  /// order is the canonical member-vector order).
  std::vector<CompoundClass> Compounds() const {
    std::vector<CompoundClass> compounds;
    compounds.reserve(materialized_.size());
    for (const std::vector<ClassId>& members : materialized_) {
      compounds.push_back(CompoundClass(members));
    }
    return compounds;
  }

  /// Closes the current accumulation bucket: the first call freezes the
  /// seed count, later calls append one refinement-round count each.
  void SealRound() {
    rounds_.push_back(materialized_.size() - sealed_);
    sealed_ = materialized_.size();
  }

  size_t size() const { return materialized_.size(); }
  /// Per-bucket materialization counts (index 0 = seed).
  const std::vector<size_t>& rounds() const { return rounds_; }

 private:
  std::set<std::vector<ClassId>> materialized_;
  size_t sealed_ = 0;
  std::vector<size_t> rounds_;
};

}  // namespace car

#endif  // CAR_EXPANSION_LAZY_ENUM_H_
