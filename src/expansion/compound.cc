#include "expansion/compound.h"

#include "base/check.h"
#include "base/strings.h"

namespace car {

CompoundClass::CompoundClass(std::vector<ClassId> members)
    : members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
}

bool CompoundClass::Realizes(const ClassClause& clause) const {
  for (const ClassLiteral& literal : clause.literals()) {
    if (Realizes(literal)) return true;
  }
  return false;
}

bool CompoundClass::Realizes(const ClassFormula& formula) const {
  for (const ClassClause& clause : formula.clauses()) {
    if (!Realizes(clause)) return false;
  }
  return true;
}

bool CompoundClass::IsConsistent(const Schema& schema) const {
  for (ClassId member : members_) {
    if (!Realizes(schema.class_definition(member).isa)) return false;
  }
  return true;
}

std::string CompoundClass::ToString(const Schema& schema) const {
  std::vector<std::string> names;
  names.reserve(members_.size());
  for (ClassId member : members_) names.push_back(schema.ClassName(member));
  return StrCat("{", StrJoin(names, ", "), "}");
}

bool IsConsistentCompoundAttribute(const Schema& schema, AttributeId attribute,
                                   const CompoundClass& from,
                                   const CompoundClass& to) {
  for (ClassId member : from.members()) {
    for (const AttributeSpec& spec :
         schema.class_definition(member).attributes) {
      if (spec.term.attribute == attribute && !spec.term.inverse &&
          !to.Realizes(spec.range)) {
        return false;
      }
    }
  }
  for (ClassId member : to.members()) {
    for (const AttributeSpec& spec :
         schema.class_definition(member).attributes) {
      if (spec.term.attribute == attribute && spec.term.inverse &&
          !from.Realizes(spec.range)) {
        return false;
      }
    }
  }
  return true;
}

bool IsConsistentCompoundRelation(
    const Schema& schema, const RelationDefinition& definition,
    const std::vector<const CompoundClass*>& components) {
  CAR_CHECK_EQ(components.size(), definition.roles.size());
  for (const RoleClause& clause : definition.constraints) {
    bool satisfied = false;
    for (const RoleLiteral& literal : clause.literals) {
      int index = definition.RoleIndex(literal.role);
      CAR_CHECK_GE(index, 0);
      if (components[index]->Realizes(literal.formula)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  (void)schema;
  return true;
}

}  // namespace car
