#include "expansion/expansion.h"

#include <algorithm>
#include <set>

#include "analysis/clusters.h"
#include "analysis/pair_tables.h"
#include "analysis/union_free.h"
#include "base/strings.h"
#include "base/thread_pool.h"
#include "expansion/cluster_enum.h"

namespace car {

void Expansion::RebuildDerivedIndexes() {
  ca_by_from.clear();
  ca_by_to.clear();
  cr_by_role.clear();
  compound_class_index_.clear();
  for (size_t i = 0; i < compound_classes.size(); ++i) {
    compound_class_index_.emplace(compound_classes[i].members(),
                                  static_cast<int>(i));
  }
  for (size_t i = 0; i < compound_attributes.size(); ++i) {
    const CompoundAttribute& ca = compound_attributes[i];
    ca_by_from[{ca.attribute, ca.from}].push_back(static_cast<int>(i));
    ca_by_to[{ca.attribute, ca.to}].push_back(static_cast<int>(i));
  }
  for (size_t i = 0; i < compound_relations.size(); ++i) {
    const CompoundRelation& cr = compound_relations[i];
    const int arity = static_cast<int>(cr.components.size());
    for (int k = 0; k < arity; ++k) {
      cr_by_role[{cr.relation, k, cr.components[k]}].push_back(
          static_cast<int>(i));
    }
  }
}

int Expansion::IndexOfCompoundClass(const CompoundClass& compound) const {
  auto it = compound_class_index_.find(compound.members());
  return it == compound_class_index_.end() ? -1 : it->second;
}

std::vector<int> Expansion::CompoundClassesContaining(ClassId class_id) const {
  std::vector<int> indices;
  for (size_t i = 0; i < compound_classes.size(); ++i) {
    if (compound_classes[i].Contains(class_id)) {
      indices.push_back(static_cast<int>(i));
    }
  }
  return indices;
}

std::string Expansion::Summary() const {
  return StrCat("expansion: ", compound_classes.size(), " compound classes, ",
                compound_attributes.size(), " compound attributes, ",
                compound_relations.size(), " compound relations, |Natt|=",
                natt.size(), ", |Nrel|=", nrel.size(), ", subsets visited ",
                subsets_visited);
}

namespace {

/// Number of leading enumeration positions fixed per shard: enough for
/// roughly four shards per thread (stealing slack for uneven subtrees),
/// capped so small clusters are not oversplit.
int PrefixBits(size_t positions, int threads) {
  if (threads <= 1) return 0;
  int bits = 0;
  while ((1u << bits) < 4u * static_cast<unsigned>(threads) && bits < 10) {
    ++bits;
  }
  return std::min(bits, static_cast<int>(positions));
}

}  // namespace

/// Assembles an Expansion: enumerates consistent compound classes (with
/// the selected strategy), then derives Natt/Nrel and the constrained
/// compound attributes and relations.
///
/// Enumeration is sharded: by connectivity cluster under the pruned
/// strategy, and additionally by literal-prefix (the include/exclude
/// decisions for the first few classes of a cluster, or the low bits of
/// the subset mask for the exhaustive strategy). Shards are independent,
/// run on the shared pool, and their outputs are merged in shard order
/// and canonically sorted — so the resulting Expansion is bit-identical
/// for every thread count, with num_threads = 1 as the serial reference.
class ExpansionBuilder {
 public:
  ExpansionBuilder(const Schema& schema, const ExpansionOptions& options)
      : schema_(schema), options_(options), exec_(options.exec) {
    parallel_.num_threads = options.num_threads;
    parallel_.cancel = options.exec;
  }

  Result<Expansion> Build() {
    expansion_.schema = &schema_;
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion"));
    // The empty compound class is always present (index 0): objects that
    // are instances of no class. It is trivially consistent and can serve
    // as an attribute target/source or a relation component.
    expansion_.compound_classes.push_back(CompoundClass());

    CAR_RETURN_IF_ERROR(EnumerateCompoundClasses());
    BuildNatt();
    BuildNrel();
    CAR_RETURN_IF_ERROR(BuildCompoundAttributes());
    CAR_RETURN_IF_ERROR(BuildCompoundRelations());
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion"));
    return std::move(expansion_);
  }

  /// Same post-enumeration assembly, but over a caller-provided compound
  /// set (already canonically sorted, non-empty compounds only). The
  /// derivation stages are shared with Build(), so the artifact is
  /// exactly what Build() would produce had its enumeration emitted this
  /// set.
  Result<Expansion> BuildFrom(std::vector<CompoundClass> compounds) {
    expansion_.schema = &schema_;
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion"));
    expansion_.compound_classes.push_back(CompoundClass());
    expansion_.compound_classes.reserve(compounds.size() + 1);
    for (CompoundClass& compound : compounds) {
      CAR_RETURN_IF_ERROR(GovChargeBytes(
          exec_,
          sizeof(CompoundClass) + compound.members().size() * sizeof(ClassId),
          "expansion"));
      expansion_.compound_classes.push_back(std::move(compound));
    }
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      expansion_.compound_class_index_.emplace(
          expansion_.compound_classes[i].members(), static_cast<int>(i));
    }
    BuildNatt();
    BuildNrel();
    CAR_RETURN_IF_ERROR(BuildCompoundAttributes());
    CAR_RETURN_IF_ERROR(BuildCompoundRelations());
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion"));
    return std::move(expansion_);
  }

 private:
  /// Output of one enumeration shard. Shards never touch the shared
  /// expansion; everything is merged afterwards.
  struct ShardOutput {
    std::vector<CompoundClass> compounds;
    size_t subsets_visited = 0;
    Status status;
  };

  /// One pruned-DFS shard: a cluster plus fixed include/exclude decisions
  /// for its first `prefix_bits` classes (bit j set = include position j).
  struct PrunedShard {
    const std::vector<ClassId>* cluster = nullptr;
    uint64_t prefix = 0;
    int prefix_bits = 0;
  };

  Status EnumerateCompoundClasses() {
    if (options_.strategy == ExpansionStrategy::kExhaustive) {
      return EnumerateExhaustive();
    }
    PairTableOptions table_options;
    table_options.propagate = options_.propagate_tables;
    PairTables tables = BuildPairTables(schema_, table_options);
    if (options_.union_free_completion && schema_.IsUnionFree()) {
      CompleteDisjointnessUnionFree(schema_, &tables);
    }
    ClusterPartition partition = options_.use_clusters
                                     ? ComputeClusters(schema_, tables)
                                     : SingleCluster(schema_);

    const int threads = EffectiveThreads(options_.num_threads);
    std::vector<PrunedShard> shards;
    for (const std::vector<ClassId>& cluster : partition.clusters) {
      const int bits = PrefixBits(cluster.size(), threads);
      for (uint64_t prefix = 0; prefix < (1ull << bits); ++prefix) {
        shards.push_back({&cluster, prefix, bits});
      }
    }

    std::vector<ShardOutput> outputs(shards.size());
    ParallelFor(shards.size(), parallel_,
                [this, &shards, &tables, &outputs](size_t begin, size_t end) {
                  for (size_t s = begin; s < end; ++s) {
                    RunPrunedShard(shards[s], tables, &outputs[s]);
                  }
                });
    return MergeShards(std::move(outputs));
  }

  Status EnumerateExhaustive() {
    const int n = schema_.num_classes();
    if (n > 30) {
      return GovRecordTrip(exec_, LimitKind::kMaxCandidates, "expansion",
                           30, static_cast<uint64_t>(n));
    }
    const int threads = EffectiveThreads(options_.num_threads);
    const int prefix_bits = PrefixBits(n, threads);
    const size_t num_shards = 1ull << prefix_bits;

    std::vector<ShardOutput> outputs(num_shards);
    ParallelFor(num_shards, parallel_,
                [this, prefix_bits, &outputs](size_t begin, size_t end) {
                  for (size_t s = begin; s < end; ++s) {
                    RunExhaustiveShard(s, prefix_bits, &outputs[s]);
                  }
                });
    return MergeShards(std::move(outputs));
  }

  /// Enumerates the subset masks whose low `prefix_bits` bits equal
  /// `prefix` (every mask belongs to exactly one shard).
  void RunExhaustiveShard(uint64_t prefix, int prefix_bits,
                          ShardOutput* out) {
    const int n = schema_.num_classes();
    for (uint64_t high = 0; high < (1ull << (n - prefix_bits)); ++high) {
      const uint64_t mask = (high << prefix_bits) | prefix;
      if (mask == 0) continue;  // The empty compound is preadded.
      out->status = GovChargeWork(exec_, 1, "expansion");
      if (!out->status.ok()) return;
      ++out->subsets_visited;
      std::vector<ClassId> members;
      for (int c = 0; c < n; ++c) {
        if (mask & (1ull << c)) members.push_back(c);
      }
      CompoundClass compound(std::move(members));
      if (compound.IsConsistent(schema_)) {
        if (!EmitCompound(std::move(compound), out)) return;
      }
    }
  }

  /// Replays the shard's fixed prefix decisions through the same pruning
  /// checks as the DFS (a prefix that the serial DFS would prune yields
  /// an empty shard), then enumerates the remaining positions.
  void RunPrunedShard(const PrunedShard& shard, const PairTables& tables,
                      ShardOutput* out) {
    std::vector<ClassId> included;
    std::vector<bool> excluded(schema_.num_classes(), false);
    for (int j = 0; j < shard.prefix_bits; ++j) {
      const ClassId c = (*shard.cluster)[j];
      if ((shard.prefix >> j) & 1) {
        if (!CanInclude(tables, included, excluded, c)) return;
        included.push_back(c);
      } else {
        if (!CanExclude(tables, included, c)) return;
        excluded[c] = true;
      }
    }
    DfsShard(*shard.cluster, shard.prefix_bits, tables, &included, &excluded,
             out);
  }

  /// Pruning predicates, shared with the incremental delta path (see
  /// expansion/cluster_enum.h) so both enumerations stay in lockstep.
  bool CanInclude(const PairTables& tables,
                  const std::vector<ClassId>& included,
                  const std::vector<bool>& excluded, ClassId c) const {
    return CanIncludeClass(tables, included, excluded, c);
  }

  bool CanExclude(const PairTables& tables,
                  const std::vector<ClassId>& included, ClassId c) const {
    return CanExcludeClass(tables, included, c);
  }

  /// Depth-first enumeration of the subsets of one cluster, pruned with
  /// the disjointness and inclusion tables. `included` holds the chosen
  /// classes; `excluded` marks classes decided out (classes of other
  /// clusters are implicitly out and never consulted, because inclusion
  /// and disjointness edges never cross clusters).
  void DfsShard(const std::vector<ClassId>& cluster, size_t pos,
                const PairTables& tables, std::vector<ClassId>* included,
                std::vector<bool>* excluded, ShardOutput* out) {
    if (!out->status.ok()) return;
    // Cooperative stop: another shard (or an external canceller) tripped
    // the context; this shard's partial output will be discarded.
    if (GovCancelled(exec_)) return;
    if (pos == cluster.size()) {
      out->status = GovChargeWork(exec_, 1, "expansion");
      if (!out->status.ok()) return;
      ++out->subsets_visited;
      if (included->empty()) return;  // The empty compound is preadded.
      CompoundClass compound(*included);
      if (compound.IsConsistent(schema_)) {
        EmitCompound(std::move(compound), out);
      }
      return;
    }
    const ClassId c = cluster[pos];
    if (CanInclude(tables, *included, *excluded, c)) {
      included->push_back(c);
      DfsShard(cluster, pos + 1, tables, included, excluded, out);
      included->pop_back();
    }
    if (CanExclude(tables, *included, c)) {
      (*excluded)[c] = true;
      DfsShard(cluster, pos + 1, tables, included, excluded, out);
      (*excluded)[c] = false;
    }
  }

  /// Appends to the shard, honoring the per-shard cap (a single shard at
  /// the cap already implies the merged total exceeds it). Returns false
  /// once the shard is dead.
  bool EmitCompound(CompoundClass compound, ShardOutput* out) {
    if (out->compounds.size() >= options_.max_compound_classes) {
      out->status = GovRecordTrip(exec_, LimitKind::kMaxCompoundClasses,
                                  "expansion", options_.max_compound_classes,
                                  options_.max_compound_classes);
      return false;
    }
    out->status = GovChargeBytes(
        exec_,
        sizeof(CompoundClass) + compound.members().size() * sizeof(ClassId),
        "expansion");
    if (!out->status.ok()) return false;
    if (exec_ != nullptr) exec_->CountCompounds(1);
    out->compounds.push_back(std::move(compound));
    return true;
  }

  /// Merges shard outputs in shard order, re-checks the global cap, and
  /// canonically sorts the compound classes (the empty compound stays at
  /// index 0 — it is lexicographically least). The sort makes compound
  /// ids independent of sharding, thread count and enumeration order.
  Status MergeShards(std::vector<ShardOutput> outputs) {
    size_t total = expansion_.compound_classes.size();
    for (ShardOutput& out : outputs) {
      CAR_RETURN_IF_ERROR(out.status);
      expansion_.subsets_visited += out.subsets_visited;
      total += out.compounds.size();
    }
    // A trip recorded by a shard that kept its own status ok (external
    // cancellation, deadline observed elsewhere) still fails the merge.
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion"));
    if (total > options_.max_compound_classes) {
      return GovRecordTrip(exec_, LimitKind::kMaxCompoundClasses,
                           "expansion", options_.max_compound_classes,
                           options_.max_compound_classes);
    }
    expansion_.compound_classes.reserve(total);
    for (ShardOutput& out : outputs) {
      for (CompoundClass& compound : out.compounds) {
        expansion_.compound_classes.push_back(std::move(compound));
      }
    }
    std::sort(expansion_.compound_classes.begin(),
              expansion_.compound_classes.end());
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      expansion_.compound_class_index_.emplace(
          expansion_.compound_classes[i].members(), static_cast<int>(i));
    }
    return Status::Ok();
  }

  void BuildNatt() {
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      const CompoundClass& compound = expansion_.compound_classes[i];
      for (ClassId member : compound.members()) {
        for (const AttributeSpec& spec :
             schema_.class_definition(member).attributes) {
          auto key = std::make_pair(spec.term, static_cast<int>(i));
          auto [it, inserted] =
              expansion_.natt.emplace(key, spec.cardinality);
          if (!inserted) {
            it->second = Cardinality::IntersectUnchecked(it->second,
                                                         spec.cardinality);
          }
        }
      }
    }
  }

  void BuildNrel() {
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      const CompoundClass& compound = expansion_.compound_classes[i];
      for (ClassId member : compound.members()) {
        for (const ParticipationSpec& spec :
             schema_.class_definition(member).participations) {
          const RelationDefinition* relation =
              schema_.relation_definition(spec.relation);
          CAR_CHECK(relation != nullptr);
          int role_index = relation->RoleIndex(spec.role);
          CAR_CHECK_GE(role_index, 0);
          auto key = std::make_tuple(spec.relation, role_index,
                                     static_cast<int>(i));
          auto [it, inserted] =
              expansion_.nrel.emplace(key, spec.cardinality);
          if (!inserted) {
            it->second = Cardinality::IntersectUnchecked(it->second,
                                                         spec.cardinality);
          }
        }
      }
    }
  }

  Status BuildCompoundAttributes() {
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion-filter"));
    // Candidate endpoints that carry a Natt entry, per attribute.
    std::vector<std::set<int>> constrained_from(schema_.num_attributes());
    std::vector<std::set<int>> constrained_to(schema_.num_attributes());
    for (const auto& [key, cardinality] : expansion_.natt) {
      (void)cardinality;
      const auto& [term, compound_index] = key;
      if (term.inverse) {
        constrained_to[term.attribute].insert(compound_index);
      } else {
        constrained_from[term.attribute].insert(compound_index);
      }
    }

    const int num_compound = static_cast<int>(
        expansion_.compound_classes.size());
    for (AttributeId a = 0; a < schema_.num_attributes(); ++a) {
      std::set<std::pair<int, int>> candidate_set;
      for (int from : constrained_from[a]) {
        for (int to = 0; to < num_compound; ++to) {
          candidate_set.emplace(from, to);
        }
      }
      for (int to : constrained_to[a]) {
        for (int from = 0; from < num_compound; ++from) {
          candidate_set.emplace(from, to);
        }
      }
      // Consistency filtering is independent per candidate: filter in
      // parallel, then append the survivors in candidate order (so index
      // assignment matches the serial sweep exactly).
      std::vector<std::pair<int, int>> candidates(candidate_set.begin(),
                                                  candidate_set.end());
      std::vector<char> keep(candidates.size(), 0);
      ParallelForOptions filter_options = parallel_;
      filter_options.min_chunk = 64;
      ParallelFor(candidates.size(), filter_options,
                  [this, a, &candidates, &keep](size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) {
                      // One work unit per filtered candidate; a tripped
                      // context aborts the chunk (its outputs are
                      // discarded with the whole build).
                      if (!GovChargeWork(exec_, 1, "expansion-filter")
                               .ok()) {
                        return;
                      }
                      keep[i] = IsConsistentCompoundAttribute(
                                    schema_, a,
                                    expansion_
                                        .compound_classes[candidates[i].first],
                                    expansion_
                                        .compound_classes[candidates[i].second])
                                    ? 1
                                    : 0;
                    }
                  });
      CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion-filter"));
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (!keep[i]) continue;
        if (expansion_.compound_attributes.size() >=
            options_.max_compound_attributes) {
          return GovRecordTrip(exec_, LimitKind::kMaxCompoundAttributes,
                               "expansion-filter",
                               options_.max_compound_attributes,
                               options_.max_compound_attributes);
        }
        const auto& [from, to] = candidates[i];
        int index = static_cast<int>(expansion_.compound_attributes.size());
        expansion_.compound_attributes.push_back({a, from, to});
        expansion_.ca_by_from[{a, from}].push_back(index);
        expansion_.ca_by_to[{a, to}].push_back(index);
      }
    }
    return Status::Ok();
  }

  /// Per-relation output of the compound-relation enumeration; merged in
  /// relation-id order so indices match the serial sweep.
  struct RelationOutput {
    std::vector<CompoundRelation> relations;
    Status status;
  };

  Status BuildCompoundRelations() {
    CAR_RETURN_IF_ERROR(GovCheck(exec_, "expansion-relations"));
    const size_t num_relations =
        static_cast<size_t>(schema_.num_relations());
    std::vector<RelationOutput> outputs(num_relations);
    // Relations are independent of each other: enumerate them in
    // parallel, one task per relation.
    ParallelFor(num_relations, parallel_,
                [this, &outputs](size_t begin, size_t end) {
                  for (size_t r = begin; r < end; ++r) {
                    EnumerateRelation(static_cast<RelationId>(r),
                                      &outputs[r]);
                  }
                });
    for (size_t r = 0; r < num_relations; ++r) {
      CAR_RETURN_IF_ERROR(outputs[r].status);
      for (CompoundRelation& cr : outputs[r].relations) {
        if (expansion_.compound_relations.size() >=
            options_.max_compound_relations) {
          return GovRecordTrip(exec_, LimitKind::kMaxCompoundRelations,
                               "expansion-relations",
                               options_.max_compound_relations,
                               options_.max_compound_relations);
        }
        const int arity = static_cast<int>(cr.components.size());
        int index = static_cast<int>(expansion_.compound_relations.size());
        for (int k = 0; k < arity; ++k) {
          expansion_.cr_by_role[{cr.relation, k, cr.components[k]}]
              .push_back(index);
        }
        expansion_.compound_relations.push_back(std::move(cr));
      }
    }
    return Status::Ok();
  }

  void EnumerateRelation(RelationId r, RelationOutput* out) {
    const RelationDefinition* definition = schema_.relation_definition(r);
    if (definition == nullptr) return;
    const int arity = definition->arity();
    const int num_compound = static_cast<int>(
        expansion_.compound_classes.size());

    // Positions carrying Nrel entries; if none, tuples of R are never
    // constrained and no unknowns are needed.
    std::vector<std::set<int>> constrained(arity);
    bool any_constraint = false;
    for (const auto& [key, cardinality] : expansion_.nrel) {
      (void)cardinality;
      if (std::get<0>(key) != r) continue;
      constrained[std::get<1>(key)].insert(std::get<2>(key));
      any_constraint = true;
    }
    if (!any_constraint) return;

    // Per-position prefilter: single-literal role-clauses restrict the
    // compound class at their role unconditionally.
    std::vector<std::vector<int>> allowed(arity);
    for (int k = 0; k < arity; ++k) {
      for (int i = 0; i < num_compound; ++i) {
        bool ok = true;
        for (const RoleClause& clause : definition->constraints) {
          if (clause.literals.size() != 1) continue;
          const RoleLiteral& literal = clause.literals[0];
          if (definition->RoleIndex(literal.role) != k) continue;
          if (!expansion_.compound_classes[i].Realizes(literal.formula)) {
            ok = false;
            break;
          }
        }
        if (ok) allowed[k].push_back(i);
      }
    }

    // Enumerate component vectors where at least one position holds a
    // constrained compound class; other positions range over their
    // allowed sets. Duplicates across anchor positions are deduped.
    std::set<std::vector<int>> seen;
    for (int anchor = 0; anchor < arity; ++anchor) {
      for (int anchored : constrained[anchor]) {
        std::vector<int> components(arity, -1);
        components[anchor] = anchored;
        EnumerateRelationComponents(*definition, r, allowed, anchor, 0,
                                    &components, &seen, out);
        if (!out->status.ok()) return;
      }
    }
  }

  void EnumerateRelationComponents(const RelationDefinition& definition,
                                   RelationId r,
                                   const std::vector<std::vector<int>>&
                                       allowed,
                                   int anchor, int position,
                                   std::vector<int>* components,
                                   std::set<std::vector<int>>* seen,
                                   RelationOutput* out) {
    if (!out->status.ok()) return;
    const int arity = definition.arity();
    if (position == arity) {
      out->status = GovChargeWork(exec_, 1, "expansion-relations");
      if (!out->status.ok()) return;
      if (!seen->insert(*components).second) return;
      std::vector<const CompoundClass*> views;
      views.reserve(arity);
      for (int index : *components) {
        views.push_back(&expansion_.compound_classes[index]);
      }
      if (!IsConsistentCompoundRelation(schema_, definition, views)) {
        return;
      }
      if (out->relations.size() >= options_.max_compound_relations) {
        out->status = GovRecordTrip(exec_, LimitKind::kMaxCompoundRelations,
                                    "expansion-relations",
                                    options_.max_compound_relations,
                                    options_.max_compound_relations);
        return;
      }
      out->relations.push_back({r, *components});
      return;
    }
    if (position == anchor) {
      EnumerateRelationComponents(definition, r, allowed, anchor,
                                  position + 1, components, seen, out);
      return;
    }
    for (int candidate : allowed[position]) {
      (*components)[position] = candidate;
      EnumerateRelationComponents(definition, r, allowed, anchor,
                                  position + 1, components, seen, out);
      if (!out->status.ok()) return;
    }
    (*components)[position] = -1;
  }

  const Schema& schema_;
  const ExpansionOptions& options_;
  ExecContext* exec_;
  ParallelForOptions parallel_;
  Expansion expansion_;
};

Result<Expansion> BuildExpansion(const Schema& schema,
                                 const ExpansionOptions& options) {
  CAR_RETURN_IF_ERROR(schema.Validate());
  return ExpansionBuilder(schema, options).Build();
}

Result<Expansion> AssembleExpansion(const Schema& schema,
                                    std::vector<CompoundClass> compounds,
                                    const ExpansionOptions& options) {
  CAR_RETURN_IF_ERROR(schema.Validate());
  return ExpansionBuilder(schema, options).BuildFrom(std::move(compounds));
}

}  // namespace car
