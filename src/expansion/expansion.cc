#include "expansion/expansion.h"

#include <algorithm>
#include <set>

#include "analysis/clusters.h"
#include "analysis/pair_tables.h"
#include "analysis/union_free.h"
#include "base/strings.h"

namespace car {

int Expansion::IndexOfCompoundClass(const CompoundClass& compound) const {
  auto it = compound_class_index_.find(compound.members());
  return it == compound_class_index_.end() ? -1 : it->second;
}

std::vector<int> Expansion::CompoundClassesContaining(ClassId class_id) const {
  std::vector<int> indices;
  for (size_t i = 0; i < compound_classes.size(); ++i) {
    if (compound_classes[i].Contains(class_id)) {
      indices.push_back(static_cast<int>(i));
    }
  }
  return indices;
}

std::string Expansion::Summary() const {
  return StrCat("expansion: ", compound_classes.size(), " compound classes, ",
                compound_attributes.size(), " compound attributes, ",
                compound_relations.size(), " compound relations, |Natt|=",
                natt.size(), ", |Nrel|=", nrel.size(), ", subsets visited ",
                subsets_visited);
}

/// Assembles an Expansion: enumerates consistent compound classes (with
/// the selected strategy), then derives Natt/Nrel and the constrained
/// compound attributes and relations.
class ExpansionBuilder {
 public:
  ExpansionBuilder(const Schema& schema, const ExpansionOptions& options)
      : schema_(schema), options_(options) {}

  Result<Expansion> Build() {
    expansion_.schema = &schema_;
    // The empty compound class is always present (index 0): objects that
    // are instances of no class. It is trivially consistent and can serve
    // as an attribute target/source or a relation component.
    AddCompoundClass(CompoundClass());

    CAR_RETURN_IF_ERROR(EnumerateCompoundClasses());
    BuildNatt();
    BuildNrel();
    CAR_RETURN_IF_ERROR(BuildCompoundAttributes());
    CAR_RETURN_IF_ERROR(BuildCompoundRelations());
    return std::move(expansion_);
  }

 private:
  Status EnumerateCompoundClasses() {
    if (options_.strategy == ExpansionStrategy::kExhaustive) {
      return EnumerateExhaustive();
    }
    PairTableOptions table_options;
    table_options.propagate = options_.propagate_tables;
    PairTables tables = BuildPairTables(schema_, table_options);
    if (options_.union_free_completion && schema_.IsUnionFree()) {
      CompleteDisjointnessUnionFree(schema_, &tables);
    }
    ClusterPartition partition = options_.use_clusters
                                     ? ComputeClusters(schema_, tables)
                                     : SingleCluster(schema_);
    for (const std::vector<ClassId>& cluster : partition.clusters) {
      std::vector<ClassId> included;
      std::vector<bool> excluded(schema_.num_classes(), false);
      Status status;
      DfsCluster(cluster, 0, tables, &included, &excluded, &status);
      CAR_RETURN_IF_ERROR(status);
    }
    return Status::Ok();
  }

  Status EnumerateExhaustive() {
    const int n = schema_.num_classes();
    if (n > 30) {
      return ResourceExhausted(
          StrCat("exhaustive enumeration over ", n,
                 " classes would visit 2^", n, " subsets"));
    }
    for (uint64_t mask = 1; mask < (1ull << n); ++mask) {
      ++expansion_.subsets_visited;
      std::vector<ClassId> members;
      for (int c = 0; c < n; ++c) {
        if (mask & (1ull << c)) members.push_back(c);
      }
      CompoundClass compound(std::move(members));
      if (compound.IsConsistent(schema_)) {
        CAR_RETURN_IF_ERROR(AddCompoundClassChecked(std::move(compound)));
      }
    }
    return Status::Ok();
  }

  /// Depth-first enumeration of the subsets of one cluster, pruned with
  /// the disjointness and inclusion tables. `included` holds the chosen
  /// classes; `excluded` marks classes decided out (classes of other
  /// clusters are implicitly out and never consulted, because inclusion
  /// and disjointness edges never cross clusters).
  void DfsCluster(const std::vector<ClassId>& cluster, size_t pos,
                  const PairTables& tables, std::vector<ClassId>* included,
                  std::vector<bool>* excluded, Status* status) {
    if (!status->ok()) return;
    if (pos == cluster.size()) {
      ++expansion_.subsets_visited;
      if (included->empty()) return;  // The empty compound is preadded.
      CompoundClass compound(*included);
      if (compound.IsConsistent(schema_)) {
        *status = AddCompoundClassChecked(std::move(compound));
      }
      return;
    }
    ClassId c = cluster[pos];

    // Include branch, unless pruned.
    bool can_include = !tables.AreDisjoint(c, c);
    if (can_include) {
      for (ClassId d : *included) {
        if (tables.AreDisjoint(c, d)) {
          can_include = false;
          break;
        }
      }
    }
    if (can_include) {
      // A recorded superclass already decided out makes inclusion futile.
      for (ClassId super : tables.SuperclassesOf(c)) {
        if ((*excluded)[super]) {
          can_include = false;
          break;
        }
      }
    }
    if (can_include) {
      included->push_back(c);
      DfsCluster(cluster, pos + 1, tables, included, excluded, status);
      included->pop_back();
    }

    // Exclude branch, unless some included class is recorded as a
    // subclass of c (then c is forced in).
    bool can_exclude = true;
    for (ClassId d : *included) {
      if (tables.IsIncluded(d, c)) {
        can_exclude = false;
        break;
      }
    }
    if (can_exclude) {
      (*excluded)[c] = true;
      DfsCluster(cluster, pos + 1, tables, included, excluded, status);
      (*excluded)[c] = false;
    }
  }

  int AddCompoundClass(CompoundClass compound) {
    int index = static_cast<int>(expansion_.compound_classes.size());
    expansion_.compound_class_index_.emplace(compound.members(), index);
    expansion_.compound_classes.push_back(std::move(compound));
    return index;
  }

  Status AddCompoundClassChecked(CompoundClass compound) {
    if (expansion_.compound_classes.size() >=
        options_.max_compound_classes) {
      return ResourceExhausted(
          StrCat("more than ", options_.max_compound_classes,
                 " compound classes"));
    }
    AddCompoundClass(std::move(compound));
    return Status::Ok();
  }

  void BuildNatt() {
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      const CompoundClass& compound = expansion_.compound_classes[i];
      for (ClassId member : compound.members()) {
        for (const AttributeSpec& spec :
             schema_.class_definition(member).attributes) {
          auto key = std::make_pair(spec.term, static_cast<int>(i));
          auto [it, inserted] =
              expansion_.natt.emplace(key, spec.cardinality);
          if (!inserted) {
            it->second = Cardinality::IntersectUnchecked(it->second,
                                                         spec.cardinality);
          }
        }
      }
    }
  }

  void BuildNrel() {
    for (size_t i = 0; i < expansion_.compound_classes.size(); ++i) {
      const CompoundClass& compound = expansion_.compound_classes[i];
      for (ClassId member : compound.members()) {
        for (const ParticipationSpec& spec :
             schema_.class_definition(member).participations) {
          const RelationDefinition* relation =
              schema_.relation_definition(spec.relation);
          CAR_CHECK(relation != nullptr);
          int role_index = relation->RoleIndex(spec.role);
          CAR_CHECK_GE(role_index, 0);
          auto key = std::make_tuple(spec.relation, role_index,
                                     static_cast<int>(i));
          auto [it, inserted] =
              expansion_.nrel.emplace(key, spec.cardinality);
          if (!inserted) {
            it->second = Cardinality::IntersectUnchecked(it->second,
                                                         spec.cardinality);
          }
        }
      }
    }
  }

  Status BuildCompoundAttributes() {
    // Candidate endpoints that carry a Natt entry, per attribute.
    std::vector<std::set<int>> constrained_from(schema_.num_attributes());
    std::vector<std::set<int>> constrained_to(schema_.num_attributes());
    for (const auto& [key, cardinality] : expansion_.natt) {
      (void)cardinality;
      const auto& [term, compound_index] = key;
      if (term.inverse) {
        constrained_to[term.attribute].insert(compound_index);
      } else {
        constrained_from[term.attribute].insert(compound_index);
      }
    }

    const int num_compound = static_cast<int>(
        expansion_.compound_classes.size());
    for (AttributeId a = 0; a < schema_.num_attributes(); ++a) {
      std::set<std::pair<int, int>> candidates;
      for (int from : constrained_from[a]) {
        for (int to = 0; to < num_compound; ++to) {
          candidates.emplace(from, to);
        }
      }
      for (int to : constrained_to[a]) {
        for (int from = 0; from < num_compound; ++from) {
          candidates.emplace(from, to);
        }
      }
      for (const auto& [from, to] : candidates) {
        if (!IsConsistentCompoundAttribute(
                schema_, a, expansion_.compound_classes[from],
                expansion_.compound_classes[to])) {
          continue;
        }
        if (expansion_.compound_attributes.size() >=
            options_.max_compound_attributes) {
          return ResourceExhausted(
              StrCat("more than ", options_.max_compound_attributes,
                     " compound attributes"));
        }
        int index = static_cast<int>(expansion_.compound_attributes.size());
        expansion_.compound_attributes.push_back({a, from, to});
        expansion_.ca_by_from[{a, from}].push_back(index);
        expansion_.ca_by_to[{a, to}].push_back(index);
      }
    }
    return Status::Ok();
  }

  Status BuildCompoundRelations() {
    const int num_compound = static_cast<int>(
        expansion_.compound_classes.size());
    for (RelationId r = 0; r < schema_.num_relations(); ++r) {
      const RelationDefinition* definition = schema_.relation_definition(r);
      if (definition == nullptr) continue;
      const int arity = definition->arity();

      // Positions carrying Nrel entries; if none, tuples of R are never
      // constrained and no unknowns are needed.
      std::vector<std::set<int>> constrained(arity);
      bool any_constraint = false;
      for (const auto& [key, cardinality] : expansion_.nrel) {
        (void)cardinality;
        if (std::get<0>(key) != r) continue;
        constrained[std::get<1>(key)].insert(std::get<2>(key));
        any_constraint = true;
      }
      if (!any_constraint) continue;

      // Per-position prefilter: single-literal role-clauses restrict the
      // compound class at their role unconditionally.
      std::vector<std::vector<int>> allowed(arity);
      for (int k = 0; k < arity; ++k) {
        for (int i = 0; i < num_compound; ++i) {
          bool ok = true;
          for (const RoleClause& clause : definition->constraints) {
            if (clause.literals.size() != 1) continue;
            const RoleLiteral& literal = clause.literals[0];
            if (definition->RoleIndex(literal.role) != k) continue;
            if (!expansion_.compound_classes[i].Realizes(literal.formula)) {
              ok = false;
              break;
            }
          }
          if (ok) allowed[k].push_back(i);
        }
      }

      // Enumerate component vectors where at least one position holds a
      // constrained compound class; other positions range over their
      // allowed sets. Duplicates across anchor positions are deduped.
      std::set<std::vector<int>> seen;
      for (int anchor = 0; anchor < arity; ++anchor) {
        for (int anchored : constrained[anchor]) {
          std::vector<int> components(arity, -1);
          components[anchor] = anchored;
          CAR_RETURN_IF_ERROR(EnumerateRelationComponents(
              *definition, r, allowed, anchor, 0, &components, &seen));
        }
      }
    }
    return Status::Ok();
  }

  Status EnumerateRelationComponents(const RelationDefinition& definition,
                                     RelationId r,
                                     const std::vector<std::vector<int>>&
                                         allowed,
                                     int anchor, int position,
                                     std::vector<int>* components,
                                     std::set<std::vector<int>>* seen) {
    const int arity = definition.arity();
    if (position == arity) {
      if (!seen->insert(*components).second) return Status::Ok();
      std::vector<const CompoundClass*> views;
      views.reserve(arity);
      for (int index : *components) {
        views.push_back(&expansion_.compound_classes[index]);
      }
      if (!IsConsistentCompoundRelation(schema_, definition, views)) {
        return Status::Ok();
      }
      if (expansion_.compound_relations.size() >=
          options_.max_compound_relations) {
        return ResourceExhausted(
            StrCat("more than ", options_.max_compound_relations,
                   " compound relations"));
      }
      int index = static_cast<int>(expansion_.compound_relations.size());
      expansion_.compound_relations.push_back({r, *components});
      for (int k = 0; k < arity; ++k) {
        expansion_.cr_by_role[{r, k, (*components)[k]}].push_back(index);
      }
      return Status::Ok();
    }
    if (position == anchor) {
      return EnumerateRelationComponents(definition, r, allowed, anchor,
                                         position + 1, components, seen);
    }
    for (int candidate : allowed[position]) {
      (*components)[position] = candidate;
      CAR_RETURN_IF_ERROR(EnumerateRelationComponents(
          definition, r, allowed, anchor, position + 1, components, seen));
    }
    (*components)[position] = -1;
    return Status::Ok();
  }

  const Schema& schema_;
  const ExpansionOptions& options_;
  Expansion expansion_;
};

Result<Expansion> BuildExpansion(const Schema& schema,
                                 const ExpansionOptions& options) {
  CAR_RETURN_IF_ERROR(schema.Validate());
  return ExpansionBuilder(schema, options).Build();
}

}  // namespace car
