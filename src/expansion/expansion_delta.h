#ifndef CAR_EXPANSION_EXPANSION_DELTA_H_
#define CAR_EXPANSION_EXPANSION_DELTA_H_

#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/clusters.h"
#include "analysis/pair_tables.h"
#include "base/result.h"
#include "expansion/expansion.h"
#include "model/schema.h"

namespace car {

/// Precomputed analysis of a frozen base expansion that incremental
/// probes extend: the preselection tables and cluster partition the base
/// enumeration used, plus each base compound class grouped under its
/// cluster. Built once per session; read-only afterwards (shareable
/// across probe threads).
struct ExpansionBaseAnalysis {
  PairTables tables;
  ClusterPartition partition;
  /// Per base cluster: indices of the base compound classes whose members
  /// lie in that cluster (the empty compound, index 0, belongs to none).
  std::vector<std::vector<int>> cluster_compounds;
  /// Base cluster index by (sorted) class list, for reuse lookups.
  std::map<std::vector<ClassId>, int> cluster_by_classes;
};

/// The incremental extension of a base expansion for one probe schema
/// (= base schema + one auxiliary class): everything the extended
/// expansion has beyond the base, with base indices frozen. A global
/// compound-class index i refers to base.compound_classes[i] when
/// i < base count and to new_compound_classes[i - base count] otherwise;
/// compound attribute/relation indices follow the same convention.
///
/// Guarantee (checked, not assumed): the extended compound-class set is
/// exactly base ∪ new — re-enumerating the changed clusters re-emitted
/// every base compound they cover. When the check fails (the auxiliary
/// class perturbed the preselection tables enough to prune a base
/// compound), ExtendExpansionWithAuxClass returns kFailedPrecondition and
/// the caller must fall back to a from-scratch build; answers are never
/// silently approximated.
struct ExpansionDelta {
  /// New compound classes, canonically sorted among themselves; global
  /// index = base count + position.
  std::vector<CompoundClass> new_compound_classes;
  /// New compound attributes/relations (endpoints are global indices).
  std::vector<CompoundAttribute> new_compound_attributes;
  std::vector<CompoundRelation> new_compound_relations;
  /// Natt/Nrel entries of the new compound classes (base entries are
  /// unchanged: they are intrinsic to a compound's members).
  std::map<std::pair<AttributeTerm, int>, Cardinality> new_natt;
  std::map<std::tuple<RelationId, int, int>, Cardinality> new_nrel;
  /// Lookup maps for the NEW compound attributes/relations only. Keys may
  /// name base compound indices: those lists extend the base summation
  /// sets S(att, C̄) of existing Ψ rows — the row extensions of the
  /// warm-started solve.
  std::map<std::pair<AttributeId, int>, std::vector<int>> new_ca_by_from;
  std::map<std::pair<AttributeId, int>, std::vector<int>> new_ca_by_to;
  std::map<std::tuple<RelationId, int, int>, std::vector<int>> new_cr_by_role;

  // --- Statistics ---------------------------------------------------------
  size_t clusters_reused = 0;
  size_t clusters_reenumerated = 0;
  size_t subsets_visited = 0;

  bool HasNewCompounds() const { return !new_compound_classes.empty(); }
};

/// Builds the reusable base analysis. Replays exactly the preselection
/// preamble of the pruned enumeration (pair tables with the configured
/// propagation, union-free completion, clustering), so the recorded
/// tables/partition are the ones the base expansion was enumerated with.
/// Requires options.strategy == kPruned (the exhaustive strategy has no
/// cluster structure to reuse).
Result<ExpansionBaseAnalysis> AnalyzeBaseExpansion(
    const Schema& schema, const Expansion& base,
    const ExpansionOptions& options);

/// Extends `base` to the expansion of `ext_schema` (= base schema plus
/// the auxiliary class `aux`, which must be its last class). Clusters
/// whose class list and within-cluster table rows are unchanged are
/// reused wholesale (their compounds are already in the base); changed
/// clusters are re-enumerated with the extended tables. Errors:
/// kFailedPrecondition when the base-prefix property cannot be
/// established (caller falls back to from-scratch); kResourceExhausted /
/// kCancelled on governor trips, exactly like BuildExpansion.
Result<ExpansionDelta> ExtendExpansionWithAuxClass(
    const Schema& ext_schema, ClassId aux, const Expansion& base,
    const ExpansionBaseAnalysis& analysis, const ExpansionOptions& options);

/// Fills the derived sections of a delta whose `new_compound_classes`
/// are already set (canonically sorted among themselves, disjoint from
/// the base compound set, consistent with `schema`): the Natt/Nrel
/// entries of the new compounds, and every new compound attribute/
/// relation with at least one new endpoint — base pairs/tuples keep
/// their base verdicts and are never re-filtered. Shared by the
/// auxiliary-class probe extension above and by the lazy
/// (counterexample-guided) expansion engine, whose refinement rounds
/// materialize compound classes first and derive the rest here.
/// Governor observation matches ExtendExpansionWithAuxClass: one
/// "expansion-filter" / "expansion-relations" work unit per candidate,
/// cap trips recorded with the same LimitKinds.
Status PopulateDeltaExtensions(const Schema& schema, const Expansion& base,
                               const ExpansionOptions& options,
                               ExpansionDelta* delta);

}  // namespace car

#endif  // CAR_EXPANSION_EXPANSION_DELTA_H_
