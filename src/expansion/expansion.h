#ifndef CAR_EXPANSION_EXPANSION_H_
#define CAR_EXPANSION_EXPANSION_H_

#include <cstddef>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"
#include "expansion/compound.h"
#include "model/cardinality.h"
#include "model/schema.h"

namespace car {

/// The expansion S̄ of a CAR schema S (Definition 3.1): all consistent
/// compound classes, compound attributes and compound relations, together
/// with the derived cardinality-constraint sets Natt and Nrel.
///
/// Two deviations from the literal definition, both feasibility-neutral
/// (see DESIGN.md):
///  * compound attributes/relations that would appear in *no* disequation
///    (no endpoint carries a Natt/Nrel entry for them) are omitted — their
///    unknowns would be unconstrained and cannot affect satisfiability;
///  * with the pruned strategy, compound classes mixing different clusters
///    are omitted, which is exactly the disjointness imposed by
///    Theorem 4.6.
struct Expansion {
  const Schema* schema = nullptr;

  /// Consistent compound classes; index 0 is always the empty compound
  /// class (objects that are instances of no class).
  std::vector<CompoundClass> compound_classes;

  std::vector<CompoundAttribute> compound_attributes;
  std::vector<CompoundRelation> compound_relations;

  /// Natt: C̄ ⇒ att : (umax, vmin). Keyed by (attribute term, compound
  /// class index). The interval may be empty (umax > vmin), which will
  /// force Var(C̄) = 0 in the disequation system.
  std::map<std::pair<AttributeTerm, int>, Cardinality> natt;

  /// Nrel: C̄ ⇒ R[U_k] : (xmax, ymin). Keyed by (relation, role index,
  /// compound class index).
  std::map<std::tuple<RelationId, int, int>, Cardinality> nrel;

  // --- Lookup indexes (derived, used by the solver) ----------------------

  /// Compound-attribute indices grouped by (attribute, from-compound) and
  /// (attribute, to-compound): the summation sets S(A, C̄) and
  /// S((inv A), C̄) of Section 3.2.
  std::map<std::pair<AttributeId, int>, std::vector<int>> ca_by_from;
  std::map<std::pair<AttributeId, int>, std::vector<int>> ca_by_to;
  /// Compound-relation indices grouped by (relation, role index,
  /// compound class at that role).
  std::map<std::tuple<RelationId, int, int>, std::vector<int>> cr_by_role;

  // --- Statistics ---------------------------------------------------------

  /// Number of candidate class subsets visited during enumeration
  /// (a work measure for the preselection benchmarks).
  size_t subsets_visited = 0;

  /// Rebuilds every derived lookup index (ca_by_from, ca_by_to,
  /// cr_by_role and the compound-class index) from the primary vectors,
  /// exactly as the builder populated them: grouped indices appear in
  /// ascending order because the replay walks the vectors in index
  /// order, matching the builder's append order. For deserialized
  /// expansions (src/persist), whose primary vectors arrive from disk
  /// without the indexes.
  void RebuildDerivedIndexes();

  /// Returns the index of a compound class, or -1 if not present.
  int IndexOfCompoundClass(const CompoundClass& compound) const;
  /// Indices of compound classes containing the given class.
  std::vector<int> CompoundClassesContaining(ClassId class_id) const;

  std::string Summary() const;

 private:
  friend class ExpansionBuilder;
  std::map<std::vector<ClassId>, int> compound_class_index_;
};

/// How compound classes are enumerated.
enum class ExpansionStrategy {
  /// All 2^n subsets of the full class set are generated and checked.
  /// Exponential always; usable only for small schemas and as the
  /// baseline in the preselection benchmarks (Section 4.2's "most trivial
  /// way").
  kExhaustive,
  /// Preselection per Section 4.3: disjointness/inclusion tables
  /// (criterion (a)), cluster decomposition via the G_S graph
  /// (criterion (b), Theorem 4.6), and a pruned depth-first enumeration
  /// within each cluster.
  kPruned,
};

struct ExpansionOptions {
  ExpansionStrategy strategy = ExpansionStrategy::kPruned;
  /// Hard caps; exceeding any yields kResourceExhausted.
  size_t max_compound_classes = 1u << 20;
  size_t max_compound_attributes = 1u << 22;
  size_t max_compound_relations = 1u << 22;
  /// For kPruned: use the connectivity clusters of Theorem 4.6. When
  /// false, pruning still uses the pair tables but enumerates over the
  /// full class set.
  bool use_clusters = true;
  /// For kPruned: propagate the pair tables to a fixpoint.
  bool propagate_tables = true;
  /// For kPruned on union-free schemas: apply the Section 4.4 "optimal
  /// strategy" — complete the disjointness table with every assumption
  /// that cannot influence satisfiability (maximal assumed disjointness),
  /// which makes generalization hierarchies expand to exactly one
  /// compound class per class even without explicit sibling negation.
  bool union_free_completion = true;
  /// Worker threads for candidate enumeration and consistency filtering.
  /// 1 = serial (the reference path); 0 = one per hardware core. Any
  /// value produces bit-identical results: enumeration is sharded (by
  /// connectivity cluster and literal-prefix), shard outputs are merged
  /// in a fixed order, and compound classes are canonically sorted.
  int num_threads = 1;
  /// Optional resource governor (borrowed; may be null = ungoverned).
  /// Enumeration charges one work unit per candidate visited, the
  /// consistency filters one per candidate pair/tuple, and all loops
  /// observe cancellation; tripped caps are recorded here so the caller
  /// can degrade gracefully with a structured LimitReport.
  ExecContext* exec = nullptr;
};

/// Builds the expansion of a validated schema.
Result<Expansion> BuildExpansion(const Schema& schema,
                                 const ExpansionOptions& options = {});

/// Assembles the expansion artifact over an explicitly given compound
/// class set instead of enumerating one: prepends the empty compound
/// (index 0), then derives Natt/Nrel and the constrained compound
/// attributes/relations exactly as BuildExpansion does after its
/// enumeration phase. `compounds` must hold non-empty, schema-consistent
/// compound classes in canonical (sorted) order without duplicates; the
/// result is bit-identical to what BuildExpansion would produce if its
/// enumeration emitted exactly this set. Backbone of the lazy
/// (counterexample-guided) expansion engine, which materializes compound
/// classes on demand instead of enumerating all of them up front.
Result<Expansion> AssembleExpansion(const Schema& schema,
                                    std::vector<CompoundClass> compounds,
                                    const ExpansionOptions& options = {});

}  // namespace car

#endif  // CAR_EXPANSION_EXPANSION_H_
