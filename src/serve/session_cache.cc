#include "serve/session_cache.h"

#include <utility>

#include "base/hashing.h"
#include "frontend/parser.h"
#include "frontend/printer.h"

namespace car {
namespace serve {

SessionCache::SessionCache(SessionCacheOptions options)
    : options_(std::move(options)) {
  if (options_.max_sessions == 0) options_.max_sessions = 1;
}

Result<SessionEntry*> SessionCache::Open(const std::string& name,
                                         std::string_view schema_text,
                                         bool* warm) {
  CAR_ASSIGN_OR_RETURN(Schema parsed, ParseSchema(schema_text));
  const std::string canonical = PrintSchema(parsed);
  const uint64_t fingerprint = Fnv1a64(canonical);
  ++stats_.opens;

  auto it = entries_.find(name);
  if (it != entries_.end() && it->second->fingerprint == fingerprint) {
    // Same canonical form: the warm session keeps serving. The parsed
    // copy is discarded — the resident schema is semantically identical.
    SessionEntry* entry = it->second.get();
    entry->last_used = ++tick_;
    ++stats_.warm_opens;
    *warm = true;
    return entry;
  }

  if (it != entries_.end()) ++stats_.replacements;

  auto entry = std::make_unique<SessionEntry>();
  entry->name = name;
  entry->fingerprint = fingerprint;
  entry->schema = std::make_unique<Schema>(std::move(parsed));
  entry->session = std::make_unique<IncrementalSession>(entry->schema.get(),
                                                        options_.reasoner);
  entry->canonical_bytes = canonical.size();
  if (options_.store != nullptr) {
    // Try to restore persisted warm state into the cold session. Every
    // failure mode degrades to the cold build: kNotFound is the normal
    // miss, other load errors are counted, and a payload that decodes
    // but fails to restore is quarantined for inspection.
    auto bytes = options_.store->Load(name, fingerprint);
    if (bytes.ok()) {
      Status restored = entry->session->Deserialize(bytes.value());
      if (restored.ok()) {
        entry->restored = true;
        ++stats_.restores;
      } else {
        ++stats_.restore_failures;
        (void)options_.store->Quarantine(name, restored.message());
      }
    } else if (bytes.status().code() != StatusCode::kNotFound) {
      ++stats_.restore_failures;
    }
  }
  entry->cost_bytes =
      entry->session->EstimatedMemoryBytes() + entry->canonical_bytes;
  if (entry->restored) entry->persisted_cost = entry->cost_bytes;
  entry->last_used = ++tick_;

  SessionEntry* result = entry.get();
  entries_[name] = std::move(entry);
  Evict(result);
  *warm = false;
  return result;
}

SessionEntry* SessionCache::Find(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++stats_.lookup_misses;
    return nullptr;
  }
  ++stats_.lookup_hits;
  it->second->last_used = ++tick_;
  return it->second.get();
}

void SessionCache::UpdateCost(SessionEntry* entry) {
  entry->cost_bytes =
      entry->session->EstimatedMemoryBytes() + entry->canonical_bytes;
  Evict(entry);
}

void SessionCache::Spill(SessionEntry* entry) {
  if (options_.store == nullptr || entry == nullptr) return;
  if (entry->cost_bytes == entry->persisted_cost) return;  // Clean.
  const IncrementalStats session = entry->session->stats();
  if (!entry->session->SnapshotEligible()) {
    // Lazy session whose full base build is still deferred (its queries
    // were answered over a partial materialization, or none ran yet):
    // Serialize would refuse, and forcing the eager build just to spill
    // defeats the point of the lazy session. Skip without counting a
    // failure — the entry stays dirty and is re-considered at the next
    // spill point. Checked before the never-queried guard because a
    // deferred lazy session also has base_builds == 0.
    ++stats_.spill_ineligible;
    return;
  }
  if (session.base_builds + session.base_restores == 0) {
    // Opened but never queried: Serialize would have to pay the base
    // solve just to persist it. Leave it cold.
    return;
  }
  auto bytes = entry->session->Serialize();
  if (bytes.ok()) {
    Status saved = options_.store->Save(entry->name, bytes.value());
    if (saved.ok()) {
      entry->persisted_cost = entry->cost_bytes;
      ++stats_.spills;
      return;
    }
  }
  ++stats_.spill_failures;
}

void SessionCache::SpillAll() {
  for (auto& [name, entry] : entries_) Spill(entry.get());
}

bool SessionCache::Close(const std::string& name) {
  return entries_.erase(name) > 0;
}

uint64_t SessionCache::resident_bytes() const {
  uint64_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry->cost_bytes;
  return total;
}

void SessionCache::Evict(const SessionEntry* keep) {
  auto over_budget = [this] {
    if (entries_.size() > options_.max_sessions) return true;
    return options_.memory_budget_bytes != 0 &&
           resident_bytes() > options_.memory_budget_bytes;
  };
  while (entries_.size() > 1 && over_budget()) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.get() == keep) continue;
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // Only `keep` is resident.
    // An evicted tenant's warm state is only "gone" in memory: spilling
    // it first turns the next Open into a restore instead of a rebuild.
    Spill(victim->second.get());
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace serve
}  // namespace car
