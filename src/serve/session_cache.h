#ifndef CAR_SERVE_SESSION_CACHE_H_
#define CAR_SERVE_SESSION_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "base/result.h"
#include "model/schema.h"
#include "persist/snapshot_store.h"
#include "reasoner/incremental.h"
#include "reasoner/reasoner.h"

namespace car {
namespace serve {

struct SessionCacheOptions {
  /// Upper bound on resident sessions; least-recently-used tenants are
  /// evicted past it. At least 1 — the session being served is never
  /// evicted under itself.
  uint64_t max_sessions = 64;
  /// Soft ceiling on the summed EstimatedMemoryBytes of all resident
  /// sessions. 0 = unlimited.
  uint64_t memory_budget_bytes = 512ull << 20;
  /// Options every session is built with (threads, prefilter, solver
  /// knobs). The per-request ExecContext is swapped in separately via
  /// IncrementalSession::set_exec.
  ReasonerOptions reasoner;
  /// Durable warm-state store (borrowed, may be null = no persistence).
  /// With a store, Open tries to restore a snapshot into a cold session,
  /// Evict spills victims before dropping them, and the server calls
  /// Spill after each batch. Persistence never changes answers: every
  /// restore is fingerprint-verified and any failure degrades to the
  /// cold build.
  persist::SnapshotStore* store = nullptr;
};

struct SessionCacheStats {
  uint64_t opens = 0;
  /// Opens/mutates whose canonical fingerprint matched the resident
  /// session — the warm state (base solve + memo) survived.
  uint64_t warm_opens = 0;
  /// Opens/mutates that replaced a resident session with different text.
  uint64_t replacements = 0;
  uint64_t evictions = 0;
  uint64_t lookup_hits = 0;
  uint64_t lookup_misses = 0;
  /// Cold opens that restored warm state from a persisted snapshot.
  uint64_t restores = 0;
  /// Restore attempts that failed (corrupt/stale payload, I/O error);
  /// each degrades to the cold build it would have been anyway.
  uint64_t restore_failures = 0;
  /// Successful snapshot saves (after batches, on eviction, at
  /// shutdown). Clean sessions are not re-spilled.
  uint64_t spills = 0;
  uint64_t spill_failures = 0;
  /// Spill points skipped because the session was snapshot-ineligible
  /// (lazy session with the full base build still deferred). Not a
  /// failure: the entry stays dirty and is re-considered later.
  uint64_t spill_ineligible = 0;
};

/// One resident tenant: the parsed schema (owned, pointer-stable — the
/// session borrows it) and the warm IncrementalSession answering for it.
struct SessionEntry {
  std::string name;
  uint64_t fingerprint = 0;
  std::unique_ptr<Schema> schema;
  std::unique_ptr<IncrementalSession> session;
  /// Size of the canonical schema text the fingerprint was computed from;
  /// a fixed part of cost_bytes so cost never shrinks across refreshes.
  uint64_t canonical_bytes = 0;
  /// EstimatedMemoryBytes + canonical_bytes, refreshed after every batch
  /// (the memo and tableau grow with use).
  uint64_t cost_bytes = 0;
  /// LRU tick of the last touch.
  uint64_t last_used = 0;
  /// Whether this entry's warm state came from a persisted snapshot.
  bool restored = false;
  /// cost_bytes at the last successful spill/restore; the entry is dirty
  /// (worth spilling) iff cost_bytes differs. Sound as a cleanliness
  /// proxy because every persisted-state change (new memo entry, new
  /// base) moves the deterministic cost estimate.
  uint64_t persisted_cost = 0;
};

/// Fingerprint-keyed cache of warm IncrementalSessions, one per tenant
/// name, with LRU + memory-budget eviction. Not thread-safe; the server
/// serializes access (see serve/server.h).
///
/// Warm/cold semantics: Open parses the text, fingerprints its canonical
/// form (FNV-1a of PrintSchema — the same fingerprint the session itself
/// uses to detect mutation), and keeps the resident session when the
/// fingerprint is unchanged. Anything else builds a cold session. An
/// evicted tenant is simply gone: the next Open rebuilds it cold and
/// answers identically (the warm state is a pure cache, never semantics).
class SessionCache {
 public:
  explicit SessionCache(SessionCacheOptions options);

  /// Creates or refreshes the tenant. `*warm` reports whether the
  /// resident warm session survived. Parse errors leave the cache
  /// untouched (a resident older schema keeps serving).
  Result<SessionEntry*> Open(const std::string& name,
                             std::string_view schema_text, bool* warm);

  /// Looks up a resident tenant and bumps its LRU slot; null on miss.
  SessionEntry* Find(const std::string& name);

  /// Re-estimates the entry's cost after a batch mutated its warm state,
  /// then enforces the memory budget against the other tenants.
  void UpdateCost(SessionEntry* entry);

  /// Persists the entry's warm state to the configured store if it is
  /// dirty. No-op without a store, for a clean entry, or for a session
  /// that never built its base (there is no warm state worth a solve at
  /// spill time). Failures are counted, never propagated: a failed
  /// spill only costs the next open its warm start.
  void Spill(SessionEntry* entry);

  /// Spills every dirty resident entry (shutdown path).
  void SpillAll();

  /// Drops the tenant; false if it was not resident. The persisted
  /// snapshot (if any) is left on disk: it is a pure cache, and a
  /// re-open restoring the pre-close state answers identically.
  bool Close(const std::string& name);

  uint64_t resident_sessions() const { return entries_.size(); }
  /// Summed cost of all resident sessions.
  uint64_t resident_bytes() const;
  const SessionCacheStats& stats() const { return stats_; }

 private:
  /// Evicts LRU entries while over max_sessions or the memory budget,
  /// never evicting `keep`.
  void Evict(const SessionEntry* keep);

  SessionCacheOptions options_;
  std::unordered_map<std::string, std::unique_ptr<SessionEntry>> entries_;
  SessionCacheStats stats_;
  uint64_t tick_ = 0;
};

}  // namespace serve
}  // namespace car

#endif  // CAR_SERVE_SESSION_CACHE_H_
