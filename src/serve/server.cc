#include "serve/server.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/strings.h"
#include "reasoner/query_text.h"

namespace car {
namespace serve {

namespace {

/// Opens the durable store for --state-dir, or null (with a warning)
/// when the directory is unusable: persistence is an optimization, so a
/// bad state dir must not keep the daemon from serving.
std::unique_ptr<persist::SnapshotStore> OpenStore(
    const ServerOptions& options, ExecContext* io_exec) {
  if (options.state_dir.empty()) return nullptr;
  io_exec->InjectIoFaultAfter(options.io_fault_after);
  persist::SnapshotStoreOptions store_options;
  store_options.exec = io_exec;
  auto store = persist::SnapshotStore::Open(options.state_dir,
                                            store_options);
  if (!store.ok()) {
    std::fprintf(stderr,
                 "car_serve: cannot open state dir: %s; "
                 "serving without persistence\n",
                 store.status().message().c_str());
    return nullptr;
  }
  return std::move(store.value());
}

QueryStatsDelta Delta(const IncrementalStats& before,
                      const IncrementalStats& after) {
  QueryStatsDelta delta;
  delta.probes = after.probes - before.probes;
  delta.memo_hits = after.memo_hits - before.memo_hits;
  delta.closure_hits = after.closure_hits - before.closure_hits;
  delta.cluster_local = after.cluster_local - before.cluster_local;
  delta.warm_starts = after.warm_starts - before.warm_starts;
  delta.fallbacks = after.fallbacks - before.fallbacks;
  return delta;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      store_(OpenStore(options_, &io_exec_)),
      cache_([this] {
        SessionCacheOptions cache_options;
        cache_options.max_sessions = options_.max_sessions;
        cache_options.memory_budget_bytes = options_.memory_budget_bytes;
        cache_options.reasoner.num_threads = options_.num_threads;
        cache_options.reasoner.prefilter = options_.prefilter;
        cache_options.reasoner.lazy_expansion = options_.lazy_expansion;
        cache_options.store = store_.get();
        return cache_options;
      }()) {}

Response Server::Handle(const Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  return std::visit(
      [this](const auto& message) -> Response {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, PingRequest>) {
          return PongResponse{message.token};
        } else if constexpr (std::is_same_v<T, OpenRequest>) {
          return HandleOpen(message.name, message.schema_text);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          return HandleQuery(message);
        } else if constexpr (std::is_same_v<T, MutateRequest>) {
          return HandleMutate(message);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          return HandleClose(message);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          return HandleStats();
        } else {
          static_assert(std::is_same_v<T, ShutdownRequest>);
          // Graceful shutdown persists every dirty session, so the next
          // daemon start answers warm instead of re-solving.
          cache_.SpillAll();
          shutdown_.store(true, std::memory_order_release);
          return ShuttingDownResponse{};
        }
      },
      request);
}

StatsResponse Server::StatsSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::get<StatsResponse>(HandleStats());
}

Response Server::HandleOpen(const std::string& name,
                            std::string_view text) {
  if (name.empty()) return MakeError(InvalidArgument("empty tenant name"));
  bool warm = false;
  auto opened = cache_.Open(name, text, &warm);
  if (!opened.ok()) return MakeError(opened.status());
  const SessionEntry& entry = *opened.value();
  if (!warm && entry.restored) {
    // Operator-visible breadcrumb (and the warm-restart integration
    // test's witness) that the cold open skipped the base solve.
    std::fprintf(stderr, "car_serve: tenant '%s' warm-restored from snapshot\n",
                 entry.name.c_str());
  }
  OpenedResponse response;
  response.fingerprint = entry.fingerprint;
  response.num_classes = static_cast<uint32_t>(entry.schema->num_classes());
  response.num_relations =
      static_cast<uint32_t>(entry.schema->num_relations());
  response.warm = warm;
  return response;
}

Response Server::HandleQuery(const QueryRequest& request) {
  SessionEntry* entry = cache_.Find(request.name);
  if (entry == nullptr) {
    return MakeError(NotFound(
        StrCat("tenant '", Elide(request.name), "' is not open")));
  }

  // Parse every query line up front: a malformed line fails the whole
  // batch (positional alignment of answers would be ambiguous otherwise).
  std::vector<ImplicationQuery> queries;
  queries.reserve(request.queries.size());
  for (const std::string& line : request.queries) {
    std::vector<std::string> tokens = TokenizeQueryLine(line);
    if (tokens.empty()) {
      return MakeError(
          InvalidArgument(StrCat("empty query line '", Elide(line), "'")));
    }
    auto parsed = ParseQueryTokens(*entry->schema, tokens);
    if (!parsed.ok()) {
      // Echoes of user input are elided: an error message must never
      // inherit the size of the query that produced it (the response
      // still has to fit the transport's frame cap).
      return MakeError(Status(
          parsed.status().code(),
          StrCat("query '", Elide(line), "': ",
                 parsed.status().message())));
    }
    queries.push_back(std::move(parsed.value()));
  }

  ++stats_.query_batches;
  stats_.queries += queries.size();

  // Admission control: a fresh one-shot governor per request, configured
  // with the pointwise-tightest of the server caps and the request's own
  // limits, swapped into the warm session for the duration of the batch.
  ExecContext exec;
  AdmissionLimits::Tighten(options_.request_limits, request.limits)
      .ConfigureContext(&exec);
  const IncrementalStats before = entry->session->stats();
  entry->session->set_exec(&exec);
  auto answers = entry->session->RunImplicationBatch(queries);
  entry->session->set_exec(nullptr);
  cache_.UpdateCost(entry);
  // Spill-after-batch: the freshly grown warm state (new memo entries,
  // possibly a new base) becomes durable before the next request. A
  // failed spill is counted in the cache stats and the daemon keeps
  // serving from memory.
  cache_.Spill(entry);

  AnswersResponse response;
  response.stats = Delta(before, entry->session->stats());
  if (!answers.ok()) {
    if (!exec.tripped()) return MakeError(answers.status());
    // Overload degradation: the batch is kUnknown, never partial or
    // wrong. The structured LimitReport says which limit, where, and at
    // what counter value.
    const LimitReport report = exec.report();
    ++stats_.degraded;
    response.degraded = true;
    response.limit_kind = report.kind;
    response.limit_phase = report.phase;
    response.limit_value = report.limit;
    response.limit_count = report.count;
    return response;
  }
  response.answers.reserve(answers.value().size());
  for (bool answer : answers.value()) {
    response.answers.push_back(answer ? 1 : 0);
  }
  return response;
}

Response Server::HandleMutate(const MutateRequest& request) {
  if (cache_.Find(request.name) == nullptr) {
    // Evicted or never opened: the tenant must re-open explicitly, so a
    // mutation is never silently applied to a missing base.
    return MakeError(NotFound(
        StrCat("tenant '", Elide(request.name), "' is not open")));
  }
  return HandleOpen(request.name, request.schema_text);
}

Response Server::HandleClose(const CloseRequest& request) {
  return ClosedResponse{cache_.Close(request.name)};
}

Response Server::HandleStats() {
  const SessionCacheStats& cache = cache_.stats();
  StatsResponse response;
  response.sessions = cache_.resident_sessions();
  response.resident_bytes = cache_.resident_bytes();
  response.opens = cache.opens;
  response.warm_opens = cache.warm_opens;
  response.replacements = cache.replacements;
  response.evictions = cache.evictions;
  response.lookup_hits = cache.lookup_hits;
  response.lookup_misses = cache.lookup_misses;
  response.requests = stats_.requests;
  response.query_batches = stats_.query_batches;
  response.queries = stats_.queries;
  response.degraded = stats_.degraded;
  response.errors = stats_.errors;
  return response;
}

Response Server::MakeError(const Status& status) {
  ++stats_.errors;
  ErrorResponse response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

// --- Stream transport -------------------------------------------------------

namespace {

Status WriteAll(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    StrCat("write: ", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Encodes and writes one response frame under the transport's payload
/// cap. A response too large for the cap (e.g. a huge query batch under a
/// small --max-frame-mb) degrades to a bounded ErrorResponse telling the
/// client why — the connection and the daemon survive.
Status WriteResponse(int fd, const Response& response,
                     uint32_t max_payload) {
  std::string payload = EncodeResponse(response);
  auto frame = EncodeFrame(payload, max_payload);
  if (!frame.ok()) {
    ErrorResponse error;
    error.code = StatusCode::kResourceExhausted;
    error.message =
        StrCat("response payload of ", payload.size(),
               " bytes exceeds the ", max_payload,
               "-byte frame cap; raise --max-frame-mb or split the batch");
    frame = EncodeFrame(EncodeResponse(Response(std::move(error))),
                        max_payload);
    if (!frame.ok()) return frame.status();
  }
  return WriteAll(fd, frame.value());
}

}  // namespace

Status ServeStream(Server* server, int in_fd, int out_fd,
                   uint32_t max_frame_payload) {
  FrameReader reader(max_frame_payload);
  char chunk[4096];
  std::string payload;
  while (true) {
    // Drain every complete frame already buffered before reading more.
    while (true) {
      auto next = reader.Next(&payload);
      if (!next.ok()) {
        // Unframeable stream: report once, then hang up (framing cannot
        // be resynchronized).
        ErrorResponse error;
        error.code = next.status().code();
        error.message = next.status().message();
        (void)WriteResponse(out_fd, Response(std::move(error)),
                            max_frame_payload);
        return next.status();
      }
      if (!next.value()) break;  // Need more input.
      auto request = DecodeRequest(payload);
      if (!request.ok()) {
        ErrorResponse error;
        error.code = request.status().code();
        error.message = request.status().message();
        CAR_RETURN_IF_ERROR(WriteResponse(
            out_fd, Response(std::move(error)), max_frame_payload));
        continue;
      }
      Response response = server->Handle(request.value());
      CAR_RETURN_IF_ERROR(
          WriteResponse(out_fd, response, max_frame_payload));
      if (server->shutdown_requested()) return Status::Ok();
    }
    // Wait for input with a timeout so a connection idle in read still
    // observes a shutdown triggered on another connection and drains.
    struct pollfd pfd = {};
    pfd.fd = in_fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    StrCat("poll: ", std::strerror(errno)));
    }
    if (ready == 0) {
      if (server->shutdown_requested()) return Status::Ok();
      continue;
    }
    ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kInternal,
                    StrCat("read: ", std::strerror(errno)));
    }
    if (n == 0) {
      if (reader.buffered() != 0) {
        return ParseError(StrCat("connection closed mid-frame with ",
                                 reader.buffered(), " byte(s) buffered"));
      }
      return Status::Ok();
    }
    reader.Append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace serve
}  // namespace car
