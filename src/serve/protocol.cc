#include "serve/protocol.h"

#include <cstring>
#include <utility>

#include "base/strings.h"

namespace car {
namespace serve {

namespace {

// Wire tags. Append-only: never renumber, never reuse.
enum class RequestTag : uint8_t {
  kPing = 1,
  kOpen = 2,
  kQuery = 3,
  kMutate = 4,
  kClose = 5,
  kStats = 6,
  kShutdown = 7,
};

enum class ResponseTag : uint8_t {
  kPong = 1,
  kOpened = 2,
  kAnswers = 3,
  kError = 4,
  kClosed = 5,
  kStats = 6,
  kShuttingDown = 7,
};

/// Little-endian flat-field writer.
class Writer {
 public:
  void PutU8(uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void PutBool(bool value) { PutU8(value ? 1 : 0); }
  void PutU32(uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }
  void PutU64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }
  void PutString(std::string_view text) {
    PutU32(static_cast<uint32_t>(text.size()));
    out_.append(text);
  }
  void PutStringList(const std::vector<std::string>& list) {
    PutU32(static_cast<uint32_t>(list.size()));
    for (const std::string& entry : list) PutString(entry);
  }
  void PutByteList(const std::vector<uint8_t>& bytes) {
    PutU32(static_cast<uint32_t>(bytes.size()));
    for (uint8_t byte : bytes) PutU8(byte);
  }
  void PutLimits(const AdmissionLimits& limits) {
    PutU64(limits.deadline_ms);
    PutU64(limits.work_budget);
    PutU64(limits.memory_budget_bytes);
    PutU64(limits.inject_after);
  }
  void PutStatsDelta(const QueryStatsDelta& stats) {
    PutU64(stats.probes);
    PutU64(stats.memo_hits);
    PutU64(stats.closure_hits);
    PutU64(stats.cluster_local);
    PutU64(stats.warm_starts);
    PutU64(stats.fallbacks);
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Total little-endian reader over one payload. Every Read* checks the
/// remaining extent; string/list lengths are additionally bounded by the
/// remaining bytes before any allocation, so a hostile length prefix
/// cannot balloon memory past the (already capped) payload size.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* value) {
    if (remaining() < 1) return Truncated("u8");
    *value = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }
  Status ReadBool(bool* value) {
    uint8_t byte = 0;
    CAR_RETURN_IF_ERROR(ReadU8(&byte));
    if (byte > 1) {
      return ParseError(StrCat("bad bool byte ", static_cast<int>(byte)));
    }
    *value = byte == 1;
    return Status::Ok();
  }
  Status ReadU32(uint32_t* value) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
      result |= static_cast<uint32_t>(
                    static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 4;
    *value = result;
    return Status::Ok();
  }
  Status ReadU64(uint64_t* value) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t result = 0;
    for (int i = 0; i < 8; ++i) {
      result |= static_cast<uint64_t>(
                    static_cast<uint8_t>(data_[pos_ + i]))
                << (8 * i);
    }
    pos_ += 8;
    *value = result;
    return Status::Ok();
  }
  Status ReadString(std::string* value) {
    uint32_t length = 0;
    CAR_RETURN_IF_ERROR(ReadU32(&length));
    if (length > remaining()) {
      return ParseError(StrCat("string length ", length, " exceeds ",
                               remaining(), " remaining bytes"));
    }
    value->assign(data_.substr(pos_, length));
    pos_ += length;
    return Status::Ok();
  }
  Status ReadStringList(std::vector<std::string>* list) {
    uint32_t count = 0;
    CAR_RETURN_IF_ERROR(ReadU32(&count));
    // Each entry carries at least its 4-byte length prefix.
    if (static_cast<uint64_t>(count) * 4 > remaining()) {
      return ParseError(StrCat("list count ", count, " exceeds ",
                               remaining(), " remaining bytes"));
    }
    list->clear();
    list->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string entry;
      CAR_RETURN_IF_ERROR(ReadString(&entry));
      list->push_back(std::move(entry));
    }
    return Status::Ok();
  }
  Status ReadAnswerBytes(std::vector<uint8_t>* bytes) {
    uint32_t count = 0;
    CAR_RETURN_IF_ERROR(ReadU32(&count));
    if (count > remaining()) {
      return ParseError(StrCat("answer count ", count, " exceeds ",
                               remaining(), " remaining bytes"));
    }
    bytes->clear();
    bytes->reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      uint8_t byte = 0;
      CAR_RETURN_IF_ERROR(ReadU8(&byte));
      if (byte > 1) {
        return ParseError(
            StrCat("bad answer byte ", static_cast<int>(byte)));
      }
      bytes->push_back(byte);
    }
    return Status::Ok();
  }
  Status ReadLimits(AdmissionLimits* limits) {
    CAR_RETURN_IF_ERROR(ReadU64(&limits->deadline_ms));
    CAR_RETURN_IF_ERROR(ReadU64(&limits->work_budget));
    CAR_RETURN_IF_ERROR(ReadU64(&limits->memory_budget_bytes));
    return ReadU64(&limits->inject_after);
  }
  Status ReadStatsDelta(QueryStatsDelta* stats) {
    CAR_RETURN_IF_ERROR(ReadU64(&stats->probes));
    CAR_RETURN_IF_ERROR(ReadU64(&stats->memo_hits));
    CAR_RETURN_IF_ERROR(ReadU64(&stats->closure_hits));
    CAR_RETURN_IF_ERROR(ReadU64(&stats->cluster_local));
    CAR_RETURN_IF_ERROR(ReadU64(&stats->warm_starts));
    return ReadU64(&stats->fallbacks);
  }
  Status ReadLimitKind(LimitKind* kind) {
    uint8_t byte = 0;
    CAR_RETURN_IF_ERROR(ReadU8(&byte));
    if (byte > LimitKindToWire(LimitKind::kMaxCandidates)) {
      return ParseError(
          StrCat("bad limit kind ", static_cast<int>(byte)));
    }
    *kind = LimitKindFromWire(byte);
    return Status::Ok();
  }
  Status ReadStatusCode(StatusCode* code) {
    uint8_t byte = 0;
    CAR_RETURN_IF_ERROR(ReadU8(&byte));
    if (byte == 0 || byte > static_cast<uint8_t>(StatusCode::kCancelled)) {
      return ParseError(
          StrCat("bad status code ", static_cast<int>(byte)));
    }
    *code = static_cast<StatusCode>(byte);
    return Status::Ok();
  }

  /// Every decoder ends with this: trailing bytes are a framing bug on
  /// the peer's side, not silently ignorable padding.
  Status ExpectConsumed() const {
    if (remaining() != 0) {
      return ParseError(StrCat(remaining(), " trailing byte(s)"));
    }
    return Status::Ok();
  }

 private:
  static Status Truncated(const char* what) {
    return ParseError(StrCat("truncated payload reading ", what));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

// --- Requests -------------------------------------------------------------

std::string EncodeRequest(const Request& request) {
  Writer writer;
  std::visit(
      [&writer](const auto& message) {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, PingRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kPing));
          writer.PutU64(message.token);
        } else if constexpr (std::is_same_v<T, OpenRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kOpen));
          writer.PutString(message.name);
          writer.PutString(message.schema_text);
        } else if constexpr (std::is_same_v<T, QueryRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kQuery));
          writer.PutString(message.name);
          writer.PutLimits(message.limits);
          writer.PutStringList(message.queries);
        } else if constexpr (std::is_same_v<T, MutateRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kMutate));
          writer.PutString(message.name);
          writer.PutString(message.schema_text);
        } else if constexpr (std::is_same_v<T, CloseRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kClose));
          writer.PutString(message.name);
        } else if constexpr (std::is_same_v<T, StatsRequest>) {
          writer.PutU8(static_cast<uint8_t>(RequestTag::kStats));
        } else {
          static_assert(std::is_same_v<T, ShutdownRequest>);
          writer.PutU8(static_cast<uint8_t>(RequestTag::kShutdown));
        }
      },
      request);
  return writer.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  Reader reader(payload);
  uint8_t tag = 0;
  CAR_RETURN_IF_ERROR(reader.ReadU8(&tag));
  switch (static_cast<RequestTag>(tag)) {
    case RequestTag::kPing: {
      PingRequest message;
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.token));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(std::move(message));
    }
    case RequestTag::kOpen: {
      OpenRequest message;
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.name));
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.schema_text));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(std::move(message));
    }
    case RequestTag::kQuery: {
      QueryRequest message;
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.name));
      CAR_RETURN_IF_ERROR(reader.ReadLimits(&message.limits));
      CAR_RETURN_IF_ERROR(reader.ReadStringList(&message.queries));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(std::move(message));
    }
    case RequestTag::kMutate: {
      MutateRequest message;
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.name));
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.schema_text));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(std::move(message));
    }
    case RequestTag::kClose: {
      CloseRequest message;
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.name));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(std::move(message));
    }
    case RequestTag::kStats: {
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(StatsRequest{});
    }
    case RequestTag::kShutdown: {
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Request(ShutdownRequest{});
    }
  }
  return InvalidArgument(
      StrCat("unknown request tag ", static_cast<int>(tag)));
}

// --- Responses ------------------------------------------------------------

std::string EncodeResponse(const Response& response) {
  Writer writer;
  std::visit(
      [&writer](const auto& message) {
        using T = std::decay_t<decltype(message)>;
        if constexpr (std::is_same_v<T, PongResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kPong));
          writer.PutU64(message.token);
        } else if constexpr (std::is_same_v<T, OpenedResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kOpened));
          writer.PutU64(message.fingerprint);
          writer.PutU32(message.num_classes);
          writer.PutU32(message.num_relations);
          writer.PutBool(message.warm);
        } else if constexpr (std::is_same_v<T, AnswersResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kAnswers));
          writer.PutBool(message.degraded);
          writer.PutByteList(message.answers);
          writer.PutU8(LimitKindToWire(message.limit_kind));
          writer.PutString(message.limit_phase);
          writer.PutU64(message.limit_value);
          writer.PutU64(message.limit_count);
          writer.PutStatsDelta(message.stats);
        } else if constexpr (std::is_same_v<T, ErrorResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kError));
          writer.PutU8(static_cast<uint8_t>(message.code));
          writer.PutString(message.message);
        } else if constexpr (std::is_same_v<T, ClosedResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kClosed));
          writer.PutBool(message.existed);
        } else if constexpr (std::is_same_v<T, StatsResponse>) {
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kStats));
          writer.PutU64(message.sessions);
          writer.PutU64(message.resident_bytes);
          writer.PutU64(message.opens);
          writer.PutU64(message.warm_opens);
          writer.PutU64(message.replacements);
          writer.PutU64(message.evictions);
          writer.PutU64(message.lookup_hits);
          writer.PutU64(message.lookup_misses);
          writer.PutU64(message.requests);
          writer.PutU64(message.query_batches);
          writer.PutU64(message.queries);
          writer.PutU64(message.degraded);
          writer.PutU64(message.errors);
        } else {
          static_assert(std::is_same_v<T, ShuttingDownResponse>);
          writer.PutU8(static_cast<uint8_t>(ResponseTag::kShuttingDown));
        }
      },
      response);
  return writer.Take();
}

Result<Response> DecodeResponse(std::string_view payload) {
  Reader reader(payload);
  uint8_t tag = 0;
  CAR_RETURN_IF_ERROR(reader.ReadU8(&tag));
  switch (static_cast<ResponseTag>(tag)) {
    case ResponseTag::kPong: {
      PongResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.token));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kOpened: {
      OpenedResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.fingerprint));
      CAR_RETURN_IF_ERROR(reader.ReadU32(&message.num_classes));
      CAR_RETURN_IF_ERROR(reader.ReadU32(&message.num_relations));
      CAR_RETURN_IF_ERROR(reader.ReadBool(&message.warm));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kAnswers: {
      AnswersResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadBool(&message.degraded));
      CAR_RETURN_IF_ERROR(reader.ReadAnswerBytes(&message.answers));
      CAR_RETURN_IF_ERROR(reader.ReadLimitKind(&message.limit_kind));
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.limit_phase));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.limit_value));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.limit_count));
      CAR_RETURN_IF_ERROR(reader.ReadStatsDelta(&message.stats));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kError: {
      ErrorResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadStatusCode(&message.code));
      CAR_RETURN_IF_ERROR(reader.ReadString(&message.message));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kClosed: {
      ClosedResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadBool(&message.existed));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kStats: {
      StatsResponse message;
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.sessions));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.resident_bytes));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.opens));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.warm_opens));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.replacements));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.evictions));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.lookup_hits));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.lookup_misses));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.requests));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.query_batches));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.queries));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.degraded));
      CAR_RETURN_IF_ERROR(reader.ReadU64(&message.errors));
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(std::move(message));
    }
    case ResponseTag::kShuttingDown: {
      CAR_RETURN_IF_ERROR(reader.ExpectConsumed());
      return Response(ShuttingDownResponse{});
    }
  }
  return InvalidArgument(
      StrCat("unknown response tag ", static_cast<int>(tag)));
}

// --- Framing --------------------------------------------------------------

Result<std::string> EncodeFrame(std::string_view payload,
                                uint32_t max_payload) {
  if (payload.empty()) return InvalidArgument("empty frame payload");
  if (payload.size() > max_payload) {
    return ResourceExhausted(
        StrCat("frame payload of ", payload.size(), " bytes exceeds the ",
               max_payload, "-byte cap"));
  }
  Writer writer;
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  std::string frame = writer.Take();
  frame.append(payload);
  return frame;
}

FrameReader::FrameReader(uint32_t max_payload)
    : max_payload_(max_payload) {}

void FrameReader::Append(const char* data, size_t size) {
  // Compact lazily: drop consumed bytes once they dominate the buffer so
  // a long-lived connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

Result<bool> FrameReader::Next(std::string* payload) {
  if (!error_.ok()) return error_;
  if (buffer_.size() - consumed_ < 4) return false;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(
                  static_cast<uint8_t>(buffer_[consumed_ + i]))
              << (8 * i);
  }
  if (length == 0) {
    error_ = ParseError("zero-length frame");
    return error_;
  }
  if (length > max_payload_) {
    error_ = ParseError(StrCat("frame payload of ", length,
                               " bytes exceeds the ", max_payload_,
                               "-byte cap"));
    return error_;
  }
  if (buffer_.size() - consumed_ < 4 + static_cast<size_t>(length)) {
    return false;
  }
  payload->assign(buffer_, consumed_ + 4, length);
  consumed_ += 4 + static_cast<size_t>(length);
  return true;
}

}  // namespace serve
}  // namespace car
