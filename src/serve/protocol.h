#ifndef CAR_SERVE_PROTOCOL_H_
#define CAR_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "base/exec_context.h"
#include "base/result.h"

namespace car {
namespace serve {

/// The car_serve wire protocol: length-prefixed frames carrying one
/// tagged, flat-binary message each.
///
///   frame   := u32-LE payload_length, payload
///   payload := u8 tag, fields...
///
/// Field primitives are little-endian fixed-width integers (u8/u32/u64),
/// strings (u32 length + raw bytes) and string lists (u32 count +
/// strings). Every decoder is total: truncated, oversized or trailing
/// bytes yield a structured error Status, never a crash — the decoder is
/// fuzzed (tools/fuzz_wire.cc) and the framing cap bounds memory before
/// any allocation happens. Tags and field orders are append-only: new
/// message kinds get new tags, existing encodings never change.
///
/// The request/response vocabulary is deliberately small: a tenant opens
/// (or replaces) a schema under a name, queries it with the textual
/// implication-query lines of reasoner/query_text.h, mutates it by
/// sending new schema text, and closes it. Admission limits ride along
/// with every query; a server overloaded or out of budget answers
/// `degraded` with a structured LimitReport instead of failing.

/// Hard ceiling on a frame payload unless a transport configures a
/// smaller one. Large enough for any realistic schema text, small enough
/// that a hostile length prefix cannot balloon memory.
constexpr uint32_t kDefaultMaxFramePayload = 8u << 20;

// --- Requests -------------------------------------------------------------

/// Liveness probe; echoed back in PongResponse.
struct PingRequest {
  uint64_t token = 0;
  bool operator==(const PingRequest&) const = default;
};

/// Creates or replaces the schema cached under `name`. Re-opening with
/// text whose canonical form is unchanged keeps the warm session.
struct OpenRequest {
  std::string name;
  std::string schema_text;
  bool operator==(const OpenRequest&) const = default;
};

/// A batch of implication queries against an opened schema, one textual
/// query per entry (reasoner/query_text.h syntax). The admission limits
/// are tightened against the server's own per-request caps.
struct QueryRequest {
  std::string name;
  AdmissionLimits limits;
  std::vector<std::string> queries;
  bool operator==(const QueryRequest&) const = default;
};

/// Replaces the schema of an existing tenant (errors if `name` is not
/// open — an evicted tenant must re-open). Unchanged canonical text is a
/// warm no-op, changed text rebuilds the session cold.
struct MutateRequest {
  std::string name;
  std::string schema_text;
  bool operator==(const MutateRequest&) const = default;
};

/// Drops the named session from the cache.
struct CloseRequest {
  std::string name;
  bool operator==(const CloseRequest&) const = default;
};

/// Asks for the server/cache counters.
struct StatsRequest {
  bool operator==(const StatsRequest&) const = default;
};

/// Asks the server to stop accepting work; transports drain and exit.
struct ShutdownRequest {
  bool operator==(const ShutdownRequest&) const = default;
};

using Request = std::variant<PingRequest, OpenRequest, QueryRequest,
                             MutateRequest, CloseRequest, StatsRequest,
                             ShutdownRequest>;

// --- Responses ------------------------------------------------------------

struct PongResponse {
  uint64_t token = 0;
  bool operator==(const PongResponse&) const = default;
};

/// Result of Open/Mutate: the canonical-form fingerprint now serving the
/// name, schema extents, and whether the warm session survived.
struct OpenedResponse {
  uint64_t fingerprint = 0;
  uint32_t num_classes = 0;
  uint32_t num_relations = 0;
  bool warm = false;
  bool operator==(const OpenedResponse&) const = default;
};

/// Per-batch statistics deltas of the incremental session that answered.
struct QueryStatsDelta {
  uint64_t probes = 0;
  uint64_t memo_hits = 0;
  uint64_t closure_hits = 0;
  uint64_t cluster_local = 0;
  uint64_t warm_starts = 0;
  uint64_t fallbacks = 0;
  bool operator==(const QueryStatsDelta&) const = default;
};

/// Answers for a QueryRequest. `degraded` is the admission-control
/// outcome: a limit tripped before the batch finished, the answers are
/// withheld (never partial, never wrong) and the structured LimitReport
/// fields say which limit, where and at what count.
struct AnswersResponse {
  bool degraded = false;
  /// One 0/1 byte per query, positionally aligned with the request;
  /// empty when degraded.
  std::vector<uint8_t> answers;
  /// The LimitReport of the trip (meaningful when degraded).
  LimitKind limit_kind = LimitKind::kNone;
  std::string limit_phase;
  uint64_t limit_value = 0;
  uint64_t limit_count = 0;
  QueryStatsDelta stats;
  bool operator==(const AnswersResponse&) const = default;
};

/// A failed request: the canonical StatusCode and its message.
struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  bool operator==(const ErrorResponse&) const = default;
};

struct ClosedResponse {
  bool existed = false;
  bool operator==(const ClosedResponse&) const = default;
};

/// Server/cache counters (StatsRequest).
struct StatsResponse {
  uint64_t sessions = 0;
  uint64_t resident_bytes = 0;
  uint64_t opens = 0;
  uint64_t warm_opens = 0;
  uint64_t replacements = 0;
  uint64_t evictions = 0;
  uint64_t lookup_hits = 0;
  uint64_t lookup_misses = 0;
  uint64_t requests = 0;
  uint64_t query_batches = 0;
  uint64_t queries = 0;
  uint64_t degraded = 0;
  uint64_t errors = 0;
  bool operator==(const StatsResponse&) const = default;
};

struct ShuttingDownResponse {
  bool operator==(const ShuttingDownResponse&) const = default;
};

using Response =
    std::variant<PongResponse, OpenedResponse, AnswersResponse,
                 ErrorResponse, ClosedResponse, StatsResponse,
                 ShuttingDownResponse>;

// --- Payload codec --------------------------------------------------------

/// Serializes a message to a frame payload (tag + fields).
std::string EncodeRequest(const Request& request);
std::string EncodeResponse(const Response& response);

/// Total decoders: any byte string yields either a message or a
/// structured error (kParseError for malformed framing/fields,
/// kInvalidArgument for unknown tags). Decode(Encode(m)) == m for every
/// message m.
Result<Request> DecodeRequest(std::string_view payload);
Result<Response> DecodeResponse(std::string_view payload);

// --- Framing --------------------------------------------------------------

/// Wraps a payload in a length-prefixed frame. Total like the decoders:
/// an empty payload is kInvalidArgument and a payload over `max_payload`
/// is kResourceExhausted — never a crash, so a server whose response
/// outgrows the transport's cap can degrade instead of aborting.
Result<std::string> EncodeFrame(
    std::string_view payload,
    uint32_t max_payload = kDefaultMaxFramePayload);

/// Incremental frame extractor for a byte stream. Feed arbitrary chunks
/// with Append; Next yields complete payloads as they materialize. A
/// frame whose length prefix is zero or exceeds the cap poisons the
/// reader (framing cannot be resynchronized) and every further Next
/// returns the same error.
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload = kDefaultMaxFramePayload);

  void Append(const char* data, size_t size);

  /// True: *payload holds the next complete frame payload. False: more
  /// input is needed. Error: the stream is unframeable.
  Result<bool> Next(std::string* payload);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  uint32_t max_payload_;
  Status error_;
};

}  // namespace serve
}  // namespace car

#endif  // CAR_SERVE_PROTOCOL_H_
