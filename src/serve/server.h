#ifndef CAR_SERVE_SERVER_H_
#define CAR_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "base/exec_context.h"
#include "base/status.h"
#include "persist/snapshot_store.h"
#include "serve/protocol.h"
#include "serve/session_cache.h"

namespace car {
namespace serve {

struct ServerOptions {
  /// Worker threads used inside one query batch (ReasonerOptions
  /// num_threads semantics: 1 = serial reference, 0 = hardware
  /// concurrency). Answers are bit-identical for every value.
  int num_threads = 1;
  /// Static-analysis prefilter tiers of the incremental sessions.
  bool prefilter = true;
  /// Lazy (counterexample-guided) expansion inside the tenant sessions —
  /// the serving default since the engine gained sound lazy UNSAT
  /// verdicts (infeasibility certificates): answers are bit-identical
  /// either way, but dense tenant schemas stop paying the eager
  /// enumeration up front. car_serve --no-lazy-expansion opts out.
  bool lazy_expansion = true;
  /// Session-cache eviction policy.
  uint64_t max_sessions = 64;
  uint64_t memory_budget_bytes = 512ull << 20;
  /// Server-side per-request caps; every QueryRequest's own limits are
  /// tightened against these (the smaller configured value wins).
  AdmissionLimits request_limits;
  /// Durable warm-state directory (car_serve --state-dir). Empty = no
  /// persistence (the default). When set, warm session state is spilled
  /// after each batch / on eviction / at shutdown and restored on Open;
  /// if the directory cannot be opened the server logs a warning and
  /// serves without persistence rather than failing to start.
  std::string state_dir;
  /// Deterministic I/O fault injection for the persistence layer
  /// (tests; CAR_IO_FAULT_INJECT in car_serve): the Nth and every later
  /// store I/O op fails. kNoInjection = real I/O only.
  uint64_t io_fault_after = AdmissionLimits::kNoInjection;
};

struct ServerStats {
  uint64_t requests = 0;
  uint64_t query_batches = 0;
  uint64_t queries = 0;
  /// Query batches degraded by admission control (limit tripped; answers
  /// withheld).
  uint64_t degraded = 0;
  /// Requests answered with an ErrorResponse.
  uint64_t errors = 0;
};

/// The multi-tenant reasoning server: a session cache of warm
/// IncrementalSessions keyed by tenant name, request dispatch, and
/// per-request admission control.
///
/// Handle() is thread-safe: a mutex serializes dispatch, so concurrent
/// transports (one per connection) interleave whole requests.
/// Parallelism *within* a batch comes from the deterministic thread pool
/// inside the session (options.num_threads); because every answer is
/// bit-identical for every thread count, the interleaving order of
/// requests is the only schedule-visible effect, and per-tenant answers
/// depend only on the request sequence of that tenant.
///
/// Overload discipline: admission limits never cause a wrong or partial
/// answer. A tripped limit yields AnswersResponse{degraded=true} with
/// the structured LimitReport and no answers; the warm session survives
/// (its memo only ever holds fully-computed answers).
class Server {
 public:
  explicit Server(ServerOptions options);

  /// Dispatches one request to a response. Never crashes on malformed
  /// input; every failure is an ErrorResponse.
  Response Handle(const Request& request);

  /// True once a ShutdownRequest was handled; transports drain and exit.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Snapshot of the server + cache counters (same data as a
  /// StatsRequest, for in-process callers like the bench driver).
  StatsResponse StatsSnapshot();

 private:
  Response HandleOpen(const std::string& name, std::string_view text);
  Response HandleQuery(const QueryRequest& request);
  Response HandleMutate(const MutateRequest& request);
  Response HandleClose(const CloseRequest& request);
  Response HandleStats();

  /// Wraps a non-OK status; counts it.
  Response MakeError(const Status& status);

  ServerOptions options_;
  std::mutex mutex_;
  /// Fault-injection context the snapshot store routes its I/O through
  /// (configured from options_.io_fault_after; inert otherwise). Must
  /// outlive store_, which borrows it.
  ExecContext io_exec_;
  /// Durable warm-state store; null without --state-dir. Declared before
  /// cache_, which borrows it.
  std::unique_ptr<persist::SnapshotStore> store_;
  SessionCache cache_;
  ServerStats stats_;
  std::atomic<bool> shutdown_{false};
};

/// Runs the blocking frame loop of one connection: reads length-prefixed
/// request frames from `in_fd`, dispatches them to the server, writes
/// response frames to `out_fd`. Returns when the peer closes the stream
/// at a frame boundary (Ok), after answering a ShutdownRequest (Ok),
/// when an idle connection observes a shutdown requested on another
/// connection (Ok — reads poll with a short timeout so drain never hangs
/// on a silent client), or when the stream turns unframeable / the
/// descriptor errors (the error status, after attempting to send a final
/// ErrorResponse frame). Decode errors of individual payloads are
/// answered with ErrorResponse and the connection continues. Responses
/// too large for `max_frame_payload` degrade to a bounded ErrorResponse
/// instead of crashing or killing the connection.
Status ServeStream(Server* server, int in_fd, int out_fd,
                   uint32_t max_frame_payload = kDefaultMaxFramePayload);

}  // namespace serve
}  // namespace car

#endif  // CAR_SERVE_SERVER_H_
