#ifndef CAR_SYNTHESIS_SYNTHESIZE_H_
#define CAR_SYNTHESIS_SYNTHESIZE_H_

#include "base/result.h"
#include "expansion/expansion.h"
#include "semantics/interpretation.h"
#include "solver/solve.h"

namespace car {

struct SynthesisOptions {
  /// Hard cap on the universe size of the synthesized model (after any
  /// internal rescaling).
  int64_t max_universe = 200000;
  /// The constructive argument may need to scale the certificate so that
  /// enough *distinct* pairs/tuples exist (m <= p1*p2 for attributes and
  /// m <= p1*...*pK for relations); additionally, if the combinatorial
  /// realization fails, the synthesizer doubles the solution and retries
  /// up to this many times.
  int max_rescale_attempts = 4;
  /// Step budget for the distinct-tuple search per compound relation.
  uint64_t max_tuple_search_steps = 2000000;
};

struct SynthesisResult {
  Interpretation model;
  /// Scale factor applied to the certificate.
  int64_t scale = 1;
};

/// Builds an explicit finite model of the schema from an acceptable
/// integer solution of Ψ_S (the constructive direction of Theorem 3.3).
///
/// Layout: each compound class C̄ with count n receives n fresh objects,
/// each made a member of exactly the classes in C̄ (so compound-class
/// extensions are disjoint, as the semantics of the expansion requires).
/// Attribute pairs are realized per compound attribute with two-sided
/// near-even degree quotas (a Gale–Ryser greedy realization), so every
/// per-instance Natt interval [u, v] is met: the disequations guarantee
/// u*p <= M <= v*p, and near-even distribution puts every degree in
/// {floor(M/p), ceil(M/p)} ⊆ [u, v]. Labeled tuples are realized per
/// compound relation by a quota-driven search for distinct tuples.
///
/// The produced interpretation is verified with the independent semantics
/// checker before being returned; a verification failure is reported as
/// an internal error (it would indicate a bug, not a property of the
/// schema).
///
/// Fails with kFailedPrecondition if the solution has empty support (the
/// schema only has the empty interpretation, which is not a model by the
/// nonempty-universe convention).
Result<SynthesisResult> SynthesizeModel(const Expansion& expansion,
                                        const PsiSolution& solution,
                                        const SynthesisOptions& options = {});

}  // namespace car

#endif  // CAR_SYNTHESIS_SYNTHESIZE_H_
