#include "synthesis/synthesize.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>
#include <vector>

#include "base/strings.h"
#include "semantics/model_check.h"

namespace car {

namespace {

constexpr int64_t kSaturated = INT64_MAX / 4;

int64_t SaturatingMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

/// Distributes `total` units over `population` slots as evenly as
/// possible, starting at cyclic position *pointer (then advances it).
/// Every slot receives floor(total/population) or ceil(total/population).
std::vector<int64_t> EvenQuota(int64_t total, int64_t population,
                               int64_t* pointer) {
  std::vector<int64_t> quota(population, total / population);
  int64_t extra = total % population;
  for (int64_t i = 0; i < extra; ++i) {
    quota[(*pointer + i) % population] += 1;
  }
  *pointer = (*pointer + extra) % population;
  return quota;
}

/// Gale–Ryser greedy bipartite realization: a 0/1 biadjacency with left
/// degrees `a` and right degrees `b` (equal sums). Emits (left, right)
/// local index pairs. Returns false iff no simple bipartite graph with
/// these degree sequences exists.
bool RealizeBipartite(std::vector<int64_t> a, std::vector<int64_t> b,
                      std::vector<std::pair<int64_t, int64_t>>* pairs) {
  std::vector<int64_t> left_order(a.size());
  std::iota(left_order.begin(), left_order.end(), 0);
  std::sort(left_order.begin(), left_order.end(),
            [&a](int64_t x, int64_t y) { return a[x] > a[y]; });
  std::vector<int64_t> right_order(b.size());
  for (int64_t left : left_order) {
    if (a[left] == 0) continue;
    if (a[left] > static_cast<int64_t>(b.size())) return false;
    std::iota(right_order.begin(), right_order.end(), 0);
    std::sort(right_order.begin(), right_order.end(),
              [&b](int64_t x, int64_t y) {
                if (b[x] != b[y]) return b[x] > b[y];
                return x < y;
              });
    for (int64_t i = 0; i < a[left]; ++i) {
      int64_t right = right_order[i];
      if (b[right] == 0) return false;
      --b[right];
      pairs->emplace_back(left, right);
    }
  }
  return true;
}

/// Finds `m` distinct K-tuples over local populations with *exact*
/// per-(role, object) usage quotas, by depth-first search in strictly
/// increasing lexicographic order. Complete up to the step budget.
class TupleSearch {
 public:
  TupleSearch(std::vector<std::vector<int64_t>> quotas, int64_t m,
              uint64_t max_steps)
      : quotas_(std::move(quotas)), m_(m), max_steps_(max_steps) {}

  bool Run(std::vector<std::vector<int64_t>>* tuples) {
    std::vector<int64_t> floor;  // Exclusive lower bound; empty = none.
    return Extend(floor, tuples);
  }

 private:
  /// Appends the remaining tuples, each lexicographically above `floor`.
  bool Extend(const std::vector<int64_t>& floor,
              std::vector<std::vector<int64_t>>* tuples) {
    if (static_cast<int64_t>(tuples->size()) == m_) return true;
    std::vector<int64_t> tuple(quotas_.size(), -1);
    return ChooseComponent(0, /*tight=*/!floor.empty(), floor, &tuple,
                           tuples);
  }

  bool ChooseComponent(size_t role, bool tight,
                       const std::vector<int64_t>& floor,
                       std::vector<int64_t>* tuple,
                       std::vector<std::vector<int64_t>>* tuples) {
    if (++steps_ > max_steps_) return false;
    if (role == quotas_.size()) {
      if (tight) return false;  // Equal to the previous tuple.
      tuples->push_back(*tuple);
      for (size_t k = 0; k < quotas_.size(); ++k) {
        --quotas_[k][(*tuple)[k]];
      }
      if (Extend(*tuple, tuples)) return true;
      for (size_t k = 0; k < quotas_.size(); ++k) {
        ++quotas_[k][(*tuple)[k]];
      }
      tuples->pop_back();
      return false;
    }
    int64_t start = tight ? floor[role] : 0;
    for (int64_t candidate = start;
         candidate < static_cast<int64_t>(quotas_[role].size());
         ++candidate) {
      if (quotas_[role][candidate] == 0) continue;
      (*tuple)[role] = candidate;
      bool still_tight = tight && candidate == floor[role];
      if (ChooseComponent(role + 1, still_tight, floor, tuple, tuples)) {
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<int64_t>> quotas_;
  int64_t m_;
  uint64_t max_steps_;
  uint64_t steps_ = 0;
};

/// One synthesis attempt at a fixed scale. Returns the model, or nullopt
/// when the combinatorial realization failed (caller rescales and
/// retries), or an error for hard failures.
Result<std::optional<Interpretation>> TryBuild(
    const Expansion& expansion, const PsiSolution& solution, int64_t scale,
    const SynthesisOptions& options) {
  const Schema& schema = *expansion.schema;
  const size_t num_cc = expansion.compound_classes.size();

  // Populations.
  std::vector<int64_t> population(num_cc, 0);
  std::vector<int64_t> offset(num_cc, 0);
  int64_t universe = 0;
  for (size_t i = 0; i < num_cc; ++i) {
    const BigInt& count = solution.certificate.cc_count[i];
    if (!count.FitsInt64() || count.ToInt64() > options.max_universe) {
      return ResourceExhausted("certificate population does not fit int64");
    }
    population[i] = count.ToInt64() * scale;
    offset[i] = universe;
    universe += population[i];
    if (universe > options.max_universe) {
      return ResourceExhausted(
          StrCat("synthesized universe would exceed ", options.max_universe,
                 " objects"));
    }
  }
  if (universe == 0) {
    return FailedPrecondition(
        "the solution has empty support; the schema admits no nonempty "
        "population at all");
  }

  Interpretation model(&schema, static_cast<int>(universe));
  for (size_t i = 0; i < num_cc; ++i) {
    for (int64_t j = 0; j < population[i]; ++j) {
      for (ClassId member : expansion.compound_classes[i].members()) {
        model.AddToClass(member, static_cast<ObjectId>(offset[i] + j));
      }
    }
  }

  // Attribute pairs, compound attribute by compound attribute, with
  // running cyclic pointers keeping per-object totals near-even within
  // each (attribute, side, compound class) group.
  std::map<std::pair<AttributeId, int>, int64_t> from_pointer;
  std::map<std::pair<AttributeId, int>, int64_t> to_pointer;
  for (size_t i = 0; i < expansion.compound_attributes.size(); ++i) {
    const BigInt& big_count = solution.certificate.ca_count[i];
    if (!big_count.FitsInt64() || big_count.ToInt64() > kSaturated / scale) {
      return ResourceExhausted("certificate pair count does not fit int64");
    }
    int64_t m = big_count.ToInt64() * scale;
    if (m == 0) continue;
    const CompoundAttribute& ca = expansion.compound_attributes[i];
    int64_t p1 = population[ca.from];
    int64_t p2 = population[ca.to];
    if (p1 == 0 || p2 == 0 || m > SaturatingMul(p1, p2)) {
      return std::optional<Interpretation>();  // Needs a larger scale.
    }
    std::vector<int64_t> left = EvenQuota(
        m, p1, &from_pointer[{ca.attribute, ca.from}]);
    std::vector<int64_t> right = EvenQuota(
        m, p2, &to_pointer[{ca.attribute, ca.to}]);
    std::vector<std::pair<int64_t, int64_t>> pairs;
    if (!RealizeBipartite(std::move(left), std::move(right), &pairs)) {
      return std::optional<Interpretation>();
    }
    for (const auto& [l, r] : pairs) {
      model.AddAttributePair(ca.attribute,
                             static_cast<ObjectId>(offset[ca.from] + l),
                             static_cast<ObjectId>(offset[ca.to] + r));
    }
  }

  // Labeled tuples, compound relation by compound relation.
  std::map<std::tuple<RelationId, int, int>, int64_t> role_pointer;
  for (size_t i = 0; i < expansion.compound_relations.size(); ++i) {
    const BigInt& big_count = solution.certificate.cr_count[i];
    if (!big_count.FitsInt64() || big_count.ToInt64() > kSaturated / scale) {
      return ResourceExhausted("certificate tuple count does not fit int64");
    }
    int64_t m = big_count.ToInt64() * scale;
    if (m == 0) continue;
    const CompoundRelation& cr = expansion.compound_relations[i];
    const int arity = static_cast<int>(cr.components.size());
    int64_t combinations = 1;
    std::vector<std::vector<int64_t>> quotas;
    bool undersized = false;
    for (int k = 0; k < arity; ++k) {
      int64_t p = population[cr.components[k]];
      if (p == 0) {
        undersized = true;
        break;
      }
      combinations = SaturatingMul(combinations, p);
      quotas.push_back(EvenQuota(
          m, p, &role_pointer[{cr.relation, k, cr.components[k]}]));
    }
    if (undersized || m > combinations) {
      return std::optional<Interpretation>();
    }
    TupleSearch search(std::move(quotas), m,
                       options.max_tuple_search_steps);
    std::vector<std::vector<int64_t>> tuples;
    if (!search.Run(&tuples)) {
      return std::optional<Interpretation>();
    }
    for (const std::vector<int64_t>& local : tuples) {
      LabeledTuple tuple(arity);
      for (int k = 0; k < arity; ++k) {
        tuple[k] =
            static_cast<ObjectId>(offset[cr.components[k]] + local[k]);
      }
      CAR_RETURN_IF_ERROR(model.AddTuple(cr.relation, std::move(tuple)));
    }
  }

  return std::optional<Interpretation>(std::move(model));
}

}  // namespace

Result<SynthesisResult> SynthesizeModel(const Expansion& expansion,
                                        const PsiSolution& solution,
                                        const SynthesisOptions& options) {
  int64_t scale = 1;
  std::vector<std::string> last_violations;
  for (int attempt = 0; attempt <= options.max_rescale_attempts; ++attempt) {
    CAR_ASSIGN_OR_RETURN(std::optional<Interpretation> model,
                         TryBuild(expansion, solution, scale, options));
    if (model.has_value()) {
      ModelCheckResult check = CheckModel(*expansion.schema, *model);
      if (check.is_model) {
        SynthesisResult result{std::move(*model), scale};
        return result;
      }
      last_violations = std::move(check.violations);
    }
    scale *= 2;
  }
  return Internal(StrCat(
      "model synthesis failed after ", options.max_rescale_attempts + 1,
      " scaling attempts",
      last_violations.empty()
          ? std::string(" (combinatorial realization never completed)")
          : StrCat("; last verification failure: ", last_violations[0])));
}

}  // namespace car
