// car_serve — the multi-tenant schema-reasoning daemon.
//
// Speaks the length-prefixed binary protocol of src/serve/protocol.h
// over one of three transports:
//
//   car_serve [options]                  stdio (one connection: stdin/stdout)
//   car_serve --unix=PATH [options]      Unix-domain stream socket
//   car_serve --listen=PORT [options]    TCP on 127.0.0.1:PORT
//
// Tenants open schemas under names, query them with textual implication
// queries (reasoner/query_text.h syntax) and mutate them; warm
// IncrementalSessions are cached per tenant with LRU + memory-budget
// eviction. Every query batch runs under a fresh ExecContext configured
// from the request's admission limits tightened against the server-side
// caps below; overload degrades to a structured `degraded` answer, never
// a crash or a wrong answer.
//
// options:
//   --threads=N             worker threads inside one query batch
//                           (1 = serial reference, 0 = hardware
//                           concurrency; answers are bit-identical)
//   --max-sessions=N        resident-session cap (LRU eviction past it)
//   --memory-budget-mb=N    summed warm-state budget (0 = unlimited)
//   --default-deadline-ms=N server-side per-request deadline cap
//   --default-work-budget=N server-side per-request work-unit cap
//   --max-frame-mb=N        frame payload cap (default 8 MiB)
//   --no-lazy-expansion     opt out of lazy (counterexample-guided)
//                           expansion in the tenant sessions; lazy is
//                           the default and answers are bit-identical
//                           either way
//   --state-dir=DIR         durable warm-state snapshots (off by default):
//                           spill after each batch / eviction / shutdown,
//                           restore on Open (src/persist)
//   --version               print snapshot format + ABI fingerprint, exit
//
// Environment: CAR_IO_FAULT_INJECT=N makes the Nth and every later
// persistence I/O op fail deterministically (crash-safety tests only).
//
// Socket transports accept connections until a ShutdownRequest is
// served; stdio serves until EOF or shutdown. Exit codes: 0 clean
// shutdown or client EOF, 3 usage error, 4 transport failure.

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <system_error>
#include <thread>
#include <vector>

#include "persist/snapshot_format.h"
#include "serve/server.h"

namespace car {
namespace serve {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 3;
constexpr int kExitTransport = 4;

struct Flags {
  ServerOptions server;
  uint32_t max_frame_payload = kDefaultMaxFramePayload;
  /// Exactly one transport: stdio unless --unix/--listen is given.
  std::string unix_path;
  int tcp_port = -1;
};

int Usage() {
  std::cerr
      << "usage: car_serve [--unix=PATH | --listen=PORT] [options]\n"
         "transports:\n"
         "  (default)               stdio: frames on stdin/stdout\n"
         "  --unix=PATH             Unix-domain stream socket at PATH\n"
         "  --listen=PORT           TCP on 127.0.0.1:PORT\n"
         "options:\n"
         "  --threads=N             worker threads per query batch\n"
         "                          (1 = serial, 0 = hardware concurrency)\n"
         "  --max-sessions=N        resident warm-session cap\n"
         "  --memory-budget-mb=N    warm-state memory budget (0 = none)\n"
         "  --default-deadline-ms=N per-request deadline cap\n"
         "  --default-work-budget=N per-request work-unit cap\n"
         "  --max-frame-mb=N        frame payload cap in MiB\n"
         "  --no-lazy-expansion     disable lazy expansion in sessions\n"
         "                          (the default; answers are identical)\n"
         "  --state-dir=DIR         durable warm-state snapshot directory\n"
         "  --version               print snapshot format/ABI, exit\n"
         "exit codes:\n"
         "  0  clean shutdown (ShutdownRequest or client EOF)\n"
         "  3  usage error\n"
         "  4  transport failure\n";
  return kExitUsage;
}

/// from_chars, not stoull: stoull wraps "--threads=-1" to 2^64-1 instead
/// of rejecting it.
bool ParseUint64Flag(const std::string& arg, size_t prefix_len,
                     uint64_t* value) {
  std::string_view text = std::string_view(arg).substr(prefix_len);
  uint64_t parsed = 0;
  auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), parsed);
  if (ec != std::errc() || end != text.data() + text.size() ||
      text.empty()) {
    std::cerr << "bad flag value '" << arg << "'\n";
    return false;
  }
  *value = parsed;
  return true;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    uint64_t value = 0;
    if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseUint64Flag(arg, 10, &value) || value > 1024) return false;
      flags->server.num_threads = static_cast<int>(value);
    } else if (arg.rfind("--max-sessions=", 0) == 0) {
      if (!ParseUint64Flag(arg, 15, &value)) return false;
      flags->server.max_sessions = value;
    } else if (arg.rfind("--memory-budget-mb=", 0) == 0) {
      if (!ParseUint64Flag(arg, 19, &value)) return false;
      flags->server.memory_budget_bytes = value << 20;
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      if (!ParseUint64Flag(arg, 22, &value)) return false;
      flags->server.request_limits.deadline_ms = value;
    } else if (arg.rfind("--default-work-budget=", 0) == 0) {
      if (!ParseUint64Flag(arg, 22, &value)) return false;
      flags->server.request_limits.work_budget = value;
    } else if (arg.rfind("--max-frame-mb=", 0) == 0) {
      if (!ParseUint64Flag(arg, 15, &value) || value == 0 ||
          value > 512) {
        return false;
      }
      flags->max_frame_payload = static_cast<uint32_t>(value << 20);
    } else if (arg == "--no-lazy-expansion") {
      flags->server.lazy_expansion = false;
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      flags->server.state_dir = arg.substr(12);
      if (flags->server.state_dir.empty()) return false;
    } else if (arg.rfind("--unix=", 0) == 0) {
      flags->unix_path = arg.substr(7);
      if (flags->unix_path.empty()) return false;
    } else if (arg.rfind("--listen=", 0) == 0) {
      if (!ParseUint64Flag(arg, 9, &value) || value == 0 ||
          value > 65535) {
        return false;
      }
      flags->tcp_port = static_cast<int>(value);
    } else {
      std::cerr << "unknown flag '" << arg << "'\n";
      return false;
    }
  }
  if (!flags->unix_path.empty() && flags->tcp_port >= 0) {
    std::cerr << "--unix and --listen are mutually exclusive\n";
    return false;
  }
  return true;
}

int ServeStdio(const Flags& flags) {
  Server server(flags.server);
  Status status = ServeStream(&server, STDIN_FILENO, STDOUT_FILENO,
                              flags.max_frame_payload);
  if (!status.ok()) {
    std::cerr << "car_serve: " << status << "\n";
    return kExitTransport;
  }
  return kExitOk;
}

/// One connection thread plus its completion flag, so the accept loop
/// can reap finished threads without blocking in join().
struct Connection {
  std::thread thread;
  std::shared_ptr<std::atomic<bool>> done;
};

/// Joins and drops every connection whose thread has finished; a daemon
/// under connection churn keeps only live connections resident.
void ReapFinished(std::vector<Connection>* connections) {
  for (auto it = connections->begin(); it != connections->end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = connections->erase(it);
    } else {
      ++it;
    }
  }
}

/// Accept loop shared by both socket transports: serves each connection
/// on its own thread (the server serializes request dispatch internally)
/// and polls the shutdown flag between accepts. Idle connections observe
/// shutdown themselves (ServeStream's reads poll the flag), so the final
/// drain terminates even with silent clients attached.
int AcceptLoop(const Flags& flags, int listen_fd) {
  Server server(flags.server);
  std::vector<Connection> connections;
  int exit_code = kExitOk;
  while (!server.shutdown_requested()) {
    ReapFinished(&connections);
    struct pollfd pfd = {};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::cerr << "car_serve: poll: " << std::strerror(errno) << "\n";
      exit_code = kExitTransport;
      break;
    }
    if (ready == 0) continue;  // Timeout: re-check the shutdown flag.
    int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      std::cerr << "car_serve: accept: " << std::strerror(errno) << "\n";
      exit_code = kExitTransport;
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread(
        [&server, conn_fd, max_frame = flags.max_frame_payload, done] {
          Status status =
              ServeStream(&server, conn_fd, conn_fd, max_frame);
          if (!status.ok()) {
            std::cerr << "car_serve: connection: " << status << "\n";
          }
          ::close(conn_fd);
          done->store(true, std::memory_order_release);
        });
    connections.push_back({std::move(thread), std::move(done)});
  }
  for (Connection& connection : connections) connection.thread.join();
  ::close(listen_fd);
  return exit_code;
}

int ServeUnix(const Flags& flags) {
  struct sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (flags.unix_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "car_serve: socket path too long\n";
    return kExitUsage;
  }
  std::memcpy(addr.sun_path, flags.unix_path.c_str(),
              flags.unix_path.size() + 1);
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "car_serve: socket: " << std::strerror(errno) << "\n";
    return kExitTransport;
  }
  ::unlink(flags.unix_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "car_serve: bind/listen '" << flags.unix_path
              << "': " << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return kExitTransport;
  }
  int exit_code = AcceptLoop(flags, listen_fd);
  ::unlink(flags.unix_path.c_str());
  return exit_code;
}

int ServeTcp(const Flags& flags) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::cerr << "car_serve: socket: " << std::strerror(errno) << "\n";
    return kExitTransport;
  }
  int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(flags.tcp_port));
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    std::cerr << "car_serve: bind/listen port " << flags.tcp_port << ": "
              << std::strerror(errno) << "\n";
    ::close(listen_fd);
    return kExitTransport;
  }
  return AcceptLoop(flags, listen_fd);
}

int Run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--version") {
      std::cout << "car_serve snapshot-format="
                << persist::kSnapshotFormatVersion << " abi-fingerprint="
                << std::hex << persist::SnapshotAbiFingerprint() << std::dec
                << "\n";
      return kExitOk;
    }
  }
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();
  // Deterministic persistence-fault injection for crash-safety tests:
  // same parsing contract as the flag values (reject garbage loudly).
  if (const char* inject = std::getenv("CAR_IO_FAULT_INJECT")) {
    std::string arg = std::string("CAR_IO_FAULT_INJECT=") + inject;
    uint64_t value = 0;
    if (!ParseUint64Flag(arg, 20, &value)) return Usage();
    flags.server.io_fault_after = value;
  }
  if (!flags.unix_path.empty()) return ServeUnix(flags);
  if (flags.tcp_port >= 0) return ServeTcp(flags);
  return ServeStdio(flags);
}

}  // namespace
}  // namespace serve
}  // namespace car

int main(int argc, char** argv) {
  return car::serve::Run(argc, argv);
}
