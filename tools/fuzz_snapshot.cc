// libFuzzer harness for the persistent warm-state snapshot codec.
//
// Feeds arbitrary bytes to the total snapshot decoder. The contract
// under test (persist/snapshot_format.h): any byte string either yields
// kParseError / kInvalidArgument or decodes to a snapshot — never a
// crash, never UB, never an allocation larger than the input — and
// because decoding is strict, every accepted input is canonical:
// Encode(Decode(bytes)) must reproduce the input byte-exactly. The
// header peek must be total on the same inputs. Crashes, sanitizer
// reports and round-trip failures are the fuzzer's findings.
//
// Build (Clang only): cmake -DCAR_BUILD_FUZZERS=ON, then run
//   ./build/tools/fuzz_snapshot -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "persist/snapshot_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // The header peek is the recovery scan's triage step: total on any
  // prefix, and it must agree with the full decoder about the header.
  car::Result<car::persist::SnapshotHeader> header =
      car::persist::PeekSnapshotHeader(bytes);

  car::Result<car::persist::WarmSnapshot> snapshot =
      car::persist::DecodeSnapshot(bytes);
  if (!snapshot.ok()) return 0;

  if (!header.ok()) {
    std::fprintf(stderr,
                 "full decode accepted bytes whose header peek failed\n");
    __builtin_trap();
  }
  const std::string encoded = car::persist::EncodeSnapshot(*snapshot);
  if (encoded != bytes) {
    std::fprintf(stderr,
                 "snapshot encode/decode round trip not byte-exact "
                 "(%zu -> %zu bytes)\n",
                 bytes.size(), encoded.size());
    __builtin_trap();
  }
  return 0;
}
