// libFuzzer harness for the schema parser.
//
// Feeds arbitrary bytes to ParseSchema and, whenever they parse, checks
// the print ∘ parse round trip: the canonical pretty-print of a parsed
// schema must itself parse (anything else means the printer and the
// parser disagree about the language). Crashes, sanitizer reports and
// round-trip failures are the fuzzer's findings; semantic reasoning is
// deliberately out of scope to keep executions fast.
//
// Build (Clang only): cmake -DCAR_BUILD_FUZZERS=ON, then run
//   ./build/tools/fuzz_parser -max_total_time=60 examples/schemas
// seeding from the example corpus.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "frontend/parser.h"
#include "frontend/printer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  car::Result<car::Schema> schema = car::ParseSchema(text);
  if (!schema.ok()) return 0;

  std::string printed = car::PrintSchema(*schema);
  car::Result<car::Schema> reparsed = car::ParseSchema(printed);
  if (!reparsed.ok()) {
    std::fprintf(stderr,
                 "print/parse round trip failed: %s\ncanonical form:\n%s\n",
                 reparsed.status().ToString().c_str(), printed.c_str());
    __builtin_trap();
  }
  // The round trip must also be idempotent: printing the reparse yields
  // the same canonical text.
  if (car::PrintSchema(*reparsed) != printed) {
    std::fprintf(stderr, "canonical form is not a fixpoint:\n%s\n",
                 printed.c_str());
    __builtin_trap();
  }
  return 0;
}
