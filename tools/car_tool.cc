// car_tool — the command-line front end of libcar.
//
//   car_tool check <schema-file>         validate + satisfiability report
//   car_tool print <schema-file>         canonical pretty-print
//   car_tool stats <schema-file>         fragment, clusters, expansion sizes
//   car_tool model <schema-file>         synthesize & dump a database state
//   car_tool reify <schema-file>         print the Theorem-4.5 reification
//   car_tool implications <schema-file> <class>
//                                        implied superclasses, disjointness
//                                        and cardinality bounds for a class
//
// Exit codes: 0 success (for `check`: all classes satisfiable), 1 usage or
// processing error, 2 (`check` only): schema valid but some class is
// unsatisfiable.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/car.h"
#include "reasoner/unrestricted.h"
#include "semantics/dump.h"

namespace car {
namespace {

int Usage() {
  std::cerr
      << "usage: car_tool <command> <schema-file> [args]\n"
         "commands:\n"
         "  check <file>                validate + satisfiability report\n"
         "  print <file>                canonical pretty-print\n"
         "  stats <file>                fragment, clusters, expansion\n"
         "  model <file>                synthesize a database state\n"
         "  reify <file>                reify n-ary relations (Thm 4.5)\n"
         "  implications <file> <class> implied facts about one class\n";
  return 1;
}

Result<Schema> Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSchema(buffer.str());
}

int Check(Schema& schema) {
  Reasoner reasoner(&schema);
  auto report = reasoner.CheckSchema();
  if (!report.ok()) {
    std::cerr << "error: " << report.status() << "\n";
    return 1;
  }
  std::cout << schema.Summary() << "\n";
  if (report->unsatisfiable_classes.empty()) {
    std::cout << "OK: all classes satisfiable\n";
    return 0;
  }
  for (ClassId c : report->unsatisfiable_classes) {
    std::cout << "UNSATISFIABLE: " << schema.ClassName(c) << "\n";
  }
  return 2;
}

int Stats(Schema& schema) {
  std::cout << schema.Summary() << "\n";
  std::cout << "union-free: " << (schema.IsUnionFree() ? "yes" : "no")
            << "\nnegation-free: "
            << (schema.IsNegationFree() ? "yes" : "no")
            << "\nmax arity: " << schema.MaxArity() << "\n";

  PairTables tables = BuildPairTables(schema);
  ClusterPartition clusters = ComputeClusters(schema, tables);
  std::cout << "preselection: " << tables.num_inclusion_pairs()
            << " inclusions, " << tables.num_disjoint_pairs()
            << " disjoint pairs; " << clusters.Summary(schema) << "\n";

  auto expansion = BuildExpansion(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion: " << expansion.status() << "\n";
    return 1;
  }
  std::cout << expansion->Summary() << "\n";

  auto finite = SolvePsi(*expansion);
  if (!finite.ok()) {
    std::cerr << "solver: " << finite.status() << "\n";
    return 1;
  }
  auto unrestricted = CheckUnrestrictedSatisfiability(*expansion);
  if (!unrestricted.ok()) {
    std::cerr << "unrestricted: " << unrestricted.status() << "\n";
    return 1;
  }
  int finite_only = 0;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (unrestricted->IsClassSatisfiable(c) &&
        !finite->IsClassSatisfiable(c)) {
      ++finite_only;
      std::cout << "finite-model effect: " << schema.ClassName(c)
                << " is satisfiable only over infinite universes\n";
    }
  }
  std::cout << "LP solves: " << finite->lp_solves
            << ", pivots: " << finite->total_pivots
            << ", finite-model effects: " << finite_only << "\n";
  return 0;
}

int Model(Schema& schema) {
  auto expansion = BuildExpansion(schema);
  if (!expansion.ok()) {
    std::cerr << "expansion: " << expansion.status() << "\n";
    return 1;
  }
  auto solution = SolvePsi(*expansion);
  if (!solution.ok()) {
    std::cerr << "solver: " << solution.status() << "\n";
    return 1;
  }
  auto model = SynthesizeModel(*expansion, *solution);
  if (!model.ok()) {
    std::cerr << "synthesis: " << model.status() << "\n";
    return 1;
  }
  DumpOptions options;
  options.max_facts_per_extension = 32;
  std::cout << DumpInterpretation(model->model, options);
  ModelCheckResult verdict = CheckModel(schema, model->model);
  std::cout << (verdict.is_model ? "verified: model\n"
                                 : "verified: NOT A MODEL (bug!)\n");
  return verdict.is_model ? 0 : 1;
}

int Reify(Schema& schema) {
  auto reified = ReifyNonBinaryRelations(schema);
  if (!reified.ok()) {
    std::cerr << "reify: " << reified.status() << "\n";
    return 1;
  }
  std::cout << PrintSchema(reified->schema);
  std::cerr << "(" << reified->num_reified << " relation(s) reified)\n";
  return 0;
}

int Implications(Schema& schema, const std::string& class_name) {
  ClassId target = schema.LookupClass(class_name);
  if (target == kInvalidId) {
    std::cerr << "unknown class '" << class_name << "'\n";
    return 1;
  }
  Reasoner reasoner(&schema);
  auto satisfiable = reasoner.IsClassSatisfiable(target);
  if (!satisfiable.ok()) {
    std::cerr << "error: " << satisfiable.status() << "\n";
    return 1;
  }
  std::cout << class_name << " is "
            << (satisfiable.value() ? "satisfiable" : "UNSATISFIABLE")
            << "\n";

  for (ClassId other = 0; other < schema.num_classes(); ++other) {
    if (other == target) continue;
    auto isa = reasoner.ImpliesIsa(target, ClassFormula::OfClass(other));
    if (isa.ok() && isa.value()) {
      std::cout << "  implied superclass: " << schema.ClassName(other)
                << "\n";
    }
    auto disjoint = reasoner.ImpliesDisjoint(target, other);
    if (disjoint.ok() && disjoint.value()) {
      std::cout << "  implied disjoint:   " << schema.ClassName(other)
                << "\n";
    }
  }

  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (bool inverse : {false, true}) {
      AttributeTerm term = inverse ? AttributeTerm::Inverse(a)
                                   : AttributeTerm::Direct(a);
      auto bounds = reasoner.ImpliedCardinalityBounds(target, term);
      if (!bounds.ok()) continue;
      if (bounds.value() == Cardinality::Unbounded()) continue;
      std::cout << "  implied cardinality: "
                << (inverse ? StrCat("(inv ", schema.AttributeName(a), ")")
                            : schema.AttributeName(a))
                << " : " << bounds.value().ToString() << "\n";
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  auto schema = Load(argv[2]);
  if (!schema.ok()) {
    std::cerr << "error: " << schema.status() << "\n";
    return 1;
  }
  if (command == "check") return Check(*schema);
  if (command == "print") {
    std::cout << PrintSchema(*schema);
    return 0;
  }
  if (command == "stats") return Stats(*schema);
  if (command == "model") return Model(*schema);
  if (command == "reify") return Reify(*schema);
  if (command == "implications") {
    if (argc < 4) return Usage();
    return Implications(*schema, argv[3]);
  }
  return Usage();
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Run(argc, argv); }
