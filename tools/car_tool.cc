// car_tool — the command-line front end of libcar.
//
//   car_tool [--threads=N] check <schema-file>
//                                        validate + satisfiability report
//   car_tool print <schema-file>         canonical pretty-print
//   car_tool stats <schema-file>         fragment, clusters, expansion sizes
//   car_tool model <schema-file>         synthesize & dump a database state
//   car_tool reify <schema-file>         print the Theorem-4.5 reification
//   car_tool implications <schema-file> <class>
//                                        implied superclasses, disjointness
//                                        and cardinality bounds for a class
//
// --threads=N runs phase 1/phase 2 and implication batches on N worker
// threads (0 = hardware concurrency); results are bit-identical to the
// default serial execution (--threads=1).
//
// Exit codes: 0 success (for `check`: all classes satisfiable), 1 usage or
// processing error, 2 (`check` only): schema valid but some class is
// unsatisfiable.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/car.h"
#include "reasoner/unrestricted.h"
#include "semantics/dump.h"

namespace car {
namespace {

/// Worker threads for everything parallelizable; set by --threads.
int g_num_threads = 1;

int Usage() {
  std::cerr
      << "usage: car_tool [--threads=N] <command> <schema-file> [args]\n"
         "commands:\n"
         "  check <file>                validate + satisfiability report\n"
         "  print <file>                canonical pretty-print\n"
         "  stats <file>                fragment, clusters, expansion\n"
         "  model <file>                synthesize a database state\n"
         "  reify <file>                reify n-ary relations (Thm 4.5)\n"
         "  implications <file> <class> implied facts about one class\n"
         "options:\n"
         "  --threads=N                 worker threads (1 = serial,\n"
         "                              0 = hardware concurrency)\n";
  return 1;
}

ReasonerOptions MakeReasonerOptions() {
  ReasonerOptions options;
  options.num_threads = g_num_threads;
  return options;
}

ExpansionOptions MakeExpansionOptions() {
  ExpansionOptions options;
  options.num_threads = g_num_threads;
  return options;
}

Result<Schema> Load(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return NotFound(StrCat("cannot open '", path, "'"));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseSchema(buffer.str());
}

int Check(Schema& schema) {
  Reasoner reasoner(&schema, MakeReasonerOptions());
  auto report = reasoner.CheckSchema();
  if (!report.ok()) {
    std::cerr << "error: " << report.status() << "\n";
    return 1;
  }
  std::cout << schema.Summary() << "\n";
  if (report->unsatisfiable_classes.empty()) {
    std::cout << "OK: all classes satisfiable\n";
    return 0;
  }
  for (ClassId c : report->unsatisfiable_classes) {
    std::cout << "UNSATISFIABLE: " << schema.ClassName(c) << "\n";
  }
  return 2;
}

int Stats(Schema& schema) {
  std::cout << schema.Summary() << "\n";
  std::cout << "union-free: " << (schema.IsUnionFree() ? "yes" : "no")
            << "\nnegation-free: "
            << (schema.IsNegationFree() ? "yes" : "no")
            << "\nmax arity: " << schema.MaxArity() << "\n";

  PairTables tables = BuildPairTables(schema);
  ClusterPartition clusters = ComputeClusters(schema, tables);
  std::cout << "preselection: " << tables.num_inclusion_pairs()
            << " inclusions, " << tables.num_disjoint_pairs()
            << " disjoint pairs; " << clusters.Summary(schema) << "\n";

  auto expansion = BuildExpansion(schema, MakeExpansionOptions());
  if (!expansion.ok()) {
    std::cerr << "expansion: " << expansion.status() << "\n";
    return 1;
  }
  std::cout << expansion->Summary() << "\n";

  PsiSolverOptions solver_options;
  solver_options.num_threads = g_num_threads;
  auto finite = SolvePsi(*expansion, solver_options);
  if (!finite.ok()) {
    std::cerr << "solver: " << finite.status() << "\n";
    return 1;
  }
  auto unrestricted = CheckUnrestrictedSatisfiability(*expansion);
  if (!unrestricted.ok()) {
    std::cerr << "unrestricted: " << unrestricted.status() << "\n";
    return 1;
  }
  int finite_only = 0;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (unrestricted->IsClassSatisfiable(c) &&
        !finite->IsClassSatisfiable(c)) {
      ++finite_only;
      std::cout << "finite-model effect: " << schema.ClassName(c)
                << " is satisfiable only over infinite universes\n";
    }
  }
  std::cout << "LP solves: " << finite->lp_solves
            << ", pivots: " << finite->total_pivots
            << ", finite-model effects: " << finite_only << "\n";
  return 0;
}

int Model(Schema& schema) {
  auto expansion = BuildExpansion(schema, MakeExpansionOptions());
  if (!expansion.ok()) {
    std::cerr << "expansion: " << expansion.status() << "\n";
    return 1;
  }
  PsiSolverOptions solver_options;
  solver_options.num_threads = g_num_threads;
  auto solution = SolvePsi(*expansion, solver_options);
  if (!solution.ok()) {
    std::cerr << "solver: " << solution.status() << "\n";
    return 1;
  }
  auto model = SynthesizeModel(*expansion, *solution);
  if (!model.ok()) {
    std::cerr << "synthesis: " << model.status() << "\n";
    return 1;
  }
  DumpOptions options;
  options.max_facts_per_extension = 32;
  std::cout << DumpInterpretation(model->model, options);
  ModelCheckResult verdict = CheckModel(schema, model->model);
  std::cout << (verdict.is_model ? "verified: model\n"
                                 : "verified: NOT A MODEL (bug!)\n");
  return verdict.is_model ? 0 : 1;
}

int Reify(Schema& schema) {
  auto reified = ReifyNonBinaryRelations(schema);
  if (!reified.ok()) {
    std::cerr << "reify: " << reified.status() << "\n";
    return 1;
  }
  std::cout << PrintSchema(reified->schema);
  std::cerr << "(" << reified->num_reified << " relation(s) reified)\n";
  return 0;
}

int Implications(Schema& schema, const std::string& class_name) {
  ClassId target = schema.LookupClass(class_name);
  if (target == kInvalidId) {
    std::cerr << "unknown class '" << class_name << "'\n";
    return 1;
  }
  Reasoner reasoner(&schema, MakeReasonerOptions());
  auto satisfiable = reasoner.IsClassSatisfiable(target);
  if (!satisfiable.ok()) {
    std::cerr << "error: " << satisfiable.status() << "\n";
    return 1;
  }
  std::cout << class_name << " is "
            << (satisfiable.value() ? "satisfiable" : "UNSATISFIABLE")
            << "\n";

  // The per-class sweep is one batch of independent auxiliary-schema
  // checks: isa and disjointness against every other class.
  std::vector<ImplicationQuery> queries;
  std::vector<ClassId> others;
  for (ClassId other = 0; other < schema.num_classes(); ++other) {
    if (other == target) continue;
    others.push_back(other);
    ImplicationQuery isa;
    isa.kind = ImplicationQuery::Kind::kIsa;
    isa.class_id = target;
    isa.formula = ClassFormula::OfClass(other);
    queries.push_back(std::move(isa));
    ImplicationQuery disjoint;
    disjoint.kind = ImplicationQuery::Kind::kDisjoint;
    disjoint.class_id = target;
    disjoint.other = other;
    queries.push_back(std::move(disjoint));
  }
  auto answers = reasoner.RunImplicationBatch(queries);
  if (!answers.ok()) {
    std::cerr << "error: " << answers.status() << "\n";
    return 1;
  }
  for (size_t i = 0; i < others.size(); ++i) {
    if ((*answers)[2 * i]) {
      std::cout << "  implied superclass: " << schema.ClassName(others[i])
                << "\n";
    }
    if ((*answers)[2 * i + 1]) {
      std::cout << "  implied disjoint:   " << schema.ClassName(others[i])
                << "\n";
    }
  }

  for (AttributeId a = 0; a < schema.num_attributes(); ++a) {
    for (bool inverse : {false, true}) {
      AttributeTerm term = inverse ? AttributeTerm::Inverse(a)
                                   : AttributeTerm::Direct(a);
      auto bounds = reasoner.ImpliedCardinalityBounds(target, term);
      if (!bounds.ok()) continue;
      if (bounds.value() == Cardinality::Unbounded()) continue;
      std::cout << "  implied cardinality: "
                << (inverse ? StrCat("(inv ", schema.AttributeName(a), ")")
                            : schema.AttributeName(a))
                << " : " << bounds.value().ToString() << "\n";
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      try {
        g_num_threads = std::stoi(arg.substr(10));
      } catch (...) {
        std::cerr << "bad --threads value '" << arg << "'\n";
        return Usage();
      }
      if (g_num_threads < 0) return Usage();
      continue;
    }
    args.push_back(std::move(arg));
  }
  if (args.size() < 2) return Usage();
  const std::string& command = args[0];
  auto schema = Load(args[1]);
  if (!schema.ok()) {
    std::cerr << "error: " << schema.status() << "\n";
    return 1;
  }
  if (command == "check") return Check(*schema);
  if (command == "print") {
    std::cout << PrintSchema(*schema);
    return 0;
  }
  if (command == "stats") return Stats(*schema);
  if (command == "model") return Model(*schema);
  if (command == "reify") return Reify(*schema);
  if (command == "implications") {
    if (args.size() < 3) return Usage();
    return Implications(*schema, args[2]);
  }
  return Usage();
}

}  // namespace
}  // namespace car

int main(int argc, char** argv) { return car::Run(argc, argv); }
